// Simulation-engine throughput: the parallel deterministic simulator
// (diffusion::Simulate at 1/4/8 threads) and the statuses-only fast path
// (diffusion::SimulateStatuses) over an n x beta grid for the IC and LT
// models. The 1-thread Simulate arm is the pre-parallelization sequential
// engine (the parallel path degenerates to the same inline loop), so the
// other arms read directly as before/after speedups.
//
// Every arm is checked byte-identical to the 1-thread baseline before its
// time is reported — a wrong-but-fast simulator would fail the run, not
// report a win. The packed output of the fast path is checked against a
// freshly transposed PackedStatuses the same way.
//
// JSON rows (schema tends.bench.v1, accuracy fields zero as for
// micro-benchmarks): `seconds` of each arm, `edges` carrying the total
// infection count, plus pseudo-rows whose `seconds` field carries the
// speedup factor over the sequential baseline.

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "common/timer.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "diffusion/status_simulator.h"
#include "graph/generators/lfr.h"
#include "inference/counting.h"
#include "metrics/evaluation.h"

using namespace tends;

namespace {

bool SameStatuses(const diffusion::StatusMatrix& a,
                  const diffusion::StatusMatrix& b) {
  if (a.num_processes() != b.num_processes() ||
      a.num_nodes() != b.num_nodes()) {
    return false;
  }
  for (uint32_t p = 0; p < a.num_processes(); ++p) {
    if (std::memcmp(a.Row(p), b.Row(p), a.num_nodes()) != 0) return false;
  }
  return true;
}

bool SamePacked(const inference::PackedStatuses& a,
                const inference::PackedStatuses& b) {
  if (a.num_processes() != b.num_processes() || a.num_nodes() != b.num_nodes())
    return false;
  for (uint32_t v = 0; v < a.num_nodes(); ++v) {
    if (std::memcmp(a.Column(v), b.Column(v),
                    a.words_per_node() * sizeof(uint64_t)) != 0) {
      return false;
    }
  }
  return true;
}

uint64_t TotalInfections(const diffusion::StatusMatrix& statuses) {
  uint64_t total = 0;
  for (uint32_t v = 0; v < statuses.num_nodes(); ++v) {
    total += statuses.InfectionCount(v);
  }
  return total;
}

}  // namespace

int main() {
  benchlib::PrintBenchHeader(
      "Simulation Throughput - Parallel Deterministic Engine",
      "diffusion::Simulate and the statuses-only SimulateStatuses fast path "
      "across thread counts; every arm byte-identical to the sequential "
      "baseline");
  const bool fast = benchlib::FastBenchMode();

  struct GridPoint {
    uint32_t n;
    uint32_t beta;
  };
  const std::vector<GridPoint> grid =
      fast ? std::vector<GridPoint>{{300, 128}}
           : std::vector<GridPoint>{{500, 256}, {2000, 1024}};
  const std::vector<uint32_t> thread_counts =
      fast ? std::vector<uint32_t>{1, 4} : std::vector<uint32_t>{1, 4, 8};
  const std::vector<std::pair<std::string, diffusion::DiffusionModel>> models =
      {{"ic", diffusion::DiffusionModel::kIndependentCascade},
       {"lt", diffusion::DiffusionModel::kLinearThreshold}};

  std::vector<std::pair<std::string, std::vector<metrics::AlgorithmEvaluation>>>
      rows;
  for (const GridPoint& point : grid) {
    Rng graph_rng(1000 + point.n);
    StatusOr<graph::DirectedGraph> truth_or = graph::GenerateLfr(
        graph::LfrOptions::FromPaperParams(point.n, /*kappa=*/4.0, /*t=*/2.0),
        graph_rng);
    if (!truth_or.ok()) {
      std::cerr << "dataset construction failed: " << truth_or.status()
                << "\n";
      return 1;
    }
    const graph::DirectedGraph& truth = *truth_or;
    Rng prob_rng(42);
    diffusion::EdgeProbabilities probabilities =
        diffusion::EdgeProbabilities::Gaussian(truth, 0.3, 0.05, prob_rng);

    for (const auto& [model_name, model] : models) {
      diffusion::SimulationConfig config;
      config.num_processes = point.beta;
      config.initial_infection_ratio = 0.15;
      config.model = model;

      const std::string setting = StrFormat(
          "%s n=%u beta=%u", model_name.c_str(), point.n, point.beta);
      std::vector<metrics::AlgorithmEvaluation> evaluations;
      auto add_row = [&](const std::string& algorithm, double seconds,
                         uint64_t edges) {
        metrics::AlgorithmEvaluation evaluation;
        evaluation.algorithm = algorithm;
        evaluation.seconds = seconds;
        evaluation.inferred_edges = edges;
        evaluations.push_back(std::move(evaluation));
      };

      // Sequential baseline (== the pre-parallelization simulator) plus
      // reference packed transpose. Run once untimed to warm allocators.
      config.num_threads = 1;
      {
        Rng warm_rng(7);
        if (!diffusion::Simulate(truth, probabilities, config, warm_rng)
                 .ok()) {
          std::cerr << "warmup simulation failed\n";
          return 1;
        }
      }
      Rng base_rng(7);
      Timer timer;
      StatusOr<diffusion::DiffusionObservations> baseline =
          diffusion::Simulate(truth, probabilities, config, base_rng);
      const double baseline_seconds = timer.ElapsedSeconds();
      if (!baseline.ok()) {
        std::cerr << "simulation failed: " << baseline.status() << "\n";
        return 1;
      }
      const diffusion::StatusMatrix& expected = baseline->statuses;
      const inference::PackedStatuses expected_packed(expected);
      const uint64_t infections = TotalInfections(expected);
      add_row("simulate t=1", baseline_seconds, infections);

      for (uint32_t threads : thread_counts) {
        if (threads > 1) {
          config.num_threads = threads;
          Rng rng(7);
          timer.Restart();
          StatusOr<diffusion::DiffusionObservations> observations =
              diffusion::Simulate(truth, probabilities, config, rng);
          const double seconds = timer.ElapsedSeconds();
          if (!observations.ok() ||
              !SameStatuses(observations->statuses, expected)) {
            std::cerr << "determinism guard failed: simulate t=" << threads
                      << " diverged from the sequential baseline\n";
            return 1;
          }
          add_row(StrFormat("simulate t=%u", threads), seconds, infections);
          add_row(StrFormat("speedup simulate t=%u", threads),
                  baseline_seconds / seconds, 0);
        }

        config.num_threads = threads;
        Rng rng(7);
        timer.Restart();
        StatusOr<diffusion::StatusObservations> statuses_only =
            diffusion::SimulateStatuses(truth, probabilities, config, rng);
        const double seconds = timer.ElapsedSeconds();
        if (!statuses_only.ok() ||
            !SameStatuses(statuses_only->statuses, expected) ||
            !SamePacked(statuses_only->packed, expected_packed)) {
          std::cerr << "equivalence guard failed: SimulateStatuses t="
                    << threads << " diverged from Simulate\n";
          return 1;
        }
        add_row(StrFormat("statuses t=%u", threads), seconds, infections);
        add_row(StrFormat("speedup statuses t=%u", threads),
                baseline_seconds / seconds, 0);
      }
      rows.emplace_back(setting, std::move(evaluations));
    }
  }

  for (const auto& [setting, evaluations] : rows) {
    for (const metrics::AlgorithmEvaluation& evaluation : evaluations) {
      std::cout << StrFormat("%-18s %-24s %8.4fs\n", setting.c_str(),
                             evaluation.algorithm.c_str(), evaluation.seconds);
    }
  }
  benchlib::MaybeWriteBenchJson(
      "Simulation Throughput - Parallel Deterministic Engine", rows);
  return 0;
}
