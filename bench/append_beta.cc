// Streaming-ingest benchmark: a 10-chunk stream of diffusion processes is
// absorbed two ways — AppendStatuses + IncrementalRunner::Refresh (delta
// artifacts, cube-served clean-node searches) versus a fresh session built
// and run over the concatenated prefix at every step. Both arms are
// byte-identical by contract (guarded here per step via bit-cast edge
// comparison); the win is the per-append latency, which for the
// incremental arm scales with the chunk and the dirty-node set rather
// than the accumulated history.
//
// JSON rows (schema tends.bench.v1): one setting per (mode, step) with a
// TENDS-fresh and a TENDS-incremental record, each scored against the
// ground-truth graph (real f-score/precision/recall — the accuracy
// columns are bit-deterministic and gated against a checked-in baseline)
// and carrying that arm's wall-clock for the step. In full (non-fast)
// mode the final append must come out at least 5x cheaper incrementally,
// or the bench fails.

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/experiment.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "common/timer.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "graph/generators/erdos_renyi.h"
#include "inference/session.h"
#include "inference/tends.h"
#include "metrics/fscore.h"

namespace {

bool BitIdentical(const tends::inference::InferredNetwork& a,
                  const tends::inference::InferredNetwork& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (size_t e = 0; e < a.num_edges(); ++e) {
    if (a.edges()[e].edge.from != b.edges()[e].edge.from ||
        a.edges()[e].edge.to != b.edges()[e].edge.to ||
        std::bit_cast<uint64_t>(a.edges()[e].weight) !=
            std::bit_cast<uint64_t>(b.edges()[e].weight)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace tends;
  benchlib::PrintBenchHeader(
      "Append Beta - Incremental Session vs Fresh Re-Inference",
      "10-chunk stream of diffusion processes: AppendStatuses + "
      "IncrementalRunner::Refresh versus a fresh session over the "
      "concatenated prefix at every step");
  const bool fast = benchlib::FastBenchMode();

  // History-dominated stream: a large base block plus small, word-hostile
  // appends. The incremental arm's advantage grows with beta (the packed
  // search rescans the whole history per score; the cube never does), so
  // the full-mode workload is deep.
  // Fresh per-score cost is O(beta/64) words; the cube's is independent of
  // beta, so the incremental advantage scales with history depth — 16k base
  // processes puts the final-append speedup comfortably past the 5x guard.
  const uint32_t n = fast ? 60 : 150;
  const double edge_probability = fast ? 0.06 : 0.03;
  const uint32_t base_beta = fast ? 100 : 16384;
  const uint32_t chunk_beta = fast ? 17 : 96;
  const size_t kChunks = 10;

  Rng graph_rng(7);
  StatusOr<graph::DirectedGraph> truth_or = graph::GenerateErdosRenyi(
      {.num_nodes = n, .edge_probability = edge_probability}, graph_rng);
  if (!truth_or.ok()) {
    std::cerr << "dataset construction failed: " << truth_or.status() << "\n";
    return 1;
  }
  const graph::DirectedGraph& truth = *truth_or;

  Rng prob_rng(42);
  diffusion::EdgeProbabilities probabilities =
      diffusion::EdgeProbabilities::Gaussian(truth, 0.3, 0.05, prob_rng);
  std::vector<diffusion::StatusMatrix> chunks;
  for (size_t c = 0; c < kChunks; ++c) {
    diffusion::SimulationConfig config;
    config.num_processes = c == 0 ? base_beta : chunk_beta;
    config.initial_infection_ratio = 0.15;
    Rng rng(1000 + c);
    StatusOr<diffusion::DiffusionObservations> observations =
        diffusion::Simulate(truth, probabilities, config, rng);
    if (!observations.ok()) {
      std::cerr << "simulation failed: " << observations.status() << "\n";
      return 1;
    }
    chunks.push_back(std::move(observations->statuses));
  }

  MetricsRegistry registry;
  std::vector<std::pair<std::string, std::vector<metrics::AlgorithmEvaluation>>>
      rows;
  double final_speedup_dense = 0.0;

  for (inference::CandidateMode mode :
       {inference::CandidateMode::kDense, inference::CandidateMode::kSparse}) {
    const std::string mode_name =
        mode == inference::CandidateMode::kSparse ? "sparse" : "dense";
    inference::TendsOptions options;
    options.candidate_mode = mode;
    // Early prefixes of a genuine stream can leave a node uninfected in
    // every observed process; the streaming configuration accepts that.
    options.reject_degenerate_columns = false;

    inference::InferenceSession session(chunks[0]);
    inference::IncrementalRunner runner(session, options);
    diffusion::StatusMatrix concatenated = chunks[0];

    for (size_t step = 0; step < kChunks; ++step) {
      Timer timer;
      if (step > 0) {
        concatenated.AppendRows(chunks[step]);
        Status appended = session.AppendStatuses(
            chunks[step], inference::ArtifactContext{.metrics = &registry});
        if (!appended.ok()) {
          std::cerr << "append failed: " << appended << "\n";
          return 1;
        }
      }
      StatusOr<inference::SessionRun> incremental = runner.Refresh();
      const double incremental_seconds = timer.ElapsedSeconds();
      if (!incremental.ok()) {
        std::cerr << "incremental refresh failed: " << incremental.status()
                  << "\n";
        return 1;
      }

      timer.Restart();
      inference::InferenceSession fresh_session{
          diffusion::StatusMatrix(concatenated)};
      StatusOr<inference::SessionRun> fresh = fresh_session.Run(options);
      const double fresh_seconds = timer.ElapsedSeconds();
      if (!fresh.ok()) {
        std::cerr << "fresh run failed: " << fresh.status() << "\n";
        return 1;
      }

      if (!BitIdentical(incremental->network, fresh->network)) {
        std::cerr << "equivalence guard failed: " << mode_name << " step "
                  << step << " incremental != fresh\n";
        return 1;
      }

      const metrics::EdgeMetrics accuracy =
          metrics::EvaluateEdges(incremental->network, truth);
      const double speedup = fresh_seconds / incremental_seconds;
      std::cout << StrFormat(
          "%s step=%zu processes=%u edges=%zu dirty=%u clean=%u "
          "fresh=%.4fs incremental=%.4fs speedup=%.2fx f=%.3f\n",
          mode_name.c_str(), step, concatenated.num_processes(),
          incremental->network.num_edges(), runner.last_dirty_nodes(),
          runner.last_clean_nodes(), fresh_seconds, incremental_seconds,
          speedup, accuracy.f_score);

      auto evaluation = [&](const std::string& algorithm, double seconds) {
        metrics::AlgorithmEvaluation e;
        e.algorithm = algorithm;
        e.metrics = accuracy;
        e.seconds = seconds;
        e.inferred_edges = incremental->network.num_edges();
        return e;
      };
      rows.emplace_back(
          StrFormat("%s step=%zu beta=%u", mode_name.c_str(), step,
                    concatenated.num_processes()),
          std::vector<metrics::AlgorithmEvaluation>{
              evaluation("TENDS-fresh", fresh_seconds),
              evaluation("TENDS-incremental", incremental_seconds)});
      if (mode == inference::CandidateMode::kDense &&
          step + 1 == kChunks) {
        final_speedup_dense = speedup;
      }
    }
  }

  // The streaming claim this bench exists to pin: at the final append of
  // the full-mode stream, absorbing the chunk incrementally is at least
  // 5x cheaper than re-inferring from scratch. Fast (smoke) runs are too
  // small for stable timing and only validate rows + byte-identity.
  if (!fast && final_speedup_dense < 5.0) {
    std::cerr << StrFormat(
        "speedup guard failed: final dense append only %.2fx cheaper "
        "than fresh (need >= 5x)\n",
        final_speedup_dense);
    return 1;
  }

  benchlib::MaybeWriteBenchJson(
      "Append Beta - Incremental Session vs Fresh Re-Inference", rows,
      &registry);
  return 0;
}
