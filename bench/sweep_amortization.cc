// Demonstrates the amortization win of InferenceSession: a 10-point
// tau_multiplier sweep through one session computes the shared artifacts
// (packed transpose, pairwise count table, IMI matrix, K-means threshold)
// once and reuses them, while 10 independent Tends::Infer runs recompute
// them for every point. Both arms produce byte-identical networks (the
// session equivalence suite proves that; this bench re-checks edge counts
// as a cheap guard) — only the wall clock differs.
//
// JSON rows (schema tends.bench.v1, accuracy fields zero as for
// micro-benchmarks): total seconds of each arm, plus a pseudo-row whose
// `seconds` field carries the independent/session speedup factor.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "common/timer.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "graph/generators/lfr.h"
#include "inference/session.h"
#include "inference/tends.h"

int main() {
  using namespace tends;
  benchlib::PrintBenchHeader(
      "Sweep Amortization - InferenceSession vs Independent Runs",
      "10-point tau_multiplier sweep: shared-artifact session versus 10 "
      "fresh Tends::Infer calls on the same status matrix");
  const bool fast = benchlib::FastBenchMode();

  // The artifact share of one run grows with n (IMI is O(n^2 * beta), the
  // capped parent search only O(n * beta)), so the amortization win is a
  // large-network effect: use an LFR graph well above the figure sizes.
  const uint32_t n = fast ? 500 : 2000;
  Rng graph_rng(1000 + n);
  StatusOr<graph::DirectedGraph> truth_or = graph::GenerateLfr(
      graph::LfrOptions::FromPaperParams(n, /*kappa=*/4.0, /*t=*/2.0),
      graph_rng);
  if (!truth_or.ok()) {
    std::cerr << "dataset construction failed: " << truth_or.status() << "\n";
    return 1;
  }
  const graph::DirectedGraph& truth = *truth_or;

  Rng rng(42);
  diffusion::EdgeProbabilities probabilities =
      diffusion::EdgeProbabilities::Gaussian(truth, 0.3, 0.05, rng);
  diffusion::SimulationConfig sim_config;
  // beta stays 256 in fast mode too: fewer processes make the IMI estimates
  // noisy, the K-means threshold collapses, and the candidate sets explode.
  sim_config.num_processes = 256;
  sim_config.initial_infection_ratio = 0.15;
  StatusOr<diffusion::DiffusionObservations> observations =
      diffusion::Simulate(truth, probabilities, sim_config, rng);
  if (!observations.ok()) {
    std::cerr << "simulation failed: " << observations.status() << "\n";
    return 1;
  }
  const diffusion::StatusMatrix& statuses = observations->statuses;

  // Sweep from the auto threshold upward (1.0 .. 2.8). Below 1.0*tau the
  // candidate sets explode and the greedy search swamps everything, which
  // is the pruning ablation's territory (fig10/fig11), not a sweep a
  // production server would fan out.
  std::vector<inference::TendsOptions> runs;
  for (int i = 0; i < 10; ++i) {
    inference::TendsOptions options;
    options.tau_multiplier = 1.0 + 0.2 * i;
    runs.push_back(options);
  }

  // Warm caches so neither arm pays first-touch costs.
  {
    inference::Tends warmup(runs[0]);
    if (!warmup.InferFromStatuses(statuses).ok()) {
      std::cerr << "warmup run failed\n";
      return 1;
    }
  }

  // Arm 1: one fresh Tends per sweep point, artifacts recomputed each time.
  Timer timer;
  uint64_t independent_edges = 0;
  for (const inference::TendsOptions& options : runs) {
    inference::Tends tends(options);
    StatusOr<inference::InferredNetwork> network =
        tends.InferFromStatuses(statuses);
    if (!network.ok()) {
      std::cerr << "independent run failed: " << network.status() << "\n";
      return 1;
    }
    independent_edges += network->num_edges();
  }
  const double independent_seconds = timer.ElapsedSeconds();

  // Arm 2: one session, artifacts computed once, ten pruning+search passes.
  timer.Restart();
  inference::InferenceSession session(statuses);
  inference::SweepRunner runner(session);
  StatusOr<inference::SweepResult> sweep = runner.Run(runs);
  const double session_seconds = timer.ElapsedSeconds();
  if (!sweep.ok()) {
    std::cerr << "session sweep failed: " << sweep.status() << "\n";
    return 1;
  }
  uint64_t session_edges = 0;
  for (const inference::SweepRunResult& run : sweep->completed) {
    session_edges += run.network.num_edges();
  }
  if (sweep->completed.size() != runs.size() ||
      session_edges != independent_edges) {
    std::cerr << "equivalence guard failed: " << sweep->completed.size()
              << " runs, " << session_edges << " vs " << independent_edges
              << " edges\n";
    return 1;
  }

  const double speedup = independent_seconds / session_seconds;
  std::cout << StrFormat(
      "nodes=%u processes=%u sweep_points=%zu\n"
      "independent: %.3fs total (%.3fs/run)\n"
      "session:     %.3fs total (%.3fs/run)\n"
      "speedup:     %.2fx\n",
      truth.num_nodes(), statuses.num_processes(), runs.size(),
      independent_seconds, independent_seconds / runs.size(), session_seconds,
      session_seconds / runs.size(), speedup);

  auto row = [&](const std::string& setting, double seconds, uint64_t edges) {
    metrics::AlgorithmEvaluation evaluation;
    evaluation.algorithm = "TENDS";
    evaluation.seconds = seconds;
    evaluation.inferred_edges = edges;
    return std::make_pair(setting,
                          std::vector<metrics::AlgorithmEvaluation>{evaluation});
  };
  std::vector<std::pair<std::string, std::vector<metrics::AlgorithmEvaluation>>>
      rows;
  rows.push_back(row("independent x10", independent_seconds, independent_edges));
  rows.push_back(row("session sweep x10", session_seconds, session_edges));
  rows.push_back(row("speedup (independent/session)", speedup, 0));
  benchlib::MaybeWriteBenchJson(
      "Sweep Amortization - InferenceSession vs Independent Runs", rows);
  return 0;
}
