// Google-benchmark micro-benchmarks of the library's hot primitives:
// pairwise IMI matrix construction, joint counting / local scoring, the
// K-means threshold, IC simulation throughput and the per-node parent
// search. These back the complexity claims of Section IV-D and the packed
// counting-kernel speedups (DESIGN.md, "Counting kernels").
//
// The custom main records per-benchmark timings and, when
// TENDS_BENCH_JSON_DIR is set, writes them via the standard bench JSON
// channel (schema tends.bench.v1; accuracy fields are zero for
// micro-benchmarks — only `seconds` is meaningful).

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "graph/generators/lfr.h"
#include "inference/counting.h"
#include "inference/imi.h"
#include "inference/kmeans_threshold.h"
#include "inference/local_score.h"
#include "inference/parent_search.h"
#include "inference/tends.h"

namespace {

using namespace tends;

diffusion::StatusMatrix RandomStatuses(uint32_t beta, uint32_t n,
                                       uint64_t seed) {
  Rng rng(seed);
  diffusion::StatusMatrix statuses(beta, n);
  for (uint32_t p = 0; p < beta; ++p) {
    for (uint32_t v = 0; v < n; ++v) {
      statuses.Set(p, v, rng.NextBernoulli(0.4));
    }
  }
  return statuses;
}

// O(beta * n^2 / 64): the dominant term of TENDS's pruning stage.
void BM_ImiMatrix(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  auto statuses = RandomStatuses(150, n, 1);
  for (auto _ : state) {
    inference::ImiMatrix imi(statuses, false);
    benchmark::DoNotOptimize(imi.Get(0, 1));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ImiMatrix)->Arg(100)->Arg(200)->Arg(400)->Complexity();

// ------------------------------------------------- joint-counting kernels
//
// The naive/packed/incremental trio sweeps beta x |W| on the same data so
// the JSON rows line up as a per-setting comparison. All three produce
// bit-identical JointCounts (tests/counting_differential_test.cc); only
// the cost differs: naive scans beta processes per call, packed does
// word-at-a-time popcounts, and incremental answers a greedy probe
// F u {c} from cached combo codes with one OR-in of c's column.

constexpr int64_t kCountBetas[] = {64, 1024, 16384};
constexpr int64_t kCountParents[] = {1, 2, 3, 4, 5, 6};

std::vector<graph::NodeId> FirstParents(uint32_t count) {
  std::vector<graph::NodeId> ids;
  for (uint32_t b = 0; b < count; ++b) ids.push_back(b + 1);
  return ids;
}

// O(beta * |W|): one sufficient-statistics pass over the raw matrix.
void BM_CountJointNaive(benchmark::State& state) {
  const uint32_t beta = static_cast<uint32_t>(state.range(0));
  auto statuses = RandomStatuses(beta, 32, 2);
  auto parent_ids = FirstParents(static_cast<uint32_t>(state.range(1)));
  for (auto _ : state) {
    auto counts = inference::CountJoint(statuses, 0, parent_ids);
    benchmark::DoNotOptimize(counts.num_unobserved);
  }
}
BENCHMARK(BM_CountJointNaive)
    ->ArgsProduct({{kCountBetas[0], kCountBetas[1], kCountBetas[2]},
                   {1, 2, 3, 4, 5, 6}});

// O(beta / 64 * 2^|W|) below the popcount cutoff, O(beta) scatter above.
void BM_CountJointPacked(benchmark::State& state) {
  const uint32_t beta = static_cast<uint32_t>(state.range(0));
  auto statuses = RandomStatuses(beta, 32, 2);
  inference::PackedStatuses packed(statuses);
  auto parent_ids = FirstParents(static_cast<uint32_t>(state.range(1)));
  for (auto _ : state) {
    auto counts = packed.CountJoint(0, parent_ids);
    benchmark::DoNotOptimize(counts.num_unobserved);
  }
}
BENCHMARK(BM_CountJointPacked)
    ->ArgsProduct({{kCountBetas[0], kCountBetas[1], kCountBetas[2]},
                   {1, 2, 3, 4, 5, 6}});

// The greedy-probe shape: |W|-1 parents cached as the base F, each
// iteration evaluates F u {c} for a fresh candidate c.
void BM_CountJointIncremental(benchmark::State& state) {
  const uint32_t beta = static_cast<uint32_t>(state.range(0));
  const uint32_t parents = static_cast<uint32_t>(state.range(1));
  auto statuses = RandomStatuses(beta, 32, 2);
  inference::PackedStatuses packed(statuses);
  inference::IncrementalJointCounter counter(packed, 0);
  counter.SetBase(FirstParents(parents - 1));
  const std::vector<graph::NodeId> probe = {parents};
  for (auto _ : state) {
    auto counts = counter.Count(probe);
    benchmark::DoNotOptimize(counts.num_unobserved);
  }
}
BENCHMARK(BM_CountJointIncremental)
    ->ArgsProduct({{kCountBetas[0], kCountBetas[1], kCountBetas[2]},
                   {1, 2, 3, 4, 5, 6}});

void BM_LocalScore(benchmark::State& state) {
  auto statuses = RandomStatuses(150, 16, 3);
  auto counts = inference::CountJoint(statuses, 0, {1, 2, 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(inference::LocalScore(counts));
  }
}
BENCHMARK(BM_LocalScore);

void BM_KmeansThreshold(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (double& v : values) {
    v = rng.NextBernoulli(0.05) ? rng.NextDouble(0.3, 1.0)
                                : rng.NextDouble(0.0, 0.02);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(inference::FindImiThreshold(values).tau);
  }
}
BENCHMARK(BM_KmeansThreshold)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_IcSimulation(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng graph_rng(5);
  auto truth = graph::GenerateLfr(
                   graph::LfrOptions::FromPaperParams(n, 4, 2), graph_rng)
                   .value();
  Rng rng(6);
  auto probs = diffusion::EdgeProbabilities::Gaussian(truth, 0.3, 0.05, rng);
  diffusion::SimulationConfig config;
  config.num_processes = 150;
  uint64_t batch = 0;
  for (auto _ : state) {
    Rng sim_rng(7 + batch++);
    auto observations = diffusion::Simulate(truth, probs, config, sim_rng);
    benchmark::DoNotOptimize(observations->statuses.Get(0, 0));
  }
  state.counters["processes_per_s"] = benchmark::Counter(
      150.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IcSimulation)->Arg(100)->Arg(300);

void BM_ParentSearch(benchmark::State& state) {
  const uint32_t candidates = static_cast<uint32_t>(state.range(0));
  auto statuses = RandomStatuses(150, 24, 8);
  std::vector<graph::NodeId> candidate_ids;
  for (uint32_t b = 0; b < candidates; ++b) candidate_ids.push_back(b + 1);
  inference::ParentSearchOptions options;
  for (auto _ : state) {
    auto result = inference::FindParents(statuses, 0, candidate_ids, options);
    benchmark::DoNotOptimize(result.score);
  }
}
BENCHMARK(BM_ParentSearch)->Arg(4)->Arg(8)->Arg(12);

void BM_TendsEndToEnd(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng graph_rng(9);
  auto truth = graph::GenerateLfr(
                   graph::LfrOptions::FromPaperParams(n, 4, 2), graph_rng)
                   .value();
  Rng rng(10);
  auto probs = diffusion::EdgeProbabilities::Gaussian(truth, 0.3, 0.05, rng);
  diffusion::SimulationConfig config;
  auto observations = diffusion::Simulate(truth, probs, config, rng).value();
  for (auto _ : state) {
    inference::Tends tends;
    auto inferred = tends.InferFromStatuses(observations.statuses);
    benchmark::DoNotOptimize(inferred->num_edges());
  }
}
BENCHMARK(BM_TendsEndToEnd)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------- JSON output

// Console output plus a (name, seconds/iteration) record of every run,
// mapped onto the repo-wide bench JSON schema afterwards.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      const double iterations =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      timings_.emplace_back(run.benchmark_name(),
                            run.real_accumulated_time / iterations);
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<std::pair<std::string, double>>& timings() const {
    return timings_;
  }

 private:
  std::vector<std::pair<std::string, double>> timings_;
};

// "BM_CountJointPacked/1024/3" -> {"beta=1024/W=3", "count_joint_packed"};
// anything else -> {args or "-", benchmark name}. Keeps the CountJoint
// kernel trio grouped per setting so speedups read off adjacent rows.
std::pair<std::string, std::string> SettingAndAlgorithm(
    const std::string& name) {
  std::string head = name;
  std::string args;
  if (auto slash = name.find('/'); slash != std::string::npos) {
    head = name.substr(0, slash);
    args = name.substr(slash + 1);
  }
  const std::string prefix = "BM_CountJoint";
  if (head.rfind(prefix, 0) == 0 && head.size() > prefix.size()) {
    std::string kernel = head.substr(prefix.size());  // Naive/Packed/...
    std::transform(kernel.begin(), kernel.end(), kernel.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    std::string setting = args;
    if (auto slash = args.find('/'); slash != std::string::npos) {
      setting = "beta=" + args.substr(0, slash) + "/W=" + args.substr(slash + 1);
    }
    return {setting, "count_joint_" + kernel};
  }
  return {args.empty() ? "-" : args, head};
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // One JSON row per run; rows sharing a setting stay adjacent.
  std::vector<std::pair<std::string,
                        std::vector<tends::metrics::AlgorithmEvaluation>>>
      rows;
  for (const auto& [name, seconds] : reporter.timings()) {
    auto [setting, algorithm] = SettingAndAlgorithm(name);
    tends::metrics::AlgorithmEvaluation evaluation;
    evaluation.algorithm = algorithm;
    evaluation.seconds = seconds;
    if (rows.empty() || rows.back().first != setting) {
      rows.emplace_back(setting,
                        std::vector<tends::metrics::AlgorithmEvaluation>());
    }
    rows.back().second.push_back(std::move(evaluation));
  }
  tends::benchlib::MaybeWriteBenchJson("micro primitives", rows);
  return 0;
}
