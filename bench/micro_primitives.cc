// Google-benchmark micro-benchmarks of the library's hot primitives:
// pairwise IMI matrix construction, joint counting / local scoring, the
// K-means threshold, IC simulation throughput and the per-node parent
// search. These back the complexity claims of Section IV-D.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "graph/generators/lfr.h"
#include "inference/counting.h"
#include "inference/imi.h"
#include "inference/kmeans_threshold.h"
#include "inference/local_score.h"
#include "inference/parent_search.h"
#include "inference/tends.h"

namespace {

using namespace tends;

diffusion::StatusMatrix RandomStatuses(uint32_t beta, uint32_t n,
                                       uint64_t seed) {
  Rng rng(seed);
  diffusion::StatusMatrix statuses(beta, n);
  for (uint32_t p = 0; p < beta; ++p) {
    for (uint32_t v = 0; v < n; ++v) {
      statuses.Set(p, v, rng.NextBernoulli(0.4));
    }
  }
  return statuses;
}

// O(beta * n^2 / 64): the dominant term of TENDS's pruning stage.
void BM_ImiMatrix(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  auto statuses = RandomStatuses(150, n, 1);
  for (auto _ : state) {
    inference::ImiMatrix imi(statuses, false);
    benchmark::DoNotOptimize(imi.Get(0, 1));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ImiMatrix)->Arg(100)->Arg(200)->Arg(400)->Complexity();

// O(beta * |F|): one sufficient-statistics pass.
void BM_CountJoint(benchmark::State& state) {
  const uint32_t parents = static_cast<uint32_t>(state.range(0));
  auto statuses = RandomStatuses(150, 32, 2);
  std::vector<graph::NodeId> parent_ids;
  for (uint32_t b = 0; b < parents; ++b) parent_ids.push_back(b + 1);
  for (auto _ : state) {
    auto counts = inference::CountJoint(statuses, 0, parent_ids);
    benchmark::DoNotOptimize(counts.num_unobserved);
  }
}
BENCHMARK(BM_CountJoint)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(15);

void BM_LocalScore(benchmark::State& state) {
  auto statuses = RandomStatuses(150, 16, 3);
  auto counts = inference::CountJoint(statuses, 0, {1, 2, 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(inference::LocalScore(counts));
  }
}
BENCHMARK(BM_LocalScore);

void BM_KmeansThreshold(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (double& v : values) {
    v = rng.NextBernoulli(0.05) ? rng.NextDouble(0.3, 1.0)
                                : rng.NextDouble(0.0, 0.02);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(inference::FindImiThreshold(values).tau);
  }
}
BENCHMARK(BM_KmeansThreshold)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_IcSimulation(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng graph_rng(5);
  auto truth = graph::GenerateLfr(
                   graph::LfrOptions::FromPaperParams(n, 4, 2), graph_rng)
                   .value();
  Rng rng(6);
  auto probs = diffusion::EdgeProbabilities::Gaussian(truth, 0.3, 0.05, rng);
  diffusion::SimulationConfig config;
  config.num_processes = 150;
  uint64_t batch = 0;
  for (auto _ : state) {
    Rng sim_rng(7 + batch++);
    auto observations = diffusion::Simulate(truth, probs, config, sim_rng);
    benchmark::DoNotOptimize(observations->statuses.Get(0, 0));
  }
  state.counters["processes_per_s"] = benchmark::Counter(
      150.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IcSimulation)->Arg(100)->Arg(300);

void BM_ParentSearch(benchmark::State& state) {
  const uint32_t candidates = static_cast<uint32_t>(state.range(0));
  auto statuses = RandomStatuses(150, 24, 8);
  std::vector<graph::NodeId> candidate_ids;
  for (uint32_t b = 0; b < candidates; ++b) candidate_ids.push_back(b + 1);
  inference::ParentSearchOptions options;
  for (auto _ : state) {
    auto result = inference::FindParents(statuses, 0, candidate_ids, options);
    benchmark::DoNotOptimize(result.score);
  }
}
BENCHMARK(BM_ParentSearch)->Arg(4)->Arg(8)->Arg(12);

void BM_TendsEndToEnd(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng graph_rng(9);
  auto truth = graph::GenerateLfr(
                   graph::LfrOptions::FromPaperParams(n, 4, 2), graph_rng)
                   .value();
  Rng rng(10);
  auto probs = diffusion::EdgeProbabilities::Gaussian(truth, 0.3, 0.05, rng);
  diffusion::SimulationConfig config;
  auto observations = diffusion::Simulate(truth, probs, config, rng).value();
  for (auto _ : state) {
    inference::Tends tends;
    auto inferred = tends.InferFromStatuses(observations.statuses);
    benchmark::DoNotOptimize(inferred->num_edges());
  }
}
BENCHMARK(BM_TendsEndToEnd)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
