// Greedy-scoring strategy benchmark: the parent-search stage under the
// three scoring strategies (packed scans, forced contingency cubes, the
// auto planner) across a beta sweep. Packed per-evaluation cost grows
// linearly with beta (O(beta/64) column words per score); the cube answers
// every evaluation in O(2^|C|) after one O(beta * |C|) build, so its arm
// stays flat — the auto planner must track the winner at both ends.
//
// Guards (the ISSUE acceptance criteria):
//   * At the deepest beta, every arm's on-disk network file is byte-equal
//     to the packed baseline's across {1, 8} threads and both candidate
//     modes — the strategy seam moves cost only, never output.
//   * In full (non-fast) mode the auto planner's parent-search stage at
//     beta = 16384 must be at least 3x faster than packed-only.
//
// JSON rows (schema tends.bench.v1): one setting per (beta), with one
// record per strategy arm carrying that arm's parent-search stage seconds
// and the (bit-deterministic, baseline-gated) accuracy columns.

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/experiment.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "graph/generators/powerlaw.h"
#include "inference/io.h"
#include "inference/session.h"
#include "inference/tends.h"
#include "metrics/fscore.h"

namespace {

struct StrategyArm {
  tends::inference::ScoringStrategy strategy;
  const char* name;
};

constexpr StrategyArm kArms[] = {
    {tends::inference::ScoringStrategy::kPacked, "packed"},
    {tends::inference::ScoringStrategy::kCube, "cube"},
    {tends::inference::ScoringStrategy::kAuto, "auto"},
};

bool BitIdentical(const tends::inference::InferredNetwork& a,
                  const tends::inference::InferredNetwork& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (size_t e = 0; e < a.num_edges(); ++e) {
    if (a.edges()[e].edge.from != b.edges()[e].edge.from ||
        a.edges()[e].edge.to != b.edges()[e].edge.to ||
        std::bit_cast<uint64_t>(a.edges()[e].weight) !=
            std::bit_cast<uint64_t>(b.edges()[e].weight)) {
      return false;
    }
  }
  return true;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main() {
  using namespace tends;
  benchlib::PrintBenchHeader(
      "Greedy Scoring - Packed vs Cube vs Auto",
      "parent-search stage wall-clock across a beta sweep under the three "
      "scoring strategies, with byte-identity guards across strategy, "
      "thread count and candidate mode");
  const bool fast = benchlib::FastBenchMode();

  // The acceptance workload: a capped candidate set (|C| <= 8 keeps every
  // node cube-eligible) over deep process histories. Fast mode shrinks
  // beta below the planner's crossover on purpose — it validates rows and
  // the identity guards, not the speedup.
  const uint32_t n = fast ? 100 : 2000;
  const std::vector<uint32_t> betas =
      fast ? std::vector<uint32_t>{128, 512}
           : std::vector<uint32_t>{1024, 4096, 16384};
  const uint32_t max_candidates = 8;

  Rng graph_rng(4242);
  graph::PowerlawOptions graph_options;
  graph_options.num_nodes = n;
  graph_options.avg_degree = 3.0;
  StatusOr<graph::DirectedGraph> truth_or =
      graph::GeneratePowerlawHavelHakimi(graph_options, graph_rng);
  if (!truth_or.ok()) {
    std::cerr << "dataset construction failed: " << truth_or.status() << "\n";
    return 1;
  }
  const graph::DirectedGraph& truth = *truth_or;
  Rng prob_rng(42);
  diffusion::EdgeProbabilities probabilities =
      diffusion::EdgeProbabilities::Gaussian(truth, 0.3, 0.05, prob_rng);

  MetricsRegistry registry;
  std::vector<std::pair<std::string, std::vector<metrics::AlgorithmEvaluation>>>
      rows;
  double final_speedup = 0.0;

  const char* tmp_env = std::getenv("TMPDIR");
  const std::string tmp_dir = tmp_env != nullptr ? tmp_env : "/tmp";

  for (size_t b = 0; b < betas.size(); ++b) {
    const uint32_t beta = betas[b];
    diffusion::SimulationConfig config;
    config.num_processes = beta;
    config.initial_infection_ratio = 0.15;
    Rng sim_rng(1000 + beta);
    StatusOr<diffusion::DiffusionObservations> observations =
        diffusion::Simulate(truth, probabilities, config, sim_rng);
    if (!observations.ok()) {
      std::cerr << "simulation failed: " << observations.status() << "\n";
      return 1;
    }
    const diffusion::StatusMatrix& statuses = observations->statuses;

    // Timing runs: single-threaded and dense, so the parent_search stage
    // wall time is the serial cost of one full node loop per arm.
    std::vector<metrics::AlgorithmEvaluation> arm_rows;
    std::optional<inference::InferredNetwork> packed_network;
    uint64_t packed_stage_ns = 0;
    for (const StrategyArm& arm : kArms) {
      inference::TendsOptions options;
      options.reject_degenerate_columns = false;
      options.max_candidates = max_candidates;
      options.search.scoring_strategy = arm.strategy;
      MetricsRegistry run_registry;
      RunContext context;
      context.metrics = &run_registry;
      inference::Tends tends(options);
      StatusOr<inference::InferredNetwork> network =
          tends.InferFromStatuses(statuses, context);
      if (!network.ok()) {
        std::cerr << arm.name << " inference failed: " << network.status()
                  << "\n";
        return 1;
      }
      const uint64_t stage_ns = run_registry.StageWallNs("parent_search");
      const uint64_t cube_nodes =
          run_registry.CounterValue("tends.parent_search.cube_nodes");
      const uint64_t packed_nodes =
          run_registry.CounterValue("tends.parent_search.packed_nodes");
      const uint64_t build_ns =
          run_registry.GetHistogram("tends.parent_search.cube_build_ns").sum();

      if (arm.strategy == inference::ScoringStrategy::kPacked) {
        packed_network = std::move(network).value();
        packed_stage_ns = stage_ns;
      } else if (!BitIdentical(*network, *packed_network)) {
        std::cerr << "equivalence guard failed: " << arm.name << " beta="
                  << beta << " differs from packed\n";
        return 1;
      }
      const inference::InferredNetwork& result =
          arm.strategy == inference::ScoringStrategy::kPacked
              ? *packed_network
              : *network;
      const metrics::EdgeMetrics accuracy =
          metrics::EvaluateEdges(result, truth);
      std::cout << StrFormat(
          "beta=%u strategy=%-6s parent_search=%.4fs cube_build=%.4fs "
          "cube_nodes=%llu packed_nodes=%llu vs_packed=%.2fx f=%.3f\n",
          beta, arm.name, stage_ns / 1e9, build_ns / 1e9,
          static_cast<unsigned long long>(cube_nodes),
          static_cast<unsigned long long>(packed_nodes),
          stage_ns > 0 ? static_cast<double>(packed_stage_ns) / stage_ns : 0.0,
          accuracy.f_score);

      metrics::AlgorithmEvaluation evaluation;
      evaluation.algorithm = StrFormat("TENDS-%s", arm.name);
      evaluation.metrics = accuracy;
      evaluation.seconds = stage_ns / 1e9;
      evaluation.inferred_edges = result.num_edges();
      arm_rows.push_back(std::move(evaluation));

      if (arm.strategy == inference::ScoringStrategy::kAuto &&
          b + 1 == betas.size() && stage_ns > 0) {
        final_speedup = static_cast<double>(packed_stage_ns) / stage_ns;
      }
    }
    rows.emplace_back(StrFormat("beta=%u", beta), std::move(arm_rows));

    // Identity grid at the deepest beta: every arm's on-disk network file
    // must be byte-equal to the packed baseline's, across {1, 8} threads
    // and both candidate modes (the acceptance `cmp`).
    if (b + 1 == betas.size()) {
      const std::string baseline_path =
          StrFormat("%s/greedy_scoring_baseline_%u.txt", tmp_dir.c_str(),
                    beta);
      Status written =
          inference::WriteInferredNetworkFile(*packed_network, baseline_path);
      if (!written.ok()) {
        std::cerr << "baseline write failed: " << written << "\n";
        return 1;
      }
      const std::string baseline_bytes = FileBytes(baseline_path);
      int grid_point = 0;
      for (const StrategyArm& arm : kArms) {
        for (uint32_t num_threads : {1u, 8u}) {
          for (inference::CandidateMode mode :
               {inference::CandidateMode::kDense,
                inference::CandidateMode::kSparse}) {
            inference::TendsOptions options;
            options.reject_degenerate_columns = false;
            options.max_candidates = max_candidates;
            options.search.scoring_strategy = arm.strategy;
            options.num_threads = num_threads;
            options.candidate_mode = mode;
            StatusOr<inference::InferredNetwork> network =
                inference::Tends(options).InferFromStatuses(statuses);
            if (!network.ok()) {
              std::cerr << "identity-grid inference failed: "
                        << network.status() << "\n";
              return 1;
            }
            const std::string path = StrFormat(
                "%s/greedy_scoring_arm_%d.txt", tmp_dir.c_str(), grid_point);
            written = inference::WriteInferredNetworkFile(*network, path);
            if (!written.ok()) {
              std::cerr << "arm write failed: " << written << "\n";
              return 1;
            }
            if (baseline_bytes.empty() ||
                FileBytes(path) != baseline_bytes) {
              std::cerr << StrFormat(
                  "byte-identity guard failed: %s threads=%u mode=%s "
                  "beta=%u differs from the packed baseline file\n",
                  arm.name, num_threads,
                  mode == inference::CandidateMode::kSparse ? "sparse"
                                                            : "dense",
                  beta);
              return 1;
            }
            ++grid_point;
          }
        }
      }
      std::cout << StrFormat(
          "byte-identity grid: %d arm files == packed baseline (beta=%u)\n",
          grid_point, beta);
    }
  }

  // The flat-in-beta claim this bench exists to pin: at the deepest beta
  // the auto planner's parent-search stage is at least 3x cheaper than
  // packed-only. Fast (smoke) runs sit below the planner crossover and
  // only validate rows + the identity grid.
  if (!fast && final_speedup < 3.0) {
    std::cerr << StrFormat(
        "speedup guard failed: auto parent search only %.2fx faster than "
        "packed at the deepest beta (need >= 3x)\n",
        final_speedup);
    return 1;
  }

  benchlib::MaybeWriteBenchJson("Greedy Scoring - Packed vs Cube vs Auto",
                                rows, &registry);
  return 0;
}
