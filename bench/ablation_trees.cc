// Extension bench: MulTree (all propagation trees) vs. its predecessor
// NetInf (single most probable tree) — the accuracy/efficiency trade-off
// the paper describes in Section II-A — across the LFR1-5 sizes.

#include <cstdlib>
#include <iostream>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "common/timer.h"
#include "diffusion/propagation.h"
#include "graph/generators/lfr.h"
#include "inference/multree.h"
#include "inference/netinf.h"
#include "metrics/fscore.h"

int main() {
  using namespace tends;
  benchlib::PrintBenchHeader(
      "Ablation - All-Trees (MulTree) vs Best-Tree (NetInf) Objective",
      "LFR1-5, kappa=4, T=2, beta=150, alpha=0.15, mu=0.3; both receive the "
      "true edge count");
  Table table({"setting", "algorithm", "f_score", "time_s", "edges"});
  for (uint32_t n : {100u, 150u, 200u, 250u, 300u}) {
    Rng graph_rng(1000 + n);
    auto truth_or = graph::GenerateLfr(
        graph::LfrOptions::FromPaperParams(n, 4, 2), graph_rng);
    if (!truth_or.ok()) {
      std::cerr << "LFR generation failed: " << truth_or.status() << "\n";
      return EXIT_FAILURE;
    }
    const graph::DirectedGraph& truth = *truth_or;
    Rng rng(42 + n);
    auto probabilities =
        diffusion::EdgeProbabilities::Gaussian(truth, 0.3, 0.05, rng);
    diffusion::SimulationConfig sim_config;
    auto observations = diffusion::Simulate(truth, probabilities, sim_config,
                                            rng);
    if (!observations.ok()) return EXIT_FAILURE;

    inference::MulTree multree({.num_edges = truth.num_edges()});
    inference::NetInf netinf({.num_edges = truth.num_edges()});
    for (inference::NetworkInference* algorithm :
         std::initializer_list<inference::NetworkInference*>{&multree,
                                                             &netinf}) {
      Timer timer;
      auto inferred = algorithm->Infer(*observations);
      double seconds = timer.ElapsedSeconds();
      if (!inferred.ok()) {
        std::cerr << algorithm->name() << " failed: " << inferred.status()
                  << "\n";
        return EXIT_FAILURE;
      }
      metrics::EdgeMetrics metrics = metrics::EvaluateEdges(*inferred, truth);
      table.AddRow()
          .Add(StrFormat("n=%u", n))
          .Add(std::string(algorithm->name()))
          .AddDouble(metrics.f_score)
          .AddDouble(seconds)
          .AddInt(static_cast<int64_t>(inferred->num_edges()));
    }
  }
  table.PrintText(std::cout);
  return EXIT_SUCCESS;
}
