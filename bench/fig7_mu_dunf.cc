// Reproduces Fig. 7 - Effect of Propagation Probability on DUNF (beta=150, alpha=0.15, mu=0.3 unless swept).
// See DESIGN.md for the dataset surrogate substitution.

#include "benchlib/experiment.h"
#include "graph/datasets.h"

int main() {
  using namespace tends;
  return benchlib::RunDatasetSweepBench(
      "Fig. 7 - Effect of Propagation Probability on DUNF",
      "4 algorithms, sweep over the listed values, other parameters per "
      "Section V-A",
      graph::MakeDunfSurrogate(), benchlib::SweepParameter::kMu,
      {0.20, 0.25, 0.30, 0.35, 0.40}, /*repetitions=*/1);
}
