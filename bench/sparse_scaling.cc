// Scaling comparison of the two TENDS candidate-generation pipelines:
// candidate_mode=dense (n x n pair-count + IMI matrices) vs
// candidate_mode=sparse (inverted index + CSR positive-IMI rows) on
// powerlaw graphs of growing size. The two arms are byte-identical by
// construction (tests/sparse_candidate_differential_test.cc), so equal
// accuracy rows double as a cross-check; the interesting columns are
// time and the memory section of the bench JSON. Above the dense cutoff
// only the sparse arm runs — the dense matrices alone would need
// 2 * n^2 * 8 bytes.

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/experiment.h"
#include "common/metrics.h"
#include "common/random.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "graph/generators/powerlaw.h"
#include "inference/tends.h"
#include "metrics/evaluation.h"

int main() {
  using namespace tends;
  const std::string title = "Sparse vs Dense Candidate Scaling";
  benchlib::PrintBenchHeader(
      title,
      "candidate_mode=dense vs sparse on powerlaw graphs, beta=128, "
      "mu=0.3; Section IV pruning with identical outputs");

  const bool fast = benchlib::FastBenchMode();
  // Two n^2 double matrices pass 6 GB around n=20000; beyond that only
  // the sparse arm is feasible (and is the point of the bench).
  const uint32_t dense_cutoff = 20000;
  const std::vector<uint32_t> sizes = fast
                                          ? std::vector<uint32_t>{300, 800}
                                          : std::vector<uint32_t>{2000, 10000,
                                                                  50000};

  MetricsRegistry registry;
  std::vector<std::pair<std::string, std::vector<metrics::AlgorithmEvaluation>>>
      rows;
  for (uint32_t n : sizes) {
    Rng rng(42 + n);
    graph::PowerlawOptions graph_options;
    graph_options.num_nodes = n;
    graph_options.avg_degree = 3.0;
    auto truth = graph::GeneratePowerlawHavelHakimi(graph_options, rng);
    if (!truth.ok()) {
      std::cerr << "graph generation failed: " << truth.status() << "\n";
      return 1;
    }
    diffusion::EdgeProbabilities probabilities =
        diffusion::EdgeProbabilities::Gaussian(*truth, 0.3, 0.05, rng);
    diffusion::SimulationConfig sim_config;
    sim_config.num_processes = 128;
    // Fewer seeds per process at scale keeps infections sparse — the
    // regime the inverted index exists for.
    sim_config.initial_infection_ratio = n >= 10000 ? 0.005 : 0.05;
    auto observations =
        diffusion::Simulate(*truth, probabilities, sim_config, rng, &registry);
    if (!observations.ok()) {
      std::cerr << "simulation failed: " << observations.status() << "\n";
      return 1;
    }

    std::vector<metrics::AlgorithmEvaluation> evaluations;
    for (inference::CandidateMode mode : {inference::CandidateMode::kDense,
                                          inference::CandidateMode::kSparse}) {
      const bool dense = mode == inference::CandidateMode::kDense;
      if (dense && n > dense_cutoff) {
        std::cout << "n=" << n << ": dense arm skipped (two n^2 matrices = "
                  << 2.0 * n * n * 8 / (1024.0 * 1024 * 1024) << " GiB)\n";
        continue;
      }
      inference::TendsOptions options;
      options.candidate_mode = mode;
      // Large simulations legitimately leave nodes never (or always)
      // infected; score the best-effort topology.
      options.reject_degenerate_columns = false;
      options.num_threads = 4;
      RunContext context;
      context.metrics = &registry;
      inference::Tends tends(options);
      auto evaluation = metrics::RunAndEvaluate(tends, *observations, *truth,
                                                /*sweep_threshold=*/false,
                                                context);
      if (!evaluation.ok()) {
        std::cerr << "inference failed: " << evaluation.status() << "\n";
        return 1;
      }
      evaluation->algorithm = dense ? "TENDS-dense" : "TENDS-sparse";
      evaluations.push_back(std::move(evaluation).value());
    }
    rows.emplace_back("n=" + std::to_string(n), std::move(evaluations));
  }

  benchlib::MakeFigureTable(rows).PrintText(std::cout);
  benchlib::MaybeWriteBenchJson(title, rows, &registry);
  return 0;
}
