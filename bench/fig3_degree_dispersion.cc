// Reproduces Fig. 3: effect of node degree dispersion. Workload: LFR11-15
// (n = 200, kappa = 4, T = 1..3; larger T = less dispersion), beta = 150,
// alpha = 0.15, mu = 0.3.

#include <cstdlib>
#include <iostream>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "graph/generators/lfr.h"

int main() {
  using namespace tends;
  benchlib::PrintBenchHeader("Fig. 3 - Effect of Node Degree Dispersion",
                             "LFR11-15, n=200, kappa=4, T in {1,1.5,2,2.5,3}, "
                             "beta=150, alpha=0.15, mu=0.3");
  const bool fast = benchlib::FastBenchMode();
  std::vector<std::pair<std::string,
                        std::vector<metrics::AlgorithmEvaluation>>> rows;
  int lfr_id = 11;
  for (double t : {1.0, 1.5, 2.0, 2.5, 3.0}) {
    Rng graph_rng(3000 + static_cast<uint64_t>(t * 10));
    auto truth_or = graph::GenerateLfr(
        graph::LfrOptions::FromPaperParams(200, 4.0, t), graph_rng);
    if (!truth_or.ok()) {
      std::cerr << "LFR generation failed: " << truth_or.status() << "\n";
      return EXIT_FAILURE;
    }
    benchlib::ExperimentConfig config;
    config.seed = 62 + static_cast<uint64_t>(t * 10);
    config.repetitions = fast ? 1 : 3;
    auto evaluations = benchlib::RunExperiment(*truth_or, config);
    if (!evaluations.ok()) {
      std::cerr << "experiment failed: " << evaluations.status() << "\n";
      return EXIT_FAILURE;
    }
    rows.emplace_back(StrFormat("LFR%d T=%.1f", lfr_id++, t),
                      std::move(evaluations).value());
  }
  benchlib::MakeFigureTable(rows).PrintText(std::cout);
  return EXIT_SUCCESS;
}
