// Reproduces Fig. 8 - Effect of Number of Diffusion Processes on NetSci (beta=150, alpha=0.15, mu=0.3 unless swept).
// See DESIGN.md for the dataset surrogate substitution.

#include "benchlib/experiment.h"
#include "graph/datasets.h"

int main() {
  using namespace tends;
  return benchlib::RunDatasetSweepBench(
      "Fig. 8 - Effect of Number of Diffusion Processes on NetSci",
      "4 algorithms, sweep over the listed values, other parameters per "
      "Section V-A",
      graph::MakeNetSciSurrogate(), benchlib::SweepParameter::kBeta,
      {50, 100, 150, 200, 250}, /*repetitions=*/2);
}
