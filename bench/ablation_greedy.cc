// Ablation (DESIGN.md "Algorithm 1 ambiguity"): compares the adaptive
// greedy reading of Algorithm 1 (default) with the literal static-score
// pseudo-code reading, and sweeps the combination-size cap eta, on an LFR
// graph and the NetSci surrogate.

#include <cstdlib>
#include <iostream>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "graph/datasets.h"
#include "graph/generators/lfr.h"

namespace {

using namespace tends;

int RunOn(const std::string& label, const graph::DirectedGraph& truth,
          std::vector<std::pair<std::string,
                                std::vector<metrics::AlgorithmEvaluation>>>&
              rows) {
  const bool fast = benchlib::FastBenchMode();
  for (auto mode : {inference::GreedyMode::kAdaptive,
                    inference::GreedyMode::kStaticAlgorithm1}) {
    for (uint32_t eta : {1u, 2u, 3u}) {
      benchlib::ExperimentConfig config;
      config.repetitions = fast ? 1 : 2;
      config.algorithms = {.tends = true,
                           .netrate = false,
                           .multree = false,
                           .lift = false};
      config.tends_options.search.greedy_mode = mode;
      config.tends_options.search.max_combination_size = eta;
      auto evaluations = benchlib::RunExperiment(truth, config);
      if (!evaluations.ok()) {
        std::cerr << "experiment failed: " << evaluations.status() << "\n";
        return 1;
      }
      rows.emplace_back(
          StrFormat("%s %s eta=%u", label.c_str(),
                    mode == inference::GreedyMode::kAdaptive ? "adaptive"
                                                             : "static",
                    eta),
          std::move(evaluations).value());
    }
  }
  return 0;
}

}  // namespace

int main() {
  using namespace tends;
  benchlib::PrintBenchHeader(
      "Ablation - Greedy Mode of Algorithm 1",
      "adaptive (prose reading, default) vs. static (literal pseudo-code) "
      "x combination-size cap eta; beta=150, alpha=0.15, mu=0.3");
  std::vector<std::pair<std::string,
                        std::vector<metrics::AlgorithmEvaluation>>> rows;
  Rng rng(4242);
  auto lfr = graph::GenerateLfr(graph::LfrOptions::FromPaperParams(200, 4, 2),
                                rng);
  if (!lfr.ok()) {
    std::cerr << "LFR generation failed: " << lfr.status() << "\n";
    return EXIT_FAILURE;
  }
  if (RunOn("LFR(n=200)", *lfr, rows) != 0) return EXIT_FAILURE;
  auto netsci = graph::MakeNetSciSurrogate();
  if (!netsci.ok()) {
    std::cerr << "NetSci surrogate failed: " << netsci.status() << "\n";
    return EXIT_FAILURE;
  }
  if (RunOn("NetSci", *netsci, rows) != 0) return EXIT_FAILURE;
  benchlib::MakeFigureTable(rows).PrintText(std::cout);
  return EXIT_SUCCESS;
}
