// Extension bench: the PATH approach with oracle transmission traces vs.
// TENDS with statuses only. The paper excludes PATH because exact path
// traces are practically unobtainable (Section II-B); the simulator can
// export the true transmission chains, so this bench shows the accuracy
// PATH would need that impossible oracle to reach — and what TENDS
// achieves from the far weaker status-only observations.

#include <cstdlib>
#include <iostream>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "common/timer.h"
#include "diffusion/propagation.h"
#include "graph/generators/lfr.h"
#include "inference/path.h"
#include "inference/tends.h"
#include "metrics/fscore.h"

int main() {
  using namespace tends;
  benchlib::PrintBenchHeader(
      "Ablation - PATH (oracle traces) vs TENDS (statuses only)",
      "LFR1-5, kappa=4, T=2, beta=150, alpha=0.15, mu=0.3; PATH consumes "
      "true transmission triples, TENDS only final statuses");
  Table table({"setting", "algorithm", "input", "f_score", "time_s"});
  for (uint32_t n : {100u, 200u, 300u}) {
    Rng graph_rng(1000 + n);
    auto truth_or = graph::GenerateLfr(
        graph::LfrOptions::FromPaperParams(n, 4, 2), graph_rng);
    if (!truth_or.ok()) {
      std::cerr << "LFR generation failed: " << truth_or.status() << "\n";
      return EXIT_FAILURE;
    }
    const graph::DirectedGraph& truth = *truth_or;
    Rng rng(42 + n);
    auto probabilities =
        diffusion::EdgeProbabilities::Gaussian(truth, 0.3, 0.05, rng);
    diffusion::SimulationConfig sim_config;
    auto observations =
        diffusion::Simulate(truth, probabilities, sim_config, rng);
    if (!observations.ok()) return EXIT_FAILURE;

    {
      inference::Tends tends;
      Timer timer;
      auto inferred = tends.Infer(*observations);
      double seconds = timer.ElapsedSeconds();
      if (!inferred.ok()) return EXIT_FAILURE;
      table.AddRow()
          .Add(StrFormat("n=%u", n))
          .Add("TENDS")
          .Add("final statuses")
          .AddDouble(metrics::EvaluateEdges(*inferred, truth).f_score)
          .AddDouble(seconds);
    }
    {
      inference::Path path({.num_edges = truth.num_edges()});
      Timer timer;
      auto inferred = path.Infer(*observations);
      double seconds = timer.ElapsedSeconds();
      if (!inferred.ok()) {
        std::cerr << "PATH failed: " << inferred.status() << "\n";
        return EXIT_FAILURE;
      }
      table.AddRow()
          .Add(StrFormat("n=%u", n))
          .Add("PATH")
          .Add("oracle transmission triples")
          .AddDouble(metrics::EvaluateEdges(*inferred, truth).f_score)
          .AddDouble(seconds);
    }
  }
  table.PrintText(std::cout);
  return EXIT_SUCCESS;
}
