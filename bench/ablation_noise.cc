// Extension bench: robustness of status-only inference to observation
// noise. The paper motivates TENDS with unreliable monitoring (incubation
// periods, missed detections) but evaluates on noiseless statuses; here we
// corrupt the final statuses with missed detections and false alarms and
// measure the F-score degradation of TENDS and the correlation baseline
// (the cascade-based baselines read timestamps, which this noise model
// does not perturb, so they are out of scope).

#include <cstdlib>
#include <iostream>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "diffusion/noise.h"
#include "diffusion/propagation.h"
#include "graph/generators/lfr.h"
#include "inference/correlation.h"
#include "inference/tends.h"
#include "metrics/fscore.h"

int main() {
  using namespace tends;
  benchlib::PrintBenchHeader(
      "Ablation - Robustness to Status Observation Noise",
      "LFR (n=200, kappa=4, T=2), beta=150, alpha=0.15, mu=0.3; statuses "
      "corrupted with symmetric miss/false-alarm rates 0%..20%");
  Rng graph_rng(6000);
  auto truth_or = graph::GenerateLfr(
      graph::LfrOptions::FromPaperParams(200, 4, 2), graph_rng);
  if (!truth_or.ok()) {
    std::cerr << "LFR generation failed: " << truth_or.status() << "\n";
    return EXIT_FAILURE;
  }
  const graph::DirectedGraph& truth = *truth_or;
  Rng rng(6001);
  auto probabilities =
      diffusion::EdgeProbabilities::Gaussian(truth, 0.3, 0.05, rng);
  diffusion::SimulationConfig sim_config;
  auto observations_or =
      diffusion::Simulate(truth, probabilities, sim_config, rng);
  if (!observations_or.ok()) {
    std::cerr << "simulation failed: " << observations_or.status() << "\n";
    return EXIT_FAILURE;
  }

  Table table({"noise_rate", "algorithm", "f_score", "precision", "recall"});
  for (double noise : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    Rng noise_rng(7000 + static_cast<uint64_t>(noise * 1000));
    auto noisy_or = diffusion::ApplyStatusNoise(
        observations_or->statuses,
        {.miss_probability = noise, .false_alarm_probability = noise},
        noise_rng);
    if (!noisy_or.ok()) {
      std::cerr << "noise injection failed: " << noisy_or.status() << "\n";
      return EXIT_FAILURE;
    }
    diffusion::DiffusionObservations noisy_observations;
    noisy_observations.statuses = std::move(noisy_or).value();

    inference::Tends tends;
    auto tends_result = tends.Infer(noisy_observations);
    if (!tends_result.ok()) return EXIT_FAILURE;
    metrics::EdgeMetrics tends_metrics =
        metrics::EvaluateEdges(*tends_result, truth);
    table.AddRow()
        .Add(StrFormat("%.2f", noise))
        .Add("TENDS")
        .AddDouble(tends_metrics.f_score)
        .AddDouble(tends_metrics.precision)
        .AddDouble(tends_metrics.recall);

    inference::CorrelationBaseline correlation(
        {.num_edges = truth.num_edges()});
    auto correlation_result = correlation.Infer(noisy_observations);
    if (!correlation_result.ok()) return EXIT_FAILURE;
    metrics::EdgeMetrics correlation_metrics =
        metrics::EvaluateEdges(*correlation_result, truth);
    table.AddRow()
        .Add(StrFormat("%.2f", noise))
        .Add("Correlation")
        .AddDouble(correlation_metrics.f_score)
        .AddDouble(correlation_metrics.precision)
        .AddDouble(correlation_metrics.recall);
  }
  table.PrintText(std::cout);
  return EXIT_SUCCESS;
}
