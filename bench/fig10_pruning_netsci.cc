// Reproduces Fig. 10: effect of the infection-MI-based pruning method on
// NetSci. TENDS is run with the pruning threshold scaled from 0.4*tau to
// 2.0*tau, plus a variant using traditional MI instead of infection MI
// (the paper's second ablation in the same figure).

#include <cstdlib>

#include "benchlib/pruning_sweep.h"
#include "graph/datasets.h"

int main() {
  using namespace tends;
  return benchlib::RunPruningSweepBench(
      "Fig. 10 - Effect of Infection MI-based Pruning on NetSci",
      graph::MakeNetSciSurrogate());
}
