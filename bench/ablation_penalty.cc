// Ablation of the statistical-error penalty in the scoring criterion
// (Eq. 12): with the penalty disabled the score reduces to the raw
// log-likelihood, which by Theorem 1 is monotone in the parent set — the
// search then over-adds parents and precision collapses. This bench
// quantifies that effect, motivating the paper's penalized criterion.

#include <cstdlib>
#include <iostream>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "graph/generators/lfr.h"

int main() {
  using namespace tends;
  benchlib::PrintBenchHeader(
      "Ablation - Statistical-Error Penalty of the Scoring Criterion",
      "TENDS with the Eq. 12 penalty vs. likelihood-only scoring on LFR1-3; "
      "beta=150, alpha=0.15, mu=0.3");
  const bool fast = benchlib::FastBenchMode();
  std::vector<std::pair<std::string,
                        std::vector<metrics::AlgorithmEvaluation>>> rows;
  for (uint32_t n : {100u, 150u, 200u}) {
    Rng rng(5000 + n);
    auto truth = graph::GenerateLfr(
        graph::LfrOptions::FromPaperParams(n, 4, 2), rng);
    if (!truth.ok()) {
      std::cerr << "LFR generation failed: " << truth.status() << "\n";
      return EXIT_FAILURE;
    }
    // At the auto threshold the pruned candidate sets are small and the
    // penalty rarely binds; the 0.5*tau rows show its real role — keeping
    // the parent sets in check when many candidates survive pruning.
    for (double tau_multiplier : {1.0, 0.5}) {
      for (bool use_penalty : {true, false}) {
        benchlib::ExperimentConfig config;
        config.seed = 77 + n;
        config.repetitions = fast ? 1 : 2;
        config.algorithms = {.tends = true,
                             .netrate = false,
                             .multree = false,
                             .lift = false};
        config.tends_options.tau_multiplier = tau_multiplier;
        config.tends_options.max_candidates = 32;
        config.tends_options.search.max_parents = 32;
        config.tends_options.search.use_penalty = use_penalty;
        auto evaluations = benchlib::RunExperiment(*truth, config);
        if (!evaluations.ok()) {
          std::cerr << "experiment failed: " << evaluations.status() << "\n";
          return EXIT_FAILURE;
        }
        rows.emplace_back(
            StrFormat("n=%u %.1f*tau %s", n, tau_multiplier,
                      use_penalty ? "penalized (Eq. 12)" : "likelihood-only"),
            std::move(evaluations).value());
      }
    }
  }
  benchlib::MakeFigureTable(rows).PrintText(std::cout);
  return EXIT_SUCCESS;
}
