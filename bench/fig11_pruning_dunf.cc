// Reproduces Fig. 11: effect of the infection-MI-based pruning method on
// DUNF (threshold sweep 0.4*tau .. 2.0*tau plus the traditional-MI
// variant).

#include <cstdlib>

#include "benchlib/pruning_sweep.h"
#include "graph/datasets.h"

int main() {
  using namespace tends;
  return benchlib::RunPruningSweepBench(
      "Fig. 11 - Effect of Infection MI-based Pruning on DUNF",
      graph::MakeDunfSurrogate());
}
