// Ablation of the NetRate optimization budget (DESIGN.md "NetRate
// optimization budget"): sweeps the EM iteration count from 1 to 100 on
// LFR1 and LFR5. The default budget (4) is calibrated to the accuracy band
// the paper reports for NetRate; the converged solver on clean
// discrete-round cascades is substantially stronger — this bench makes the
// calibration fully visible.

#include <cstdlib>
#include <iostream>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "graph/generators/lfr.h"

int main() {
  using namespace tends;
  benchlib::PrintBenchHeader(
      "Ablation - NetRate EM Iteration Budget",
      "NetRate best-threshold F-score vs. EM iterations on LFR (n=100, "
      "n=300); beta=150, alpha=0.15, mu=0.3. TENDS shown for reference.");
  const bool fast = benchlib::FastBenchMode();
  std::vector<std::pair<std::string,
                        std::vector<metrics::AlgorithmEvaluation>>> rows;
  for (uint32_t n : {100u, 300u}) {
    Rng rng(1000 + n);
    auto truth = graph::GenerateLfr(
        graph::LfrOptions::FromPaperParams(n, 4, 2), rng);
    if (!truth.ok()) {
      std::cerr << "LFR generation failed: " << truth.status() << "\n";
      return EXIT_FAILURE;
    }
    // TENDS reference row.
    {
      benchlib::ExperimentConfig config;
      config.seed = 42 + n;
      config.algorithms = {.tends = true,
                           .netrate = false,
                           .multree = false,
                           .lift = false};
      auto evaluations = benchlib::RunExperiment(*truth, config);
      if (!evaluations.ok()) return EXIT_FAILURE;
      rows.emplace_back(StrFormat("n=%u reference", n),
                        std::move(evaluations).value());
    }
    for (uint32_t iterations : {1u, 2u, 4u, 10u, 30u, 100u}) {
      if (fast && iterations > 10) continue;
      benchlib::ExperimentConfig config;
      config.seed = 42 + n;
      config.algorithms = {.tends = false,
                           .netrate = true,
                           .multree = false,
                           .lift = false};
      config.netrate_options.max_iterations = iterations;
      auto evaluations = benchlib::RunExperiment(*truth, config);
      if (!evaluations.ok()) {
        std::cerr << "experiment failed: " << evaluations.status() << "\n";
        return EXIT_FAILURE;
      }
      rows.emplace_back(StrFormat("n=%u em_iters=%u", n, iterations),
                        std::move(evaluations).value());
    }
  }
  benchlib::MakeFigureTable(rows).PrintText(std::cout);
  return EXIT_SUCCESS;
}
