// Reproduces Fig. 5 - Effect of Initial Infection Ratio on DUNF (beta=150, alpha=0.15, mu=0.3 unless swept).
// See DESIGN.md for the dataset surrogate substitution.

#include "benchlib/experiment.h"
#include "graph/datasets.h"

int main() {
  using namespace tends;
  return benchlib::RunDatasetSweepBench(
      "Fig. 5 - Effect of Initial Infection Ratio on DUNF",
      "4 algorithms, sweep over the listed values, other parameters per "
      "Section V-A",
      graph::MakeDunfSurrogate(), benchlib::SweepParameter::kAlpha,
      {0.05, 0.10, 0.15, 0.20, 0.25}, /*repetitions=*/1);
}
