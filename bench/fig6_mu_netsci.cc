// Reproduces Fig. 6 - Effect of Propagation Probability on NetSci (beta=150, alpha=0.15, mu=0.3 unless swept).
// See DESIGN.md for the dataset surrogate substitution.

#include "benchlib/experiment.h"
#include "graph/datasets.h"

int main() {
  using namespace tends;
  return benchlib::RunDatasetSweepBench(
      "Fig. 6 - Effect of Propagation Probability on NetSci",
      "4 algorithms, sweep over the listed values, other parameters per "
      "Section V-A",
      graph::MakeNetSciSurrogate(), benchlib::SweepParameter::kMu,
      {0.20, 0.25, 0.30, 0.35, 0.40}, /*repetitions=*/2);
}
