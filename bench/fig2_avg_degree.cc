// Reproduces Fig. 2: effect of the average node degree. Workload: LFR6-10
// (n = 200, kappa = 2..6, T = 2), beta = 150, alpha = 0.15, mu = 0.3.

#include <cstdlib>
#include <iostream>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "graph/generators/lfr.h"

int main() {
  using namespace tends;
  benchlib::PrintBenchHeader("Fig. 2 - Effect of Average Node Degree",
                             "LFR6-10, n=200, kappa in {2..6}, T=2, beta=150, "
                             "alpha=0.15, mu=0.3");
  const bool fast = benchlib::FastBenchMode();
  std::vector<std::pair<std::string,
                        std::vector<metrics::AlgorithmEvaluation>>> rows;
  int lfr_id = 6;
  for (double kappa : {2.0, 3.0, 4.0, 5.0, 6.0}) {
    Rng graph_rng(2000 + static_cast<uint64_t>(kappa * 10));
    auto truth_or = graph::GenerateLfr(
        graph::LfrOptions::FromPaperParams(200, kappa, 2.0), graph_rng);
    if (!truth_or.ok()) {
      std::cerr << "LFR generation failed: " << truth_or.status() << "\n";
      return EXIT_FAILURE;
    }
    benchlib::ExperimentConfig config;
    config.seed = 52 + static_cast<uint64_t>(kappa * 10);
    config.repetitions = fast ? 1 : 3;
    auto evaluations = benchlib::RunExperiment(*truth_or, config);
    if (!evaluations.ok()) {
      std::cerr << "experiment failed: " << evaluations.status() << "\n";
      return EXIT_FAILURE;
    }
    rows.emplace_back(StrFormat("LFR%d k=%.0f", lfr_id++, kappa),
                      std::move(evaluations).value());
  }
  benchlib::MakeFigureTable(rows).PrintText(std::cout);
  return EXIT_SUCCESS;
}
