// Reproduces Fig. 1: effect of diffusion network size on accuracy (F-score)
// and running time. Workload: LFR1-5 (n = 100..300, kappa = 4, T = 2),
// beta = 150, alpha = 0.15, mu = 0.3; algorithms: TENDS, NetRate, MulTree,
// LIFT.

#include <cstdlib>
#include <iostream>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "graph/generators/lfr.h"

int main() {
  using namespace tends;
  benchlib::PrintBenchHeader("Fig. 1 - Effect of Diffusion Network Size",
                             "LFR1-5, n in {100,150,200,250,300}, kappa=4, "
                             "T=2, beta=150, alpha=0.15, mu=0.3");
  const bool fast = benchlib::FastBenchMode();
  std::vector<std::pair<std::string,
                        std::vector<metrics::AlgorithmEvaluation>>> rows;
  int lfr_id = 1;
  for (uint32_t n : {100u, 150u, 200u, 250u, 300u}) {
    Rng graph_rng(1000 + n);
    auto truth_or = graph::GenerateLfr(
        graph::LfrOptions::FromPaperParams(n, /*kappa=*/4.0, /*t=*/2.0),
        graph_rng);
    if (!truth_or.ok()) {
      std::cerr << "LFR generation failed: " << truth_or.status() << "\n";
      return EXIT_FAILURE;
    }
    benchlib::ExperimentConfig config;
    config.seed = 42 + n;
    config.repetitions = fast ? 1 : 3;
    auto evaluations = benchlib::RunExperiment(*truth_or, config);
    if (!evaluations.ok()) {
      std::cerr << "experiment failed: " << evaluations.status() << "\n";
      return EXIT_FAILURE;
    }
    rows.emplace_back(StrFormat("LFR%d n=%u", lfr_id++, n),
                      std::move(evaluations).value());
  }
  benchlib::MakeFigureTable(rows).PrintText(std::cout);
  return EXIT_SUCCESS;
}
