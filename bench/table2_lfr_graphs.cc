// Reproduces Table II: properties of the LFR benchmark graphs LFR1-15.
// For each configuration (n, kappa, T) the generator is run and the
// realized node/edge counts and degree statistics are reported.

#include <cstdlib>
#include <iostream>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "common/table.h"
#include "graph/generators/lfr.h"
#include "graph/stats.h"

int main() {
  using namespace tends;
  benchlib::PrintBenchHeader(
      "Table II - LFR Benchmark Graphs",
      "LFR1-5: n in {100..300}, k=4, T=2; LFR6-10: n=200, k in {2..6}, T=2; "
      "LFR11-15: n=200, k=4, T in {1,1.5,2,2.5,3}");

  struct Config {
    int id;
    uint32_t n;
    double kappa;
    double t;
  };
  std::vector<Config> configs;
  int id = 1;
  for (uint32_t n : {100u, 150u, 200u, 250u, 300u}) {
    configs.push_back({id++, n, 4.0, 2.0});
  }
  for (double k : {2.0, 3.0, 4.0, 5.0, 6.0}) {
    configs.push_back({id++, 200, k, 2.0});
  }
  for (double t : {1.0, 1.5, 2.0, 2.5, 3.0}) {
    configs.push_back({id++, 200, 4.0, t});
  }

  Table table({"graph", "n", "kappa", "T", "edges_m", "avg_degree",
               "degree_mean", "degree_sd", "degree_max", "wcc"});
  for (const Config& config : configs) {
    Rng rng(7000 + config.id);
    auto graph = graph::GenerateLfr(
        graph::LfrOptions::FromPaperParams(config.n, config.kappa, config.t),
        rng);
    if (!graph.ok()) {
      std::cerr << "LFR" << config.id << " failed: " << graph.status() << "\n";
      return EXIT_FAILURE;
    }
    graph::GraphStats stats = graph::ComputeStats(*graph);
    table.AddRow()
        .Add(StrFormat("LFR%d", config.id))
        .AddInt(config.n)
        .AddDouble(config.kappa, 1)
        .AddDouble(config.t, 1)
        .AddInt(static_cast<int64_t>(stats.num_edges))
        .AddDouble(stats.average_degree, 2)
        .AddDouble(stats.mean_total_degree, 2)
        .AddDouble(stats.stddev_total_degree, 2)
        .AddInt(stats.max_total_degree)
        .AddInt(stats.num_weak_components);
  }
  table.PrintText(std::cout);
  return EXIT_SUCCESS;
}
