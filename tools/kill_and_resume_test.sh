#!/bin/sh
# Kill-and-resume integration test for the crash-safe checkpoint path.
#
# Part 1 (deterministic): a run cut short by an already-expired deadline
# must still flush its (empty-or-better) checkpoint and a resumed run must
# produce a network byte-identical to the uninterrupted baseline.
#
# Part 2 (the real crash): start `tends_cli infer` with per-node flushing,
# SIGKILL it the moment the checkpoint file appears, then resume. The
# atomic-rename write discipline guarantees the killed run left a complete,
# valid checkpoint; the resumed run must report
# tends.checkpoint.nodes_skipped_on_resume > 0 and reproduce the baseline
# bytes exactly. If the victim finishes before the kill lands (fast
# machine), the checkpoint is complete rather than partial — the resume
# assertions hold either way.
#
# Usage: kill_and_resume_test.sh <tends_cli-binary> <workdir>
set -eu

CLI="$1"
WORKDIR="$2"

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
cd "$WORKDIR"

# A workload big enough that the victim run cannot finish instantly but
# small enough to keep the test snappy.
"$CLI" generate --type=er --n=120 --num_edges=480 --out=graph.txt --seed=11 \
  > gen.out 2>&1
"$CLI" simulate --graph=graph.txt --model=ic --beta=400 --out=cascades.tsv \
  --statuses_out=statuses.tsv --seed=11 > sim.out 2>&1

# Uninterrupted baseline.
"$CLI" infer --algorithm=tends --statuses=statuses.tsv --out=net_base.tsv \
  --threads=2 > base.out 2>&1

# --- Part 1: deadline expiry flushes best-so-far, resume completes -------
"$CLI" infer --algorithm=tends --statuses=statuses.tsv --out=net_cut.tsv \
  --threads=1 --deadline_ms=1 --checkpoint_dir=ck_deadline \
  --checkpoint_every_nodes=1 > cut.out 2>&1
"$CLI" infer --algorithm=tends --statuses=statuses.tsv --out=net_done.tsv \
  --threads=2 --checkpoint_dir=ck_deadline --resume \
  --metrics_out=resume_deadline.json > done.out 2>&1
cmp net_base.tsv net_done.tsv || {
  echo "resume after deadline expiry diverged from the baseline" >&2
  exit 1
}

# --- Part 2: SIGKILL mid-run, then resume --------------------------------
"$CLI" infer --algorithm=tends --statuses=statuses.tsv --out=net_killed.tsv \
  --threads=1 --checkpoint_dir=ck_kill --checkpoint_every_nodes=1 \
  > killed.out 2>&1 &
VICTIM=$!

# Kill as soon as the first flush lands (the file only ever exists in
# complete, renamed-into-place form). Give up waiting after ~5s.
TRIES=0
while [ ! -f ck_kill/tends.checkpoint ] && [ "$TRIES" -lt 500 ]; do
  kill -0 "$VICTIM" 2>/dev/null || break
  sleep 0.01
  TRIES=$((TRIES + 1))
done
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true

if [ ! -f ck_kill/tends.checkpoint ]; then
  echo "victim run never produced a checkpoint file" >&2
  exit 1
fi

"$CLI" infer --algorithm=tends --statuses=statuses.tsv --out=net_resumed.tsv \
  --threads=2 --checkpoint_dir=ck_kill --resume --verbose \
  --metrics_out=resume_kill.json > resumed.out 2>&1 || {
  echo "resume after SIGKILL failed:" >&2
  cat resumed.out >&2
  exit 1
}

cmp net_base.tsv net_resumed.tsv || {
  echo "resume after SIGKILL diverged from the baseline" >&2
  exit 1
}

# The diagnostics JSON (--verbose) always carries the resume count; the
# manifest counter exists only when instrumentation is compiled in.
grep -q '"nodes_resumed": *[1-9]' resumed.out || {
  echo "expected nodes_resumed > 0 after resume, diagnostics say:" >&2
  grep 'nodes_resumed' resumed.out >&2 || true
  exit 1
}
if grep -q '"metrics_enabled": *true' resume_kill.json; then
  grep -q '"tends.checkpoint.nodes_skipped_on_resume": *[1-9]' resume_kill.json || {
    echo "expected tends.checkpoint.nodes_skipped_on_resume > 0, manifest says:" >&2
    grep 'nodes_skipped_on_resume' resume_kill.json >&2 || true
    exit 1
  }
fi

echo "kill-and-resume: OK (resumed run byte-identical to baseline)"
