#!/bin/sh
# Scaling smoke for the sparse candidate pipeline.
#
# At n=20000 a dense run would allocate two n^2 double matrices (~3.2 GB
# each); this test proves the sparse mode never does. It runs the full
# generate -> simulate -> infer pipeline with --candidate_mode=sparse and
# asserts from the --verbose memory gauges that
#   (a) no dense artifact gauge (imi_matrix_bytes / pair_counts_bytes) was
#       ever registered, and
#   (b) the sparse index stayed at least 10x below the dense n^2*8 floor.
# A second leg cuts the run with an expired deadline, then resumes from
# the flushed checkpoint with sparse mode and requires the resumed network
# to be byte-identical to the uninterrupted baseline.
#
# Usage: sparse_scaling_test.sh <tends_cli-binary> <workdir>
set -eu

CLI="$1"
WORKDIR="$2"

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
cd "$WORKDIR"

N=20000

"$CLI" generate --type=powerlaw --n=$N --avg_degree=3 --out=graph.txt \
  --seed=7 > gen.out 2>&1
# Low alpha keeps cascades sparse, which is the regime the inverted index
# is built for (and keeps the smoke fast).
"$CLI" simulate --graph=graph.txt --model=ic --beta=96 --alpha=0.0025 \
  --out=cascades.tsv --statuses_out=statuses.tsv --seed=7 > sim.out 2>&1

# --- Leg 1: uninterrupted sparse run, memory-shape assertions ------------
"$CLI" infer --algorithm=tends --statuses=statuses.tsv --out=net_base.tsv \
  --candidate_mode=sparse --max_candidates=8 --allow_degenerate_columns --threads=4 --verbose \
  --metrics_out=metrics.json > base.out 2>&1

MEMLINE=$(grep '^memory:' base.out || true)
if [ -z "$MEMLINE" ]; then
  echo "no memory gauge line in --verbose output" >&2
  exit 1
fi

if grep -q '"metrics_enabled": *true' metrics.json; then
  case "$MEMLINE" in
    *imi_matrix_bytes=*)
      echo "sparse run registered the dense IMI matrix gauge: $MEMLINE" >&2
      exit 1 ;;
  esac
  case "$MEMLINE" in
    *pair_counts_bytes=*)
      echo "sparse run registered the dense pair-count gauge: $MEMLINE" >&2
      exit 1 ;;
  esac
  for gauge in sparse_index_bytes sparse_inverted_index_bytes \
               marginal_counts_bytes packed_statuses_bytes; do
    case "$MEMLINE" in
      *"$gauge"=*) ;;
      *)
        echo "sparse run is missing the $gauge gauge: $MEMLINE" >&2
        exit 1 ;;
    esac
  done

  SPARSE_BYTES=$(printf '%s\n' "$MEMLINE" \
    | sed -n 's/.*sparse_index_bytes=\([0-9][0-9]*\).*/\1/p')
  DENSE_FLOOR=$((N * N * 8 / 10))
  if [ "$SPARSE_BYTES" -ge "$DENSE_FLOOR" ]; then
    echo "sparse index is $SPARSE_BYTES bytes, not 10x below the dense" \
         "n^2*8 footprint (floor $DENSE_FLOOR)" >&2
    exit 1
  fi

  # The counting instrumentation must have actually run (and skipped the
  # zero-co-infection bulk rather than visiting every ordered pair).
  grep -q '"tends.counting.pairs_visited": *[1-9]' metrics.json || {
    echo "expected tends.counting.pairs_visited > 0 in metrics.json" >&2
    exit 1
  }
  grep -q '"tends.counting.pairs_skipped": *[1-9]' metrics.json || {
    echo "expected tends.counting.pairs_skipped > 0 in metrics.json" >&2
    exit 1
  }
else
  echo "metrics compiled out; skipping gauge-shape assertions" >&2
fi

# --- Leg 2: SIGKILL mid-run + sparse resume is byte-identical ------------
# Kill the single-threaded victim as soon as its first checkpoint flush
# lands (the file only ever exists in complete, renamed-into-place form).
# If the victim finishes before the kill, the checkpoint is complete
# rather than partial — the resume assertions hold either way.
"$CLI" infer --algorithm=tends --statuses=statuses.tsv --out=net_killed.tsv \
  --candidate_mode=sparse --max_candidates=8 --allow_degenerate_columns \
  --threads=1 --checkpoint_dir=ck --checkpoint_every_nodes=64 \
  > killed.out 2>&1 &
VICTIM=$!
TRIES=0
while [ ! -f ck/tends.checkpoint ] && [ "$TRIES" -lt 2000 ]; do
  kill -0 "$VICTIM" 2>/dev/null || break
  sleep 0.01
  TRIES=$((TRIES + 1))
done
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true
if [ ! -f ck/tends.checkpoint ]; then
  echo "killed sparse run never flushed a checkpoint" >&2
  exit 1
fi
"$CLI" infer --algorithm=tends --statuses=statuses.tsv --out=net_resumed.tsv \
  --candidate_mode=sparse --max_candidates=8 --allow_degenerate_columns \
  --threads=4 --checkpoint_dir=ck --resume > resumed.out 2>&1
cmp net_base.tsv net_resumed.tsv || {
  echo "sparse resume diverged from the uninterrupted sparse baseline" >&2
  exit 1
}

echo "sparse-scaling: OK (n=$N sparse run, no dense gauges, resume identical)"
