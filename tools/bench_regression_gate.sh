#!/bin/sh
# Bench regression gate: runs one bench through bench_smoke.sh (fast mode,
# JSON channel on, schema-validated), diffs the emitted tends.bench.v1
# record against a checked-in baseline with bench_compare, and then
# self-tests the gate by perturbing the candidate's accuracy numbers —
# the perturbed file MUST fail bench_compare, proving the gate can
# actually catch a regression and is not vacuously green.
#
# Accuracy rows are bit-deterministic for a fixed seed, so the default
# bench_compare thresholds gate f_score/precision/recall/edges tightly;
# wall-clock and RSS stay ungated (machine-dependent).
#
# Usage: bench_regression_gate.sh <bench-binary> <validate_bench_json-binary> \
#          <bench_compare-binary> <workdir> <baseline.json>
set -eu

BENCH_BIN="$1"
VALIDATOR="$2"
COMPARE="$3"
WORKDIR="$4"
BASELINE="$5"

if [ ! -f "$BASELINE" ]; then
  echo "baseline not found: $BASELINE" >&2
  exit 1
fi

SMOKE="$(dirname "$0")/bench_smoke.sh"
sh "$SMOKE" "$BENCH_BIN" "$VALIDATOR" "$WORKDIR"

set -- "$WORKDIR"/BENCH_*.json
if [ "$#" -ne 1 ] || [ ! -f "$1" ]; then
  echo "expected exactly one BENCH_*.json in $WORKDIR, got: $*" >&2
  exit 1
fi
CANDIDATE="$1"

"$COMPARE" "$BASELINE" "$CANDIDATE"

# Self-test: zero out every f_score; bench_compare must now exit nonzero.
PERTURBED="$WORKDIR/perturbed.json"
sed -E 's/"f_score":[0-9.eE+-]+/"f_score":0/g' "$CANDIDATE" > "$PERTURBED"
if "$COMPARE" "$BASELINE" "$PERTURBED" > /dev/null 2>&1; then
  echo "gate self-test failed: perturbed candidate passed bench_compare" >&2
  exit 1
fi

echo "regression gate ok: $CANDIDATE matches $BASELINE"
