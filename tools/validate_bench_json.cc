// Validates a bench JSON file against the tends.bench.v1 schema written by
// benchlib::MaybeWriteBenchJson: top-level {schema, title, git, rows[],
// memory{}}, each row {setting, algorithm, f_score, precision, recall,
// seconds, edges, peak_rss_bytes}, memory {peak_rss_bytes, artifacts{}}.
// Used by the bench smoke ctest (bench/CMakeLists.txt) so schema drift
// between the writer and downstream consumers of the bench trajectory
// (tools/bench_compare and the regression gate) fails CI instead of
// silently corrupting the record.
//
// Usage: validate_bench_json <file.json> [<file.json> ...]
// Exit code 0 when every file validates; 1 otherwise, with one line per
// violation on stderr.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/json.h"

namespace {

using tends::JsonValue;

bool IsFiniteNumber(const JsonValue* value) {
  return value != nullptr && value->type() == JsonValue::Type::kNumber;
}

bool IsNonEmptyString(const JsonValue* value) {
  return value != nullptr && value->type() == JsonValue::Type::kString &&
         !value->string_value().empty();
}

int ValidateFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  auto parsed = tends::ParseJson(buffer.str());
  if (!parsed.ok()) {
    std::cerr << path << ": parse error: " << parsed.status() << "\n";
    return 1;
  }
  const JsonValue& root = *parsed;
  int errors = 0;
  auto fail = [&](const std::string& message) {
    std::cerr << path << ": " << message << "\n";
    ++errors;
  };

  if (!root.is_object()) {
    fail("top level is not an object");
    return 1;
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->string_value() != "tends.bench.v1") {
    fail("schema is not \"tends.bench.v1\"");
  }
  if (!IsNonEmptyString(root.Find("title"))) fail("missing title");
  if (!IsNonEmptyString(root.Find("git"))) fail("missing git describe");

  const JsonValue* rows = root.Find("rows");
  if (rows == nullptr || !rows->is_array()) {
    fail("missing rows array");
    return 1;
  }
  if (rows->array().empty()) fail("rows array is empty");
  size_t index = 0;
  for (const JsonValue& row : rows->array()) {
    const std::string prefix = "rows[" + std::to_string(index++) + "]: ";
    if (!row.is_object()) {
      fail(prefix + "not an object");
      continue;
    }
    if (!IsNonEmptyString(row.Find("setting"))) fail(prefix + "bad setting");
    if (!IsNonEmptyString(row.Find("algorithm"))) {
      fail(prefix + "bad algorithm");
    }
    for (const char* key : {"f_score", "precision", "recall", "seconds"}) {
      const JsonValue* value = row.Find(key);
      if (!IsFiniteNumber(value)) {
        fail(prefix + "missing numeric " + key);
      } else if (value->number_value() < 0.0) {
        fail(prefix + "negative " + key);
      }
    }
    const JsonValue* edges = row.Find("edges");
    if (!IsFiniteNumber(edges) || edges->int_value() < 0) {
      fail(prefix + "missing non-negative edges");
    }
    const JsonValue* row_peak = row.Find("peak_rss_bytes");
    if (!IsFiniteNumber(row_peak) || row_peak->int_value() < 0) {
      fail(prefix + "missing non-negative peak_rss_bytes");
    }
  }

  const JsonValue* memory = root.Find("memory");
  if (memory == nullptr || !memory->is_object()) {
    fail("missing memory object");
  } else {
    const JsonValue* peak = memory->Find("peak_rss_bytes");
    if (!IsFiniteNumber(peak) || peak->int_value() < 0) {
      fail("memory: missing non-negative peak_rss_bytes");
    }
    const JsonValue* artifacts = memory->Find("artifacts");
    if (artifacts == nullptr || !artifacts->is_object()) {
      fail("memory: missing artifacts object");
    } else {
      for (const auto& [name, value] : artifacts->object()) {
        if (name.rfind("tends.mem.", 0) != 0) {
          fail("memory.artifacts: unexpected key " + name);
        }
        if (value.type() != JsonValue::Type::kNumber ||
            value.int_value() < 0) {
          fail("memory.artifacts: non-numeric " + name);
        }
      }
    }
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: validate_bench_json <file.json> [...]\n";
    return 1;
  }
  int status = 0;
  for (int a = 1; a < argc; ++a) {
    status |= ValidateFile(argv[a]);
    if (status == 0) std::cout << argv[a] << ": ok\n";
  }
  return status;
}
