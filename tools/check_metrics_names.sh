#!/bin/sh
# Lints every metric-name string literal in the source tree against the
# naming scheme enforced at runtime by IsValidMetricName():
#
#   tends.<module>.<name>[.<subname>...]
#
# i.e. at least three dot-separated segments, each [a-z0-9_]+, first
# segment exactly "tends". The lint catches misspelled names at review
# time instead of at runtime (an invalid name would silently register a
# metric nobody aggregates).
#
# Usage: check_metrics_names.sh [source_root]
# Exits non-zero and prints offenders if any literal fails the scheme.

set -u
root="${1:-$(dirname "$0")/..}"

# Every string literal starting with "tends." that is the name argument of
# a registry/macro call site. We scan both src/ and tools/; tests may use
# deliberately-invalid names to test the validator, so they are excluded.
candidates=$(grep -rhoE \
    '(GetCounter|GetGauge|GetHistogram|CounterValue|TENDS_METRIC_COUNTER|TENDS_METRIC_ADD|TENDS_METRIC_RECORD|TENDS_GAUGE_SET)\([^)]*"tends\.[^"]*"' \
    "$root/src" "$root/tools" --include='*.cc' --include='*.h' \
  | grep -oE '"tends\.[^"]*"' | tr -d '"' | sort -u)

bad=0
for name in $candidates; do
  case "$name" in
    tends.*.*)
      if ! printf '%s\n' "$name" | grep -qE '^tends(\.[a-z0-9_]+){2,}$'; then
        echo "BAD METRIC NAME: $name (segments must be [a-z0-9_]+)" >&2
        bad=1
      fi
      ;;
    *)
      echo "BAD METRIC NAME: $name (need tends.<module>.<name>)" >&2
      bad=1
      ;;
  esac
done

# Canonical names the pipeline documents and the dashboards key on: if one
# goes missing from the scan, either the instrumentation was dropped or it
# was renamed without updating this list (both review-worthy).
required_names="
tends.sim.processes
tends.sim.infections
tends.sim.cascade_size
tends.sim.fast_path_runs
tends.session.artifact_hits
tends.session.artifact_misses
tends.session.appends
tends.session.append_processes
tends.session.append_ns
tends.session.dirty_nodes
tends.checkpoint.nodes_saved
tends.checkpoint.nodes_skipped_on_resume
tends.checkpoint.retries
tends.checkpoint.flushes
tends.checkpoint.flush_ns
tends.mem.peak_rss_bytes
tends.mem.current_rss_bytes
tends.mem.status_matrix_bytes
tends.mem.packed_statuses_bytes
tends.mem.pair_counts_bytes
tends.mem.imi_matrix_bytes
tends.mem.marginal_counts_bytes
tends.mem.sparse_index_bytes
tends.mem.sparse_inverted_index_bytes
tends.mem.checkpoint_buffer_bytes
tends.counting.pairs_visited
tends.counting.pairs_skipped
tends.parent_search.cube_nodes
tends.parent_search.packed_nodes
tends.parent_search.cube_build_ns
tends.trace.dropped_spans
"
for name in $required_names; do
  if ! printf '%s\n' "$candidates" | grep -qxF "$name"; then
    echo "MISSING METRIC: $name not found at any call site" >&2
    bad=1
  fi
done

# Names assembled at runtime (e.g. "tends.io.corruption." + kind) end with
# a dot in the source literal; the runtime validator covers those. Nothing
# to do here, but make sure the scan found the instrumentation at all: an
# empty candidate set means the grep went stale and the lint is vacuous.
count=$(printf '%s\n' "$candidates" | grep -c . || true)
if [ "$count" -lt 10 ]; then
  echo "LINT STALE: only $count metric literals found; expected >= 10" >&2
  exit 2
fi

if [ "$bad" -ne 0 ]; then
  exit 1
fi
echo "OK: $count metric name literals conform to tends.<module>.<name>"
exit 0
