// tends_cli: command-line front end for the library. Subcommands cover the
// whole workflow:
//
//   tends_cli generate  --type=lfr --n=200 --out=graph.txt
//   tends_cli simulate  --graph=graph.txt --beta=150 --out=obs.txt
//   tends_cli infer     --algorithm=tends --statuses=st.txt --out=net.txt
//   tends_cli append    --statuses=st.txt --chunks=c1.txt,c2.txt --out=net.txt
//   tends_cli evaluate  --inferred=net.txt --truth=graph.txt
//   tends_cli estimate  --statuses=st.txt --network=net.txt
//   tends_cli report    run.json --compare=baseline.json
//
// Run any subcommand with --help for its flags.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "benchlib/experiment.h"
#include "common/flags.h"
#include "common/io_hardening.h"
#include "common/json.h"
#include "common/memory_stats.h"
#include "common/metrics.h"
#include "common/trace_export.h"
#include "common/random.h"
#include "common/run_context.h"
#include "common/stringutil.h"
#include "diffusion/io.h"
#include "diffusion/noise.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "graph/datasets.h"
#include "graph/generators/barabasi_albert.h"
#include "graph/generators/configuration.h"
#include "graph/generators/erdos_renyi.h"
#include "graph/generators/lfr.h"
#include "graph/generators/powerlaw.h"
#include "graph/generators/watts_strogatz.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "inference/correlation.h"
#include "inference/io.h"
#include "inference/lift.h"
#include "inference/multree.h"
#include "inference/netinf.h"
#include "inference/netrate.h"
#include "inference/path.h"
#include "inference/probability_estimation.h"
#include "inference/session.h"
#include "inference/tends.h"
#include "metrics/fscore.h"

namespace tends::cli {
namespace {

int FailWith(const Status& status) {
  if (status.IsNotFound()) {
    // --help: the message is the usage text.
    std::cout << status.message() << "\n";
    return 0;
  }
  std::cerr << "error: " << status << "\n";
  return 1;
}

/// Shared --metrics_out handling: samples end-of-run process stats (peak
/// RSS, dropped spans) into the registry, fills the manifest wall-clock
/// from `started` and writes the JSON file (a failure to write the
/// manifest fails the command — silent loss of requested output is worse).
Status MaybeWriteManifest(const std::string& metrics_out, RunManifest manifest,
                          MetricsRegistry& registry,
                          std::chrono::steady_clock::time_point started) {
  if (metrics_out.empty()) return Status::OK();
  RecordRunStats(&registry);
  manifest.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - started)
          .count();
  Status status = WriteMetricsManifest(manifest, registry, metrics_out);
  if (status.ok()) std::cout << "wrote " << metrics_out << "\n";
  return status;
}

/// Shared --trace_out handling: exports the registry's buffered spans as a
/// Chrome-trace JSON timeline (common/trace_export.h). Snapshot-based, so
/// a manifest written before or after still sees every span.
Status MaybeWriteTrace(const std::string& trace_out,
                       const RunManifest& manifest,
                       const MetricsRegistry& registry) {
  if (trace_out.empty()) return Status::OK();
  TraceExportMeta meta;
  meta.tool = manifest.tool;
  meta.config = manifest.config;
  Status status = WriteChromeTraceFile(meta, registry.tracer(), trace_out);
  if (status.ok()) std::cout << "wrote " << trace_out << "\n";
  return status;
}

/// Registers the canonical `--threads` flag on `parser`. (The long-
/// deprecated `--num_threads` alias has been removed after its one-release
/// grace period; it now fails parsing like any unknown flag.)
void AddThreadsFlag(FlagParser& parser, uint32_t* threads) {
  parser.AddUint32("threads", threads,
                   "worker threads (diffusion processes in simulate, "
                   "per-node subproblems in infer/sweep/append/experiment)");
}

/// Parses the shared `--candidate_mode` spelling of infer/sweep.
Status ParseCandidateModeFlag(const std::string& mode,
                              inference::CandidateMode* out) {
  if (mode == "dense") {
    *out = inference::CandidateMode::kDense;
  } else if (mode == "sparse") {
    *out = inference::CandidateMode::kSparse;
  } else {
    return Status::InvalidArgument(
        "--candidate_mode must be 'dense' or 'sparse', got '" + mode + "'");
  }
  return Status::OK();
}

/// Parses the shared `--scoring_strategy` spelling of infer/sweep/append.
Status ParseScoringStrategyFlag(const std::string& strategy,
                                inference::ScoringStrategy* out) {
  if (strategy == "auto") {
    *out = inference::ScoringStrategy::kAuto;
  } else if (strategy == "packed") {
    *out = inference::ScoringStrategy::kPacked;
  } else if (strategy == "cube") {
    *out = inference::ScoringStrategy::kCube;
  } else {
    return Status::InvalidArgument(
        "--scoring_strategy must be 'auto', 'packed' or 'cube', got '" +
        strategy + "'");
  }
  return Status::OK();
}

/// Registers the shared scoring-strategy flags of infer/sweep/append.
void AddScoringStrategyFlags(FlagParser& parser, std::string* strategy,
                             uint32_t* max_cube_candidates) {
  parser.AddString("scoring_strategy", strategy,
                   "tends: how greedy scores obtain their statistics — "
                   "'auto' (per-node cost model, default), 'packed' (column "
                   "word scans), 'cube' (per-node contingency cube; falls "
                   "back to packed when the candidate set exceeds the cube "
                   "caps); all produce byte-identical networks");
  parser.AddUint32("max_cube_candidates", max_cube_candidates,
                   "tends: largest candidate set a per-node contingency "
                   "cube may cover (cube cells are 2^|C| x 2 counters); "
                   "larger sets use packed scans");
}

/// Parses the shared `--model` spelling of simulate/experiment.
Status ParseModelFlag(const std::string& model,
                      diffusion::DiffusionModel* out) {
  if (model == "ic") {
    *out = diffusion::DiffusionModel::kIndependentCascade;
  } else if (model == "lt") {
    *out = diffusion::DiffusionModel::kLinearThreshold;
  } else if (model == "sir") {
    *out = diffusion::DiffusionModel::kSir;
  } else {
    return Status::InvalidArgument("model must be ic, lt or sir");
  }
  return Status::OK();
}

// ------------------------------------------------------------------ generate

int RunGenerate(int argc, const char* const* argv) {
  std::string type = "lfr";
  std::string out = "graph.txt";
  uint32_t n = 200;
  double avg_degree = 4.0;
  double t = 2.0;
  double mixing = 0.2;
  double probability = 0.05;
  uint32_t edges_per_node = 2;
  uint32_t neighbors = 2;
  double rewire = 0.1;
  int64_t num_edges = 800;
  uint32_t communities = 10;
  double intra = 0.9;
  double reciprocal = 0.0;
  double exponent = 2.5;
  uint32_t min_degree = 1;
  uint32_t max_degree = 0;
  int64_t seed = 42;

  FlagParser parser(
      "tends_cli generate: write a synthetic diffusion network as an edge "
      "list.\nTypes: lfr, er (G(n,m)), ba, ws, chunglu, powerlaw, netsci, "
      "dunf.");
  parser.AddString("type", &type, "generator type");
  parser.AddString("out", &out, "output edge-list path");
  parser.AddUint32("n", &n, "number of nodes");
  parser.AddDouble("avg_degree", &avg_degree,
                   "lfr/powerlaw: target average degree");
  parser.AddDouble("t", &t, "lfr: paper's degree-dispersion parameter T");
  parser.AddDouble("mixing", &mixing, "lfr: cross-community edge fraction");
  parser.AddDouble("probability", &probability, "er: unused; ws: unused");
  parser.AddInt64("num_edges", &num_edges, "er/chunglu: exact edge count");
  parser.AddUint32("edges_per_node", &edges_per_node, "ba: attachments/node");
  parser.AddUint32("neighbors", &neighbors, "ws: ring neighbors per side");
  parser.AddDouble("rewire", &rewire, "ws: rewiring probability");
  parser.AddUint32("communities", &communities, "chunglu: community count");
  parser.AddDouble("intra", &intra, "chunglu: intra-community fraction");
  parser.AddDouble("reciprocal", &reciprocal,
                   "chunglu/powerlaw: mutual-pair edge fraction");
  parser.AddDouble("exponent", &exponent,
                   "powerlaw: degree-distribution exponent");
  parser.AddUint32("min_degree", &min_degree, "powerlaw: degree lower bound");
  parser.AddUint32("max_degree", &max_degree,
                   "powerlaw: degree upper bound (0 = structural cutoff "
                   "sqrt(n * avg_degree))");
  parser.AddInt64("seed", &seed, "random seed");
  Status status = parser.Parse(argc, argv);
  if (!status.ok()) return FailWith(status);

  Rng rng(static_cast<uint64_t>(seed));
  StatusOr<graph::DirectedGraph> result =
      Status::InvalidArgument("unknown generator type: " + type);
  if (type == "lfr") {
    graph::LfrOptions options =
        graph::LfrOptions::FromPaperParams(n, avg_degree, t);
    options.mixing = mixing;
    result = graph::GenerateLfr(options, rng);
  } else if (type == "er") {
    result = graph::GenerateErdosRenyiM(n, static_cast<uint64_t>(num_edges),
                                        rng);
  } else if (type == "ba") {
    result = graph::GenerateBarabasiAlbert(
        {.num_nodes = n, .edges_per_node = edges_per_node}, rng);
  } else if (type == "ws") {
    result = graph::GenerateWattsStrogatz({.num_nodes = n,
                                           .neighbors_each_side = neighbors,
                                           .rewire_probability = rewire},
                                          rng);
  } else if (type == "chunglu") {
    graph::ChungLuCommunityOptions options;
    options.num_nodes = n;
    options.num_edges = static_cast<uint64_t>(num_edges);
    options.num_communities = communities;
    options.intra_fraction = intra;
    options.reciprocal_fraction = reciprocal;
    result = graph::GenerateChungLuCommunity(options, rng);
  } else if (type == "powerlaw") {
    graph::PowerlawOptions options;
    options.num_nodes = n;
    options.exponent = exponent;
    options.avg_degree = avg_degree;
    options.min_degree = min_degree;
    options.max_degree = max_degree;
    options.reciprocal_fraction = reciprocal;
    result = graph::GeneratePowerlawHavelHakimi(options, rng);
  } else if (type == "netsci") {
    result = graph::MakeNetSciSurrogate();
  } else if (type == "dunf") {
    result = graph::MakeDunfSurrogate();
  }
  if (!result.ok()) return FailWith(result.status());
  status = graph::WriteEdgeListFile(*result, out);
  if (!status.ok()) return FailWith(status);
  std::cout << graph::ComputeStats(*result).DebugString() << "\n"
            << "wrote " << out << "\n";
  return 0;
}

// ------------------------------------------------------------------ simulate

int RunSimulate(int argc, const char* const* argv) {
  std::string graph_path = "graph.txt";
  std::string out = "observations.txt";
  std::string statuses_out;
  std::string model = "ic";
  std::string metrics_out;
  std::string trace_out;
  uint32_t beta = 150;
  double alpha = 0.15;
  double mu = 0.3;
  double stddev = 0.05;
  double miss = 0.0;
  double false_alarm = 0.0;
  double recovery = 0.5;
  int64_t seed = 42;
  uint32_t threads = 1;

  FlagParser parser(
      "tends_cli simulate: run diffusion processes on a graph and record "
      "observations (Section V-A setup).");
  parser.AddString("graph", &graph_path, "input edge-list path");
  parser.AddString("out", &out, "output observations path (cascades)");
  parser.AddString("statuses_out", &statuses_out,
                   "optional output path for the status-only matrix");
  parser.AddString("model", &model, "diffusion model: ic, lt or sir");
  parser.AddUint32("beta", &beta, "number of diffusion processes");
  parser.AddDouble("alpha", &alpha, "initial infection ratio");
  parser.AddDouble("mu", &mu, "mean propagation probability");
  parser.AddDouble("stddev", &stddev, "propagation probability stddev");
  parser.AddDouble("recovery", &recovery,
                   "sir: per-round recovery probability (geometric "
                   "infectious period)");
  parser.AddDouble("miss", &miss, "status noise: missed-detection rate");
  parser.AddDouble("false_alarm", &false_alarm,
                   "status noise: false-alarm rate");
  parser.AddString("metrics_out", &metrics_out,
                   "write a JSON run manifest for the simulation");
  parser.AddString("trace_out", &trace_out,
                   "write a Chrome-trace JSON timeline of the run's spans "
                   "(open in Perfetto or chrome://tracing)");
  parser.AddInt64("seed", &seed, "random seed");
  AddThreadsFlag(parser, &threads);
  Status status = parser.Parse(argc, argv);
  if (!status.ok()) return FailWith(status);

  const auto started = std::chrono::steady_clock::now();
  MetricsRegistry registry;

  auto truth = graph::ReadEdgeListFile(graph_path);
  if (!truth.ok()) return FailWith(truth.status());
  Rng rng(static_cast<uint64_t>(seed));
  auto probabilities =
      diffusion::EdgeProbabilities::Gaussian(*truth, mu, stddev, rng);
  diffusion::SimulationConfig config;
  config.num_processes = beta;
  config.initial_infection_ratio = alpha;
  config.sir_recovery_probability = recovery;
  config.num_threads = threads;
  status = ParseModelFlag(model, &config.model);
  if (!status.ok()) return FailWith(status);
  auto observations =
      diffusion::Simulate(*truth, probabilities, config, rng, &registry);
  if (!observations.ok()) return FailWith(observations.status());
  if (miss > 0.0 || false_alarm > 0.0) {
    auto noisy = diffusion::ApplyStatusNoise(
        observations->statuses,
        {.miss_probability = miss, .false_alarm_probability = false_alarm},
        rng);
    if (!noisy.ok()) return FailWith(noisy.status());
    observations->statuses = std::move(noisy).value();
  }
  status = diffusion::WriteObservationsFile(*observations, out);
  if (!status.ok()) return FailWith(status);
  std::cout << "wrote " << out << " (" << beta << " processes)\n";
  if (!statuses_out.empty()) {
    status = diffusion::WriteStatusMatrixFile(observations->statuses,
                                              statuses_out);
    if (!status.ok()) return FailWith(status);
    std::cout << "wrote " << statuses_out << "\n";
  }
  RunManifest manifest;
  manifest.tool = "tends_cli simulate";
  manifest.config = {
      {"graph", graph_path},
      {"model", model},
      {"beta", StrFormat("%u", beta)},
      {"alpha", StrFormat("%g", alpha)},
      {"mu", StrFormat("%g", mu)},
      {"recovery", StrFormat("%g", recovery)},
      {"seed", StrFormat("%lld", static_cast<long long>(seed))},
      {"threads", StrFormat("%u", threads)},
  };
  status = MaybeWriteTrace(trace_out, manifest, registry);
  if (!status.ok()) return FailWith(status);
  status = MaybeWriteManifest(metrics_out, std::move(manifest), registry,
                              started);
  if (!status.ok()) return FailWith(status);
  return 0;
}

// --------------------------------------------------------------------- infer

int RunInfer(int argc, const char* const* argv) {
  std::string algorithm = "tends";
  std::string observations_path;
  std::string statuses_path;
  std::string out = "inferred.txt";
  std::string io_mode = "strict";
  std::string metrics_out;
  std::string trace_out;
  std::string counting_kernel = "packed";
  std::string candidate_mode = "dense";
  std::string scoring_strategy = "auto";
  std::string checkpoint_dir;
  int64_t num_edges = 0;
  int64_t deadline_ms = 0;
  int64_t progress_ms = 1000;
  int64_t checkpoint_every_ms = 2000;
  double tau_multiplier = 1.0;
  bool traditional_mi = false;
  bool allow_degenerate_columns = false;
  bool progress = false;
  bool verbose = false;
  bool resume = false;
  uint32_t em_iterations = 4;
  uint32_t max_candidates = 16;
  uint32_t max_cube_candidates = 12;
  uint32_t checkpoint_every_nodes = 64;
  uint32_t threads = 1;

  FlagParser parser(
      "tends_cli infer: reconstruct a diffusion network topology.\n"
      "Algorithms: tends (statuses only), netrate, multree, netinf "
      "(cascades), lift (cascades: sources), path (cascades: oracle "
      "traces), correlation (statuses).");
  parser.AddString("algorithm", &algorithm, "inference algorithm");
  parser.AddString("observations", &observations_path,
                   "cascades file (required for netrate/multree/netinf/lift)");
  parser.AddString("statuses", &statuses_path,
                   "status-matrix file (sufficient for tends/correlation)");
  parser.AddString("out", &out, "output network path");
  parser.AddString("io_mode", &io_mode,
                   "input handling: 'strict' fails on the first corrupt "
                   "line; 'permissive' skips corrupt rows/blocks and prints "
                   "a corruption report");
  parser.AddInt64("num_edges", &num_edges,
                  "edge budget for multree/netinf/lift/correlation");
  parser.AddInt64("deadline_ms", &deadline_ms,
                  "wall-clock budget in milliseconds; on expiry the "
                  "best-so-far partial network is written (0 = unlimited)");
  parser.AddString("metrics_out", &metrics_out,
                   "write a JSON run manifest (config, per-stage wall-clock, "
                   "counters, histograms, spans) to this path");
  parser.AddString("trace_out", &trace_out,
                   "write a Chrome-trace JSON timeline of the run's spans "
                   "(open in Perfetto or chrome://tracing)");
  parser.AddBool("progress", &progress,
                 "print live per-node progress lines to stderr");
  parser.AddInt64("progress_ms", &progress_ms,
                  "interval between --progress lines in milliseconds");
  parser.AddBool("verbose", &verbose,
                 "print the algorithm's diagnostics as JSON after inference");
  parser.AddDouble("tau_multiplier", &tau_multiplier,
                   "tends: pruning threshold scale");
  parser.AddBool("traditional_mi", &traditional_mi,
                 "tends: use traditional MI instead of infection MI");
  parser.AddString("counting_kernel", &counting_kernel,
                   "tends: sufficient-statistics kernel, 'packed' "
                   "(bit-parallel, default) or 'naive' (reference oracle); "
                   "both produce byte-identical networks");
  parser.AddString("candidate_mode", &candidate_mode,
                   "tends: candidate generation, 'dense' (n x n IMI matrix, "
                   "default) or 'sparse' (inverted-index positive-IMI rows, "
                   "O(nnz) memory); both produce byte-identical networks");
  parser.AddUint32("max_candidates", &max_candidates,
                   "tends: cap on a node's candidate-parent set (highest-IMI "
                   "candidates kept when more pass the threshold)");
  AddScoringStrategyFlags(parser, &scoring_strategy, &max_cube_candidates);
  parser.AddBool("allow_degenerate_columns", &allow_degenerate_columns,
                 "tends: accept nodes that are infected in all or none of "
                 "the processes (their parent sets are unidentifiable and "
                 "come back empty) instead of rejecting the input; the "
                 "normal regime for large sparse simulations");
  parser.AddString("checkpoint_dir", &checkpoint_dir,
                   "tends: durably checkpoint completed per-node results "
                   "into this directory (crash-safe atomic writes); a "
                   "killed or deadline-expired run becomes resumable");
  parser.AddBool("resume", &resume,
                 "tends: load the checkpoint in --checkpoint_dir and skip "
                 "the nodes it holds (output is byte-identical to an "
                 "uninterrupted run; stale/corrupt checkpoints are "
                 "rejected)");
  parser.AddUint32("checkpoint_every_nodes", &checkpoint_every_nodes,
                   "flush the checkpoint after this many newly completed "
                   "nodes (0 = no count trigger)");
  parser.AddInt64("checkpoint_every_ms", &checkpoint_every_ms,
                  "also flush when this much time passed since the last "
                  "flush (0 = no time trigger)");
  parser.AddUint32("em_iterations", &em_iterations,
                   "netrate: EM iteration budget");
  AddThreadsFlag(parser, &threads);
  Status status = parser.Parse(argc, argv);
  if (!status.ok()) return FailWith(status);

  IoReadOptions read_options;
  if (io_mode == "permissive") {
    read_options.mode = IoMode::kPermissive;
  } else if (io_mode != "strict") {
    return FailWith(Status::InvalidArgument(
        "--io_mode must be 'strict' or 'permissive', got '" + io_mode + "'"));
  }
  if (deadline_ms < 0) {
    return FailWith(Status::InvalidArgument(
        StrFormat("--deadline_ms must be >= 0, got %lld",
                  static_cast<long long>(deadline_ms))));
  }
  if (progress_ms <= 0) {
    return FailWith(Status::InvalidArgument(
        StrFormat("--progress_ms must be > 0, got %lld",
                  static_cast<long long>(progress_ms))));
  }
  if (counting_kernel != "packed" && counting_kernel != "naive") {
    return FailWith(Status::InvalidArgument(
        "--counting_kernel must be 'packed' or 'naive', got '" +
        counting_kernel + "'"));
  }
  if ((!checkpoint_dir.empty() || resume) && algorithm != "tends") {
    return FailWith(Status::InvalidArgument(
        "--checkpoint_dir/--resume are only supported for --algorithm=tends"));
  }
  if (resume && checkpoint_dir.empty()) {
    return FailWith(
        Status::InvalidArgument("--resume requires --checkpoint_dir"));
  }

  const auto started = std::chrono::steady_clock::now();
  MetricsRegistry registry;
  RunManifest manifest;
  manifest.tool = "tends_cli infer";
  manifest.config = {
      {"algorithm", algorithm},
      {"observations", observations_path},
      {"statuses", statuses_path},
      {"out", out},
      {"io_mode", io_mode},
      {"num_edges", StrFormat("%lld", static_cast<long long>(num_edges))},
      {"deadline_ms", StrFormat("%lld", static_cast<long long>(deadline_ms))},
      {"tau_multiplier", StrFormat("%g", tau_multiplier)},
      {"traditional_mi", traditional_mi ? "true" : "false"},
      {"counting_kernel", counting_kernel},
      {"candidate_mode", candidate_mode},
      {"scoring_strategy", scoring_strategy},
      {"max_candidates", StrFormat("%u", max_candidates)},
      {"max_cube_candidates", StrFormat("%u", max_cube_candidates)},
      {"allow_degenerate_columns", allow_degenerate_columns ? "true" : "false"},
      {"checkpoint_dir", checkpoint_dir},
      {"resume", resume ? "true" : "false"},
      {"em_iterations", StrFormat("%u", em_iterations)},
      {"threads", StrFormat("%u", threads)},
  };

  CorruptionReport report;
  diffusion::DiffusionObservations observations;
  if (!observations_path.empty()) {
    auto loaded = diffusion::ReadObservationsFile(observations_path,
                                                  read_options, &report);
    if (!loaded.ok()) return FailWith(loaded.status());
    observations = std::move(loaded).value();
  } else if (!statuses_path.empty()) {
    auto loaded =
        diffusion::ReadStatusMatrixFile(statuses_path, read_options, &report);
    if (!loaded.ok()) return FailWith(loaded.status());
    observations.statuses = std::move(loaded).value();
  } else {
    return FailWith(Status::InvalidArgument(
        "one of --observations or --statuses is required"));
  }
  if (read_options.mode == IoMode::kPermissive) {
    std::cout << report.Summary() << "\n";
  }
  // Reader corruption tallies become manifest counters (all kinds
  // registered even when zero, so the section is always present).
  report.ExportTo(&registry);

  RunContext context;
  if (deadline_ms > 0) context.deadline = Deadline::AfterMillis(deadline_ms);
  context.metrics = &registry;

  // Live progress from the same counters the manifest exports.
  const uint32_t total_nodes = observations.num_nodes();
  std::unique_ptr<ProgressReporter> reporter;
  if (progress) {
    reporter = std::make_unique<ProgressReporter>(
        &registry, std::chrono::milliseconds(progress_ms),
        [total_nodes, started](const MetricsRegistry& r) {
          const double elapsed =
              std::chrono::duration_cast<std::chrono::duration<double>>(
                  std::chrono::steady_clock::now() - started)
                  .count();
          return StrFormat(
              "progress: %llu/%u nodes, %llu score evaluations, %.1fs",
              static_cast<unsigned long long>(
                  r.CounterValue("tends.tends.nodes_completed")),
              total_nodes,
              static_cast<unsigned long long>(
                  r.CounterValue("tends.tends.score_evaluations")),
              elapsed);
        });
  }

  // Every algorithm is driven through the uniform NetworkInference
  // interface; diagnostics and deadline reporting below need no
  // per-algorithm cases.
  std::unique_ptr<inference::NetworkInference> engine;
  if (algorithm == "tends") {
    inference::TendsOptions options;
    options.tau_multiplier = tau_multiplier;
    options.use_traditional_mi = traditional_mi;
    options.num_threads = threads;
    options.max_candidates = max_candidates;
    options.reject_degenerate_columns = !allow_degenerate_columns;
    status = ParseCandidateModeFlag(candidate_mode, &options.candidate_mode);
    if (!status.ok()) return FailWith(status);
    options.search.kernel = counting_kernel == "naive"
                                ? inference::CountingKernel::kNaive
                                : inference::CountingKernel::kPacked;
    status = ParseScoringStrategyFlag(scoring_strategy,
                                      &options.search.scoring_strategy);
    if (!status.ok()) return FailWith(status);
    options.search.max_cube_candidates = max_cube_candidates;
    options.checkpoint.directory = checkpoint_dir;
    options.checkpoint.resume = resume;
    options.checkpoint.every_nodes = checkpoint_every_nodes;
    options.checkpoint.every_ms = checkpoint_every_ms;
    engine = std::make_unique<inference::Tends>(options);
  } else if (algorithm == "netrate") {
    inference::NetRateOptions options;
    options.max_iterations = em_iterations;
    options.num_threads = threads;
    engine = std::make_unique<inference::NetRate>(options);
  } else if (algorithm == "multree") {
    engine = std::make_unique<inference::MulTree>(
        inference::MulTreeOptions{.num_edges =
                                      static_cast<uint64_t>(num_edges)});
  } else if (algorithm == "netinf") {
    engine = std::make_unique<inference::NetInf>(
        inference::NetInfOptions{.num_edges =
                                     static_cast<uint64_t>(num_edges)});
  } else if (algorithm == "lift") {
    engine = std::make_unique<inference::Lift>(
        inference::LiftOptions{.num_edges = static_cast<uint64_t>(num_edges)});
  } else if (algorithm == "correlation") {
    engine = std::make_unique<inference::CorrelationBaseline>(
        inference::CorrelationOptions{.num_edges =
                                          static_cast<uint64_t>(num_edges)});
  } else if (algorithm == "path") {
    engine = std::make_unique<inference::Path>(
        inference::PathOptions{.num_edges = static_cast<uint64_t>(num_edges)});
  } else {
    return FailWith(Status::InvalidArgument("unknown algorithm: " + algorithm));
  }
  StatusOr<inference::InferredNetwork> result =
      engine->Infer(observations, context);
  if (reporter != nullptr) reporter->Stop();
  if (!result.ok()) return FailWith(result.status());
  // Deadline and cancellation are sticky, so a stopped context after the
  // run means the run was cut short (the written network is best-so-far).
  if (context.ShouldStop()) {
    std::cout << "deadline expired; wrote the best-so-far partial network\n";
  }
  if (verbose) {
    std::cout << "diagnostics: " << engine->DiagnosticsJson() << "\n";
    // Sample process stats now so the memory line below (and any manifest)
    // reflects this run; RecordRunStats is idempotent.
    RecordRunStats(&registry);
    std::cout << "memory:";
    for (const auto& [name, value] : registry.GaugeValues()) {
      if (name.rfind("tends.mem.", 0) == 0) {
        std::cout << " " << name.substr(sizeof("tends.mem.") - 1) << "="
                  << value;
      }
    }
    std::cout << "\n";
  }
  status = inference::WriteInferredNetworkFile(*result, out);
  if (!status.ok()) return FailWith(status);
  std::cout << result->DebugString() << "\nwrote " << out << "\n";
  status = MaybeWriteTrace(trace_out, manifest, registry);
  if (!status.ok()) return FailWith(status);
  status = MaybeWriteManifest(metrics_out, std::move(manifest), registry,
                              started);
  if (!status.ok()) return FailWith(status);
  return 0;
}

// ------------------------------------------------------------------ evaluate

int RunEvaluate(int argc, const char* const* argv) {
  std::string inferred_path = "inferred.txt";
  std::string truth_path = "graph.txt";
  bool sweep_threshold = false;

  FlagParser parser(
      "tends_cli evaluate: score an inferred network against the ground "
      "truth (F-score of directed edges).");
  parser.AddString("inferred", &inferred_path, "inferred network path");
  parser.AddString("truth", &truth_path, "ground-truth edge-list path");
  parser.AddBool("sweep_threshold", &sweep_threshold,
                 "report the best F over weight thresholds (NetRate "
                 "treatment)");
  Status status = parser.Parse(argc, argv);
  if (!status.ok()) return FailWith(status);

  auto inferred = inference::ReadInferredNetworkFile(inferred_path);
  if (!inferred.ok()) return FailWith(inferred.status());
  auto truth = graph::ReadEdgeListFile(truth_path);
  if (!truth.ok()) return FailWith(truth.status());
  metrics::EdgeMetrics result =
      sweep_threshold ? metrics::EvaluateBestThreshold(*inferred, *truth)
                      : metrics::EvaluateEdges(*inferred, *truth);
  std::cout << result.DebugString() << "\n";
  return 0;
}

// ------------------------------------------------------------------ estimate

int RunEstimate(int argc, const char* const* argv) {
  std::string statuses_path = "statuses.txt";
  std::string network_path = "inferred.txt";
  uint32_t top = 20;

  FlagParser parser(
      "tends_cli estimate: quantify propagation probabilities for the "
      "edges of an inferred topology from status results.");
  parser.AddString("statuses", &statuses_path, "status-matrix file");
  parser.AddString("network", &network_path, "inferred network path");
  parser.AddUint32("top", &top, "print only the first N edges (0 = all)");
  Status status = parser.Parse(argc, argv);
  if (!status.ok()) return FailWith(status);

  auto statuses = diffusion::ReadStatusMatrixFile(statuses_path);
  if (!statuses.ok()) return FailWith(statuses.status());
  auto network = inference::ReadInferredNetworkFile(network_path);
  if (!network.ok()) return FailWith(network.status());
  auto estimates =
      inference::EstimatePropagationProbabilities(*statuses, *network);
  if (!estimates.ok()) return FailWith(estimates.status());
  size_t limit = top == 0 ? estimates->size()
                          : std::min<size_t>(top, estimates->size());
  for (size_t e = 0; e < limit; ++e) {
    const auto& estimate = (*estimates)[e];
    std::printf("%u -> %u  p=%.4f  (support %u)\n", estimate.edge.from,
                estimate.edge.to, estimate.probability, estimate.support);
  }
  if (limit < estimates->size()) {
    std::printf("... (%zu more)\n", estimates->size() - limit);
  }
  return 0;
}

// ---------------------------------------------------------------- experiment

int RunExperimentCommand(int argc, const char* const* argv) {
  std::string graph_path = "graph.txt";
  std::string metrics_out;
  std::string trace_out;
  std::string model = "ic";
  uint32_t beta = 150;
  double alpha = 0.15;
  double mu = 0.3;
  double recovery = 0.5;
  uint32_t repetitions = 1;
  int64_t seed = 42;
  uint32_t threads = 1;

  FlagParser parser(
      "tends_cli experiment: simulate diffusions on a graph and run the "
      "four paper algorithms, printing the standard figure table.");
  parser.AddString("graph", &graph_path, "ground-truth edge-list path");
  parser.AddString("model", &model, "diffusion model: ic, lt or sir");
  parser.AddUint32("beta", &beta, "number of diffusion processes");
  parser.AddDouble("alpha", &alpha, "initial infection ratio");
  parser.AddDouble("mu", &mu, "mean propagation probability");
  parser.AddDouble("recovery", &recovery,
                   "sir: per-round recovery probability");
  parser.AddUint32("repetitions", &repetitions, "independent repetitions");
  parser.AddInt64("seed", &seed, "random seed");
  AddThreadsFlag(parser, &threads);
  parser.AddString("metrics_out", &metrics_out,
                   "write a JSON run manifest for the whole experiment");
  parser.AddString("trace_out", &trace_out,
                   "write a Chrome-trace JSON timeline of the run's spans "
                   "(open in Perfetto or chrome://tracing)");
  Status status = parser.Parse(argc, argv);
  if (!status.ok()) return FailWith(status);

  const auto started = std::chrono::steady_clock::now();
  MetricsRegistry registry;

  auto truth = graph::ReadEdgeListFile(graph_path);
  if (!truth.ok()) return FailWith(truth.status());
  benchlib::ExperimentConfig config;
  config.metrics = &registry;
  config.seed = static_cast<uint64_t>(seed);
  config.beta = beta;
  config.alpha = alpha;
  config.mu = mu;
  config.repetitions = repetitions;
  status = ParseModelFlag(model, &config.model);
  if (!status.ok()) return FailWith(status);
  config.sir_recovery = recovery;
  // One --threads knob drives every parallel stage: the simulation as well
  // as the per-node loops of TENDS and NetRate.
  config.sim_threads = threads;
  config.tends_options.num_threads = threads;
  config.netrate_options.num_threads = threads;
  auto evaluations = benchlib::RunExperiment(*truth, config);
  if (!evaluations.ok()) return FailWith(evaluations.status());
  benchlib::MakeFigureTable({{graph_path, std::move(evaluations).value()}})
      .PrintText(std::cout);
  RunManifest manifest;
  manifest.tool = "tends_cli experiment";
  manifest.config = {
      {"graph", graph_path},
      {"model", model},
      {"beta", StrFormat("%u", beta)},
      {"alpha", StrFormat("%g", alpha)},
      {"mu", StrFormat("%g", mu)},
      {"recovery", StrFormat("%g", recovery)},
      {"repetitions", StrFormat("%u", repetitions)},
      {"seed", StrFormat("%lld", static_cast<long long>(seed))},
      {"threads", StrFormat("%u", threads)},
  };
  status = MaybeWriteTrace(trace_out, manifest, registry);
  if (!status.ok()) return FailWith(status);
  status = MaybeWriteManifest(metrics_out, std::move(manifest), registry,
                              started);
  if (!status.ok()) return FailWith(status);
  return 0;
}

// --------------------------------------------------------------------- sweep

int RunSweep(int argc, const char* const* argv) {
  std::string statuses_path;
  std::string truth_path;
  std::string out_prefix;
  std::string io_mode = "strict";
  std::string metrics_out;
  std::string trace_out;
  std::string counting_kernel = "packed";
  std::string candidate_mode = "dense";
  std::string scoring_strategy = "auto";
  std::string multipliers_csv = "0.4,0.6,0.8,1.0,1.2,1.6,2.0";
  std::string checkpoint_dir;
  bool include_traditional_mi = false;
  bool resume = false;
  int64_t deadline_ms = 0;
  int64_t checkpoint_every_ms = 2000;
  uint32_t checkpoint_every_nodes = 64;
  uint32_t max_cube_candidates = 12;
  uint32_t threads = 1;
  uint32_t run_parallelism = 1;

  FlagParser parser(
      "tends_cli sweep: run TENDS many times against one status matrix "
      "through a shared-artifact InferenceSession (the packed transpose, "
      "pairwise counts, MI matrix and K-means threshold are computed once "
      "and reused by every run).");
  parser.AddString("statuses", &statuses_path,
                   "status-matrix file (required)");
  parser.AddString("truth", &truth_path,
                   "optional ground-truth edge list; when given, each run "
                   "is scored (F-score of directed edges)");
  parser.AddString("tau_multipliers", &multipliers_csv,
                   "comma-separated pruning-threshold scales, one TENDS run "
                   "each (the paper's Fig. 10/11 sweep)");
  parser.AddBool("include_traditional_mi", &include_traditional_mi,
                 "additionally run every multiplier with traditional MI "
                 "instead of infection MI (the Fig. 10/11 ablation)");
  parser.AddString("out_prefix", &out_prefix,
                   "when set, write each completed run's network to "
                   "<prefix><run_index>.txt");
  parser.AddString("io_mode", &io_mode,
                   "input handling: 'strict' fails on the first corrupt "
                   "line; 'permissive' skips corrupt rows and reports");
  parser.AddInt64("deadline_ms", &deadline_ms,
                  "wall-clock budget for the whole sweep in milliseconds; "
                  "on expiry only fully-completed runs are reported "
                  "(0 = unlimited)");
  parser.AddString("metrics_out", &metrics_out,
                   "write a JSON run manifest (artifact hit/miss counters, "
                   "stage wall-clock, per-run counters) to this path");
  parser.AddString("trace_out", &trace_out,
                   "write a Chrome-trace JSON timeline of the sweep's spans "
                   "(open in Perfetto or chrome://tracing)");
  parser.AddString("counting_kernel", &counting_kernel,
                   "sufficient-statistics kernel: 'packed' or 'naive'");
  parser.AddString("candidate_mode", &candidate_mode,
                   "candidate generation for every run: 'dense' or 'sparse' "
                   "(byte-identical results; sparse excludes "
                   "--include_traditional_mi)");
  AddScoringStrategyFlags(parser, &scoring_strategy, &max_cube_candidates);
  parser.AddString("checkpoint_dir", &checkpoint_dir,
                   "durably checkpoint each run's completed per-node "
                   "results into this directory (one run<index>.checkpoint "
                   "file per sweep point)");
  parser.AddBool("resume", &resume,
                 "load per-run checkpoints from --checkpoint_dir and skip "
                 "the nodes they hold");
  parser.AddUint32("checkpoint_every_nodes", &checkpoint_every_nodes,
                   "flush a run's checkpoint after this many newly "
                   "completed nodes (0 = no count trigger)");
  parser.AddInt64("checkpoint_every_ms", &checkpoint_every_ms,
                  "also flush when this much time passed since a run's "
                  "last flush (0 = no time trigger)");
  parser.AddUint32("run_parallelism", &run_parallelism,
                   "concurrent sweep runs (outer level; --threads is the "
                   "per-run inner level)");
  AddThreadsFlag(parser, &threads);
  Status status = parser.Parse(argc, argv);
  if (!status.ok()) return FailWith(status);

  if (statuses_path.empty()) {
    return FailWith(Status::InvalidArgument("--statuses is required"));
  }
  IoReadOptions read_options;
  if (io_mode == "permissive") {
    read_options.mode = IoMode::kPermissive;
  } else if (io_mode != "strict") {
    return FailWith(Status::InvalidArgument(
        "--io_mode must be 'strict' or 'permissive', got '" + io_mode + "'"));
  }
  if (deadline_ms < 0) {
    return FailWith(Status::InvalidArgument(
        StrFormat("--deadline_ms must be >= 0, got %lld",
                  static_cast<long long>(deadline_ms))));
  }
  if (counting_kernel != "packed" && counting_kernel != "naive") {
    return FailWith(Status::InvalidArgument(
        "--counting_kernel must be 'packed' or 'naive', got '" +
        counting_kernel + "'"));
  }
  inference::CandidateMode parsed_candidate_mode;
  status = ParseCandidateModeFlag(candidate_mode, &parsed_candidate_mode);
  if (!status.ok()) return FailWith(status);
  inference::ScoringStrategy parsed_scoring_strategy;
  status = ParseScoringStrategyFlag(scoring_strategy, &parsed_scoring_strategy);
  if (!status.ok()) return FailWith(status);
  if (parsed_candidate_mode == inference::CandidateMode::kSparse &&
      include_traditional_mi) {
    return FailWith(Status::InvalidArgument(
        "--candidate_mode=sparse excludes --include_traditional_mi (the "
        "sparse index only supports infection MI)"));
  }
  std::vector<double> multipliers;
  for (std::string_view field : Split(multipliers_csv, ',')) {
    auto value = ParseDouble(field);
    if (!value.ok()) {
      return FailWith(Status::InvalidArgument(
          "--tau_multipliers: bad value '" + std::string(field) + "'"));
    }
    multipliers.push_back(*value);
  }
  if (multipliers.empty()) {
    return FailWith(
        Status::InvalidArgument("--tau_multipliers must be non-empty"));
  }

  const auto started = std::chrono::steady_clock::now();
  MetricsRegistry registry;
  CorruptionReport report;
  auto statuses =
      diffusion::ReadStatusMatrixFile(statuses_path, read_options, &report);
  if (!statuses.ok()) return FailWith(statuses.status());
  if (read_options.mode == IoMode::kPermissive) {
    std::cout << report.Summary() << "\n";
  }
  report.ExportTo(&registry);

  std::optional<graph::DirectedGraph> truth;
  if (!truth_path.empty()) {
    auto loaded = graph::ReadEdgeListFile(truth_path);
    if (!loaded.ok()) return FailWith(loaded.status());
    truth.emplace(std::move(loaded).value());
  }

  if (resume && checkpoint_dir.empty()) {
    return FailWith(
        Status::InvalidArgument("--resume requires --checkpoint_dir"));
  }

  // One option set per (multiplier, MI variant) point. Each run gets its
  // own checkpoint stem so sweep checkpoints never collide, and each run's
  // fingerprint covers its own options — a resumed sweep only reuses
  // checkpoints whose point configuration is unchanged.
  std::vector<inference::TendsOptions> runs;
  for (int traditional = 0; traditional <= (include_traditional_mi ? 1 : 0);
       ++traditional) {
    for (double multiplier : multipliers) {
      inference::TendsOptions options;
      options.tau_multiplier = multiplier;
      options.use_traditional_mi = traditional != 0;
      options.num_threads = threads;
      options.candidate_mode = parsed_candidate_mode;
      options.search.kernel = counting_kernel == "naive"
                                  ? inference::CountingKernel::kNaive
                                  : inference::CountingKernel::kPacked;
      options.search.scoring_strategy = parsed_scoring_strategy;
      options.search.max_cube_candidates = max_cube_candidates;
      if (!checkpoint_dir.empty()) {
        options.checkpoint.directory = checkpoint_dir;
        options.checkpoint.stem = StrFormat("run%zu", runs.size());
        options.checkpoint.resume = resume;
        options.checkpoint.every_nodes = checkpoint_every_nodes;
        options.checkpoint.every_ms = checkpoint_every_ms;
      }
      runs.push_back(options);
    }
  }

  RunContext context;
  if (deadline_ms > 0) context.deadline = Deadline::AfterMillis(deadline_ms);
  context.metrics = &registry;

  inference::InferenceSession session(std::move(statuses).value());
  inference::SweepRunnerOptions sweep_options;
  sweep_options.run_parallelism = run_parallelism;
  inference::SweepRunner runner(session, sweep_options);
  auto sweep = runner.Run(runs, context);
  if (!sweep.ok()) return FailWith(sweep.status());

  std::printf("%-10s %-12s %10s %8s %10s", "run", "mi", "tau_mult", "edges",
              "seconds");
  if (truth.has_value()) std::printf(" %9s %9s %9s", "precision", "recall", "f");
  std::printf("\n");
  for (const inference::SweepRunResult& run : sweep->completed) {
    std::printf("%-10zu %-12s %10.3f %8llu %10.4f", run.run_index,
                run.options.use_traditional_mi ? "traditional" : "infection",
                run.options.tau_multiplier,
                static_cast<unsigned long long>(run.network.num_edges()),
                run.seconds);
    if (truth.has_value()) {
      metrics::EdgeMetrics scored = metrics::EvaluateEdges(run.network, *truth);
      std::printf(" %9.4f %9.4f %9.4f", scored.precision, scored.recall,
                  scored.f_score);
    }
    std::printf("\n");
    if (!out_prefix.empty()) {
      const std::string out =
          StrFormat("%s%zu.txt", out_prefix.c_str(), run.run_index);
      status = inference::WriteInferredNetworkFile(run.network, out);
      if (!status.ok()) return FailWith(status);
    }
  }
  if (sweep->stopped_early) {
    std::cout << StrFormat(
        "deadline expired: %zu of %zu runs completed (%zu started)\n",
        sweep->completed.size(), sweep->runs_requested, sweep->runs_started);
  }

  RunManifest manifest;
  manifest.tool = "tends_cli sweep";
  manifest.config = {
      {"statuses", statuses_path},
      {"truth", truth_path},
      {"tau_multipliers", multipliers_csv},
      {"include_traditional_mi", include_traditional_mi ? "true" : "false"},
      {"counting_kernel", counting_kernel},
      {"candidate_mode", candidate_mode},
      {"scoring_strategy", scoring_strategy},
      {"max_cube_candidates", StrFormat("%u", max_cube_candidates)},
      {"checkpoint_dir", checkpoint_dir},
      {"resume", resume ? "true" : "false"},
      {"deadline_ms", StrFormat("%lld", static_cast<long long>(deadline_ms))},
      {"threads", StrFormat("%u", threads)},
      {"run_parallelism", StrFormat("%u", run_parallelism)},
  };
  status = MaybeWriteTrace(trace_out, manifest, registry);
  if (!status.ok()) return FailWith(status);
  status = MaybeWriteManifest(metrics_out, std::move(manifest), registry,
                              started);
  if (!status.ok()) return FailWith(status);
  return 0;
}

// -------------------------------------------------------------------- append

int RunAppend(int argc, const char* const* argv) {
  std::string statuses_path;
  std::string chunks_csv;
  std::string truth_path;
  std::string out = "inferred.txt";
  std::string io_mode = "strict";
  std::string metrics_out;
  std::string trace_out;
  std::string counting_kernel = "packed";
  std::string candidate_mode = "dense";
  std::string scoring_strategy = "auto";
  bool watch = false;
  bool allow_degenerate_columns = false;
  double tau_multiplier = 1.0;
  uint32_t max_candidates = 16;
  uint32_t max_cube_candidates = 12;
  uint32_t threads = 1;

  FlagParser parser(
      "tends_cli append: streaming TENDS inference over an append-only "
      "status stream. Starts an InferenceSession from --statuses, infers "
      "once, then appends each chunk (a status-matrix file over the same "
      "node set) and re-infers incrementally: memoized artifacts are "
      "delta-updated at chunk cost and only dirty nodes (whose candidate "
      "set moved) re-run a full parent search. Every refresh is "
      "byte-identical to a from-scratch inference over the concatenated "
      "observations.");
  parser.AddString("statuses", &statuses_path,
                   "base status-matrix file (required)");
  parser.AddString("chunks", &chunks_csv,
                   "comma-separated status-matrix files appended in order");
  parser.AddBool("watch", &watch,
                 "after --chunks, read further chunk file paths from stdin "
                 "(one per line, blank lines skipped) until EOF — a tail-f "
                 "style ingest loop");
  parser.AddString("truth", &truth_path,
                   "optional ground-truth edge list; when given, every "
                   "refresh is scored (F-score of directed edges)");
  parser.AddString("out", &out,
                   "output path for the final refreshed network");
  parser.AddString("io_mode", &io_mode,
                   "input handling: 'strict' fails on the first corrupt "
                   "line; 'permissive' skips corrupt rows and reports");
  parser.AddDouble("tau_multiplier", &tau_multiplier,
                   "pruning threshold scale");
  parser.AddString("counting_kernel", &counting_kernel,
                   "sufficient-statistics kernel for dirty nodes: 'packed' "
                   "or 'naive'");
  parser.AddString("candidate_mode", &candidate_mode,
                   "candidate generation: 'dense' or 'sparse' (both "
                   "delta-update exactly; byte-identical networks)");
  parser.AddUint32("max_candidates", &max_candidates,
                   "cap on a node's candidate-parent set");
  parser.AddString("scoring_strategy", &scoring_strategy,
                   "how dirty-node greedy scores obtain their statistics: "
                   "'auto' (per-node cost model, default), 'packed', or "
                   "'cube'; all produce byte-identical networks");
  parser.AddUint32("max_cube_candidates", &max_cube_candidates,
                   "largest candidate set covered by a per-node "
                   "sufficient-statistics cube (2^k * 8 bytes per node) — "
                   "both the clean-node cubes kept between refreshes and "
                   "the dirty-node scoring planner's cubes (the same cap "
                   "infer/sweep expose)");
  parser.AddBool("allow_degenerate_columns", &allow_degenerate_columns,
                 "accept all-0/all-1 status columns (their parent sets come "
                 "back empty) instead of rejecting the input; the normal "
                 "regime for streams whose early chunks are small");
  parser.AddString("metrics_out", &metrics_out,
                   "write a JSON run manifest (append latencies, dirty-node "
                   "gauges, artifact hit/miss counters) to this path");
  parser.AddString("trace_out", &trace_out,
                   "write a Chrome-trace JSON timeline of the run's spans "
                   "(open in Perfetto or chrome://tracing)");
  AddThreadsFlag(parser, &threads);
  Status status = parser.Parse(argc, argv);
  if (!status.ok()) return FailWith(status);

  if (statuses_path.empty()) {
    return FailWith(Status::InvalidArgument("--statuses is required"));
  }
  IoReadOptions read_options;
  if (io_mode == "permissive") {
    read_options.mode = IoMode::kPermissive;
  } else if (io_mode != "strict") {
    return FailWith(Status::InvalidArgument(
        "--io_mode must be 'strict' or 'permissive', got '" + io_mode + "'"));
  }
  if (counting_kernel != "packed" && counting_kernel != "naive") {
    return FailWith(Status::InvalidArgument(
        "--counting_kernel must be 'packed' or 'naive', got '" +
        counting_kernel + "'"));
  }
  inference::TendsOptions options;
  options.tau_multiplier = tau_multiplier;
  options.num_threads = threads;
  options.max_candidates = max_candidates;
  options.reject_degenerate_columns = !allow_degenerate_columns;
  status = ParseCandidateModeFlag(candidate_mode, &options.candidate_mode);
  if (!status.ok()) return FailWith(status);
  options.search.kernel = counting_kernel == "naive"
                              ? inference::CountingKernel::kNaive
                              : inference::CountingKernel::kPacked;
  status = ParseScoringStrategyFlag(scoring_strategy,
                                    &options.search.scoring_strategy);
  if (!status.ok()) return FailWith(status);
  // One cap for both cube uses: the dirty-node scoring planner and the
  // clean-node retention below.
  options.search.max_cube_candidates = max_cube_candidates;

  std::vector<std::string> chunk_paths;
  if (!chunks_csv.empty()) {
    for (std::string_view field : Split(chunks_csv, ',')) {
      if (!field.empty()) chunk_paths.emplace_back(field);
    }
  }
  if (chunk_paths.empty() && !watch) {
    return FailWith(Status::InvalidArgument(
        "nothing to append: pass --chunks and/or --watch"));
  }

  const auto started = std::chrono::steady_clock::now();
  MetricsRegistry registry;
  CorruptionReport report;
  auto base =
      diffusion::ReadStatusMatrixFile(statuses_path, read_options, &report);
  if (!base.ok()) return FailWith(base.status());

  std::optional<graph::DirectedGraph> truth;
  if (!truth_path.empty()) {
    auto loaded = graph::ReadEdgeListFile(truth_path);
    if (!loaded.ok()) return FailWith(loaded.status());
    truth.emplace(std::move(loaded).value());
  }

  RunContext context;
  context.metrics = &registry;
  const inference::ArtifactContext artifact_context{&registry, threads};

  inference::InferenceSession session(std::move(base).value());
  inference::IncrementalRunnerOptions runner_options;
  runner_options.max_cube_candidates = max_cube_candidates;
  inference::IncrementalRunner runner(session, options, runner_options);

  std::printf("%-6s %-28s %10s %10s %8s %7s %7s %9s", "epoch", "chunk",
              "+procs", "processes", "edges", "dirty", "clean", "seconds");
  if (truth.has_value()) std::printf(" %9s", "f");
  std::printf("\n");
  std::optional<inference::SessionRun> last_run;
  auto refresh_and_report = [&](const std::string& label,
                                uint32_t added) -> Status {
    const auto refresh_started = std::chrono::steady_clock::now();
    auto run = runner.Refresh(context);
    if (!run.ok()) return run.status();
    const double seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - refresh_started)
            .count();
    std::printf("%-6llu %-28s %10u %10u %8llu %7u %7u %9.4f",
                static_cast<unsigned long long>(runner.last_epoch()),
                label.c_str(), added, session.num_processes(),
                static_cast<unsigned long long>(run->network.num_edges()),
                runner.last_dirty_nodes(), runner.last_clean_nodes(), seconds);
    if (truth.has_value()) {
      metrics::EdgeMetrics scored =
          metrics::EvaluateEdges(run->network, *truth);
      std::printf(" %9.4f", scored.f_score);
    }
    std::printf("\n");
    last_run = std::move(run).value();
    return Status::OK();
  };

  status = refresh_and_report("(base)", session.num_processes());
  if (!status.ok()) return FailWith(status);

  uint64_t appends = 0;
  auto append_chunk = [&](const std::string& path) -> Status {
    auto chunk = diffusion::ReadStatusMatrixFile(path, read_options, &report);
    if (!chunk.ok()) return chunk.status();
    const uint32_t added = chunk->num_processes();
    TENDS_RETURN_IF_ERROR(session.AppendStatuses(*chunk, artifact_context));
    ++appends;
    return refresh_and_report(path, added);
  };
  for (const std::string& path : chunk_paths) {
    status = append_chunk(path);
    if (!status.ok()) return FailWith(status);
  }
  if (watch) {
    std::string line;
    while (std::getline(std::cin, line)) {
      // Trim whitespace; skip blanks (a writer touching the pipe to keep
      // it warm should not fail the stream).
      const size_t first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;
      const size_t last = line.find_last_not_of(" \t\r");
      status = append_chunk(line.substr(first, last - first + 1));
      if (!status.ok()) return FailWith(status);
    }
  }
  if (read_options.mode == IoMode::kPermissive) {
    std::cout << report.Summary() << "\n";
  }
  report.ExportTo(&registry);

  status = inference::WriteInferredNetworkFile(last_run->network, out);
  if (!status.ok()) return FailWith(status);
  std::cout << last_run->network.DebugString() << "\nwrote " << out << " ("
            << appends << " appends, epoch " << session.epoch() << ")\n";

  RunManifest manifest;
  manifest.tool = "tends_cli append";
  manifest.config = {
      {"statuses", statuses_path},
      {"chunks", chunks_csv},
      {"watch", watch ? "true" : "false"},
      {"truth", truth_path},
      {"out", out},
      {"tau_multiplier", StrFormat("%g", tau_multiplier)},
      {"counting_kernel", counting_kernel},
      {"candidate_mode", candidate_mode},
      {"scoring_strategy", scoring_strategy},
      {"max_candidates", StrFormat("%u", max_candidates)},
      {"max_cube_candidates", StrFormat("%u", max_cube_candidates)},
      {"threads", StrFormat("%u", threads)},
  };
  status = MaybeWriteTrace(trace_out, manifest, registry);
  if (!status.ok()) return FailWith(status);
  status = MaybeWriteManifest(metrics_out, std::move(manifest), registry,
                              started);
  if (!status.ok()) return FailWith(status);
  return 0;
}

// -------------------------------------------------------------------- report

/// Loads and schema-checks one tends.metrics.v1 manifest.
StatusOr<JsonValue> LoadManifestFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  StatusOr<JsonValue> parsed = ParseJson(buffer.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   std::string(parsed.status().message()));
  }
  if (!parsed->is_object()) {
    return Status::InvalidArgument(path + ": manifest root is not an object");
  }
  const JsonValue* schema = parsed->Find("schema");
  if (schema == nullptr || schema->string_value() != "tends.metrics.v1") {
    return Status::InvalidArgument(path +
                                   ": schema is not \"tends.metrics.v1\"");
  }
  return parsed;
}

/// Prints one flat numeric manifest section (counters or gauges), with a
/// signed delta column when `base` also has the section. Iterates the
/// union of keys so entries present only in the baseline still show.
void PrintNumericSection(const char* title, const JsonValue* section,
                         const JsonValue* base_section) {
  std::printf("%s:\n", title);
  std::map<std::string, std::pair<const JsonValue*, const JsonValue*>> merged;
  if (section != nullptr && section->is_object()) {
    for (const auto& [name, value] : section->object()) {
      merged[name].first = &value;
    }
  }
  if (base_section != nullptr && base_section->is_object()) {
    for (const auto& [name, value] : base_section->object()) {
      merged[name].second = &value;
    }
  }
  for (const auto& [name, values] : merged) {
    const auto& [current, base] = values;
    std::printf("  %-44s %14lld", name.c_str(),
                current != nullptr
                    ? static_cast<long long>(current->int_value())
                    : 0LL);
    if (base != nullptr) {
      std::printf("  (%+lld vs baseline)",
                  static_cast<long long>(
                      (current != nullptr ? current->int_value() : 0) -
                      base->int_value()));
    }
    std::printf("\n");
  }
}

int RunReport(int argc, const char* const* argv) {
  std::string compare_path;
  FlagParser parser(
      "tends_cli report: pretty-print a tends.metrics.v1 run manifest "
      "(the file --metrics_out writes), optionally diffing its numeric "
      "sections against a baseline manifest.\n"
      "usage: tends_cli report <manifest.json> [--compare=<baseline.json>]");
  parser.AddString("compare", &compare_path,
                   "baseline manifest; counters, gauges and stage times "
                   "print deltas (this run minus baseline)");
  Status status = parser.Parse(argc, argv);
  if (!status.ok()) return FailWith(status);
  if (parser.positional().size() != 1) {
    return FailWith(Status::InvalidArgument(
        "report takes exactly one manifest path (see --help)"));
  }

  StatusOr<JsonValue> manifest = LoadManifestFile(parser.positional()[0]);
  if (!manifest.ok()) return FailWith(manifest.status());
  std::optional<JsonValue> baseline;
  if (!compare_path.empty()) {
    StatusOr<JsonValue> loaded = LoadManifestFile(compare_path);
    if (!loaded.ok()) return FailWith(loaded.status());
    baseline.emplace(std::move(loaded).value());
  }

  auto string_field = [](const JsonValue& root, const char* key) {
    const JsonValue* value = root.Find(key);
    return value != nullptr ? value->string_value() : std::string("?");
  };
  std::printf("tool:         %s\n", string_field(*manifest, "tool").c_str());
  std::printf("git:          %s\n", string_field(*manifest, "git").c_str());
  const JsonValue* wall = manifest->Find("wall_seconds");
  std::printf("wall_seconds: %.4f", wall != nullptr ? wall->number_value()
                                                    : 0.0);
  if (baseline.has_value()) {
    const JsonValue* base_wall = baseline->Find("wall_seconds");
    std::printf("  (baseline %s: %.4f)", string_field(*baseline, "tool").c_str(),
                base_wall != nullptr ? base_wall->number_value() : 0.0);
  }
  std::printf("\nconfig:\n");
  if (const JsonValue* config = manifest->Find("config");
      config != nullptr && config->is_object()) {
    for (const auto& [key, value] : config->object()) {
      std::printf("  %-20s %s\n", key.c_str(), value.string_value().c_str());
    }
  }

  std::printf("stages:\n");
  const JsonValue* stages = manifest->FindPath({"metrics", "stages"});
  const JsonValue* base_stages =
      baseline.has_value() ? baseline->FindPath({"metrics", "stages"})
                           : nullptr;
  if (stages != nullptr && stages->is_object()) {
    for (const auto& [name, stage] : stages->object()) {
      const JsonValue* wall_s = stage.Find("wall_s");
      const JsonValue* sections = stage.Find("sections");
      std::printf("  %-44s %10.4fs x%lld", name.c_str(),
                  wall_s != nullptr ? wall_s->number_value() : 0.0,
                  sections != nullptr
                      ? static_cast<long long>(sections->int_value())
                      : 0LL);
      const JsonValue* base_stage =
          base_stages != nullptr ? base_stages->Find(name) : nullptr;
      if (base_stage != nullptr) {
        const JsonValue* base_wall_s = base_stage->Find("wall_s");
        std::printf("  (%+.4fs vs baseline)",
                    (wall_s != nullptr ? wall_s->number_value() : 0.0) -
                        (base_wall_s != nullptr ? base_wall_s->number_value()
                                                : 0.0));
      }
      std::printf("\n");
    }
  }

  PrintNumericSection(
      "counters", manifest->FindPath({"metrics", "counters"}),
      baseline.has_value() ? baseline->FindPath({"metrics", "counters"})
                           : nullptr);
  PrintNumericSection(
      "gauges", manifest->FindPath({"metrics", "gauges"}),
      baseline.has_value() ? baseline->FindPath({"metrics", "gauges"})
                           : nullptr);

  std::printf("spans:\n");
  if (const JsonValue* spans = manifest->FindPath({"metrics", "spans"});
      spans != nullptr && spans->is_object()) {
    for (const auto& [name, span] : spans->object()) {
      if (!span.is_object()) {
        // The optional "dropped" tally shares the object with the
        // per-name summaries.
        std::printf("  %-44s %14lld\n", name.c_str(),
                    static_cast<long long>(span.int_value()));
        continue;
      }
      const JsonValue* count = span.Find("count");
      const JsonValue* total_s = span.Find("total_s");
      std::printf("  %-44s %10.4fs x%lld\n", name.c_str(),
                  total_s != nullptr ? total_s->number_value() : 0.0,
                  count != nullptr
                      ? static_cast<long long>(count->int_value())
                      : 0LL);
    }
  }
  return 0;
}

int Main(int argc, const char* const* argv) {
  const std::string usage =
      "usage: tends_cli <command> [flags]\n"
      "commands: generate, simulate, infer, sweep, append, evaluate, "
      "estimate, experiment, report\n"
      "Run 'tends_cli <command> --help' for command flags.\n";
  if (argc < 2) {
    std::cerr << usage;
    return 1;
  }
  std::string command = argv[1];
  // Shift argv so each subcommand sees itself as argv[0].
  int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (command == "generate") return RunGenerate(sub_argc, sub_argv);
  if (command == "simulate") return RunSimulate(sub_argc, sub_argv);
  if (command == "infer") return RunInfer(sub_argc, sub_argv);
  if (command == "sweep") return RunSweep(sub_argc, sub_argv);
  if (command == "append") return RunAppend(sub_argc, sub_argv);
  if (command == "evaluate") return RunEvaluate(sub_argc, sub_argv);
  if (command == "estimate") return RunEstimate(sub_argc, sub_argv);
  if (command == "experiment") return RunExperimentCommand(sub_argc, sub_argv);
  if (command == "report") return RunReport(sub_argc, sub_argv);
  if (command == "--help" || command == "help") {
    std::cout << usage;
    return 0;
  }
  std::cerr << "unknown command: " << command << "\n" << usage;
  return 1;
}

}  // namespace
}  // namespace tends::cli

int main(int argc, char** argv) { return tends::cli::Main(argc, argv); }
