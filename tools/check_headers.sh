#!/bin/sh
# Compiles every public header under src/ standalone (-fsyntax-only) to
# prove each one is self-contained: includes everything it uses and parses
# on its own. Catches the classic API-redesign hazard where a header only
# builds because every current includer happens to pull in a dependency
# first — which a new includer (or a reordering) would then break.
#
# Usage: check_headers.sh <source_root> [compiler]
# Exits non-zero and lists the offending headers, with the compiler's
# diagnostics, if any header fails.

set -u
root="${1:-$(dirname "$0")/..}"
cxx="${2:-${CXX:-c++}}"

if ! command -v "$cxx" >/dev/null 2>&1; then
  echo "SKIP: compiler '$cxx' not found" >&2
  exit 0
fi

headers=$(find "$root/src" -name '*.h' | sort)
count=0
bad=0
for header in $headers; do
  count=$((count + 1))
  # Each header is compiled as if it were the first line of a new TU.
  if ! output=$("$cxx" -std=c++20 -fsyntax-only -x c++ \
      -I "$root/src" "$header" 2>&1); then
    echo "NOT SELF-CONTAINED: $header" >&2
    printf '%s\n' "$output" >&2
    bad=1
  fi
done

# Guard against the find going stale (wrong root, renamed tree): an empty
# header set would make the check silently vacuous.
if [ "$count" -lt 10 ]; then
  echo "CHECK STALE: only $count headers found under $root/src" >&2
  exit 2
fi

if [ "$bad" -ne 0 ]; then
  exit 1
fi
echo "OK: $count headers under src/ compile standalone"
exit 0
