#!/bin/sh
# Bench smoke test: runs micro_primitives on a tiny iteration budget with
# TENDS_BENCH_JSON_DIR pointed at a scratch directory, then validates every
# emitted BENCH_*.json against the tends.bench.v1 schema. Keeps the bench
# JSON channel (benchlib::MaybeWriteBenchJson) and the custom main in
# micro_primitives wired end to end.
#
# Usage: bench_smoke.sh <micro_primitives-binary> <validate_bench_json-binary> <workdir>
set -eu

BENCH_BIN="$1"
VALIDATOR="$2"
WORKDIR="$3"

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"

# The CountJoint kernel family only, at a minimal measuring budget: the
# smoke test checks plumbing, not performance.
TENDS_BENCH_JSON_DIR="$WORKDIR" "$BENCH_BIN" \
  --benchmark_filter='BM_CountJoint(Naive|Packed|Incremental)/64/' \
  --benchmark_min_time=0.001 > "$WORKDIR/bench.out" 2>&1 || {
    echo "bench run failed:" >&2
    cat "$WORKDIR/bench.out" >&2
    exit 1
  }

set -- "$WORKDIR"/BENCH_*.json
if [ ! -f "$1" ]; then
  echo "no BENCH_*.json emitted in $WORKDIR" >&2
  exit 1
fi

"$VALIDATOR" "$@"
