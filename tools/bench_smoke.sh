#!/bin/sh
# Bench smoke test: runs a bench binary on a tiny budget with
# TENDS_BENCH_JSON_DIR pointed at a scratch directory (and TENDS_BENCH_FAST
# set, which shrinks the workloads of the custom-main benches), then
# validates every emitted BENCH_*.json against the tends.bench.v1 schema.
# Keeps the bench JSON channel (benchlib::MaybeWriteBenchJson) wired end to
# end for each registered bench.
#
# Usage: bench_smoke.sh <bench-binary> <validate_bench_json-binary> <workdir> [bench args...]
# Extra arguments are passed through to the bench binary (e.g. a
# --benchmark_filter for google-benchmark mains).
set -eu

BENCH_BIN="$1"
VALIDATOR="$2"
WORKDIR="$3"
shift 3

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"

TENDS_BENCH_JSON_DIR="$WORKDIR" TENDS_BENCH_FAST=1 "$BENCH_BIN" "$@" \
  > "$WORKDIR/bench.out" 2>&1 || {
    echo "bench run failed:" >&2
    cat "$WORKDIR/bench.out" >&2
    exit 1
  }

set -- "$WORKDIR"/BENCH_*.json
if [ ! -f "$1" ]; then
  echo "no BENCH_*.json emitted in $WORKDIR" >&2
  exit 1
fi

"$VALIDATOR" "$@"
