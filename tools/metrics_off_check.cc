// Compile- and run-time check for the disabled instrumentation path.
//
// This translation unit is built with TENDS_METRICS_ENABLED=0 regardless
// of the TENDS_METRICS configure option (see tools/CMakeLists.txt), so the
// tree always proves that code written against the macros keeps compiling
// with -Wall -Wextra (no unused-variable warnings from `metrics` locals)
// and that the disabled macros are inert at runtime. Only the macros are
// gated on the flag -- the registry classes exist either way -- so linking
// against the normally-built library is ODR-safe.
#define TENDS_METRICS_ENABLED 0

#include <cstdio>

#include "common/metrics.h"

namespace {

// Mirrors how pipeline code consumes a RunContext: a possibly-null
// registry pointer threaded into macro call sites.
int SimulatedPipelineStage(tends::MetricsRegistry* metrics) {
  TENDS_METRICS_STAGE(metrics, "check_stage");
  TENDS_TRACE_SPAN(metrics, "check_span", 3);
  tends::Counter* counter =
      TENDS_METRIC_COUNTER(metrics, "tends.check.events");
  int work = 0;
  for (int i = 0; i < 1000; ++i) {
    work += i & 7;
    TENDS_COUNTER_ADD(counter, 1);
  }
  TENDS_METRIC_ADD(metrics, "tends.check.done", 1);
  TENDS_METRIC_RECORD(metrics, "tends.check.work", work);
  TENDS_GAUGE_SET(metrics, "tends.check.bytes", work * 8);
  return work;
}

}  // namespace

int main() {
  static_assert(TENDS_METRICS_ENABLED == 0,
                "this check must compile with the macros disabled");
  tends::MetricsRegistry registry;
  int with_registry = SimulatedPipelineStage(&registry);
  int without_registry = SimulatedPipelineStage(nullptr);
  if (with_registry != without_registry) {
    std::fprintf(stderr, "FAIL: disabled macros changed behavior\n");
    return 1;
  }
  // Disabled macros must not have touched the registry.
  if (registry.CounterValue("tends.check.done") != 0 ||
      !registry.GaugeValues().empty() || !registry.StageTimes().empty()) {
    std::fprintf(stderr, "FAIL: disabled macros recorded metrics\n");
    return 1;
  }
  std::printf("OK: disabled instrumentation path compiles and is inert\n");
  return 0;
}
