// bench_compare: diffs two tends.bench.v1 files (written by
// benchlib::MaybeWriteBenchJson) and fails when the candidate regresses
// against the baseline beyond per-metric noise thresholds. The accuracy
// metrics (f_score/precision/recall/edges) are bit-deterministic for a
// fixed seed, so their default thresholds are small; wall-clock and RSS
// gating is off by default because both are machine- and load-dependent.
//
// Usage: bench_compare <baseline.json> <candidate.json> [flags]
// Exit 0 = no regression, 1 = regression, 2 = bad input (unreadable file,
// wrong schema). Improvements never fail — the gate is one-sided.

#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "common/statusor.h"
#include "common/stringutil.h"

namespace tends {
namespace {

struct BenchRow {
  double f_score = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double seconds = 0.0;
  int64_t edges = 0;
  int64_t peak_rss_bytes = 0;
};

/// Rows keyed by "setting/algorithm" — the identity of one measurement
/// across the two files.
using RowMap = std::map<std::string, BenchRow>;

StatusOr<RowMap> LoadBenchFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  StatusOr<JsonValue> parsed = ParseJson(buffer.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   std::string(parsed.status().message()));
  }
  if (!parsed->is_object()) {
    return Status::InvalidArgument(path + ": top level is not an object");
  }
  const JsonValue* schema = parsed->Find("schema");
  if (schema == nullptr || schema->string_value() != "tends.bench.v1") {
    return Status::InvalidArgument(path + ": schema is not \"tends.bench.v1\"");
  }
  const JsonValue* rows = parsed->Find("rows");
  if (rows == nullptr || !rows->is_array() || rows->array().empty()) {
    return Status::InvalidArgument(path + ": missing non-empty rows array");
  }
  RowMap out;
  for (const JsonValue& row : rows->array()) {
    if (!row.is_object()) {
      return Status::InvalidArgument(path + ": row is not an object");
    }
    const JsonValue* setting = row.Find("setting");
    const JsonValue* algorithm = row.Find("algorithm");
    if (setting == nullptr || algorithm == nullptr) {
      return Status::InvalidArgument(path + ": row missing setting/algorithm");
    }
    const std::string key =
        setting->string_value() + "/" + algorithm->string_value();
    BenchRow parsed_row;
    auto number = [&](const char* name, double* destination) {
      const JsonValue* value = row.Find(name);
      if (value == nullptr || value->type() != JsonValue::Type::kNumber) {
        return Status::InvalidArgument(path + ": row " + key +
                                       " missing numeric " + name);
      }
      *destination = value->number_value();
      return Status::OK();
    };
    Status status = number("f_score", &parsed_row.f_score);
    if (status.ok()) status = number("precision", &parsed_row.precision);
    if (status.ok()) status = number("recall", &parsed_row.recall);
    if (status.ok()) status = number("seconds", &parsed_row.seconds);
    if (!status.ok()) return status;
    const JsonValue* edges = row.Find("edges");
    if (edges == nullptr || edges->type() != JsonValue::Type::kNumber) {
      return Status::InvalidArgument(path + ": row " + key +
                                     " missing numeric edges");
    }
    parsed_row.edges = edges->int_value();
    // Absent in pre-memory-accounting baselines; treated as "no data"
    // rather than a schema error so old baselines keep comparing.
    if (const JsonValue* peak = row.Find("peak_rss_bytes");
        peak != nullptr && peak->type() == JsonValue::Type::kNumber) {
      parsed_row.peak_rss_bytes = peak->int_value();
    }
    if (!out.emplace(key, parsed_row).second) {
      return Status::InvalidArgument(path + ": duplicate row " + key);
    }
  }
  return out;
}

int Run(int argc, const char* const* argv) {
  double max_fscore_drop = 0.02;
  double max_precision_drop = 0.05;
  double max_recall_drop = 0.05;
  double max_edges_rel = 0.25;
  double max_time_ratio = 0.0;
  double max_peak_rss_ratio = 0.0;

  FlagParser parser(
      "bench_compare: gate a candidate tends.bench.v1 file against a "
      "baseline. A candidate row regresses when an accuracy metric drops "
      "beyond its threshold, the edge count drifts beyond the relative "
      "bound, or (when enabled) time/RSS grow beyond their ratios; a "
      "baseline row missing from the candidate is also a regression.\n"
      "usage: bench_compare <baseline.json> <candidate.json> [flags]");
  parser.AddDouble("max_fscore_drop", &max_fscore_drop,
                   "largest tolerated absolute f_score drop per row");
  parser.AddDouble("max_precision_drop", &max_precision_drop,
                   "largest tolerated absolute precision drop per row");
  parser.AddDouble("max_recall_drop", &max_recall_drop,
                   "largest tolerated absolute recall drop per row");
  parser.AddDouble("max_edges_rel", &max_edges_rel,
                   "largest tolerated relative edge-count change per row");
  parser.AddDouble("max_time_ratio", &max_time_ratio,
                   "fail when candidate seconds exceed baseline * ratio "
                   "(0 = no time gating; wall-clock is noisy)");
  parser.AddDouble("max_peak_rss_ratio", &max_peak_rss_ratio,
                   "fail when candidate peak_rss_bytes exceed baseline * "
                   "ratio (0 = no memory gating)");
  Status status = parser.Parse(argc, argv);
  if (!status.ok()) {
    if (status.IsNotFound()) {
      std::cout << status.message() << "\n";
      return 0;
    }
    std::cerr << "error: " << status << "\n";
    return 2;
  }
  if (parser.positional().size() != 2) {
    std::cerr << "error: expected <baseline.json> <candidate.json>\n";
    return 2;
  }

  StatusOr<RowMap> baseline = LoadBenchFile(parser.positional()[0]);
  if (!baseline.ok()) {
    std::cerr << "error: " << baseline.status() << "\n";
    return 2;
  }
  StatusOr<RowMap> candidate = LoadBenchFile(parser.positional()[1]);
  if (!candidate.ok()) {
    std::cerr << "error: " << candidate.status() << "\n";
    return 2;
  }

  int regressions = 0;
  auto regress = [&](const std::string& key, const std::string& message) {
    std::cerr << "REGRESSION " << key << ": " << message << "\n";
    ++regressions;
  };
  for (const auto& [key, base] : *baseline) {
    auto it = candidate->find(key);
    if (it == candidate->end()) {
      regress(key, "row missing from candidate");
      continue;
    }
    const BenchRow& cand = it->second;
    auto drop_check = [&](const char* name, double base_value,
                          double cand_value, double max_drop) {
      if (base_value - cand_value > max_drop) {
        regress(key, StrFormat("%s dropped %.4f -> %.4f (threshold %.4f)",
                               name, base_value, cand_value, max_drop));
      }
    };
    drop_check("f_score", base.f_score, cand.f_score, max_fscore_drop);
    drop_check("precision", base.precision, cand.precision,
               max_precision_drop);
    drop_check("recall", base.recall, cand.recall, max_recall_drop);
    if (base.edges > 0) {
      const double rel =
          std::abs(static_cast<double>(cand.edges - base.edges)) /
          static_cast<double>(base.edges);
      if (rel > max_edges_rel) {
        regress(key, StrFormat("edges drifted %lld -> %lld (%.1f%% > %.1f%%)",
                               static_cast<long long>(base.edges),
                               static_cast<long long>(cand.edges), rel * 100,
                               max_edges_rel * 100));
      }
    }
    if (max_time_ratio > 0.0 && base.seconds > 0.0 &&
        cand.seconds > base.seconds * max_time_ratio) {
      regress(key, StrFormat("seconds grew %.4f -> %.4f (ratio cap %.2f)",
                             base.seconds, cand.seconds, max_time_ratio));
    }
    if (max_peak_rss_ratio > 0.0 && base.peak_rss_bytes > 0 &&
        static_cast<double>(cand.peak_rss_bytes) >
            static_cast<double>(base.peak_rss_bytes) * max_peak_rss_ratio) {
      regress(key,
              StrFormat("peak_rss_bytes grew %lld -> %lld (ratio cap %.2f)",
                        static_cast<long long>(base.peak_rss_bytes),
                        static_cast<long long>(cand.peak_rss_bytes),
                        max_peak_rss_ratio));
    }
  }
  for (const auto& entry : *candidate) {
    if (baseline->find(entry.first) == baseline->end()) {
      std::cout << "note: new row " << entry.first << " (not in baseline)\n";
    }
  }

  if (regressions > 0) {
    std::cerr << regressions << " regression(s) against "
              << parser.positional()[0] << "\n";
    return 1;
  }
  std::cout << "ok: " << candidate->size() << " row(s), no regressions\n";
  return 0;
}

}  // namespace
}  // namespace tends

int main(int argc, char** argv) { return tends::Run(argc, argv); }
