// Memory accounting: the /proc/self/status parser's tolerance for
// missing/garbled input (absent, never a crash), and the exactness
// contract of the tends.mem.* byte gauges — each must equal the computed
// size of its artifact for a known n/beta, on both the session path and
// the fresh InferFromStatuses path.

#include "common/memory_stats.h"

#include <cstdint>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "diffusion/cascade.h"
#include "inference/counting.h"
#include "inference/session.h"
#include "inference/tends.h"

namespace tends {
namespace {

int64_t GaugeOr(const MetricsRegistry& registry, const std::string& name,
                int64_t missing = -1) {
  for (const auto& [gauge_name, value] : registry.GaugeValues()) {
    if (gauge_name == name) return value;
  }
  return missing;
}

// 20 nodes x 96 processes; every column has exactly 32 ones (96/3), so no
// column is degenerate and validation passes with default options.
diffusion::StatusMatrix MakeStatuses(uint32_t beta = 96, uint32_t n = 20) {
  diffusion::StatusMatrix statuses(beta, n);
  for (uint32_t p = 0; p < beta; ++p) {
    for (uint32_t node = 0; node < n; ++node) {
      statuses.Set(p, node, (p + node) % 3 == 0 ? 1 : 0);
    }
  }
  return statuses;
}

TEST(MemoryStatsTest, ParsesWellFormedStatusLine) {
  const std::string text =
      "Name:\ttends\nVmPeak:\t  999 kB\nVmHWM:\t    1234 kB\nVmRSS:\t 8 kB\n";
  auto parsed = ParseProcStatusBytes(text, "VmHWM");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, 1234 * 1024);
  auto rss = ParseProcStatusBytes(text, "VmRSS");
  ASSERT_TRUE(rss.has_value());
  EXPECT_EQ(*rss, 8 * 1024);
}

TEST(MemoryStatsTest, ParserHandlesCarriageReturn) {
  auto parsed = ParseProcStatusBytes("VmHWM:  42 kB\r\n", "VmHWM");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, 42 * 1024);
}

TEST(MemoryStatsTest, ParserReturnsAbsentOnMissingKey) {
  EXPECT_FALSE(ParseProcStatusBytes("VmPeak:\t 1 kB\n", "VmHWM").has_value());
  EXPECT_FALSE(ParseProcStatusBytes("", "VmHWM").has_value());
}

TEST(MemoryStatsTest, ParserRejectsKeyPrefixConfusion) {
  // "VmHWMx:" must not satisfy a lookup for "VmHWM" (and vice versa a
  // short key must not match a longer line's prefix).
  EXPECT_FALSE(ParseProcStatusBytes("VmHWMx:\t 5 kB\n", "VmHWM").has_value());
  EXPECT_FALSE(ParseProcStatusBytes("VmHWM:\t 5 kB\n", "VmH").has_value());
}

TEST(MemoryStatsTest, ParserReturnsAbsentOnGarbledLines) {
  // Garbled digits, missing number, missing/wrong unit: absent, no crash.
  EXPECT_FALSE(ParseProcStatusBytes("VmHWM:\t 12x34 kB\n", "VmHWM").has_value());
  EXPECT_FALSE(ParseProcStatusBytes("VmHWM:\t kB\n", "VmHWM").has_value());
  EXPECT_FALSE(ParseProcStatusBytes("VmHWM:\t 1234\n", "VmHWM").has_value());
  EXPECT_FALSE(ParseProcStatusBytes("VmHWM:\t 1234 mB\n", "VmHWM").has_value());
  EXPECT_FALSE(ParseProcStatusBytes("VmHWM:\n", "VmHWM").has_value());
}

TEST(MemoryStatsTest, ParserReturnsAbsentOnOverflow) {
  EXPECT_FALSE(
      ParseProcStatusBytes("VmHWM: 99999999999999999999 kB\n", "VmHWM")
          .has_value());
  // Fits in int64 as kB but overflows once scaled to bytes.
  EXPECT_FALSE(
      ParseProcStatusBytes("VmHWM: 9223372036854775807 kB\n", "VmHWM")
          .has_value());
}

TEST(MemoryStatsTest, LiveProcReadReportsPositivePeak) {
  auto peak = ReadPeakRssBytes();
  ASSERT_TRUE(peak.has_value());
  EXPECT_GT(*peak, 0);
  auto current = ReadCurrentRssBytes();
  ASSERT_TRUE(current.has_value());
  EXPECT_GT(*current, 0);
}

TEST(MemoryStatsTest, RecordRunStatsIsNullSafe) { RecordRunStats(nullptr); }

// The gauge-exactness suite only applies when instrumentation is compiled
// in; the nometrics build compiles every gauge site to a no-op.
#if TENDS_METRICS_ENABLED

TEST(MemoryStatsTest, RecordRunStatsSetsProcessGauges) {
  MetricsRegistry registry;
  RecordRunStats(&registry);
  EXPECT_GT(GaugeOr(registry, "tends.mem.peak_rss_bytes"), 0);
  EXPECT_GT(GaugeOr(registry, "tends.mem.current_rss_bytes"), 0);
  EXPECT_EQ(GaugeOr(registry, "tends.trace.dropped_spans"), 0);
}

TEST(MemoryStatsTest, SessionArtifactGaugesMatchComputedSizes) {
  const uint32_t n = 20;
  const uint32_t beta = 96;
  MetricsRegistry registry;
  inference::InferenceSession session(MakeStatuses(beta, n));
  const inference::ArtifactContext artifact_context{.metrics = &registry};
  session.packed(artifact_context);
  session.marginal_counts(artifact_context);
  session.pair_counts(artifact_context);
  session.imi(inference::MiVariant::kInfection, artifact_context);
  RunContext context;
  context.metrics = &registry;
  auto run = session.Run(inference::TendsOptions(), context);
  ASSERT_TRUE(run.ok()) << run.status();

  // Exact artifact arithmetic for n=20, beta=96:
  //   status matrix   beta * n                      = 1920 bytes
  //   packed columns  n * ceil(beta/64) * 8         = 320 bytes
  //   marginal counts n * 4                         = 80 bytes
  //   pair counts     C(n,2) * sizeof(PairCounts)   = 190 * 16 = 3040 bytes
  //   IMI matrix      n * n * 8                     = 3200 bytes
  EXPECT_EQ(GaugeOr(registry, "tends.mem.status_matrix_bytes"), 1920);
  EXPECT_EQ(GaugeOr(registry, "tends.mem.packed_statuses_bytes"), 320);
  EXPECT_EQ(GaugeOr(registry, "tends.mem.marginal_counts_bytes"), 80);
  EXPECT_EQ(GaugeOr(registry, "tends.mem.pair_counts_bytes"), 3040);
  EXPECT_EQ(GaugeOr(registry, "tends.mem.imi_matrix_bytes"), 3200);
}

TEST(MemoryStatsTest, FreshInferGaugesMatchComputedSizes) {
  MetricsRegistry registry;
  RunContext context;
  context.metrics = &registry;
  inference::Tends tends{inference::TendsOptions()};
  auto result = tends.InferFromStatuses(MakeStatuses(), context);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(GaugeOr(registry, "tends.mem.status_matrix_bytes"), 1920);
  EXPECT_EQ(GaugeOr(registry, "tends.mem.packed_statuses_bytes"), 320);
  EXPECT_EQ(GaugeOr(registry, "tends.mem.pair_counts_bytes"), 3040);
  EXPECT_EQ(GaugeOr(registry, "tends.mem.imi_matrix_bytes"), 3200);
}

TEST(MemoryStatsTest, CheckpointBufferGaugeTracksEncodedSize) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "tends_memory_stats_ckpt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  inference::TendsOptions options;
  options.checkpoint.directory = dir.string();
  options.checkpoint.every_nodes = 1;
  MetricsRegistry registry;
  RunContext context;
  context.metrics = &registry;
  inference::Tends tends(options);
  auto result = tends.InferFromStatuses(MakeStatuses(), context);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(GaugeOr(registry, "tends.mem.checkpoint_buffer_bytes"), 0);
  std::filesystem::remove_all(dir);
}

#endif  // TENDS_METRICS_ENABLED

}  // namespace
}  // namespace tends
