#include "common/metrics.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"

namespace tends {
namespace {

TEST(MetricNameTest, ValidatesScheme) {
  EXPECT_TRUE(IsValidMetricName("tends.imi.pairs"));
  EXPECT_TRUE(IsValidMetricName("tends.parent_search.score_evaluations"));
  EXPECT_TRUE(IsValidMetricName("tends.io.corruption.bad_token"));

  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("tends"));
  EXPECT_FALSE(IsValidMetricName("tends.pairs"));          // two segments
  EXPECT_FALSE(IsValidMetricName("other.imi.pairs"));      // wrong prefix
  EXPECT_FALSE(IsValidMetricName("tends.Imi.pairs"));      // uppercase
  EXPECT_FALSE(IsValidMetricName("tends.imi.pairs "));     // space
  EXPECT_FALSE(IsValidMetricName("tends..pairs"));         // empty segment
  EXPECT_FALSE(IsValidMetricName("tends.io.bad-token"));   // hyphen
  EXPECT_FALSE(IsValidMetricName(".tends.imi.pairs"));
  EXPECT_FALSE(IsValidMetricName("tends.imi.pairs."));
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("tends.test.concurrent_adds");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(RegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("tends.test.shared");
  Counter& b = registry.GetCounter("tends.test.shared");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(registry.CounterValue("tends.test.shared"), 3u);
  EXPECT_EQ(registry.CounterValue("tends.test.never_registered"), 0u);
}

TEST(RegistryTest, ConcurrentRegistrationYieldsOneMetricPerName) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("tends.test.race").Increment();
        registry.GetHistogram("tends.test.race_hist").Record(i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.CounterValue("tends.test.race"), 8000u);
  EXPECT_EQ(registry.GetHistogram("tends.test.race_hist").count(), 8000u);
}

TEST(HistogramTest, BucketIndexIsLogScale) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
}

TEST(HistogramTest, SummaryQuantilesAreBucketUpperBounds) {
  Histogram histogram;
  // 90 small values and 10 large ones: p50 lands in the small bucket,
  // p99 in the large one.
  for (int i = 0; i < 90; ++i) histogram.Record(3);
  for (int i = 0; i < 10; ++i) histogram.Record(1000);
  Histogram::Summary summary = histogram.Summarize();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_EQ(summary.sum, 90u * 3 + 10u * 1000);
  EXPECT_EQ(summary.p50, 3u);     // bucket [2,3]
  EXPECT_EQ(summary.p90, 3u);
  EXPECT_EQ(summary.p99, 1023u);  // bucket [512,1023]
  EXPECT_EQ(summary.max, 1023u);
}

TEST(HistogramTest, ConcurrentRecordsKeepTotals) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<uint64_t>(t * 31 + i % 97));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    bucket_total += histogram.bucket(b);
  }
  EXPECT_EQ(bucket_total, histogram.count());
}

TEST(StageTest, ScopedStageAccumulatesAndOrdersByFirstUse) {
  MetricsRegistry registry;
  { ScopedStage stage(&registry, "alpha"); }
  { ScopedStage stage(&registry, "beta"); }
  { ScopedStage stage(&registry, "alpha"); }
  std::vector<StageTime> stages = registry.StageTimes();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].name, "alpha");
  EXPECT_EQ(stages[0].count, 2u);
  EXPECT_EQ(stages[1].name, "beta");
  EXPECT_EQ(stages[1].count, 1u);
  // Null registry: the disabled path must be inert.
  { ScopedStage stage(nullptr, "gamma"); }
  EXPECT_EQ(registry.StageWallNs("gamma"), 0u);
}

TEST(MacroTest, MacrosTolerateNullRegistry) {
  MetricsRegistry* registry = nullptr;
  Counter* counter = TENDS_METRIC_COUNTER(registry, "tends.test.null_reg");
  TENDS_COUNTER_ADD(counter, 5);
  TENDS_METRIC_ADD(registry, "tends.test.null_reg", 1);
  TENDS_METRIC_RECORD(registry, "tends.test.null_hist", 1);
  TENDS_METRICS_STAGE(registry, "null_stage");
  TENDS_TRACE_SPAN(registry, "null_span");
#if TENDS_METRICS_ENABLED
  EXPECT_EQ(counter, nullptr);
#endif
}

TEST(MacroTest, MacrosRecordIntoRegistry) {
  MetricsRegistry registry;
  MetricsRegistry* metrics = &registry;
  Counter* counter = TENDS_METRIC_COUNTER(metrics, "tends.test.macro_add");
  TENDS_COUNTER_ADD(counter, 2);
  TENDS_METRIC_ADD(metrics, "tends.test.macro_add", 3);
  TENDS_METRIC_RECORD(metrics, "tends.test.macro_hist", 7);
  {
    TENDS_METRICS_STAGE(metrics, "macro_stage");
    TENDS_TRACE_SPAN(metrics, "macro_span", 11);
  }
#if TENDS_METRICS_ENABLED
  EXPECT_EQ(registry.CounterValue("tends.test.macro_add"), 5u);
  EXPECT_EQ(registry.GetHistogram("tends.test.macro_hist").count(), 1u);
  EXPECT_EQ(registry.StageTimes().size(), 1u);
  std::vector<TraceSpan> spans = registry.tracer().Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "macro_span");
  EXPECT_EQ(spans[0].detail, 11);
#endif
}

TEST(ManifestTest, JsonRoundTripsThroughParser) {
  MetricsRegistry registry;
  MetricsRegistry* metrics = &registry;
  registry.GetCounter("tends.test.events").Add(42);
  registry.GetGauge("tends.test.level").Set(-3);
  registry.GetHistogram("tends.test.sizes").Record(10);
  { ScopedStage stage(&registry, "imi"); }
  { TENDS_TRACE_SPAN(metrics, "imi"); }

  RunManifest manifest;
  manifest.tool = "metrics_test";
  manifest.config = {{"alpha", "0.15"}, {"graph", "toy.txt"}};
  manifest.wall_seconds = 1.25;

  std::string json = MetricsManifestJson(manifest, registry);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << json;

  EXPECT_EQ(parsed->Find("schema")->string_value(), "tends.metrics.v1");
  EXPECT_EQ(parsed->Find("tool")->string_value(), "metrics_test");
  EXPECT_EQ(parsed->Find("git")->string_value(), BuildGitDescribe());
  EXPECT_DOUBLE_EQ(parsed->Find("wall_seconds")->number_value(), 1.25);
  EXPECT_EQ(parsed->FindPath({"config", "alpha"})->string_value(), "0.15");
  EXPECT_EQ(parsed->FindPath({"metrics", "counters", "tends.test.events"})
                ->int_value(),
            42);
  EXPECT_EQ(
      parsed->FindPath({"metrics", "gauges", "tends.test.level"})->int_value(),
      -3);
  EXPECT_EQ(parsed
                ->FindPath(
                    {"metrics", "histograms", "tends.test.sizes", "count"})
                ->int_value(),
            1);
  ASSERT_NE(parsed->FindPath({"metrics", "stages", "imi"}), nullptr);
#if TENDS_METRICS_ENABLED
  EXPECT_EQ(parsed->FindPath({"metrics", "spans", "imi", "count"})->int_value(),
            1);
#endif
  const bool enabled = TENDS_METRICS_ENABLED != 0;
  EXPECT_EQ(parsed->Find("metrics_enabled")->bool_value(), enabled);
}

TEST(ManifestTest, WriteMetricsManifestCreatesParsableFile) {
  MetricsRegistry registry;
  registry.GetCounter("tends.test.file_events").Add(7);
  RunManifest manifest;
  manifest.tool = "metrics_test";

  std::string path =
      testing::TempDir() + "/tends_metrics_manifest_test.json";
  ASSERT_TRUE(WriteMetricsManifest(manifest, registry, path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = ParseJson(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(
      parsed->FindPath({"metrics", "counters", "tends.test.file_events"})
          ->int_value(),
      7);
  std::remove(path.c_str());

  EXPECT_FALSE(WriteMetricsManifest(manifest, registry,
                                    "/nonexistent_dir_xyz/m.json")
                   .ok());
}

TEST(ProgressReporterTest, EmitsAndStopsCleanly) {
  MetricsRegistry registry;
  registry.GetCounter("tends.test.progress").Add(1);
  int calls = 0;
  {
    ProgressReporter reporter(
        &registry, std::chrono::milliseconds(5),
        [&calls](const MetricsRegistry& r) {
          ++calls;
          return "test progress " +
                 std::to_string(r.CounterValue("tends.test.progress"));
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    reporter.Stop();
    reporter.Stop();  // idempotent
  }
  EXPECT_GE(calls, 1);
}

}  // namespace
}  // namespace tends
