#include "inference/io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace tends::inference {
namespace {

TEST(InferredNetworkIoTest, RoundTrip) {
  InferredNetwork original(5);
  original.AddEdge(0, 1, 0.25);
  original.AddEdge(3, 2, 1.75e-3);
  original.AddEdge(4, 0, 1.0);
  std::stringstream stream;
  ASSERT_TRUE(WriteInferredNetwork(original, stream).ok());
  auto parsed = ReadInferredNetwork(stream);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_nodes(), 5u);
  ASSERT_EQ(parsed->num_edges(), 3u);
  for (size_t e = 0; e < 3; ++e) {
    EXPECT_EQ(parsed->edges()[e].edge, original.edges()[e].edge);
    EXPECT_DOUBLE_EQ(parsed->edges()[e].weight, original.edges()[e].weight);
  }
}

TEST(InferredNetworkIoTest, EmptyNetworkRoundTrip) {
  InferredNetwork original(3);
  std::stringstream stream;
  ASSERT_TRUE(WriteInferredNetwork(original, stream).ok());
  auto parsed = ReadInferredNetwork(stream);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_edges(), 0u);
}

TEST(InferredNetworkIoTest, RejectsMissingHeader) {
  std::istringstream in("3\n0 1 0.5\n");
  EXPECT_TRUE(ReadInferredNetwork(in).status().IsCorruption());
}

TEST(InferredNetworkIoTest, RejectsBadEdgeLine) {
  std::istringstream in("# tends-network v1\n3\n0 1\n");
  EXPECT_TRUE(ReadInferredNetwork(in).status().IsCorruption());
  std::istringstream in2("# tends-network v1\n3\n0 1 x\n");
  EXPECT_TRUE(ReadInferredNetwork(in2).status().IsCorruption());
}

TEST(InferredNetworkIoTest, RejectsOutOfRangeEndpoint) {
  std::istringstream in("# tends-network v1\n3\n0 3 0.5\n");
  EXPECT_TRUE(ReadInferredNetwork(in).status().IsCorruption());
}

TEST(InferredNetworkIoTest, SkipsCommentsAndBlanks) {
  std::istringstream in("# tends-network v1\n2\n# comment\n\n0 1 0.5\n");
  auto parsed = ReadInferredNetwork(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_edges(), 1u);
}

TEST(InferredNetworkIoTest, FileErrors) {
  EXPECT_TRUE(ReadInferredNetworkFile("/nonexistent_tends/n.txt")
                  .status()
                  .IsIoError());
}

}  // namespace
}  // namespace tends::inference
