#include "inference/io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace tends::inference {
namespace {

TEST(InferredNetworkIoTest, RoundTrip) {
  InferredNetwork original(5);
  original.AddEdge(0, 1, 0.25);
  original.AddEdge(3, 2, 1.75e-3);
  original.AddEdge(4, 0, 1.0);
  std::stringstream stream;
  ASSERT_TRUE(WriteInferredNetwork(original, stream).ok());
  auto parsed = ReadInferredNetwork(stream);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_nodes(), 5u);
  ASSERT_EQ(parsed->num_edges(), 3u);
  for (size_t e = 0; e < 3; ++e) {
    EXPECT_EQ(parsed->edges()[e].edge, original.edges()[e].edge);
    EXPECT_DOUBLE_EQ(parsed->edges()[e].weight, original.edges()[e].weight);
  }
}

TEST(InferredNetworkIoTest, EmptyNetworkRoundTrip) {
  InferredNetwork original(3);
  std::stringstream stream;
  ASSERT_TRUE(WriteInferredNetwork(original, stream).ok());
  auto parsed = ReadInferredNetwork(stream);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_edges(), 0u);
}

TEST(InferredNetworkIoTest, RejectsMissingHeader) {
  std::istringstream in("3\n0 1 0.5\n");
  EXPECT_TRUE(ReadInferredNetwork(in).status().IsCorruption());
}

TEST(InferredNetworkIoTest, RejectsBadEdgeLine) {
  std::istringstream in("# tends-network v1\n3\n0 1\n");
  EXPECT_TRUE(ReadInferredNetwork(in).status().IsCorruption());
  std::istringstream in2("# tends-network v1\n3\n0 1 x\n");
  EXPECT_TRUE(ReadInferredNetwork(in2).status().IsCorruption());
}

TEST(InferredNetworkIoTest, RejectsOutOfRangeEndpoint) {
  std::istringstream in("# tends-network v1\n3\n0 3 0.5\n");
  EXPECT_TRUE(ReadInferredNetwork(in).status().IsCorruption());
}

TEST(InferredNetworkIoTest, SkipsCommentsAndBlanks) {
  std::istringstream in("# tends-network v1\n2\n# comment\n\n0 1 0.5\n");
  auto parsed = ReadInferredNetwork(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_edges(), 1u);
}

TEST(InferredNetworkIoTest, FileErrors) {
  EXPECT_TRUE(ReadInferredNetworkFile("/nonexistent_tends/n.txt")
                  .status()
                  .IsIoError());
}

TEST(InferredNetworkIoTest, StrictErrorsNameLineAndToken) {
  std::istringstream in("# tends-network v1\n3\n0 1 0.5\n0 zz 0.25\n");
  auto status = ReadInferredNetwork(in).status();
  ASSERT_TRUE(status.IsCorruption());
  EXPECT_NE(status.message().find("line 4"), std::string::npos) << status;
  EXPECT_NE(status.message().find("zz"), std::string::npos) << status;
}

TEST(InferredNetworkIoTest, StrictRejectsNonFiniteWeights) {
  std::istringstream in("# tends-network v1\n3\n0 1 nan\n");
  auto status = ReadInferredNetwork(in).status();
  ASSERT_TRUE(status.IsCorruption());
  EXPECT_NE(status.message().find("non-finite"), std::string::npos) << status;
  std::istringstream in2("# tends-network v1\n3\n0 1 inf\n");
  EXPECT_TRUE(ReadInferredNetwork(in2).status().IsCorruption());
}

TEST(InferredNetworkIoTest, PermissiveSkipsCorruptEdges) {
  std::istringstream in(
      "# tends-network v1\n4\n0 1 0.5\n0 zz 0.25\n1 2 inf\n9 9 1.0\n2 3\n"
      "2 3 0.125\n");
  CorruptionReport report;
  auto parsed =
      ReadInferredNetwork(in, {.mode = IoMode::kPermissive}, &report);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_nodes(), 4u);
  ASSERT_EQ(parsed->num_edges(), 2u);
  EXPECT_EQ(parsed->edges()[0].edge, (graph::Edge{0, 1}));
  EXPECT_EQ(parsed->edges()[1].edge, (graph::Edge{2, 3}));
  EXPECT_EQ(report.total(), 4u);
  EXPECT_EQ(report.skipped_records(), 4u);
  EXPECT_EQ(report.count(CorruptionKind::kBadToken), 1u);
  EXPECT_EQ(report.count(CorruptionKind::kNonFinite), 1u);
  EXPECT_EQ(report.count(CorruptionKind::kOutOfRange), 1u);
  EXPECT_EQ(report.count(CorruptionKind::kWrongWidth), 1u);
  EXPECT_EQ(report.stats(CorruptionKind::kBadToken).first_line, 4u);
}

TEST(InferredNetworkIoTest, PermissiveSizesNetworkFromEdgesWithoutCount) {
  // A damaged node-count line: permissive sizes the network from the
  // largest surviving endpoint instead of giving up.
  std::istringstream in("# tends-network v1\nbogus\n0 1 0.5\n4 2 0.25\n");
  CorruptionReport report;
  auto parsed =
      ReadInferredNetwork(in, {.mode = IoMode::kPermissive}, &report);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_nodes(), 5u);
  EXPECT_EQ(parsed->num_edges(), 2u);
  EXPECT_EQ(report.count(CorruptionKind::kBadToken), 1u);
}

TEST(InferredNetworkIoTest, PermissiveStillFailsWhenNothingSurvives) {
  std::istringstream in("garbage\nmore garbage\n");
  CorruptionReport report;
  EXPECT_TRUE(ReadInferredNetwork(in, {.mode = IoMode::kPermissive}, &report)
                  .status()
                  .IsCorruption());
}

}  // namespace
}  // namespace tends::inference
