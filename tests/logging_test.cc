#include "common/logging.h"

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace tends {
namespace {

// Restores the default sink and level even when a test fails mid-way.
class LoggingTest : public testing::Test {
 protected:
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(LogLevel::kInfo);
  }
};

TEST_F(LoggingTest, SinkReceivesLevelAndMessage) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&captured](LogLevel level, std::string_view message) {
    captured.emplace_back(level, std::string(message));
  });
  TENDS_LOG(Info) << "hello " << 42;
  TENDS_LOG(Warning) << "careful";
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_NE(captured[0].second.find("hello 42"), std::string::npos);
  EXPECT_NE(captured[0].second.find("logging_test.cc"), std::string::npos);
  EXPECT_EQ(captured[1].first, LogLevel::kWarning);
}

TEST_F(LoggingTest, LevelFilterStillApplies) {
  int calls = 0;
  SetLogSink([&calls](LogLevel, std::string_view) { ++calls; });
  SetLogLevel(LogLevel::kWarning);
  TENDS_LOG(Info) << "suppressed";
  TENDS_LOG(Warning) << "emitted";
  EXPECT_EQ(calls, 1);
}

TEST_F(LoggingTest, NullSinkRestoresDefault) {
  int calls = 0;
  SetLogSink([&calls](LogLevel, std::string_view) { ++calls; });
  TENDS_LOG(Info) << "to sink";
  SetLogSink(nullptr);
  TENDS_LOG(Info) << "to stderr";  // must not crash, goes to stderr
  EXPECT_EQ(calls, 1);
}

// Messages logged concurrently from many threads must arrive whole: the
// sink runs under the logging mutex, so no message may interleave with or
// tear another.
TEST_F(LoggingTest, ConcurrentMessagesArriveWholeAndComplete) {
  std::vector<std::string> messages;
  bool reentered = false;
  std::mutex sink_mu;
  SetLogSink([&](LogLevel, std::string_view message) {
    // The logging mutex already serializes the sink; sink_mu only guards
    // against a hypothetical broken implementation calling it in parallel.
    std::unique_lock<std::mutex> lock(sink_mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      reentered = true;
      return;
    }
    messages.emplace_back(message);
  });

  constexpr int kThreads = 8;
  constexpr int kMessagesPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kMessagesPerThread; ++i) {
        TENDS_LOG(Info) << "thread=" << t << " message=" << i << " end";
      }
    });
  }
  for (auto& thread : threads) thread.join();
  SetLogSink(nullptr);

  EXPECT_FALSE(reentered);
  ASSERT_EQ(messages.size(),
            static_cast<size_t>(kThreads) * kMessagesPerThread);
  for (const std::string& message : messages) {
    // Every message is intact: prefix present, suffix present.
    EXPECT_NE(message.find("thread="), std::string::npos) << message;
    EXPECT_NE(message.find(" end"), std::string::npos) << message;
  }
}

}  // namespace
}  // namespace tends
