#include "common/stringutil.h"

#include <gtest/gtest.h>

namespace tends {
namespace {

TEST(SplitTest, BasicFields) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(SplitTest, NoDelimiter) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  auto parts = SplitWhitespace("  a \t b\n\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWhitespaceTest, EmptyInput) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   \t\n").empty());
}

TEST(StripWhitespaceTest, Strips) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("x"), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace(" a b "), "a b");
}

TEST(ParseInt64Test, ParsesValid) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("  13  "), 13);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(ParseInt64Test, RejectsInvalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseUint32Test, ParsesValidAndRejectsOutOfRange) {
  EXPECT_EQ(*ParseUint32("4294967295"), 4294967295u);
  EXPECT_FALSE(ParseUint32("4294967296").ok());
  EXPECT_FALSE(ParseUint32("-1").ok());
}

TEST(ParseDoubleTest, ParsesValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 3 "), 3.0);
}

TEST(ParseDoubleTest, RejectsInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("1.5z").ok());
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_arg(5000, 'a');
  std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

}  // namespace
}  // namespace tends
