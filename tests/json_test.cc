#include "common/json.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace tends {
namespace {

TEST(JsonWriterTest, EmptyObjectAndArray) {
  JsonWriter w;
  w.BeginObject();
  w.EndObject();
  EXPECT_TRUE(w.balanced());
  EXPECT_EQ(w.str(), "{}");

  JsonWriter a;
  a.BeginArray();
  a.EndArray();
  EXPECT_EQ(a.str(), "[]");
}

TEST(JsonWriterTest, ObjectWithMixedValues) {
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("name", "tends");
  w.KeyValue("nodes", static_cast<uint64_t>(42));
  w.KeyValue("offset", static_cast<int64_t>(-7));
  w.KeyValue("ratio", 0.5);
  w.KeyValue("ok", true);
  w.Key("missing");
  w.Null();
  w.EndObject();
  EXPECT_TRUE(w.balanced());
  EXPECT_EQ(w.str(),
            "{\"name\":\"tends\",\"nodes\":42,\"offset\":-7,\"ratio\":0.5,"
            "\"ok\":true,\"missing\":null}");
}

// A string literal must render as a JSON string, not a bool (const char* ->
// bool is a standard conversion and would otherwise win overload
// resolution).
TEST(JsonWriterTest, StringLiteralIsNotBool) {
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("schema", "tends.metrics.v1");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"schema\":\"tends.metrics.v1\"}");
}

TEST(JsonWriterTest, NestedContainersAndCommas) {
  JsonWriter w;
  w.BeginArray();
  w.Int(1);
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.Int(2);
  w.Int(3);
  w.EndArray();
  w.EndObject();
  w.String("x");
  w.EndArray();
  EXPECT_EQ(w.str(), "[1,{\"a\":[2,3]},\"x\"]");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("s", "a\"b\\c\n\t\x01");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(1.5);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(JsonParseTest, ParsesScalars) {
  auto v = ParseJson("42");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type(), JsonValue::Type::kNumber);
  EXPECT_EQ(v->int_value(), 42);

  v = ParseJson("\"hi\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "hi");

  v = ParseJson("true");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->bool_value());

  v = ParseJson(" null ");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());

  v = ParseJson("-2.5e2");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->number_value(), -250.0);
}

TEST(JsonParseTest, ParsesNestedDocument) {
  auto v = ParseJson(R"({"a": [1, 2, {"b": "c"}], "d": {"e": false}})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_EQ(a->array()[1].int_value(), 2);
  const JsonValue* e = v->FindPath({"d", "e"});
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->bool_value());
  EXPECT_EQ(v->FindPath({"d", "zzz"}), nullptr);
}

TEST(JsonParseTest, UnicodeEscapesDecodeToUtf8) {
  auto v = ParseJson("\"\\u0041\\u00e9\\u20ac\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "A\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // trailing garbage
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());

  std::string shallow(10, '[');
  shallow += std::string(10, ']');
  EXPECT_TRUE(ParseJson(shallow).ok());
}

TEST(JsonRoundTripTest, WriterOutputParsesBackIdentically) {
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("tool", "round trip \"quoted\"\n");
  w.KeyValue("count", static_cast<uint64_t>(123456789));
  w.KeyValue("ratio", 0.25);
  w.Key("list");
  w.BeginArray();
  for (int i = 0; i < 5; ++i) w.Int(i * i);
  w.EndArray();
  w.EndObject();

  auto v = ParseJson(w.str());
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->Find("tool")->string_value(), "round trip \"quoted\"\n");
  EXPECT_EQ(v->Find("count")->int_value(), 123456789);
  EXPECT_DOUBLE_EQ(v->Find("ratio")->number_value(), 0.25);
  const auto& list = v->Find("list")->array();
  ASSERT_EQ(list.size(), 5u);
  EXPECT_EQ(list[4].int_value(), 16);
}

}  // namespace
}  // namespace tends
