#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "test_util.h"

namespace tends::graph {
namespace {

using ::tends::testing::MakeGraph;

TEST(DirectedGraphTest, EmptyGraph) {
  DirectedGraph graph(5);
  EXPECT_EQ(graph.num_nodes(), 5u);
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_EQ(graph.AverageDegree(), 0.0);
  EXPECT_TRUE(graph.OutNeighbors(0).empty());
  EXPECT_TRUE(graph.InNeighbors(4).empty());
}

TEST(DirectedGraphTest, ZeroNodeGraph) {
  DirectedGraph graph;
  EXPECT_EQ(graph.num_nodes(), 0u);
  EXPECT_EQ(graph.AverageDegree(), 0.0);
}

TEST(DirectedGraphTest, AdjacencyIsCorrectAndSorted) {
  auto graph = MakeGraph(4, {{0, 2}, {0, 1}, {2, 1}, {3, 0}});
  ASSERT_EQ(graph.num_edges(), 4u);
  auto out0 = graph.OutNeighbors(0);
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(out0[0], 1u);  // sorted
  EXPECT_EQ(out0[1], 2u);
  auto in1 = graph.InNeighbors(1);
  ASSERT_EQ(in1.size(), 2u);
  EXPECT_EQ(in1[0], 0u);
  EXPECT_EQ(in1[1], 2u);
  EXPECT_EQ(graph.InDegree(0), 1u);
  EXPECT_EQ(graph.OutDegree(3), 1u);
  EXPECT_EQ(graph.OutDegree(1), 0u);
}

TEST(DirectedGraphTest, HasEdgeIsDirectional) {
  auto graph = MakeGraph(3, {{0, 1}});
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_FALSE(graph.HasEdge(1, 0));
  EXPECT_FALSE(graph.HasEdge(0, 2));
}

TEST(DirectedGraphTest, EdgesReturnsLexicographicOrder) {
  auto graph = MakeGraph(3, {{2, 0}, {0, 2}, {0, 1}});
  auto edges = graph.Edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{0, 2}));
  EXPECT_EQ(edges[2], (Edge{2, 0}));
}

TEST(DirectedGraphTest, EdgeIndexIsDenseAndAligned) {
  auto graph = MakeGraph(3, {{0, 1}, {0, 2}, {1, 2}});
  EXPECT_EQ(graph.EdgeIndex(0, 1), 0u);
  EXPECT_EQ(graph.EdgeIndex(0, 2), 1u);
  EXPECT_EQ(graph.EdgeIndex(1, 2), 2u);
  EXPECT_EQ(graph.EdgeIndex(2, 0), DirectedGraph::kInvalidEdgeIndex);
  EXPECT_EQ(graph.OutEdgeBegin(1), 2u);
  // Alignment contract: OutEdgeBegin(u) + position in OutNeighbors(u).
  uint64_t index = graph.OutEdgeBegin(0);
  for (NodeId v : graph.OutNeighbors(0)) {
    EXPECT_EQ(graph.EdgeIndex(0, v), index++);
  }
}

TEST(DirectedGraphTest, AverageDegree) {
  auto graph = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {2, 0}});
  EXPECT_DOUBLE_EQ(graph.AverageDegree(), 6.0 / 4.0);
}

TEST(DirectedGraphTest, EqualityAndDebugString) {
  auto a = MakeGraph(3, {{0, 1}, {1, 2}});
  auto b = MakeGraph(3, {{1, 2}, {0, 1}});
  auto c = MakeGraph(3, {{0, 1}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.DebugString(), "DirectedGraph(n=3, m=2)");
}

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder builder(3);
  Status status = builder.AddEdge(1, 1);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.num_edges(), 0u);
}

TEST(GraphBuilderTest, RejectsOutOfRange) {
  GraphBuilder builder(3);
  EXPECT_EQ(builder.AddEdge(0, 3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.AddEdge(3, 0).code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsDuplicate) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  EXPECT_EQ(builder.AddEdge(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(builder.num_edges(), 1u);
}

TEST(GraphBuilderTest, AddEdgeIfAbsentToleratesDuplicates) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.AddEdgeIfAbsent(0, 1).ok());
  EXPECT_TRUE(builder.AddEdgeIfAbsent(0, 1).ok());
  EXPECT_EQ(builder.num_edges(), 1u);
  // Still rejects genuinely invalid edges.
  EXPECT_FALSE(builder.AddEdgeIfAbsent(0, 0).ok());
}

TEST(GraphBuilderTest, HasEdgeTracksInsertions) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.HasEdge(0, 1));
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  EXPECT_TRUE(builder.HasEdge(0, 1));
  EXPECT_FALSE(builder.HasEdge(1, 0));
}

TEST(GraphBuilderTest, AddUndirectedEdgeAddsBothDirections) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddUndirectedEdge(0, 2).ok());
  auto graph = builder.Build();
  EXPECT_TRUE(graph.HasEdge(0, 2));
  EXPECT_TRUE(graph.HasEdge(2, 0));
  EXPECT_EQ(graph.num_edges(), 2u);
}

TEST(GraphBuilderTest, BuildIsReusable) {
  GraphBuilder builder(2);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  auto g1 = builder.Build();
  ASSERT_TRUE(builder.AddEdge(1, 0).ok());
  auto g2 = builder.Build();
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(g2.num_edges(), 2u);
}

}  // namespace
}  // namespace tends::graph
