#include "inference/kmeans_threshold.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace tends::inference {
namespace {

TEST(KmeansThresholdTest, EmptyInput) {
  ImiThreshold result = FindImiThreshold(std::vector<double>{});
  EXPECT_DOUBLE_EQ(result.tau, 0.0);
  EXPECT_EQ(result.noise_count, 0u);
  EXPECT_EQ(result.signal_count, 0u);
}

TEST(KmeansThresholdTest, AllZeros) {
  ImiThreshold result = FindImiThreshold({0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(result.tau, 0.0);
}

TEST(KmeansThresholdTest, NegativesAreDropped) {
  ImiThreshold with_negatives =
      FindImiThreshold({-0.5, -0.1, 0.001, 0.002, 0.5, 0.6});
  ImiThreshold without = FindImiThreshold({0.001, 0.002, 0.5, 0.6});
  EXPECT_DOUBLE_EQ(with_negatives.tau, without.tau);
  EXPECT_EQ(with_negatives.noise_count, without.noise_count);
}

TEST(KmeansThresholdTest, CleanBimodalSplit) {
  // Noise cluster near 0, signal cluster near 0.8: tau must fall between.
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) values.push_back(0.001 * (i % 5));
  for (int i = 0; i < 10; ++i) values.push_back(0.75 + 0.01 * i);
  ImiThreshold result = FindImiThreshold(values);
  EXPECT_LT(result.tau, 0.75);
  EXPECT_GE(result.tau, 0.0);
  EXPECT_EQ(result.signal_count, 10u);
  EXPECT_EQ(result.noise_count, 50u);
  EXPECT_NEAR(result.signal_mean, 0.795, 1e-9);
  // tau is the largest noise value.
  EXPECT_NEAR(result.tau, 0.004, 1e-12);
}

TEST(KmeansThresholdTest, SinglePositiveValueGoesToSignal) {
  ImiThreshold result = FindImiThreshold({0.4});
  EXPECT_EQ(result.signal_count, 1u);
  EXPECT_EQ(result.noise_count, 0u);
  EXPECT_DOUBLE_EQ(result.tau, 0.0);
  EXPECT_DOUBLE_EQ(result.signal_mean, 0.4);
}

TEST(KmeansThresholdTest, AssignmentBoundaryIsHalfSignalMean) {
  // With signal mean m, values < m/2 belong to the pinned-zero cluster.
  std::vector<double> values = {0.1, 0.9, 1.0, 1.1};
  ImiThreshold result = FindImiThreshold(values);
  // Converged signal mean = 1.0; boundary 0.5; noise = {0.1}.
  EXPECT_NEAR(result.signal_mean, 1.0, 1e-9);
  EXPECT_EQ(result.noise_count, 1u);
  EXPECT_NEAR(result.tau, 0.1, 1e-12);
}

TEST(KmeansThresholdTest, Deterministic) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.NextDouble());
  ImiThreshold a = FindImiThreshold(values);
  ImiThreshold b = FindImiThreshold(values);
  EXPECT_DOUBLE_EQ(a.tau, b.tau);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(KmeansThresholdTest, ConvergesWithinIterationBudget) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(rng.NextBernoulli(0.1) ? rng.NextDouble(0.5, 1.0)
                                            : rng.NextDouble(0.0, 0.05));
  }
  ImiThreshold result = FindImiThreshold(values);
  EXPECT_LT(result.iterations, 100u);
  EXPECT_GT(result.tau, 0.0);
  EXPECT_LT(result.tau, 0.5);
}

TEST(KmeansThresholdTest, CountsPartitionInput) {
  std::vector<double> values = {0.0, 0.01, 0.02, 0.9, 0.95, -0.3};
  ImiThreshold result = FindImiThreshold(values);
  EXPECT_EQ(result.noise_count + result.signal_count, 5u);  // negative dropped
}

}  // namespace
}  // namespace tends::inference
