#include "inference/inferred_network.h"

#include <gtest/gtest.h>

namespace tends::inference {
namespace {

TEST(InferredNetworkTest, AddAndQuery) {
  InferredNetwork network(5);
  EXPECT_EQ(network.num_nodes(), 5u);
  EXPECT_EQ(network.num_edges(), 0u);
  network.AddEdge(0, 1, 0.7);
  network.AddEdge(2, 3);
  ASSERT_EQ(network.num_edges(), 2u);
  EXPECT_EQ(network.edges()[0].edge, (graph::Edge{0, 1}));
  EXPECT_DOUBLE_EQ(network.edges()[0].weight, 0.7);
  EXPECT_DOUBLE_EQ(network.edges()[1].weight, 1.0);
}

TEST(InferredNetworkTest, KeepTopMByWeight) {
  InferredNetwork network(4);
  network.AddEdge(0, 1, 0.2);
  network.AddEdge(1, 2, 0.9);
  network.AddEdge(2, 3, 0.5);
  network.KeepTopM(2);
  ASSERT_EQ(network.num_edges(), 2u);
  EXPECT_EQ(network.edges()[0].edge, (graph::Edge{1, 2}));
  EXPECT_EQ(network.edges()[1].edge, (graph::Edge{2, 3}));
}

TEST(InferredNetworkTest, KeepTopMTieBreaksDeterministically) {
  InferredNetwork network(4);
  network.AddEdge(2, 3, 0.5);
  network.AddEdge(0, 1, 0.5);
  network.AddEdge(1, 2, 0.5);
  network.KeepTopM(2);
  ASSERT_EQ(network.num_edges(), 2u);
  // Ties broken by (from, to): (0,1) then (1,2).
  EXPECT_EQ(network.edges()[0].edge, (graph::Edge{0, 1}));
  EXPECT_EQ(network.edges()[1].edge, (graph::Edge{1, 2}));
}

TEST(InferredNetworkTest, KeepTopMLargerThanSizeIsNoop) {
  InferredNetwork network(3);
  network.AddEdge(0, 1, 0.5);
  network.KeepTopM(10);
  EXPECT_EQ(network.num_edges(), 1u);
}

TEST(InferredNetworkTest, KeepAboveThreshold) {
  InferredNetwork network(4);
  network.AddEdge(0, 1, 0.2);
  network.AddEdge(1, 2, 0.9);
  network.KeepAboveThreshold(0.5);
  ASSERT_EQ(network.num_edges(), 1u);
  EXPECT_EQ(network.edges()[0].edge, (graph::Edge{1, 2}));
}

TEST(InferredNetworkTest, ToGraphBuildsDirectedGraph) {
  InferredNetwork network(3);
  network.AddEdge(0, 1);
  network.AddEdge(1, 2);
  auto graph = network.ToGraph();
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->HasEdge(0, 1));
  EXPECT_EQ(graph->num_edges(), 2u);
}

TEST(InferredNetworkTest, ToGraphRejectsDuplicates) {
  InferredNetwork network(3);
  network.AddEdge(0, 1);
  network.AddEdge(0, 1);
  EXPECT_FALSE(network.ToGraph().ok());
}

TEST(InferredNetworkTest, DebugString) {
  InferredNetwork network(3);
  network.AddEdge(0, 1);
  EXPECT_EQ(network.DebugString(), "InferredNetwork(n=3, m=1)");
}

}  // namespace
}  // namespace tends::inference
