#include "common/table.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace tends {
namespace {

TEST(TableTest, TextRenderingAligns) {
  Table table({"name", "value"});
  table.AddRow().Add("alpha").AddInt(1);
  table.AddRow().Add("b").AddDouble(0.5, 2);
  std::ostringstream os;
  table.PrintText(os);
  std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("0.50"), std::string::npos);
  // Header, separator, two data rows.
  int lines = 0;
  for (char ch : text) lines += ch == '\n';
  EXPECT_EQ(lines, 4);
}

TEST(TableTest, CsvRendering) {
  Table table({"a", "b"});
  table.AddRow().Add("x").AddInt(-3);
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\nx,-3\n");
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  Table table({"field"});
  table.AddRow().Add("has,comma");
  table.AddRow().Add("has\"quote");
  table.AddRow().Add("has\nnewline");
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(),
            "field\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(TableTest, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.AddRow().Add("only");
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}

TEST(TableTest, CountsRowsAndColumns) {
  Table table({"x", "y"});
  EXPECT_EQ(table.num_columns(), 2u);
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow().Add("1").Add("2");
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TableTest, AddDoublePrecision) {
  Table table({"v"});
  table.AddRow().AddDouble(1.0 / 3.0, 4);
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "v\n0.3333\n");
}

TEST(TableTest, WriteCsvFileFailsOnBadPath) {
  Table table({"v"});
  Status status = table.WriteCsvFile("/nonexistent_dir_tends/x.csv");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsIoError());
}

TEST(TableTest, WriteCsvFileRoundTrip) {
  Table table({"k", "v"});
  table.AddRow().Add("a").AddInt(1);
  std::string path = ::testing::TempDir() + "/tends_table_test.csv";
  ASSERT_TRUE(table.WriteCsvFile(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  std::getline(in, line);
  EXPECT_EQ(line, "a,1");
}

}  // namespace
}  // namespace tends
