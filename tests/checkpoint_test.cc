// Checkpoint/resume correctness: the fingerprint's sensitivity contract
// (result-affecting knobs in, byte-identical knobs out), exact round-trip
// of the tends.checkpoint.v1 format, rejection of every tampering mode,
// and the core differential guarantee — resuming from a checkpoint cut at
// ANY flush boundary, at any thread count, reproduces the uninterrupted
// run bit for bit.

#include "inference/checkpoint.h"

#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "graph/generators/erdos_renyi.h"
#include "inference/tends.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::SimulateUniform;

std::string TempDir(const char* name) {
  // Process-unique root: the tsan-suite binary and the individually
  // discovered gtest cases can run these tests concurrently under
  // `ctest -j`, and a shared path lets one process's remove_all or
  // checkpoint flushes clobber the other's file mid-test.
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("tends_checkpoint_" + std::to_string(::getpid())) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

diffusion::StatusMatrix Statuses(uint64_t seed = 7) {
  Rng rng(seed);
  auto truth = graph::GenerateErdosRenyi(
      {.num_nodes = 24, .edge_probability = 0.12}, rng);
  if (!truth.ok()) std::abort();
  return SimulateUniform(*truth, 0.4, 150, 0.15, seed + 4).statuses;
}

void ExpectBitIdentical(const InferredNetwork& a, const InferredNetwork& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edges()[e].edge.from, b.edges()[e].edge.from);
    EXPECT_EQ(a.edges()[e].edge.to, b.edges()[e].edge.to);
    EXPECT_EQ(std::bit_cast<uint64_t>(a.edges()[e].weight),
              std::bit_cast<uint64_t>(b.edges()[e].weight));
  }
}

CheckpointData SampleData() {
  CheckpointData data;
  data.fingerprint = 0xDEADBEEFCAFEF00Dull;
  data.num_nodes = 24;
  CheckpointNodeRecord a;
  a.node = 1;
  a.candidate_count = 5;
  a.clipped = true;
  a.score = -123.45678901234567;  // not representable exactly: bits matter
  a.score_evaluations = 999;
  a.parents = {0, 3, 17};
  CheckpointNodeRecord b;
  b.node = 7;
  b.candidate_count = 0;
  b.clipped = false;
  b.score = 0.1 + 0.2;  // the classic 0.30000000000000004
  b.score_evaluations = 1;
  b.parents = {};
  data.nodes = {a, b};
  return data;
}

TEST(FingerprintTest, StableAcrossCallsAndCopies) {
  const diffusion::StatusMatrix statuses = Statuses();
  TendsOptions options;
  EXPECT_EQ(FingerprintInference(statuses, options),
            FingerprintInference(statuses, options));
  const diffusion::StatusMatrix copy = Statuses();
  EXPECT_EQ(FingerprintInference(statuses, options),
            FingerprintInference(copy, options));
}

TEST(FingerprintTest, SensitiveToEveryResultAffectingInput) {
  const diffusion::StatusMatrix statuses = Statuses();
  const TendsOptions base;
  const uint64_t fp = FingerprintInference(statuses, base);

  EXPECT_NE(fp, FingerprintInference(Statuses(/*seed=*/8), base));

  TendsOptions changed = base;
  changed.tau_multiplier = 1.5;
  EXPECT_NE(fp, FingerprintInference(statuses, changed));

  changed = base;
  changed.use_traditional_mi = true;
  EXPECT_NE(fp, FingerprintInference(statuses, changed));

  changed = base;
  changed.max_candidates = 8;
  EXPECT_NE(fp, FingerprintInference(statuses, changed));

  changed = base;
  changed.tau_override = 0.25;
  EXPECT_NE(fp, FingerprintInference(statuses, changed));

  changed = base;
  changed.search.max_parents = 2;
  EXPECT_NE(fp, FingerprintInference(statuses, changed));

  changed = base;
  changed.search.use_penalty = !base.search.use_penalty;
  EXPECT_NE(fp, FingerprintInference(statuses, changed));

  // candidate_mode invalidates despite the proven sparse == dense
  // equivalence: a checkpoint must never silently bridge the two pipelines
  // a differential test compares (see FingerprintInference).
  changed = base;
  changed.candidate_mode = CandidateMode::kSparse;
  EXPECT_NE(fp, FingerprintInference(statuses, changed));
}

TEST(FingerprintTest, InsensitiveToByteIdenticalKnobs) {
  // The differential suites elsewhere prove these knobs cannot change the
  // output, so a checkpoint must survive changing them mid-resume.
  const diffusion::StatusMatrix statuses = Statuses();
  const TendsOptions base;
  const uint64_t fp = FingerprintInference(statuses, base);

  TendsOptions changed = base;
  changed.num_threads = 8;
  EXPECT_EQ(fp, FingerprintInference(statuses, changed));

  changed = base;
  changed.search.kernel = CountingKernel::kNaive;
  EXPECT_EQ(fp, FingerprintInference(statuses, changed));

  changed = base;
  changed.checkpoint.directory = "/somewhere/else";
  changed.checkpoint.resume = true;
  changed.checkpoint.every_nodes = 1;
  EXPECT_EQ(fp, FingerprintInference(statuses, changed));
}

TEST(CheckpointFormatTest, RoundTripsBitForBit) {
  const CheckpointData data = SampleData();
  auto decoded = DecodeCheckpoint(EncodeCheckpoint(data));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->fingerprint, data.fingerprint);
  EXPECT_EQ(decoded->num_nodes, data.num_nodes);
  ASSERT_EQ(decoded->nodes.size(), data.nodes.size());
  for (size_t i = 0; i < data.nodes.size(); ++i) {
    const CheckpointNodeRecord& want = data.nodes[i];
    const CheckpointNodeRecord& got = decoded->nodes[i];
    EXPECT_EQ(got.node, want.node);
    EXPECT_EQ(got.candidate_count, want.candidate_count);
    EXPECT_EQ(got.clipped, want.clipped);
    EXPECT_EQ(std::bit_cast<uint64_t>(got.score),
              std::bit_cast<uint64_t>(want.score));
    EXPECT_EQ(got.score_evaluations, want.score_evaluations);
    EXPECT_EQ(got.parents, want.parents);
  }
}

TEST(CheckpointFormatTest, EmptyCheckpointRoundTrips) {
  CheckpointData data;
  data.fingerprint = 42;
  data.num_nodes = 10;
  auto decoded = DecodeCheckpoint(EncodeCheckpoint(data));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->fingerprint, 42u);
  EXPECT_TRUE(decoded->nodes.empty());
}

TEST(CheckpointFormatTest, GarbageBytesAreCorruption) {
  auto decoded = DecodeCheckpoint("this is not a checkpoint file");
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status();
}

TEST(CheckpointFormatTest, TruncationAtEveryByteIsNeverAccepted) {
  // A torn file must fail cleanly no matter where the tear lands — and a
  // tear can never resurrect a *valid smaller* checkpoint, because the
  // header pins the record count.
  const std::string blob = EncodeCheckpoint(SampleData());
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    auto decoded = DecodeCheckpoint(std::string_view(blob).substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "cut at byte " << cut;
    EXPECT_TRUE(decoded.status().IsCorruption())
        << "cut at byte " << cut << ": " << decoded.status();
  }
}

TEST(CheckpointFormatTest, EveryFlippedByteIsDetected) {
  const std::string blob = EncodeCheckpoint(SampleData());
  for (size_t at = 0; at < blob.size(); ++at) {
    std::string damaged = blob;
    damaged[at] ^= 0x04;
    auto decoded = DecodeCheckpoint(damaged);
    EXPECT_FALSE(decoded.ok()) << "flip at byte " << at;
  }
}

TEST(CheckpointFormatTest, ExtraTrailingFrameIsCorruption) {
  std::string blob = EncodeCheckpoint(SampleData());
  AppendFrame("node 9 0 0 0000000000000000 0 0", &blob);
  auto decoded = DecodeCheckpoint(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status();
}

TEST(CheckpointFormatTest, MissingRecordFrameIsCorruption) {
  // Rebuild the blob with the last record frame dropped: framing stays
  // valid, but the header's record count no longer matches.
  const std::string blob = EncodeCheckpoint(SampleData());
  auto frames = ParseFrames(blob);
  ASSERT_TRUE(frames.ok()) << frames.status();
  ASSERT_GE(frames->size(), 2u);
  std::string shorter;
  for (size_t i = 0; i + 1 < frames->size(); ++i) {
    AppendFrame((*frames)[i], &shorter);
  }
  auto decoded = DecodeCheckpoint(shorter);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status();
}

TEST(CheckpointFormatTest, MisorderedNodesAreCorruption) {
  CheckpointData data = SampleData();
  std::swap(data.nodes[0], data.nodes[1]);  // 7 before 1
  auto decoded = DecodeCheckpoint(EncodeCheckpoint(data));
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status();
}

TEST(CheckpointFormatTest, OutOfRangeNodeOrParentIsCorruption) {
  CheckpointData data = SampleData();
  data.nodes[1].node = data.num_nodes;  // one past the end
  auto bad_node = DecodeCheckpoint(EncodeCheckpoint(data));
  ASSERT_FALSE(bad_node.ok());
  EXPECT_TRUE(bad_node.status().IsCorruption()) << bad_node.status();

  data = SampleData();
  data.nodes[0].parents.push_back(data.num_nodes + 5);
  auto bad_parent = DecodeCheckpoint(EncodeCheckpoint(data));
  ASSERT_FALSE(bad_parent.ok());
  EXPECT_TRUE(bad_parent.status().IsCorruption()) << bad_parent.status();
}

TEST(CheckpointFormatTest, ForeignSchemaIsRejected) {
  std::string blob;
  AppendFrame("tends.checkpoint.v99 fingerprint=0000000000000000 "
              "num_nodes=1 records=0",
              &blob);
  auto decoded = DecodeCheckpoint(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status();
}

TEST(CheckpointFileTest, WriteReadRoundTripAndMissingIsNotFound) {
  CheckpointConfig config;
  config.directory = TempDir("file_roundtrip");
  const CheckpointData data = SampleData();
  MetricsRegistry metrics;
  ASSERT_TRUE(
      WriteCheckpointFile(config, data, RunContext(), &metrics).ok());
  auto read = ReadCheckpointFile(config.FilePath());
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->fingerprint, data.fingerprint);
  ASSERT_EQ(read->nodes.size(), 2u);

  auto missing = ReadCheckpointFile(config.directory + "/other.checkpoint");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST(CheckpointFileTest, ResumeValidatesFingerprintAndShape) {
  CheckpointConfig config;
  config.directory = TempDir("file_stale");
  const CheckpointData data = SampleData();
  MetricsRegistry metrics;
  ASSERT_TRUE(
      WriteCheckpointFile(config, data, RunContext(), &metrics).ok());

  auto good =
      LoadCheckpointForResume(config, data.fingerprint, data.num_nodes);
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_EQ(good->size(), 2u);

  auto stale =
      LoadCheckpointForResume(config, data.fingerprint + 1, data.num_nodes);
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(stale.status().IsFailedPrecondition()) << stale.status();
  EXPECT_NE(stale.status().message().find(config.FilePath()),
            std::string::npos)
      << stale.status();

  auto wrong_shape =
      LoadCheckpointForResume(config, data.fingerprint, data.num_nodes + 1);
  ASSERT_FALSE(wrong_shape.ok());
  EXPECT_TRUE(wrong_shape.status().IsFailedPrecondition())
      << wrong_shape.status();

  CheckpointConfig absent = config;
  absent.stem = "never_written";
  auto fresh = LoadCheckpointForResume(absent, data.fingerprint,
                                       data.num_nodes);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_TRUE(fresh->empty());
}

TEST(CheckpointOptionsTest, ValidateRejectsMalformedConfigs) {
  const diffusion::StatusMatrix statuses = Statuses();

  TendsOptions options;
  options.checkpoint.resume = true;  // resume without a directory
  EXPECT_FALSE(options.Validate().ok());

  options = TendsOptions();
  options.checkpoint.directory = TempDir("validate");
  options.checkpoint.every_nodes = 0;
  options.checkpoint.every_ms = 0;  // enabled but can never flush mid-run
  EXPECT_FALSE(options.Validate().ok());

  options = TendsOptions();
  options.checkpoint.directory = TempDir("validate");
  options.checkpoint.stem = "";
  EXPECT_FALSE(options.Validate().ok());

  options = TendsOptions();
  options.checkpoint.directory = TempDir("validate");
  EXPECT_TRUE(options.Validate().ok());
}

// The heart of the feature: cut the checkpoint at EVERY flush boundary
// (0, 1, ..., n completed nodes), resume at 1 and 8 threads, and demand
// the exact bytes of the uninterrupted run every time.
TEST(CheckpointResumeTest, EveryBoundaryEveryThreadCountIsByteIdentical) {
  const diffusion::StatusMatrix statuses = Statuses();
  const uint32_t n = statuses.num_nodes();

  TendsOptions base;
  base.reject_degenerate_columns = false;
  Tends fresh(base);
  auto expected = fresh.InferFromStatuses(statuses);
  ASSERT_TRUE(expected.ok()) << expected.status();

  // One checkpointed run with a flush after every node gives the complete
  // record set; every prefix of it is a genuine flush-boundary snapshot.
  CheckpointConfig config;
  config.directory = TempDir("boundaries");
  TendsOptions checkpointed = base;
  checkpointed.checkpoint = config;
  checkpointed.checkpoint.every_nodes = 1;
  Tends writer(checkpointed);
  auto written = writer.InferFromStatuses(statuses);
  ASSERT_TRUE(written.ok()) << written.status();
  ExpectBitIdentical(*written, *expected);
  auto full = ReadCheckpointFile(config.FilePath());
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_EQ(full->nodes.size(), n);

  for (uint32_t prefix = 0; prefix <= n; ++prefix) {
    CheckpointData cut;
    cut.fingerprint = full->fingerprint;
    cut.num_nodes = full->num_nodes;
    cut.nodes.assign(full->nodes.begin(), full->nodes.begin() + prefix);

    for (uint32_t num_threads : {1u, 8u}) {
      // Rewritten per thread count: each resumed run's own final flush
      // grows the file back to all n records.
      ASSERT_TRUE(
          AtomicWriteFile(config.FilePath(), EncodeCheckpoint(cut)).ok());
      TendsOptions resumed = base;
      resumed.num_threads = num_threads;
      resumed.checkpoint = config;
      resumed.checkpoint.resume = true;
      Tends tends(resumed);
      auto network = tends.InferFromStatuses(statuses);
      ASSERT_TRUE(network.ok())
          << "prefix " << prefix << " threads " << num_threads << ": "
          << network.status();
      ExpectBitIdentical(*network, *expected);
      EXPECT_EQ(tends.diagnostics().nodes_resumed, prefix);
      EXPECT_EQ(tends.diagnostics().nodes_completed, n);
      EXPECT_EQ(std::bit_cast<uint64_t>(tends.diagnostics().network_score),
                std::bit_cast<uint64_t>(fresh.diagnostics().network_score));
      EXPECT_EQ(tends.diagnostics().total_score_evaluations,
                fresh.diagnostics().total_score_evaluations);
    }
  }
}

TEST(CheckpointResumeTest, ResumeAcceptsDifferentKernelAndThreads) {
  // The fingerprint deliberately excludes the byte-identical knobs, so a
  // checkpoint written with the packed kernel at 1 thread must resume
  // under the naive kernel at 8 threads — and still match bit for bit.
  const diffusion::StatusMatrix statuses = Statuses();
  TendsOptions base;
  base.reject_degenerate_columns = false;

  CheckpointConfig config;
  config.directory = TempDir("cross_knobs");
  TendsOptions writer_options = base;
  writer_options.checkpoint = config;
  writer_options.checkpoint.every_nodes = 1;
  Tends writer(writer_options);
  auto expected = writer.InferFromStatuses(statuses);
  ASSERT_TRUE(expected.ok()) << expected.status();

  TendsOptions resumed = base;
  resumed.num_threads = 8;
  resumed.search.kernel = CountingKernel::kNaive;
  resumed.checkpoint = config;
  resumed.checkpoint.resume = true;
  Tends tends(resumed);
  auto network = tends.InferFromStatuses(statuses);
  ASSERT_TRUE(network.ok()) << network.status();
  ExpectBitIdentical(*network, *expected);
  EXPECT_EQ(tends.diagnostics().nodes_resumed, statuses.num_nodes());
}

TEST(CheckpointResumeTest, DenseCheckpointIsRejectedBySparseResume) {
  // The two candidate pipelines are proven byte-identical, but a resume
  // across them would bridge exactly what the differential suite keeps
  // independent — the fingerprint rejects it as stale.
  const diffusion::StatusMatrix statuses = Statuses();
  CheckpointConfig config;
  config.directory = TempDir("cross_mode");

  TendsOptions writer_options;
  writer_options.reject_degenerate_columns = false;
  writer_options.checkpoint = config;
  Tends writer(writer_options);
  ASSERT_TRUE(writer.InferFromStatuses(statuses).ok());

  TendsOptions resumed = writer_options;
  resumed.candidate_mode = CandidateMode::kSparse;
  resumed.checkpoint.resume = true;
  Tends tends(resumed);
  auto network = tends.InferFromStatuses(statuses);
  ASSERT_FALSE(network.ok());
  EXPECT_TRUE(network.status().IsFailedPrecondition()) << network.status();
}

TEST(CheckpointResumeTest, SparseCheckpointResumesSparseByteIdentically) {
  const diffusion::StatusMatrix statuses = Statuses();
  TendsOptions base;
  base.reject_degenerate_columns = false;
  base.candidate_mode = CandidateMode::kSparse;

  Tends reference(base);
  auto expected = reference.InferFromStatuses(statuses);
  ASSERT_TRUE(expected.ok()) << expected.status();

  CheckpointConfig config;
  config.directory = TempDir("sparse_resume");
  TendsOptions writer_options = base;
  writer_options.checkpoint = config;
  writer_options.checkpoint.every_nodes = 1;
  Tends writer(writer_options);
  ASSERT_TRUE(writer.InferFromStatuses(statuses).ok());

  TendsOptions resumed = writer_options;
  resumed.checkpoint.resume = true;
  Tends tends(resumed);
  auto network = tends.InferFromStatuses(statuses);
  ASSERT_TRUE(network.ok()) << network.status();
  ExpectBitIdentical(*network, *expected);
  EXPECT_EQ(tends.diagnostics().nodes_resumed, statuses.num_nodes());
}

TEST(CheckpointResumeTest, StaleCheckpointFailsTheRunLoudly) {
  const diffusion::StatusMatrix statuses = Statuses();
  CheckpointConfig config;
  config.directory = TempDir("stale_run");

  TendsOptions writer_options;
  writer_options.reject_degenerate_columns = false;
  writer_options.checkpoint = config;
  Tends writer(writer_options);
  ASSERT_TRUE(writer.InferFromStatuses(statuses).ok());

  // Same file, different tau multiplier: the results inside are computed
  // against another threshold and must not be reused.
  TendsOptions resumed = writer_options;
  resumed.tau_multiplier = 1.5;
  resumed.checkpoint.resume = true;
  Tends tends(resumed);
  auto network = tends.InferFromStatuses(statuses);
  ASSERT_FALSE(network.ok());
  EXPECT_TRUE(network.status().IsFailedPrecondition()) << network.status();
}

TEST(CheckpointResumeTest, CorruptCheckpointFailsTheRunLoudly) {
  const diffusion::StatusMatrix statuses = Statuses();
  CheckpointConfig config;
  config.directory = TempDir("corrupt_run");

  TendsOptions writer_options;
  writer_options.reject_degenerate_columns = false;
  writer_options.checkpoint = config;
  Tends writer(writer_options);
  ASSERT_TRUE(writer.InferFromStatuses(statuses).ok());

  auto bytes = ReadFileToString(config.FilePath());
  ASSERT_TRUE(bytes.ok());
  std::string damaged = *bytes;
  damaged[damaged.size() / 2] ^= 0x20;
  ASSERT_TRUE(AtomicWriteFile(config.FilePath(), damaged).ok());

  TendsOptions resumed = writer_options;
  resumed.checkpoint.resume = true;
  Tends tends(resumed);
  auto network = tends.InferFromStatuses(statuses);
  ASSERT_FALSE(network.ok());
  EXPECT_TRUE(network.status().IsCorruption()) << network.status();
}

TEST(CheckpointResumeTest, ExpiredRunFlushesBestSoFarAndStaysResumable) {
  const diffusion::StatusMatrix statuses = Statuses();
  TendsOptions base;
  base.reject_degenerate_columns = false;
  Tends fresh(base);
  auto expected = fresh.InferFromStatuses(statuses);
  ASSERT_TRUE(expected.ok()) << expected.status();

  CheckpointConfig config;
  config.directory = TempDir("expired");

  // A pre-expired deadline: zero nodes complete, and that must not be an
  // error — just an empty (or absent) checkpoint.
  TendsOptions expired_options = base;
  expired_options.checkpoint = config;
  RunContext expired;
  expired.deadline = Deadline::Expired();
  Tends interrupted(expired_options);
  auto partial = interrupted.InferFromStatuses(statuses, expired);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_TRUE(interrupted.diagnostics().deadline_expired);

  // Resuming afterwards completes the run and still matches bit for bit.
  TendsOptions resumed = base;
  resumed.checkpoint = config;
  resumed.checkpoint.resume = true;
  Tends tends(resumed);
  auto network = tends.InferFromStatuses(statuses);
  ASSERT_TRUE(network.ok()) << network.status();
  ExpectBitIdentical(*network, *expected);
  EXPECT_EQ(tends.diagnostics().nodes_completed, statuses.num_nodes());
  EXPECT_FALSE(tends.diagnostics().deadline_expired);
}

TEST(CheckpointWriteFaultTest, TransientWriteFailuresAreAbsorbed) {
  const diffusion::StatusMatrix statuses = Statuses();
  TendsOptions options;
  options.reject_degenerate_columns = false;
  options.checkpoint.directory = TempDir("transient");
  options.checkpoint.every_nodes = 0;  // exactly one flush, in Finish()
  options.checkpoint.every_ms = 0x7FFFFFFF;
  options.checkpoint.retry.initial_backoff = std::chrono::milliseconds(1);

  ScopedWriteFaults faults({.fail_writes = 2});
  MetricsRegistry metrics;
  RunContext context;
  context.metrics = &metrics;
  Tends tends(options);
  auto network = tends.InferFromStatuses(statuses, context);
  ASSERT_TRUE(network.ok()) << network.status();
  EXPECT_EQ(faults.write_failures_injected(), 2);
#if TENDS_METRICS_ENABLED
  EXPECT_EQ(metrics.GetCounter("tends.checkpoint.retries").value(), 2u);
  EXPECT_EQ(metrics.GetCounter("tends.checkpoint.nodes_saved").value(),
            statuses.num_nodes());
#endif

  // The absorbed faults left a fully valid checkpoint behind.
  auto full = ReadCheckpointFile(options.checkpoint.FilePath());
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(full->nodes.size(), statuses.num_nodes());
}

TEST(CheckpointWriteFaultTest, ExhaustedRetriesFailTheRun) {
  const diffusion::StatusMatrix statuses = Statuses();
  TendsOptions options;
  options.reject_degenerate_columns = false;
  options.checkpoint.directory = TempDir("exhausted");
  options.checkpoint.every_nodes = 0;
  options.checkpoint.every_ms = 0x7FFFFFFF;
  options.checkpoint.retry.max_attempts = 2;
  options.checkpoint.retry.initial_backoff = std::chrono::milliseconds(1);

  ScopedWriteFaults faults({.fail_writes = 1000});
  Tends tends(options);
  auto network = tends.InferFromStatuses(statuses);
  ASSERT_FALSE(network.ok());
  EXPECT_TRUE(network.status().IsIoError()) << network.status();
  EXPECT_EQ(faults.write_failures_injected(), 2);
}

TEST(CheckpointWriteFaultTest, TornWriteIsRejectedOnTheNextResume) {
  const diffusion::StatusMatrix statuses = Statuses();
  TendsOptions options;
  options.reject_degenerate_columns = false;
  options.checkpoint.directory = TempDir("torn");
  options.checkpoint.every_nodes = 0;
  options.checkpoint.every_ms = 0x7FFFFFFF;

  {
    // Simulate the torn write an atomic rename normally rules out (e.g. a
    // filesystem lying about fsync): the run itself cannot see the damage.
    ScopedWriteFaults faults({.tear_at_byte = 40});
    Tends tends(options);
    ASSERT_TRUE(tends.InferFromStatuses(statuses).ok());
    EXPECT_TRUE(faults.tear_injected());
  }

  TendsOptions resumed = options;
  resumed.checkpoint.resume = true;
  Tends tends(resumed);
  auto network = tends.InferFromStatuses(statuses);
  ASSERT_FALSE(network.ok());
  EXPECT_TRUE(network.status().IsCorruption()) << network.status();
}

}  // namespace
}  // namespace tends::inference
