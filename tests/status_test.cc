#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/statusor.h"

namespace tends {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad thing");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, CodePredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_FALSE(Status::OK().IsInvalidArgument());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Corruption("bad header");
  EXPECT_EQ(os.str(), "Corruption: bad header");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

Status ReturnIfErrorHelper(const Status& inner, bool* reached_end) {
  TENDS_RETURN_IF_ERROR(inner);
  *reached_end = true;
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  bool reached_end = false;
  Status status =
      ReturnIfErrorHelper(Status::Internal("boom"), &reached_end);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_FALSE(reached_end);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  bool reached_end = false;
  EXPECT_TRUE(ReturnIfErrorHelper(Status::OK(), &reached_end).ok());
  EXPECT_TRUE(reached_end);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, ValueOrFallsBack) {
  StatusOr<int> error = Status::NotFound("nope");
  EXPECT_EQ(error.value_or(-1), -1);
  StatusOr<int> ok = 7;
  EXPECT_EQ(ok.value_or(-1), 7);
}

TEST(StatusOrTest, ConstructingFromOkStatusBecomesInternalError) {
  StatusOr<int> result = Status::OK();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result = std::string("hello");
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("hello");
  EXPECT_EQ(result->size(), 5u);
}

StatusOr<int> AssignOrReturnHelper(StatusOr<int> input) {
  TENDS_ASSIGN_OR_RETURN(int value, input);
  return value * 2;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  EXPECT_EQ(*AssignOrReturnHelper(21), 42);
  EXPECT_EQ(AssignOrReturnHelper(Status::Internal("x")).status().code(),
            StatusCode::kInternal);
}

}  // namespace
}  // namespace tends
