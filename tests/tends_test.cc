#include "inference/tends.h"

#include <algorithm>
#include <bit>

#include <gtest/gtest.h>

#include "inference/local_score.h"
#include "metrics/fscore.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::MakeGraph;
using ::tends::testing::SimulateUniform;

TEST(TendsTest, ValidatesInputs) {
  Tends tends;
  diffusion::StatusMatrix empty;
  EXPECT_FALSE(tends.InferFromStatuses(empty).ok());

  TendsOptions bad_tau;
  bad_tau.tau_multiplier = 0.0;
  Tends tends_bad_tau(bad_tau);
  diffusion::StatusMatrix statuses(10, 5);
  EXPECT_FALSE(tends_bad_tau.InferFromStatuses(statuses).ok());

  TendsOptions bad_cand;
  bad_cand.max_candidates = 0;
  Tends tends_bad_cand(bad_cand);
  EXPECT_FALSE(tends_bad_cand.InferFromStatuses(statuses).ok());
}

TEST(TendsTest, ValidationErrorsArePrecise) {
  Tends tends;
  diffusion::StatusMatrix empty;
  auto no_nodes = tends.InferFromStatuses(empty);
  ASSERT_FALSE(no_nodes.ok());
  EXPECT_TRUE(no_nodes.status().IsInvalidArgument());
  EXPECT_NE(no_nodes.status().message().find("no nodes"), std::string::npos);

  diffusion::StatusMatrix no_processes(0, 4);
  auto empty_rows = tends.InferFromStatuses(no_processes);
  ASSERT_FALSE(empty_rows.ok());
  EXPECT_TRUE(empty_rows.status().IsInvalidArgument());
  EXPECT_NE(empty_rows.status().message().find("no diffusion processes"),
            std::string::npos);
}

TEST(TendsTest, RejectsDegenerateColumnsByDefault) {
  // Node 2 is infected in every process: its parents are unidentifiable.
  auto statuses = ::tends::testing::MakeStatuses(
      {{1, 0, 1}, {0, 1, 1}, {1, 1, 1}, {0, 0, 1}});
  Tends tends;
  auto result = tends.InferFromStatuses(statuses);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("node 2"), std::string::npos)
      << result.status();
  EXPECT_NE(result.status().message().find("infected in all 4"),
            std::string::npos)
      << result.status();

  // All-0 columns are rejected the same way.
  auto never = ::tends::testing::MakeStatuses({{1, 0, 0}, {0, 1, 0}});
  auto never_result = tends.InferFromStatuses(never);
  ASSERT_FALSE(never_result.ok());
  EXPECT_TRUE(never_result.status().IsInvalidArgument());
  EXPECT_NE(never_result.status().message().find("uninfected"),
            std::string::npos)
      << never_result.status();
}

TEST(TendsTest, DegenerateColumnRejectionCanBeDisabled) {
  auto statuses = ::tends::testing::MakeStatuses(
      {{1, 0, 1}, {0, 1, 1}, {1, 1, 1}, {0, 0, 1}});
  TendsOptions options;
  options.reject_degenerate_columns = false;
  Tends tends(options);
  auto result = tends.InferFromStatuses(statuses);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_nodes(), 3u);
}

TEST(TendsTest, NameIsStable) {
  Tends tends;
  EXPECT_EQ(tends.name(), "TENDS");
}

TEST(TendsTest, RecoversChain) {
  // Bidirectional chain with high transmission and many observations.
  auto truth = MakeGraph(
      6, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}, {3, 2}, {3, 4}, {4, 3},
          {4, 5}, {5, 4}});
  auto observations = SimulateUniform(truth, 0.6, 500, 0.17, 77);
  Tends tends;
  auto inferred = tends.Infer(observations);
  ASSERT_TRUE(inferred.ok()) << inferred.status();
  metrics::EdgeMetrics metrics = metrics::EvaluateEdges(*inferred, truth);
  EXPECT_GT(metrics.f_score, 0.7) << metrics.DebugString();
}

TEST(TendsTest, RecoversStar) {
  // Hub 0 influences 5 leaves (one direction only).
  auto truth =
      MakeGraph(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  auto observations = SimulateUniform(truth, 0.5, 600, 0.17, 101);
  Tends tends;
  auto inferred = tends.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  metrics::EdgeMetrics metrics = metrics::EvaluateEdges(*inferred, truth);
  EXPECT_GT(metrics.recall, 0.6) << metrics.DebugString();
}

TEST(TendsTest, DiagnosticsPopulated) {
  auto truth = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto observations = SimulateUniform(truth, 0.5, 200, 0.2, 3);
  Tends tends;
  ASSERT_TRUE(tends.Infer(observations).ok());
  const TendsDiagnostics& diag = tends.diagnostics();
  EXPECT_GE(diag.tau, 0.0);
  EXPECT_GT(diag.kmeans_iterations, 0u);
  EXPECT_GT(diag.total_score_evaluations, 0u);
}

TEST(TendsTest, TauOverrideSkipsKmeans) {
  auto truth = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  auto observations = SimulateUniform(truth, 0.5, 100, 0.25, 5);
  TendsOptions options;
  options.tau_override = 0.02;
  Tends tends(options);
  ASSERT_TRUE(tends.Infer(observations).ok());
  EXPECT_DOUBLE_EQ(tends.diagnostics().tau, 0.02);
  EXPECT_EQ(tends.diagnostics().kmeans_iterations, 0u);
}

TEST(TendsTest, TauMultiplierScalesThreshold) {
  auto truth = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto observations = SimulateUniform(truth, 0.5, 200, 0.2, 7);
  Tends base;
  ASSERT_TRUE(base.Infer(observations).ok());
  TendsOptions scaled_options;
  scaled_options.tau_multiplier = 2.0;
  Tends scaled(scaled_options);
  ASSERT_TRUE(scaled.Infer(observations).ok());
  EXPECT_NEAR(scaled.diagnostics().tau, 2.0 * base.diagnostics().tau, 1e-12);
}

TEST(TendsTest, HigherTauPrunesMoreCandidates) {
  auto truth = MakeGraph(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}});
  auto observations = SimulateUniform(truth, 0.5, 300, 0.15, 9);
  TendsOptions low, high;
  low.tau_multiplier = 0.5;
  high.tau_multiplier = 2.0;
  Tends tends_low(low), tends_high(high);
  ASSERT_TRUE(tends_low.Infer(observations).ok());
  ASSERT_TRUE(tends_high.Infer(observations).ok());
  EXPECT_GE(tends_low.diagnostics().mean_candidates,
            tends_high.diagnostics().mean_candidates);
}

TEST(TendsTest, MaxCandidatesClips) {
  auto truth = MakeGraph(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}});
  auto observations = SimulateUniform(truth, 0.6, 300, 0.25, 11);
  TendsOptions options;
  options.max_candidates = 1;
  options.tau_override = -1.0;  // admit everything, force clipping
  Tends tends(options);
  ASSERT_TRUE(tends.Infer(observations).ok());
  EXPECT_LE(tends.diagnostics().max_candidates_seen, 1u);
  EXPECT_GT(tends.diagnostics().clipped_nodes, 0u);
}

TEST(TendsTest, TraditionalMiModeRuns) {
  auto truth = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto observations = SimulateUniform(truth, 0.5, 200, 0.2, 13);
  TendsOptions options;
  options.use_traditional_mi = true;
  Tends tends(options);
  auto inferred = tends.Infer(observations);
  ASSERT_TRUE(inferred.ok());
}

TEST(TendsTest, PruningDisabledStillWorksOnTinyGraph) {
  auto truth = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  auto observations = SimulateUniform(truth, 0.5, 150, 0.25, 15);
  TendsOptions options;
  options.enable_pruning = false;
  Tends tends(options);
  auto inferred = tends.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  // Without pruning every node considers all others.
  EXPECT_DOUBLE_EQ(tends.diagnostics().mean_candidates, 3.0);
}

TEST(TendsTest, DeterministicOnSameObservations) {
  auto truth = MakeGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  auto observations = SimulateUniform(truth, 0.5, 250, 0.2, 17);
  Tends a, b;
  auto r1 = a.Infer(observations);
  auto r2 = b.Infer(observations);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->num_edges(), r2->num_edges());
  for (size_t e = 0; e < r1->num_edges(); ++e) {
    EXPECT_EQ(r1->edges()[e].edge, r2->edges()[e].edge);
  }
}

TEST(TendsTest, ByteIdenticalAcrossKernelsAndThreadCounts) {
  // The packed kernels emit joint counts in the same canonical order as the
  // naive oracle, so the float summation order inside the local score is
  // identical and the inferred network must match bit-for-bit — same edges,
  // same scores, same diagnostics — for every kernel x thread-count combo.
  auto truth = MakeGraph(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {2, 6}});
  auto observations = SimulateUniform(truth, 0.5, 300, 0.2, 23);

  TendsOptions reference_options;
  reference_options.search.kernel = CountingKernel::kNaive;
  reference_options.num_threads = 1;
  Tends reference(reference_options);
  auto want = reference.Infer(observations);
  ASSERT_TRUE(want.ok()) << want.status();
  ASSERT_GT(want->num_edges(), 0u);

  for (CountingKernel kernel :
       {CountingKernel::kNaive, CountingKernel::kPacked}) {
    for (uint32_t threads : {1u, 4u, 8u}) {
      TendsOptions options;
      options.search.kernel = kernel;
      options.num_threads = threads;
      Tends tends(options);
      auto got = tends.Infer(observations);
      ASSERT_TRUE(got.ok()) << got.status();
      SCOPED_TRACE(::testing::Message()
                   << "kernel="
                   << (kernel == CountingKernel::kPacked ? "packed" : "naive")
                   << " threads=" << threads);
      ASSERT_EQ(got->num_edges(), want->num_edges());
      for (size_t e = 0; e < want->num_edges(); ++e) {
        EXPECT_EQ(got->edges()[e].edge, want->edges()[e].edge);
        // Bitwise, not approximate: the kernels must not reorder the sums.
        EXPECT_EQ(std::bit_cast<uint64_t>(got->edges()[e].weight),
                  std::bit_cast<uint64_t>(want->edges()[e].weight));
      }
      EXPECT_EQ(
          std::bit_cast<uint64_t>(tends.diagnostics().network_score),
          std::bit_cast<uint64_t>(reference.diagnostics().network_score));
      if (kernel == CountingKernel::kPacked) {
        EXPECT_GT(tends.diagnostics().total_score_evaluations, 0u);
      }
    }
  }
}

TEST(TendsTest, NetworkScoreDiagnosticMatchesEquation12) {
  // g(T) of the inferred topology must equal the sum of local scores of
  // the inferred parent sets (decomposability, Eq. 12).
  auto truth = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto observations = SimulateUniform(truth, 0.5, 200, 0.2, 19);
  Tends tends;
  auto inferred = tends.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  std::vector<std::vector<graph::NodeId>> parents(5);
  for (const auto& scored : inferred->edges()) {
    parents[scored.edge.to].push_back(scored.edge.from);
  }
  for (auto& p : parents) std::sort(p.begin(), p.end());
  EXPECT_NEAR(tends.diagnostics().network_score,
              NetworkScore(observations.statuses, parents), 1e-6);
}

}  // namespace
}  // namespace tends::inference
