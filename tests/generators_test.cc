#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators/barabasi_albert.h"
#include "graph/generators/configuration.h"
#include "graph/generators/erdos_renyi.h"
#include "graph/generators/lfr.h"
#include "graph/generators/watts_strogatz.h"
#include "graph/stats.h"

namespace tends::graph {
namespace {

// ---------------------------------------------------------------- Erdos-Renyi

TEST(ErdosRenyiTest, ZeroProbabilityYieldsNoEdges) {
  Rng rng(1);
  auto graph = GenerateErdosRenyi({.num_nodes = 20, .edge_probability = 0.0}, rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 0u);
}

TEST(ErdosRenyiTest, FullProbabilityYieldsCompleteGraph) {
  Rng rng(2);
  auto graph = GenerateErdosRenyi({.num_nodes = 10, .edge_probability = 1.0}, rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 90u);  // n*(n-1)
}

TEST(ErdosRenyiTest, RejectsInvalidProbability) {
  Rng rng(3);
  EXPECT_FALSE(GenerateErdosRenyi({.num_nodes = 5, .edge_probability = -0.1}, rng).ok());
  EXPECT_FALSE(GenerateErdosRenyi({.num_nodes = 5, .edge_probability = 1.1}, rng).ok());
}

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  Rng rng(4);
  auto graph = GenerateErdosRenyi({.num_nodes = 100, .edge_probability = 0.05}, rng);
  ASSERT_TRUE(graph.ok());
  // Expectation 495, sd ~ 21.7.
  EXPECT_NEAR(static_cast<double>(graph->num_edges()), 495.0, 100.0);
}

TEST(ErdosRenyiTest, DeterministicGivenSeed) {
  Rng a(5), b(5);
  auto g1 = GenerateErdosRenyi({.num_nodes = 30, .edge_probability = 0.1}, a);
  auto g2 = GenerateErdosRenyi({.num_nodes = 30, .edge_probability = 0.1}, b);
  EXPECT_EQ(*g1, *g2);
}

TEST(ErdosRenyiMTest, ExactEdgeCount) {
  Rng rng(6);
  auto graph = GenerateErdosRenyiM(50, 200, rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 200u);
}

TEST(ErdosRenyiMTest, RejectsImpossibleCount) {
  Rng rng(7);
  EXPECT_FALSE(GenerateErdosRenyiM(3, 7, rng).ok());  // max is 6
}

// ------------------------------------------------------------ Barabasi-Albert

TEST(BarabasiAlbertTest, ValidatesOptions) {
  Rng rng(8);
  EXPECT_FALSE(GenerateBarabasiAlbert({.num_nodes = 10, .edges_per_node = 0}, rng).ok());
  EXPECT_FALSE(GenerateBarabasiAlbert({.num_nodes = 3, .edges_per_node = 3}, rng).ok());
}

TEST(BarabasiAlbertTest, ProducesConnectedHeavyTailGraph) {
  Rng rng(9);
  auto graph = GenerateBarabasiAlbert(
      {.num_nodes = 200, .edges_per_node = 2, .bidirectional = true}, rng);
  ASSERT_TRUE(graph.ok());
  GraphStats stats = ComputeStats(*graph);
  EXPECT_EQ(stats.num_nodes, 200u);
  EXPECT_EQ(stats.num_weak_components, 1u);
  // Preferential attachment: the max degree should be far above the mean.
  EXPECT_GT(stats.max_total_degree, 3 * stats.mean_total_degree);
}

TEST(BarabasiAlbertTest, DirectedModeHasNoForcedReciprocity) {
  Rng rng(10);
  auto graph = GenerateBarabasiAlbert(
      {.num_nodes = 100, .edges_per_node = 2, .bidirectional = false}, rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_LT(ComputeStats(*graph).reciprocity, 0.5);
}

// -------------------------------------------------------------- Watts-Strogatz

TEST(WattsStrogatzTest, ValidatesOptions) {
  Rng rng(11);
  EXPECT_FALSE(GenerateWattsStrogatz({.num_nodes = 0}, rng).ok());
  EXPECT_FALSE(GenerateWattsStrogatz(
                   {.num_nodes = 6, .neighbors_each_side = 3}, rng)
                   .ok());
  EXPECT_FALSE(GenerateWattsStrogatz({.num_nodes = 10,
                                      .neighbors_each_side = 2,
                                      .rewire_probability = 1.5},
                                     rng)
                   .ok());
}

TEST(WattsStrogatzTest, NoRewiringGivesRingLattice) {
  Rng rng(12);
  auto graph = GenerateWattsStrogatz({.num_nodes = 12,
                                      .neighbors_each_side = 2,
                                      .rewire_probability = 0.0},
                                     rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 12u * 2 * 2);  // n*k undirected, both dirs
  EXPECT_TRUE(graph->HasEdge(0, 1));
  EXPECT_TRUE(graph->HasEdge(0, 2));
  EXPECT_TRUE(graph->HasEdge(11, 0));
  EXPECT_FALSE(graph->HasEdge(0, 3));
}

TEST(WattsStrogatzTest, RewiringKeepsEdgeBudgetApproximately) {
  Rng rng(13);
  auto graph = GenerateWattsStrogatz({.num_nodes = 100,
                                      .neighbors_each_side = 2,
                                      .rewire_probability = 0.3},
                                     rng);
  ASSERT_TRUE(graph.ok());
  // Rewiring collisions may drop a few edges but not many.
  EXPECT_GE(graph->num_edges(), 380u);
  EXPECT_LE(graph->num_edges(), 400u);
}

// --------------------------------------------------------- degree sequences

class PowerLawDegreeTest : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawDegreeTest, ExactSumAndBounds) {
  const double exponent = GetParam();
  Rng rng(14);
  auto degrees = SamplePowerLawDegrees(rng, 500, exponent, /*target_mean=*/4.0,
                                       /*min_degree=*/1, /*max_degree=*/12);
  ASSERT_TRUE(degrees.ok()) << degrees.status();
  int64_t sum = std::accumulate(degrees->begin(), degrees->end(), int64_t{0});
  EXPECT_EQ(sum, 2000);
  for (uint32_t d : *degrees) {
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 12u);
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, PowerLawDegreeTest,
                         ::testing::Values(1.5, 2.0, 2.5, 3.0, 3.5, 4.0));

TEST(PowerLawDegreeTest, LargerExponentReducesDispersion) {
  auto dispersion = [](double exponent) {
    Rng rng(15);
    auto degrees =
        SamplePowerLawDegrees(rng, 2000, exponent, 4.0, 1, 12).value();
    double mean = 4.0;
    double ss = 0.0;
    for (uint32_t d : degrees) ss += (d - mean) * (d - mean);
    return std::sqrt(ss / degrees.size());
  };
  // The paper's T parameter: larger T (= exponent - 1) => less dispersion.
  EXPECT_GT(dispersion(2.0), dispersion(4.0));
}

TEST(PowerLawDegreeTest, ValidatesArguments) {
  Rng rng(16);
  EXPECT_FALSE(SamplePowerLawDegrees(rng, 0, 2.5, 4, 1, 10).ok());
  EXPECT_FALSE(SamplePowerLawDegrees(rng, 10, 0.5, 4, 1, 10).ok());
  EXPECT_FALSE(SamplePowerLawDegrees(rng, 10, 2.5, 4, 0, 10).ok());
  EXPECT_FALSE(SamplePowerLawDegrees(rng, 10, 2.5, 4, 5, 3).ok());
  EXPECT_FALSE(SamplePowerLawDegrees(rng, 10, 2.5, 20, 1, 10).ok());
}

// --------------------------------------------------------- WeightedSampler

TEST(WeightedSamplerTest, RespectsWeights) {
  WeightedSampler sampler({1.0, 0.0, 3.0});
  Rng rng(17);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 8000, 0.75, 0.03);
}

TEST(WeightedSamplerTest, SingleElement) {
  WeightedSampler sampler({2.0});
  Rng rng(18);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

// --------------------------------------------------- Chung-Lu community model

TEST(ChungLuTest, ExactDirectedEdgeCount) {
  ChungLuCommunityOptions options;
  options.num_nodes = 120;
  options.num_edges = 600;
  options.num_communities = 6;
  Rng rng(19);
  auto graph = GenerateChungLuCommunity(options, rng);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->num_nodes(), 120u);
  EXPECT_EQ(graph->num_edges(), 600u);
}

TEST(ChungLuTest, UndirectedModeEmitsBothDirections) {
  ChungLuCommunityOptions options;
  options.num_nodes = 80;
  options.num_edges = 400;
  options.directed = false;
  Rng rng(20);
  auto graph = GenerateChungLuCommunity(options, rng);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->num_edges(), 400u);
  EXPECT_DOUBLE_EQ(ComputeStats(*graph).reciprocity, 1.0);
}

TEST(ChungLuTest, UndirectedModeRequiresEvenCount) {
  ChungLuCommunityOptions options;
  options.num_nodes = 10;
  options.num_edges = 7;
  options.directed = false;
  Rng rng(21);
  EXPECT_FALSE(GenerateChungLuCommunity(options, rng).ok());
}

TEST(ChungLuTest, ValidatesOptions) {
  Rng rng(22);
  ChungLuCommunityOptions bad;
  bad.num_nodes = 1;
  EXPECT_FALSE(GenerateChungLuCommunity(bad, rng).ok());
  ChungLuCommunityOptions dense;
  dense.num_nodes = 4;
  dense.num_edges = 11;  // > 50% of 12 possible
  EXPECT_FALSE(GenerateChungLuCommunity(dense, rng).ok());
  ChungLuCommunityOptions frac;
  frac.num_nodes = 10;
  frac.num_edges = 10;
  frac.intra_fraction = 1.4;
  EXPECT_FALSE(GenerateChungLuCommunity(frac, rng).ok());
}

TEST(ChungLuTest, IntraFractionBiasesEdgesIntoCommunities) {
  auto intra_edge_fraction = [](double intra) {
    ChungLuCommunityOptions options;
    options.num_nodes = 200;
    options.num_edges = 1000;
    options.num_communities = 10;
    options.intra_fraction = intra;
    Rng rng(23);
    auto graph = GenerateChungLuCommunity(options, rng).value();
    auto community = AssignCommunities(200, 10);
    uint64_t intra_count = 0;
    for (const auto& e : graph.Edges()) {
      intra_count += community[e.from] == community[e.to];
    }
    return static_cast<double>(intra_count) / graph.num_edges();
  };
  EXPECT_GT(intra_edge_fraction(0.9), intra_edge_fraction(0.1) + 0.3);
}

TEST(AssignCommunitiesTest, RoundRobinCoversAll) {
  auto community = AssignCommunities(10, 3);
  ASSERT_EQ(community.size(), 10u);
  std::set<uint32_t> distinct(community.begin(), community.end());
  EXPECT_EQ(distinct.size(), 3u);
  for (uint32_t c : community) EXPECT_LT(c, 3u);
}

// ------------------------------------------------------------------ LFR

struct LfrCase {
  uint32_t n;
  double kappa;
  double t;
};

class LfrTest : public ::testing::TestWithParam<LfrCase> {};

TEST_P(LfrTest, MatchesPaperParameters) {
  const LfrCase& param = GetParam();
  Rng rng(1000 + param.n + static_cast<uint32_t>(10 * param.t));
  auto graph = GenerateLfr(
      LfrOptions::FromPaperParams(param.n, param.kappa, param.t), rng);
  ASSERT_TRUE(graph.ok()) << graph.status();
  GraphStats stats = ComputeStats(*graph);
  EXPECT_EQ(stats.num_nodes, param.n);
  // Directed average degree should be within 12% of kappa (stub matching
  // may drop a few edges).
  EXPECT_NEAR(stats.average_degree, param.kappa, 0.12 * param.kappa);
  // Both directions of each undirected tie.
  EXPECT_DOUBLE_EQ(stats.reciprocity, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    TableII, LfrTest,
    ::testing::Values(LfrCase{100, 4, 2}, LfrCase{200, 4, 2},
                      LfrCase{300, 4, 2}, LfrCase{200, 2, 2},
                      LfrCase{200, 6, 2}, LfrCase{200, 4, 1},
                      LfrCase{200, 4, 3}));

TEST(LfrTest, ValidatesOptions) {
  Rng rng(24);
  LfrOptions bad;
  bad.num_nodes = 2;
  EXPECT_FALSE(GenerateLfr(bad, rng).ok());
  LfrOptions degree;
  degree.num_nodes = 50;
  degree.average_degree = 0.5;
  EXPECT_FALSE(GenerateLfr(degree, rng).ok());
  LfrOptions mixing;
  mixing.num_nodes = 50;
  mixing.mixing = 1.5;
  EXPECT_FALSE(GenerateLfr(mixing, rng).ok());
  LfrOptions tau;
  tau.num_nodes = 50;
  tau.tau1 = 0.9;
  EXPECT_FALSE(GenerateLfr(tau, rng).ok());
}

TEST(LfrTest, DeterministicGivenSeed) {
  Rng a(25), b(25);
  LfrOptions options = LfrOptions::FromPaperParams(150, 4, 2);
  EXPECT_EQ(*GenerateLfr(options, a), *GenerateLfr(options, b));
}

TEST(LfrTest, FromPaperParamsMapsDispersion) {
  LfrOptions options = LfrOptions::FromPaperParams(200, 4, 2);
  EXPECT_EQ(options.num_nodes, 200u);
  EXPECT_DOUBLE_EQ(options.average_degree, 4.0);
  EXPECT_DOUBLE_EQ(options.tau1, 3.0);
}

TEST(LfrTest, MixingControlsCrossCommunityEdges) {
  // With high mixing the graph should still be generated and connected-ish;
  // we check it doesn't collapse (regression guard for stub matching).
  Rng rng(26);
  LfrOptions options;
  options.num_nodes = 150;
  options.average_degree = 5.0;
  options.mixing = 0.6;
  auto graph = GenerateLfr(options, rng);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_GT(graph->num_edges(), 500u);
}

}  // namespace
}  // namespace tends::graph
