#include "graph/io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "test_util.h"

namespace tends::graph {
namespace {

using ::tends::testing::MakeGraph;

TEST(GraphIoTest, RoundTrip) {
  auto original = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 3}});
  std::stringstream stream;
  ASSERT_TRUE(WriteEdgeList(original, stream).ok());
  auto parsed = ReadEdgeList(stream);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, original);
}

TEST(GraphIoTest, ParsesCommentsAndBlankLines) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "3\n"
      "# another\n"
      "0 1\n"
      "   \n"
      "1 2\n");
  auto parsed = ReadEdgeList(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_nodes(), 3u);
  EXPECT_EQ(parsed->num_edges(), 2u);
  EXPECT_TRUE(parsed->HasEdge(0, 1));
}

TEST(GraphIoTest, EmptyGraphRoundTrip) {
  std::istringstream in("0\n");
  auto parsed = ReadEdgeList(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_nodes(), 0u);
}

TEST(GraphIoTest, MissingHeaderIsCorruption) {
  std::istringstream in("# only comments\n");
  auto parsed = ReadEdgeList(in);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption());
}

TEST(GraphIoTest, BadHeaderIsCorruption) {
  std::istringstream in("abc\n0 1\n");
  EXPECT_TRUE(ReadEdgeList(in).status().IsCorruption());
  std::istringstream in2("3 4\n");
  EXPECT_TRUE(ReadEdgeList(in2).status().IsCorruption());
}

TEST(GraphIoTest, BadEdgeLineIsCorruption) {
  std::istringstream in("3\n0 1 2\n");
  EXPECT_TRUE(ReadEdgeList(in).status().IsCorruption());
  std::istringstream in2("3\n0\n");
  EXPECT_TRUE(ReadEdgeList(in2).status().IsCorruption());
  std::istringstream in3("3\n0 x\n");
  EXPECT_TRUE(ReadEdgeList(in3).status().IsCorruption());
}

TEST(GraphIoTest, OutOfRangeNodeIsCorruption) {
  std::istringstream in("3\n0 3\n");
  auto parsed = ReadEdgeList(in);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption());
}

TEST(GraphIoTest, SelfLoopIsCorruption) {
  std::istringstream in("3\n1 1\n");
  EXPECT_TRUE(ReadEdgeList(in).status().IsCorruption());
}

TEST(GraphIoTest, DuplicateEdgeIsCorruption) {
  std::istringstream in("3\n0 1\n0 1\n");
  EXPECT_TRUE(ReadEdgeList(in).status().IsCorruption());
}

TEST(GraphIoTest, ErrorsMentionLineNumber) {
  std::istringstream in("3\n0 1\n1 1\n");
  auto parsed = ReadEdgeList(in);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos);
}

TEST(GraphIoTest, FileReadFailsOnMissingPath) {
  auto parsed = ReadEdgeListFile("/nonexistent_tends/graph.txt");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsIoError());
}

TEST(GraphIoTest, FileRoundTrip) {
  auto original = MakeGraph(3, {{0, 1}, {2, 1}});
  std::string path = ::testing::TempDir() + "/tends_graph_io_test.txt";
  ASSERT_TRUE(WriteEdgeListFile(original, path).ok());
  auto parsed = ReadEdgeListFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
}

}  // namespace
}  // namespace tends::graph
