#include "metrics/fscore.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tends::metrics {
namespace {

using ::tends::testing::MakeGraph;

inference::InferredNetwork Net(
    uint32_t n,
    std::initializer_list<std::tuple<uint32_t, uint32_t, double>> edges) {
  inference::InferredNetwork network(n);
  for (auto [u, v, w] : edges) network.AddEdge(u, v, w);
  return network;
}

TEST(EvaluateEdgesTest, PerfectInference) {
  auto truth = MakeGraph(3, {{0, 1}, {1, 2}});
  auto inferred = Net(3, {{0, 1, 1}, {1, 2, 1}});
  EdgeMetrics metrics = EvaluateEdges(inferred, truth);
  EXPECT_EQ(metrics.true_positives, 2u);
  EXPECT_EQ(metrics.false_positives, 0u);
  EXPECT_EQ(metrics.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(metrics.precision, 1.0);
  EXPECT_DOUBLE_EQ(metrics.recall, 1.0);
  EXPECT_DOUBLE_EQ(metrics.f_score, 1.0);
}

TEST(EvaluateEdgesTest, EmptyInference) {
  auto truth = MakeGraph(3, {{0, 1}});
  auto inferred = Net(3, {});
  EdgeMetrics metrics = EvaluateEdges(inferred, truth);
  EXPECT_DOUBLE_EQ(metrics.precision, 0.0);
  EXPECT_DOUBLE_EQ(metrics.recall, 0.0);
  EXPECT_DOUBLE_EQ(metrics.f_score, 0.0);
  EXPECT_EQ(metrics.false_negatives, 1u);
}

TEST(EvaluateEdgesTest, HandComputedMix) {
  auto truth = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  // 2 correct, 2 wrong.
  auto inferred = Net(4, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {2, 0, 1}});
  EdgeMetrics metrics = EvaluateEdges(inferred, truth);
  EXPECT_EQ(metrics.true_positives, 2u);
  EXPECT_EQ(metrics.false_positives, 2u);
  EXPECT_EQ(metrics.false_negatives, 2u);
  EXPECT_DOUBLE_EQ(metrics.precision, 0.5);
  EXPECT_DOUBLE_EQ(metrics.recall, 0.5);
  EXPECT_DOUBLE_EQ(metrics.f_score, 0.5);
}

TEST(EvaluateEdgesTest, DirectionMatters) {
  auto truth = MakeGraph(2, {{0, 1}});
  auto inferred = Net(2, {{1, 0, 1}});
  EdgeMetrics metrics = EvaluateEdges(inferred, truth);
  EXPECT_EQ(metrics.true_positives, 0u);
  EXPECT_EQ(metrics.false_positives, 1u);
}

TEST(EvaluateEdgesTest, DuplicateInferredEdgesCountOnce) {
  auto truth = MakeGraph(2, {{0, 1}});
  auto inferred = Net(2, {{0, 1, 1}, {0, 1, 0.5}});
  EdgeMetrics metrics = EvaluateEdges(inferred, truth);
  EXPECT_EQ(metrics.true_positives, 1u);
  EXPECT_EQ(metrics.false_positives, 0u);
  EXPECT_DOUBLE_EQ(metrics.f_score, 1.0);
}

TEST(EvaluateEdgesTest, FScoreIsHarmonicMean) {
  auto truth = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  // 1 tp out of 2 inferred: P = 0.5, R = 0.25, F = 2*.5*.25/.75 = 1/3.
  auto inferred = Net(5, {{0, 1, 1}, {4, 0, 1}});
  EdgeMetrics metrics = EvaluateEdges(inferred, truth);
  EXPECT_NEAR(metrics.f_score, 1.0 / 3.0, 1e-12);
}

TEST(EvaluateBestThresholdTest, FindsOptimalPrefix) {
  auto truth = MakeGraph(4, {{0, 1}, {1, 2}});
  // Weights rank: correct, correct, wrong, wrong. Best threshold keeps the
  // first two -> perfect score.
  auto inferred =
      Net(4, {{0, 1, 0.9}, {1, 2, 0.8}, {2, 3, 0.2}, {3, 0, 0.1}});
  EdgeMetrics metrics = EvaluateBestThreshold(inferred, truth);
  EXPECT_DOUBLE_EQ(metrics.f_score, 1.0);
  EXPECT_EQ(metrics.true_positives, 2u);
}

TEST(EvaluateBestThresholdTest, WrongEdgesOnTopLimitScore) {
  auto truth = MakeGraph(4, {{0, 1}, {1, 2}});
  auto inferred =
      Net(4, {{2, 3, 0.9}, {0, 1, 0.8}, {1, 2, 0.7}});
  EdgeMetrics metrics = EvaluateBestThreshold(inferred, truth);
  // Best prefix = all three: P=2/3, R=1, F=0.8.
  EXPECT_NEAR(metrics.f_score, 0.8, 1e-12);
}

TEST(EvaluateBestThresholdTest, TiedWeightsMoveTogether) {
  auto truth = MakeGraph(4, {{0, 1}});
  // Two edges share weight 0.5: one correct, one wrong. A threshold cannot
  // separate them, so the options are {} or {both}.
  auto inferred = Net(4, {{0, 1, 0.5}, {2, 3, 0.5}});
  EdgeMetrics metrics = EvaluateBestThreshold(inferred, truth);
  EXPECT_NEAR(metrics.f_score, 2.0 * 0.5 * 1.0 / 1.5, 1e-12);
  EXPECT_EQ(metrics.false_positives, 1u);
}

TEST(EvaluateBestThresholdTest, EmptyInferenceGivesZero) {
  auto truth = MakeGraph(3, {{0, 1}});
  auto inferred = Net(3, {});
  EdgeMetrics metrics = EvaluateBestThreshold(inferred, truth);
  EXPECT_DOUBLE_EQ(metrics.f_score, 0.0);
  EXPECT_EQ(metrics.false_negatives, 1u);
}

TEST(EvaluateBestThresholdTest, AtLeastAsGoodAsFullSet) {
  auto truth = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}});
  auto inferred = Net(
      5, {{0, 1, 0.9}, {1, 2, 0.5}, {3, 4, 0.4}, {2, 3, 0.3}, {4, 0, 0.1}});
  EdgeMetrics best = EvaluateBestThreshold(inferred, truth);
  EdgeMetrics full = EvaluateEdges(inferred, truth);
  EXPECT_GE(best.f_score, full.f_score - 1e-12);
}

TEST(EdgeMetricsTest, DebugStringContainsValues) {
  auto truth = MakeGraph(2, {{0, 1}});
  auto inferred = Net(2, {{0, 1, 1}});
  std::string s = EvaluateEdges(inferred, truth).DebugString();
  EXPECT_NE(s.find("F=1.0000"), std::string::npos);
}

}  // namespace
}  // namespace tends::metrics
