#include "inference/counting.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::MakeStatuses;

TEST(CountJointTest, EmptyParentSet) {
  auto statuses = MakeStatuses({{1, 0}, {0, 0}, {1, 1}});
  JointCounts counts = CountJoint(statuses, /*child=*/0, {});
  EXPECT_EQ(counts.num_possible, 1u);
  ASSERT_EQ(counts.num_observed(), 1u);
  EXPECT_EQ(counts.num_unobserved, 0u);
  EXPECT_EQ(counts.child0_count[0], 1u);  // child 0 uninfected once
  EXPECT_EQ(counts.child1_count[0], 2u);
}

TEST(CountJointTest, SingleParentHandComputed) {
  // child = node 0, parent = node 1.
  auto statuses = MakeStatuses({
      {1, 1},  // parent 1, child 1
      {1, 1},
      {0, 1},  // parent 1, child 0
      {0, 0},  // parent 0, child 0
      {1, 0},  // parent 0, child 1
  });
  JointCounts counts = CountJoint(statuses, 0, {1});
  EXPECT_EQ(counts.num_possible, 2u);
  ASSERT_EQ(counts.num_observed(), 2u);
  // Combination index = parent status bit.
  for (size_t j = 0; j < 2; ++j) {
    if (counts.combo[j] == 0) {
      EXPECT_EQ(counts.child0_count[j], 1u);
      EXPECT_EQ(counts.child1_count[j], 1u);
    } else {
      EXPECT_EQ(counts.child0_count[j], 1u);
      EXPECT_EQ(counts.child1_count[j], 2u);
    }
  }
}

TEST(CountJointTest, TwoParentsBitEncoding) {
  // parents = {1, 2}: bit 0 = node 1's status, bit 1 = node 2's status.
  auto statuses = MakeStatuses({
      {1, 1, 0},  // combo 0b01 = 1
      {0, 0, 1},  // combo 0b10 = 2
      {1, 1, 1},  // combo 0b11 = 3
  });
  JointCounts counts = CountJoint(statuses, 0, {1, 2});
  EXPECT_EQ(counts.num_possible, 4u);
  EXPECT_EQ(counts.num_observed(), 3u);
  EXPECT_EQ(counts.num_unobserved, 1u);  // combo 0b00 never seen
  for (size_t j = 0; j < counts.num_observed(); ++j) {
    switch (counts.combo[j]) {
      case 1:
        EXPECT_EQ(counts.child1_count[j], 1u);
        EXPECT_EQ(counts.child0_count[j], 0u);
        break;
      case 2:
        EXPECT_EQ(counts.child0_count[j], 1u);
        break;
      case 3:
        EXPECT_EQ(counts.child1_count[j], 1u);
        break;
      default:
        FAIL() << "unexpected combo " << counts.combo[j];
    }
  }
}

TEST(CountJointTest, CountsSumToBeta) {
  Rng rng(1);
  diffusion::StatusMatrix statuses(100, 20);
  for (uint32_t p = 0; p < 100; ++p) {
    for (uint32_t v = 0; v < 20; ++v) {
      statuses.Set(p, v, rng.NextBernoulli(0.4));
    }
  }
  for (uint32_t s = 1; s <= 5; ++s) {
    std::vector<graph::NodeId> parents;
    for (uint32_t b = 0; b < s; ++b) parents.push_back(b + 1);
    JointCounts counts = CountJoint(statuses, 0, parents);
    uint64_t total = 0;
    for (size_t j = 0; j < counts.num_observed(); ++j) {
      total += counts.child0_count[j] + counts.child1_count[j];
    }
    EXPECT_EQ(total, 100u);
    EXPECT_EQ(counts.num_possible,
              static_cast<uint64_t>(1) << s);
    EXPECT_EQ(counts.num_observed() + counts.num_unobserved,
              counts.num_possible);
  }
}

TEST(CountJointTest, DenseAndSparsePathsAgree) {
  // 15 parents forces the sparse path; compare its aggregate counts with a
  // 14-parent dense run on the same data restricted appropriately.
  Rng rng(2);
  diffusion::StatusMatrix statuses(64, 20);
  for (uint32_t p = 0; p < 64; ++p) {
    for (uint32_t v = 0; v < 20; ++v) {
      statuses.Set(p, v, rng.NextBernoulli(0.5));
    }
  }
  std::vector<graph::NodeId> parents15;
  for (uint32_t b = 1; b <= 15; ++b) parents15.push_back(b);
  JointCounts sparse = CountJoint(statuses, 0, parents15);
  uint64_t total = 0;
  for (size_t j = 0; j < sparse.num_observed(); ++j) {
    total += sparse.child0_count[j] + sparse.child1_count[j];
  }
  EXPECT_EQ(total, 64u);
  EXPECT_LE(sparse.num_observed(), 64u);
  EXPECT_EQ(sparse.num_possible, uint64_t{1} << 15);
}

// --------------------------------------------------------------- PairCounts

TEST(CountPairTest, HandComputed) {
  auto statuses = MakeStatuses({
      {1, 1},
      {1, 0},
      {0, 1},
      {0, 0},
      {1, 1},
  });
  PairCounts counts = CountPair(statuses, 0, 1);
  EXPECT_EQ(counts.c11, 2u);
  EXPECT_EQ(counts.c10, 1u);
  EXPECT_EQ(counts.c01, 1u);
  EXPECT_EQ(counts.c00, 1u);
  EXPECT_EQ(counts.total(), 5u);
}

class PackedStatusesTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PackedStatusesTest, AgreesWithScalarCounting) {
  const uint32_t beta = GetParam();
  Rng rng(100 + beta);
  diffusion::StatusMatrix statuses(beta, 12);
  for (uint32_t p = 0; p < beta; ++p) {
    for (uint32_t v = 0; v < 12; ++v) {
      statuses.Set(p, v, rng.NextBernoulli(0.35));
    }
  }
  PackedStatuses packed(statuses);
  EXPECT_EQ(packed.num_processes(), beta);
  EXPECT_EQ(packed.num_nodes(), 12u);
  for (uint32_t i = 0; i < 12; ++i) {
    EXPECT_EQ(packed.InfectedCount(i), statuses.InfectionCount(i));
    for (uint32_t j = 0; j < 12; ++j) {
      if (i == j) continue;
      PairCounts scalar = CountPair(statuses, i, j);
      PairCounts fast = packed.CountPair(i, j);
      EXPECT_EQ(scalar.c00, fast.c00);
      EXPECT_EQ(scalar.c01, fast.c01);
      EXPECT_EQ(scalar.c10, fast.c10);
      EXPECT_EQ(scalar.c11, fast.c11);
    }
  }
}

// beta values straddling the 64-bit word boundaries.
INSTANTIATE_TEST_SUITE_P(WordBoundaries, PackedStatusesTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 150, 250));

}  // namespace
}  // namespace tends::inference
