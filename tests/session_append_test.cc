// Differential suite for the appendable session: every append-path
// optimization (packed-column splicing, integer delta-updates, cube-served
// incremental searches) must leave results byte-identical to a cold build
// over the concatenated observations.

#include <unistd.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "diffusion/cascade.h"
#include "graph/generators/erdos_renyi.h"
#include "inference/checkpoint.h"
#include "inference/counting.h"
#include "inference/io.h"
#include "inference/parent_search.h"
#include "inference/session.h"
#include "inference/sparse_candidates.h"
#include "inference/tends.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::SimulateUniform;

// Deliberately word-hostile chunk sizes: 70 % 64 = 6 and 37 % 64 = 37, so
// every packed-column splice exercises the cross-word shift path.
constexpr uint32_t kBaseBeta = 70;
constexpr uint32_t kChunkBetas[] = {37, 64, 1, 58};

diffusion::StatusMatrix StreamStatuses(uint32_t beta, uint64_t seed) {
  Rng rng(7);
  auto truth = graph::GenerateErdosRenyi(
      {.num_nodes = 60, .edge_probability = 0.06}, rng);
  if (!truth.ok()) std::abort();
  return SimulateUniform(*truth, 0.4, beta, 0.15, seed).statuses;
}

diffusion::StatusMatrix Concatenate(
    const std::vector<diffusion::StatusMatrix>& chunks) {
  diffusion::StatusMatrix all = chunks.front();
  for (size_t c = 1; c < chunks.size(); ++c) all.AppendRows(chunks[c]);
  return all;
}

void ExpectBitIdentical(const InferredNetwork& a, const InferredNetwork& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edges()[e].edge.from, b.edges()[e].edge.from);
    EXPECT_EQ(a.edges()[e].edge.to, b.edges()[e].edge.to);
    EXPECT_EQ(std::bit_cast<uint64_t>(a.edges()[e].weight),
              std::bit_cast<uint64_t>(b.edges()[e].weight));
  }
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Process-unique scratch path: under `ctest -j` the tsan-suite binary and
// the individually discovered gtest cases can run this test concurrently,
// and ::testing::TempDir() is shared between them.
std::string ScratchPath(const std::string& stem) {
  return ::testing::TempDir() + "/" + stem + "_" +
         std::to_string(::getpid()) + ".txt";
}

// Low-beta streams legitimately leave some node uninfected in every
// process of a prefix; the stream options accept that instead of failing
// the early epochs.
TendsOptions StreamOptions(CandidateMode mode, uint32_t num_threads) {
  TendsOptions options;
  options.candidate_mode = mode;
  options.num_threads = num_threads;
  options.reject_degenerate_columns = false;
  return options;
}

TEST(SessionAppendTest, PackedSpliceHandlesNonWordAlignedTails) {
  const diffusion::StatusMatrix base = StreamStatuses(kBaseBeta, 11);
  const diffusion::StatusMatrix chunk = StreamStatuses(37, 12);
  InferenceSession session(base);
  session.packed();  // materialize so the append splices instead of repacking
  ASSERT_TRUE(session.AppendStatuses(chunk).ok());

  const diffusion::StatusMatrix all = Concatenate({base, chunk});
  const PackedStatuses expected(all);
  const PackedStatuses& spliced = session.packed();
  ASSERT_EQ(spliced.num_processes(), expected.num_processes());
  ASSERT_EQ(spliced.words_per_node(), expected.words_per_node());
  for (uint32_t v = 0; v < all.num_nodes(); ++v) {
    for (uint32_t w = 0; w < expected.words_per_node(); ++w) {
      ASSERT_EQ(spliced.Column(v)[w], expected.Column(v)[w])
          << "node " << v << " word " << w;
    }
  }
}

TEST(SessionAppendTest, AppendVsConcatenatedByteIdenticalOnDisk) {
  std::vector<diffusion::StatusMatrix> chunks = {StreamStatuses(kBaseBeta, 21)};
  for (size_t c = 0; c < 2; ++c) {
    chunks.push_back(StreamStatuses(kChunkBetas[c], 22 + c));
  }
  const diffusion::StatusMatrix all = Concatenate(chunks);

  for (CandidateMode mode : {CandidateMode::kDense, CandidateMode::kSparse}) {
    for (uint32_t num_threads : {1u, 8u}) {
      const TendsOptions options = StreamOptions(mode, num_threads);
      InferenceSession session(chunks[0]);
      // Touch the artifacts between appends so the delta path (not a lazy
      // cold build over the final matrix) is what produces the result.
      ASSERT_TRUE(session.Run(options).ok());
      for (size_t c = 1; c < chunks.size(); ++c) {
        ASSERT_TRUE(session.AppendStatuses(chunks[c]).ok());
        ASSERT_TRUE(session.Run(options).ok());
      }
      auto appended = session.Run(options);
      ASSERT_TRUE(appended.ok()) << appended.status();
      InferenceSession fresh(all);
      auto expected = fresh.Run(options);
      ASSERT_TRUE(expected.ok()) << expected.status();

      const std::string mode_tag =
          mode == CandidateMode::kSparse ? "sparse" : "dense";
      const std::string appended_path =
          ScratchPath("append_" + mode_tag + std::to_string(num_threads));
      const std::string fresh_path =
          ScratchPath("fresh_" + mode_tag + std::to_string(num_threads));
      ASSERT_TRUE(
          WriteInferredNetworkFile(appended->network, appended_path).ok());
      ASSERT_TRUE(
          WriteInferredNetworkFile(expected->network, fresh_path).ok());
      const std::string appended_bytes = ReadFileBytes(appended_path);
      EXPECT_FALSE(appended_bytes.empty());
      EXPECT_EQ(appended_bytes, ReadFileBytes(fresh_path))
          << mode_tag << " with " << num_threads << " threads";
    }
  }
}

TEST(SessionAppendTest, AppendAfterSparseIndexWasBuilt) {
  const diffusion::StatusMatrix base = StreamStatuses(kBaseBeta, 31);
  const diffusion::StatusMatrix chunk = StreamStatuses(45, 32);
  InferenceSession session(base);
  // Materialize the whole sparse chain first, so the append must
  // delta-update the co-occurrence table and re-derive the index.
  session.sparse_base_threshold();
  ASSERT_TRUE(session.AppendStatuses(chunk).ok());

  const diffusion::StatusMatrix all = Concatenate({base, chunk});
  const PackedStatuses packed(all);
  const SparseCandidateIndex expected =
      BuildSparseCandidateIndex(packed, packed.InfectedCounts());
  const SparseCandidateIndex& merged = session.sparse_candidates();
  ASSERT_EQ(merged.num_entries(), expected.num_entries());
  for (uint32_t i = 0; i < all.num_nodes(); ++i) {
    for (uint32_t j = 0; j < all.num_nodes(); ++j) {
      EXPECT_EQ(std::bit_cast<uint64_t>(merged.Get(i, j)),
                std::bit_cast<uint64_t>(expected.Get(i, j)))
          << "pair (" << i << ", " << j << ")";
    }
  }
  EXPECT_EQ(std::bit_cast<uint64_t>(session.sparse_base_threshold().tau),
            std::bit_cast<uint64_t>(FindImiThreshold(expected).tau));
}

TEST(SessionAppendTest, DeltaUpdatedArtifactsMatchColdBuild) {
  const diffusion::StatusMatrix base = StreamStatuses(kBaseBeta, 41);
  const diffusion::StatusMatrix chunk = StreamStatuses(37, 42);
  MetricsRegistry metrics;
  const ArtifactContext context{.metrics = &metrics};
  InferenceSession session(base);
  // Materialize the full dense chain, both MI variants.
  session.marginal_counts(context);
  session.base_threshold(MiVariant::kInfection, context);
  session.base_threshold(MiVariant::kTraditional, context);
#if TENDS_METRICS_ENABLED
  const uint64_t misses_before_append =
      metrics.CounterValue("tends.session.artifact_misses");
#endif
  ASSERT_TRUE(session.AppendStatuses(chunk, context).ok());

  InferenceSession cold(Concatenate({base, chunk}));
  EXPECT_EQ(session.marginal_counts(context), cold.marginal_counts());
  const std::vector<PairCounts>& delta_pairs = session.pair_counts(context);
  const std::vector<PairCounts>& cold_pairs = cold.pair_counts();
  ASSERT_EQ(delta_pairs.size(), cold_pairs.size());
  for (size_t e = 0; e < delta_pairs.size(); ++e) {
    EXPECT_EQ(delta_pairs[e].c00, cold_pairs[e].c00);
    EXPECT_EQ(delta_pairs[e].c01, cold_pairs[e].c01);
    EXPECT_EQ(delta_pairs[e].c10, cold_pairs[e].c10);
    EXPECT_EQ(delta_pairs[e].c11, cold_pairs[e].c11);
  }
  for (MiVariant variant :
       {MiVariant::kInfection, MiVariant::kTraditional}) {
    const ImiMatrix& delta_imi = session.imi(variant, context);
    const ImiMatrix& cold_imi = cold.imi(variant);
    for (uint32_t i = 0; i < base.num_nodes(); ++i) {
      for (uint32_t j = 0; j < base.num_nodes(); ++j) {
        ASSERT_EQ(std::bit_cast<uint64_t>(delta_imi.Get(i, j)),
                  std::bit_cast<uint64_t>(cold_imi.Get(i, j)))
            << MiVariantName(variant) << " (" << i << ", " << j << ")";
      }
    }
    EXPECT_EQ(
        std::bit_cast<uint64_t>(session.base_threshold(variant, context).tau),
        std::bit_cast<uint64_t>(cold.base_threshold(variant).tau));
  }
#if TENDS_METRICS_ENABLED
  // Every post-append access above was served from the delta-seeded
  // generation: appends add no artifact misses.
  EXPECT_EQ(metrics.CounterValue("tends.session.artifact_misses"),
            misses_before_append);
  EXPECT_EQ(metrics.CounterValue("tends.session.appends"), 1u);
  EXPECT_EQ(metrics.CounterValue("tends.session.append_processes"),
            chunk.num_processes());
#endif
}

TEST(SessionAppendTest, IncrementalRunnerMatchesFreshAcrossStream) {
  std::vector<diffusion::StatusMatrix> chunks = {StreamStatuses(kBaseBeta, 51)};
  for (size_t c = 0; c < std::size(kChunkBetas); ++c) {
    chunks.push_back(StreamStatuses(kChunkBetas[c], 52 + c));
  }
  const uint32_t n = chunks[0].num_nodes();

  for (CandidateMode mode : {CandidateMode::kDense, CandidateMode::kSparse}) {
    const TendsOptions options = StreamOptions(mode, /*num_threads=*/4);
    InferenceSession session(chunks[0]);
    IncrementalRunner runner(session, options);
    uint32_t total_clean = 0;
    for (size_t c = 0; c < chunks.size(); ++c) {
      if (c > 0) ASSERT_TRUE(session.AppendStatuses(chunks[c]).ok());
      auto refreshed = runner.Refresh();
      ASSERT_TRUE(refreshed.ok()) << refreshed.status();
      EXPECT_EQ(runner.last_epoch(), c);
      EXPECT_EQ(runner.last_dirty_nodes() + runner.last_clean_nodes(), n);
      total_clean += runner.last_clean_nodes();

      std::vector<diffusion::StatusMatrix> prefix(chunks.begin(),
                                                  chunks.begin() + c + 1);
      InferenceSession fresh(Concatenate(prefix));
      auto expected = fresh.Run(options);
      ASSERT_TRUE(expected.ok()) << expected.status();
      ExpectBitIdentical(refreshed->network, expected->network);
      EXPECT_EQ(
          std::bit_cast<uint64_t>(refreshed->diagnostics.network_score),
          std::bit_cast<uint64_t>(expected->diagnostics.network_score));
      EXPECT_EQ(refreshed->diagnostics.total_score_evaluations,
                expected->diagnostics.total_score_evaluations);
      EXPECT_EQ(refreshed->diagnostics.nodes_completed, n);
    }
    // The stream must actually exercise the reuse path, not dirty every
    // node every epoch.
    EXPECT_GT(total_clean, 0u) << "stream never reused a cube";
  }
}

TEST(SessionAppendTest, IncrementalRunnerRejectsCheckpointOptions) {
  InferenceSession session(StreamStatuses(kBaseBeta, 61));
  TendsOptions options = StreamOptions(CandidateMode::kDense, 1);
  options.checkpoint.directory = ::testing::TempDir();
  IncrementalRunner runner(session, options);
  auto refreshed = runner.Refresh();
  ASSERT_FALSE(refreshed.ok());
  EXPECT_TRUE(refreshed.status().IsInvalidArgument());
}

TEST(SessionAppendTest, RejectsMalformedChunks) {
  const diffusion::StatusMatrix base = StreamStatuses(kBaseBeta, 71);
  InferenceSession session(base);
  EXPECT_TRUE(session.AppendStatuses(diffusion::StatusMatrix(0, 60))
                  .IsInvalidArgument());
  EXPECT_TRUE(session.AppendStatuses(diffusion::StatusMatrix(5, 59))
                  .IsInvalidArgument());
  const diffusion::StatusMatrix chunk = StreamStatuses(5, 72);
  EXPECT_TRUE(
      session.AppendPacked(chunk, PackedStatuses(4, 60)).IsInvalidArgument());
  EXPECT_EQ(session.epoch(), 0u);
  EXPECT_EQ(session.num_processes(), kBaseBeta);
  // A well-formed pre-packed chunk is accepted and spliced.
  ASSERT_TRUE(session.AppendPacked(chunk, PackedStatuses(chunk)).ok());
  EXPECT_EQ(session.epoch(), 1u);
  EXPECT_EQ(session.num_processes(), kBaseBeta + 5);
}

TEST(SessionAppendTest, SnapshotPinsGenerationAcrossAppends) {
  const diffusion::StatusMatrix base = StreamStatuses(kBaseBeta, 81);
  const TendsOptions options = StreamOptions(CandidateMode::kDense, 1);
  InferenceSession session(base);
  const SessionView view = session.Snapshot();
  ASSERT_TRUE(session.AppendStatuses(StreamStatuses(37, 82)).ok());
  EXPECT_EQ(session.epoch(), 1u);
  EXPECT_EQ(view.epoch(), 0u);
  EXPECT_EQ(view.num_processes(), kBaseBeta);
  // The pinned view still runs against the pre-append observations.
  auto pinned = view.Run(options);
  ASSERT_TRUE(pinned.ok()) << pinned.status();
  InferenceSession fresh(base);
  auto expected = fresh.Run(options);
  ASSERT_TRUE(expected.ok()) << expected.status();
  ExpectBitIdentical(pinned->network, expected->network);
}

TEST(SessionAppendTest, AppendChangesTheCheckpointFingerprint) {
  const diffusion::StatusMatrix base = StreamStatuses(kBaseBeta, 91);
  const diffusion::StatusMatrix chunk = StreamStatuses(37, 92);
  const TendsOptions options;
  InferenceSession session(base);
  const uint64_t before = FingerprintInference(session.statuses(), options);
  ASSERT_TRUE(session.AppendStatuses(chunk).ok());
  const uint64_t after = FingerprintInference(session.statuses(), options);
  EXPECT_NE(before, after);
  // Content-addressed, not epoch-addressed: the grown session fingerprints
  // exactly like the concatenated matrix, so a checkpoint taken against
  // one resumes against the other.
  EXPECT_EQ(after,
            FingerprintInference(Concatenate({base, chunk}), options));
}

TEST(SessionCubeTest, CubeCountsMatchCountJointAcrossAppends) {
  const diffusion::StatusMatrix statuses = StreamStatuses(107, 101);
  const graph::NodeId child = 3;
  const std::vector<graph::NodeId> candidates = {1, 7, 12, 30, 44, 59};

  // Build over a prefix, then grow in word-hostile steps: 40, +64, +3.
  diffusion::StatusMatrix prefix(40, statuses.num_nodes());
  for (uint32_t p = 0; p < 40; ++p) {
    for (uint32_t v = 0; v < statuses.num_nodes(); ++v) {
      prefix.Set(p, v, statuses.Get(p, v));
    }
  }
  CandidateCube cube(prefix, child, candidates);
  cube.AddRows(statuses, 40, 104);
  cube.AddRows(statuses, 104, 107);
  ASSERT_EQ(cube.num_processes(), statuses.num_processes());
  EXPECT_EQ(cube.child_infected_count(), statuses.InfectionCount(child));

  auto expect_same = [&](const JointCounts& got, const JointCounts& want) {
    ASSERT_EQ(got.combo.size(), want.combo.size());
    EXPECT_EQ(got.combo, want.combo);
    EXPECT_EQ(got.child0_count, want.child0_count);
    EXPECT_EQ(got.child1_count, want.child1_count);
    EXPECT_EQ(got.num_unobserved, want.num_unobserved);
    EXPECT_EQ(got.num_possible, want.num_possible);
  };
  expect_same(cube.Count({}), CountJoint(statuses, child, {}));
  expect_same(cube.Count(candidates), CountJoint(statuses, child, candidates));
  ForEachCombination(candidates, 3, [&](const std::vector<graph::NodeId>& w) {
    expect_same(cube.Count(w), CountJoint(statuses, child, w));
  });

  // The cube-served parent search is the real consumer: identical results
  // and identical evaluation counts to the packed kernel.
  ParentSearchOptions search;
  ParentSearchResult via_cube = FindParents(statuses, child, candidates,
                                            search, RunContext(),
                                            /*packed=*/nullptr, &cube);
  ParentSearchResult via_packed =
      FindParents(statuses, child, candidates, search);
  EXPECT_EQ(via_cube.parents, via_packed.parents);
  EXPECT_EQ(std::bit_cast<uint64_t>(via_cube.score),
            std::bit_cast<uint64_t>(via_packed.score));
  EXPECT_EQ(via_cube.score_evaluations, via_packed.score_evaluations);
  EXPECT_EQ(via_cube.combinations_considered,
            via_packed.combinations_considered);
}

TEST(SessionApiTest, MiVariantAliasResolvesLikeTheBool) {
  TendsOptions modern;
  modern.mi_variant = MiVariant::kTraditional;
  TendsOptions legacy;
  legacy.use_traditional_mi = true;
  EXPECT_EQ(modern.ResolvedMiVariant(), MiVariant::kTraditional);
  EXPECT_EQ(legacy.ResolvedMiVariant(), MiVariant::kTraditional);
  EXPECT_EQ(TendsOptions().ResolvedMiVariant(), MiVariant::kInfection);

  const diffusion::StatusMatrix statuses = StreamStatuses(kBaseBeta, 111);
  InferenceSession session(statuses);
  modern.reject_degenerate_columns = false;
  legacy.reject_degenerate_columns = false;
  auto via_enum = session.Run(modern);
  auto via_alias = session.Run(legacy);
  ASSERT_TRUE(via_enum.ok()) << via_enum.status();
  ASSERT_TRUE(via_alias.ok()) << via_alias.status();
  ExpectBitIdentical(via_enum->network, via_alias->network);
}

TEST(SessionApiTest, DeprecatedAccessorOverloadsStillServeTheArtifacts) {
  const diffusion::StatusMatrix statuses = StreamStatuses(kBaseBeta, 121);
  InferenceSession session(statuses);
  MetricsRegistry metrics;
  const ArtifactContext context{.metrics = &metrics};
  // One release of source compatibility: the positional spellings must
  // keep returning the same memoized objects as the ArtifactContext ones.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_EQ(&session.packed(&metrics), &session.packed(context));
  EXPECT_EQ(&session.marginal_counts(&metrics),
            &session.marginal_counts(context));
  EXPECT_EQ(&session.pair_counts(&metrics), &session.pair_counts(context));
  EXPECT_EQ(&session.imi(/*use_traditional_mi=*/true),
            &session.imi(MiVariant::kTraditional, context));
  EXPECT_EQ(&session.base_threshold(/*use_traditional_mi=*/false, &metrics),
            &session.base_threshold(MiVariant::kInfection, context));
  EXPECT_EQ(&session.sparse_candidates(&metrics, /*num_threads=*/2),
            &session.sparse_candidates(ArtifactContext{&metrics, 2}));
  EXPECT_EQ(&session.sparse_base_threshold(&metrics),
            &session.sparse_base_threshold(context));
#pragma GCC diagnostic pop
}

}  // namespace
}  // namespace tends::inference
