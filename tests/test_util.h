#ifndef TENDS_TESTS_TEST_UTIL_H_
#define TENDS_TESTS_TEST_UTIL_H_

#include <initializer_list>
#include <vector>

#include "diffusion/cascade.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "graph/builder.h"
#include "graph/graph.h"

namespace tends::testing {

/// Builds a graph from an edge list (n nodes). Dies on invalid edges, which
/// is what a test wants.
inline graph::DirectedGraph MakeGraph(
    uint32_t n, std::initializer_list<std::pair<uint32_t, uint32_t>> edges) {
  graph::GraphBuilder builder(n);
  for (auto [u, v] : edges) {
    auto status = builder.AddEdge(u, v);
    if (!status.ok()) std::abort();
  }
  return builder.Build();
}

/// Builds a status matrix from rows of 0/1 literals; all rows must have the
/// same length.
inline diffusion::StatusMatrix MakeStatuses(
    std::initializer_list<std::initializer_list<int>> rows) {
  const uint32_t beta = static_cast<uint32_t>(rows.size());
  const uint32_t n = static_cast<uint32_t>(rows.begin()->size());
  diffusion::StatusMatrix matrix(beta, n);
  uint32_t p = 0;
  for (const auto& row : rows) {
    uint32_t v = 0;
    for (int status : row) {
      matrix.Set(p, v++, static_cast<uint8_t>(status));
    }
    ++p;
  }
  return matrix;
}

/// Simulates observations on `truth` with deterministic per-edge
/// probability `prob`, `beta` processes and `alpha` initial infections.
inline diffusion::DiffusionObservations SimulateUniform(
    const graph::DirectedGraph& truth, double prob, uint32_t beta,
    double alpha, uint64_t seed) {
  Rng rng(seed);
  auto probabilities = diffusion::EdgeProbabilities::Uniform(truth, prob);
  diffusion::SimulationConfig config;
  config.num_processes = beta;
  config.initial_infection_ratio = alpha;
  auto observations = diffusion::Simulate(truth, probabilities, config, rng);
  if (!observations.ok()) std::abort();
  return std::move(observations).value();
}

}  // namespace tends::testing

#endif  // TENDS_TESTS_TEST_UTIL_H_
