#include "inference/session.h"

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "diffusion/status_simulator.h"
#include "graph/generators/erdos_renyi.h"
#include "inference/tends.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::SimulateUniform;

diffusion::StatusMatrix SweepStatuses() {
  Rng rng(7);
  auto truth = graph::GenerateErdosRenyi({.num_nodes = 60, .edge_probability = 0.06}, rng);
  if (!truth.ok()) std::abort();
  return SimulateUniform(*truth, 0.4, 200, 0.15, 11).statuses;
}

// Bit-cast equality: the session's whole contract is "byte-identical to a
// fresh Infer", so float comparisons must not tolerate any drift.
void ExpectBitIdentical(const InferredNetwork& a, const InferredNetwork& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edges()[e].edge.from, b.edges()[e].edge.from);
    EXPECT_EQ(a.edges()[e].edge.to, b.edges()[e].edge.to);
    EXPECT_EQ(std::bit_cast<uint64_t>(a.edges()[e].weight),
              std::bit_cast<uint64_t>(b.edges()[e].weight));
  }
}

std::vector<TendsOptions> SweepGrid(uint32_t num_threads) {
  std::vector<TendsOptions> runs;
  for (bool traditional : {false, true}) {
    for (double multiplier : {0.7, 1.0, 1.5}) {
      TendsOptions options;
      options.tau_multiplier = multiplier;
      options.use_traditional_mi = traditional;
      options.num_threads = num_threads;
      runs.push_back(options);
    }
  }
  return runs;
}

TEST(SessionTest, RunIsByteIdenticalToFreshInfer) {
  const diffusion::StatusMatrix statuses = SweepStatuses();
  InferenceSession session(statuses);
  for (uint32_t num_threads : {1u, 8u}) {
    for (const TendsOptions& options : SweepGrid(num_threads)) {
      Tends fresh(options);
      auto expected = fresh.InferFromStatuses(statuses);
      ASSERT_TRUE(expected.ok()) << expected.status();
      auto run = session.Run(options);
      ASSERT_TRUE(run.ok()) << run.status();
      ExpectBitIdentical(run->network, *expected);
      EXPECT_EQ(std::bit_cast<uint64_t>(run->diagnostics.network_score),
                std::bit_cast<uint64_t>(fresh.diagnostics().network_score));
      EXPECT_EQ(std::bit_cast<uint64_t>(run->diagnostics.tau),
                std::bit_cast<uint64_t>(fresh.diagnostics().tau));
      EXPECT_EQ(run->diagnostics.nodes_completed,
                fresh.diagnostics().nodes_completed);
      EXPECT_FALSE(run->diagnostics.deadline_expired);
    }
  }
}

TEST(SessionTest, SweepRunnerMatchesFreshRunsInRequestOrder) {
  const diffusion::StatusMatrix statuses = SweepStatuses();
  InferenceSession session(statuses);
  const std::vector<TendsOptions> runs = SweepGrid(/*num_threads=*/1);

  SweepRunnerOptions sweep_options;
  sweep_options.run_parallelism = 3;
  SweepRunner runner(session, sweep_options);
  auto sweep = runner.Run(runs);
  ASSERT_TRUE(sweep.ok()) << sweep.status();
  EXPECT_EQ(sweep->runs_requested, runs.size());
  EXPECT_EQ(sweep->runs_started, runs.size());
  EXPECT_FALSE(sweep->stopped_early);
  ASSERT_EQ(sweep->completed.size(), runs.size());
  for (size_t r = 0; r < runs.size(); ++r) {
    EXPECT_EQ(sweep->completed[r].run_index, r);
    Tends fresh(runs[r]);
    auto expected = fresh.InferFromStatuses(statuses);
    ASSERT_TRUE(expected.ok()) << expected.status();
    ExpectBitIdentical(sweep->completed[r].network, *expected);
  }
}

TEST(SessionTest, TauOverrideMatchesFreshInfer) {
  const diffusion::StatusMatrix statuses = SweepStatuses();
  InferenceSession session(statuses);
  TendsOptions options;
  options.tau_override = 0.02;
  Tends fresh(options);
  auto expected = fresh.InferFromStatuses(statuses);
  ASSERT_TRUE(expected.ok()) << expected.status();
  auto run = session.Run(options);
  ASSERT_TRUE(run.ok()) << run.status();
  ExpectBitIdentical(run->network, *expected);
  EXPECT_DOUBLE_EQ(run->diagnostics.tau, 0.02);
}

TEST(SessionTest, ArtifactsComputedOnceAcrossRuns) {
  const diffusion::StatusMatrix statuses = SweepStatuses();
  InferenceSession session(statuses);
  MetricsRegistry metrics;
  RunContext context;
  context.metrics = &metrics;

  TendsOptions options;
  ASSERT_TRUE(session.Run(options, context).ok());
  // First IMI run misses packed + pair counts + IMI matrix + threshold.
  // (The two hits are dependency lookups: pair-counts re-reading the packed
  // statuses, the threshold re-reading the IMI matrix.) The hit/miss
  // counters are inert when instrumentation is compiled out.
#if TENDS_METRICS_ENABLED
  EXPECT_EQ(metrics.CounterValue("tends.session.artifact_misses"), 4u);
  EXPECT_EQ(metrics.CounterValue("tends.session.artifact_hits"), 2u);
#endif

  options.tau_multiplier = 1.5;
  ASSERT_TRUE(session.Run(options, context).ok());
#if TENDS_METRICS_ENABLED
  // A different multiplier reuses every artifact.
  EXPECT_EQ(metrics.CounterValue("tends.session.artifact_misses"), 4u);
  EXPECT_GT(metrics.CounterValue("tends.session.artifact_hits"), 0u);
#endif

  TendsOptions traditional;
  traditional.use_traditional_mi = true;
  ASSERT_TRUE(session.Run(traditional, context).ok());
#if TENDS_METRICS_ENABLED
  // The MI variant adds its own matrix + threshold but shares the counts.
  EXPECT_EQ(metrics.CounterValue("tends.session.artifact_misses"), 6u);
#endif
}

TEST(SessionTest, PreSeededPackedSkipsTheTranspose) {
  Rng graph_rng(7);
  auto truth = graph::GenerateErdosRenyi(
      {.num_nodes = 60, .edge_probability = 0.06}, graph_rng);
  ASSERT_TRUE(truth.ok());
  auto probs = diffusion::EdgeProbabilities::Uniform(*truth, 0.4);
  diffusion::SimulationConfig config;
  config.num_processes = 200;
  config.initial_infection_ratio = 0.15;
  Rng rng(11);
  auto observations = diffusion::SimulateStatuses(*truth, probs, config, rng);
  ASSERT_TRUE(observations.ok()) << observations.status();
  const diffusion::StatusMatrix statuses = observations->statuses;

  InferenceSession session(std::move(observations->statuses),
                           std::move(observations->packed));
  MetricsRegistry metrics;
  RunContext context;
  context.metrics = &metrics;
  TendsOptions options;
  auto run = session.Run(options, context);
  ASSERT_TRUE(run.ok()) << run.status();
  Tends fresh(options);
  auto expected = fresh.InferFromStatuses(statuses);
  ASSERT_TRUE(expected.ok()) << expected.status();
  ExpectBitIdentical(run->network, *expected);
  // The producer seeded the packed transpose, so unlike the cold session
  // (4 misses / 2 hits, see ArtifactsComputedOnceAcrossRuns) the first run
  // misses only pair counts + IMI matrix + threshold, and both packed
  // lookups hit. Counters are inert when instrumentation is compiled out.
#if TENDS_METRICS_ENABLED
  EXPECT_EQ(metrics.CounterValue("tends.session.artifact_misses"), 3u);
  EXPECT_EQ(metrics.CounterValue("tends.session.artifact_hits"), 3u);
#endif
}

TEST(SessionTest, SweepValidationNamesTheOffendingRun) {
  const diffusion::StatusMatrix statuses = SweepStatuses();
  InferenceSession session(statuses);
  std::vector<TendsOptions> runs(2);
  runs[1].max_candidates = 0;
  SweepRunner runner(session);
  auto sweep = runner.Run(runs);
  ASSERT_FALSE(sweep.ok());
  EXPECT_TRUE(sweep.status().IsInvalidArgument());
  EXPECT_NE(sweep.status().message().find("sweep run 1"), std::string::npos)
      << sweep.status();
}

TEST(SessionTest, RunRejectsInvalidOptions) {
  const diffusion::StatusMatrix statuses = SweepStatuses();
  InferenceSession session(statuses);
  TendsOptions contradictory;
  contradictory.tau_override = 0.1;
  contradictory.tau_multiplier = 2.0;
  EXPECT_FALSE(session.Run(contradictory).ok());
  TendsOptions no_threads;
  no_threads.num_threads = 0;
  EXPECT_FALSE(session.Run(no_threads).ok());
}

TEST(SessionTest, ExpiredContextSkipsEveryRun) {
  const diffusion::StatusMatrix statuses = SweepStatuses();
  InferenceSession session(statuses);
  SweepRunner runner(session);
  RunContext context;
  context.deadline = Deadline::Expired();
  auto sweep = runner.Run(SweepGrid(/*num_threads=*/1), context);
  ASSERT_TRUE(sweep.ok()) << sweep.status();
  EXPECT_TRUE(sweep->completed.empty());
  EXPECT_EQ(sweep->runs_started, 0u);
  EXPECT_TRUE(sweep->stopped_early);
}

TEST(SessionTest, CancellationMidSweepReturnsCompletedRunsOnly) {
  const diffusion::StatusMatrix statuses = SweepStatuses();
  InferenceSession session(statuses);
  CancellationToken cancellation;
  RunContext context;
  context.cancellation = &cancellation;

  // Serial sweep; cancel as soon as the first run completes. The remaining
  // runs must be skipped, and the result must contain only complete
  // networks (never a partial one).
  std::atomic<size_t> callbacks{0};
  SweepRunnerOptions sweep_options;
  sweep_options.on_run_complete = [&](const SweepRunResult&) {
    callbacks.fetch_add(1);
    cancellation.RequestCancellation();
  };
  SweepRunner runner(session, sweep_options);
  auto sweep = runner.Run(SweepGrid(/*num_threads=*/1), context);
  ASSERT_TRUE(sweep.ok()) << sweep.status();
  EXPECT_TRUE(sweep->stopped_early);
  ASSERT_EQ(sweep->completed.size(), 1u);
  EXPECT_EQ(callbacks.load(), 1u);
  EXPECT_EQ(sweep->completed[0].run_index, 0u);
  EXPECT_FALSE(sweep->completed[0].diagnostics.deadline_expired);
  // The one completed run is still byte-identical to a fresh, uncancelled
  // run: cancellation after completion cannot have touched it.
  Tends fresh(SweepGrid(/*num_threads=*/1)[0]);
  auto expected = fresh.InferFromStatuses(statuses);
  ASSERT_TRUE(expected.ok()) << expected.status();
  ExpectBitIdentical(sweep->completed[0].network, *expected);
}

TEST(SessionTest, ConcurrentRunsShareArtifactsSafely) {
  // Hammer one session from many concurrent runs (run_parallelism well
  // above the artifact count) so the memoization race is actually
  // exercised; tsan runs this via the Session* filter.
  const diffusion::StatusMatrix statuses = SweepStatuses();
  InferenceSession session(statuses);
  MetricsRegistry metrics;
  RunContext context;
  context.metrics = &metrics;
  std::vector<TendsOptions> runs;
  for (int i = 0; i < 12; ++i) {
    TendsOptions options;
    options.tau_multiplier = 0.8 + 0.1 * i;
    options.use_traditional_mi = (i % 2) == 1;
    runs.push_back(options);
  }
  SweepRunnerOptions sweep_options;
  sweep_options.run_parallelism = 12;
  SweepRunner runner(session, sweep_options);
  auto sweep = runner.Run(runs, context);
  ASSERT_TRUE(sweep.ok()) << sweep.status();
  ASSERT_EQ(sweep->completed.size(), runs.size());
  // However the races resolved, each artifact was computed exactly once:
  // packed, pair counts, two MI matrices, two thresholds. (Counters are
  // inert when instrumentation is compiled out.)
#if TENDS_METRICS_ENABLED
  EXPECT_EQ(metrics.CounterValue("tends.session.artifact_misses"), 6u);
#endif
  for (size_t r = 0; r < runs.size(); ++r) {
    Tends fresh(runs[r]);
    auto expected = fresh.InferFromStatuses(statuses);
    ASSERT_TRUE(expected.ok()) << expected.status();
    ExpectBitIdentical(sweep->completed[r].network, *expected);
  }
}

TEST(SessionTest, OptionsValidateCatchesContradictions) {
  TendsOptions ok;
  EXPECT_TRUE(ok.Validate().ok());

  TendsOptions bad_tau;
  bad_tau.tau_multiplier = 0.0;
  EXPECT_TRUE(bad_tau.Validate().IsInvalidArgument());

  TendsOptions contradictory;
  contradictory.tau_override = 0.1;
  contradictory.tau_multiplier = 0.5;
  EXPECT_TRUE(contradictory.Validate().IsInvalidArgument());

  TendsOptions override_only;
  override_only.tau_override = 0.1;
  EXPECT_TRUE(override_only.Validate().ok());

  TendsOptions no_candidates;
  no_candidates.max_candidates = 0;
  EXPECT_TRUE(no_candidates.Validate().IsInvalidArgument());

  TendsOptions no_threads;
  no_threads.num_threads = 0;
  EXPECT_TRUE(no_threads.Validate().IsInvalidArgument());
}

}  // namespace
}  // namespace tends::inference
