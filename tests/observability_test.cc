#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/io_hardening.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/run_context.h"
#include "diffusion/io.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "graph/generators/erdos_renyi.h"
#include "inference/tends.h"

namespace tends {
namespace {

// End-to-end: simulate -> TENDS with a registry attached, then check that
// the manifest's counters and stages agree with the algorithm's own
// diagnostics. This is the contract `tends_cli infer --metrics_out` relies
// on.
TEST(ObservabilityPipelineTest, ManifestMatchesTendsDiagnostics) {
  Rng rng(7);
  auto graph = graph::GenerateErdosRenyiM(30, 80, rng);
  ASSERT_TRUE(graph.ok());
  auto probabilities =
      diffusion::EdgeProbabilities::Gaussian(*graph, 0.4, 0.05, rng);

  MetricsRegistry registry;
  diffusion::SimulationConfig sim_config;
  sim_config.num_processes = 120;
  auto observations = diffusion::Simulate(*graph, probabilities, sim_config,
                                          rng, &registry);
  ASSERT_TRUE(observations.ok());

  RunContext context;
  context.metrics = &registry;
  inference::TendsOptions options;
  options.reject_degenerate_columns = false;
  inference::Tends tends(options);
  auto network = tends.InferFromStatuses(observations->statuses, context);
  ASSERT_TRUE(network.ok());
  const inference::TendsDiagnostics& diagnostics = tends.diagnostics();
  EXPECT_EQ(diagnostics.nodes_completed, 30u);

#if TENDS_METRICS_ENABLED
  // Counters mirror the diagnostics exactly.
  EXPECT_EQ(registry.CounterValue("tends.tends.nodes_completed"),
            diagnostics.nodes_completed);
  EXPECT_EQ(registry.CounterValue("tends.tends.score_evaluations"),
            diagnostics.total_score_evaluations);
  EXPECT_EQ(registry.CounterValue("tends.tends.clipped_nodes"),
            diagnostics.clipped_nodes);
  EXPECT_EQ(registry.CounterValue("tends.kmeans.iterations"),
            diagnostics.kmeans_iterations);
  // The per-call parent-search counters aggregate to the same totals.
  EXPECT_EQ(registry.CounterValue("tends.parent_search.calls"), 30u);
  EXPECT_EQ(registry.CounterValue("tends.parent_search.score_evaluations"),
            diagnostics.total_score_evaluations);
  // Simulator counters.
  EXPECT_EQ(registry.CounterValue("tends.sim.processes"), 120u);
  EXPECT_EQ(registry.GetHistogram("tends.sim.cascade_size").count(), 120u);

  // All four pipeline stages (plus the simulator's) were timed.
  EXPECT_GT(registry.StageWallNs("simulate"), 0u);
  EXPECT_GT(registry.StageWallNs("imi"), 0u);
  EXPECT_GT(registry.StageWallNs("kmeans"), 0u);
  EXPECT_GT(registry.StageWallNs("pruning"), 0u);
  EXPECT_GT(registry.StageWallNs("parent_search"), 0u);
#endif

  // The rendered manifest carries the same numbers through JSON.
  RunManifest run_manifest;
  run_manifest.tool = "observability_test";
  std::string json = MetricsManifestJson(run_manifest, registry);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
#if TENDS_METRICS_ENABLED
  const JsonValue* completed = parsed->FindPath(
      {"metrics", "counters", "tends.tends.nodes_completed"});
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->int_value(),
            static_cast<int64_t>(diagnostics.nodes_completed));
  const JsonValue* evaluations = parsed->FindPath(
      {"metrics", "counters", "tends.tends.score_evaluations"});
  ASSERT_NE(evaluations, nullptr);
  EXPECT_EQ(evaluations->int_value(),
            static_cast<int64_t>(diagnostics.total_score_evaluations));
  for (const char* stage : {"imi", "kmeans", "pruning", "parent_search"}) {
    EXPECT_NE(parsed->FindPath({"metrics", "stages", stage}), nullptr)
        << stage;
  }
#endif
}

// Identical input must produce an identical topology with and without a
// registry attached: observability must never perturb the algorithm.
TEST(ObservabilityPipelineTest, MetricsDoNotChangeTheResult) {
  Rng rng(11);
  auto graph = graph::GenerateErdosRenyiM(25, 60, rng);
  ASSERT_TRUE(graph.ok());
  auto probabilities =
      diffusion::EdgeProbabilities::Gaussian(*graph, 0.4, 0.05, rng);
  diffusion::SimulationConfig sim_config;
  sim_config.num_processes = 100;
  Rng sim_rng_a(99);
  Rng sim_rng_b(99);
  auto plain = diffusion::Simulate(*graph, probabilities, sim_config,
                                   sim_rng_a);
  MetricsRegistry registry;
  auto metered = diffusion::Simulate(*graph, probabilities, sim_config,
                                     sim_rng_b, &registry);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(metered.ok());

  inference::TendsOptions options;
  options.reject_degenerate_columns = false;
  inference::Tends tends_plain(options);
  inference::Tends tends_metered(options);
  RunContext context;
  context.metrics = &registry;
  auto network_plain = tends_plain.InferFromStatuses(plain->statuses);
  auto network_metered =
      tends_metered.InferFromStatuses(metered->statuses, context);
  ASSERT_TRUE(network_plain.ok());
  ASSERT_TRUE(network_metered.ok());
  EXPECT_EQ(network_plain->DebugString(), network_metered->DebugString());
  EXPECT_EQ(tends_plain.diagnostics().total_score_evaluations,
            tends_metered.diagnostics().total_score_evaluations);
}

// Reader corruption tallies flow into the manifest counter namespace, and
// every kind is registered even at zero so the section is always present.
TEST(ObservabilityPipelineTest, CorruptionReportExportsAllKinds) {
  CorruptionReport report;
  report.Record(CorruptionKind::kBadToken, 3, "x12 is not a status");
  report.Record(CorruptionKind::kBadToken, 9, "zz");
  report.Record(CorruptionKind::kTruncation, 0, "stream ended early");
  report.AddSkippedRecord();

  MetricsRegistry registry;
  report.ExportTo(&registry);
  EXPECT_EQ(registry.CounterValue("tends.io.corruption_events"), 3u);
  EXPECT_EQ(registry.CounterValue("tends.io.skipped_records"), 1u);
  EXPECT_EQ(registry.CounterValue("tends.io.corruption.bad_token"), 2u);
  EXPECT_EQ(registry.CounterValue("tends.io.corruption.truncation"), 1u);

  // Zero-valued kinds are registered too (visible in snapshots).
  bool found_wrong_width = false;
  for (const auto& [name, value] : registry.CounterValues()) {
    if (name == "tends.io.corruption.wrong_width") {
      found_wrong_width = true;
      EXPECT_EQ(value, 0u);
    }
  }
  EXPECT_TRUE(found_wrong_width);

  // Null registry: no-op.
  report.ExportTo(nullptr);
}

// A permissive read of corrupt data feeds the same counters end-to-end.
TEST(ObservabilityPipelineTest, PermissiveReadCountsReachManifest) {
  std::istringstream input(
      "# tends-statuses v1\n"
      "processes 3 nodes 4\n"
      "0 1 0 1\n"
      "0 x 0 1\n"
      "1 1 1 0\n");
  CorruptionReport report;
  auto statuses = diffusion::ReadStatusMatrix(
      input, {.mode = IoMode::kPermissive}, &report);
  ASSERT_TRUE(statuses.ok());
  EXPECT_GT(report.total(), 0u);

  MetricsRegistry registry;
  report.ExportTo(&registry);
  RunManifest manifest;
  manifest.tool = "observability_test";
  auto parsed = ParseJson(MetricsManifestJson(manifest, registry));
  ASSERT_TRUE(parsed.ok());
  const JsonValue* events =
      parsed->FindPath({"metrics", "counters", "tends.io.corruption_events"});
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->int_value(), static_cast<int64_t>(report.total()));
}

}  // namespace
}  // namespace tends
