#include <gtest/gtest.h>

#include "common/random.h"
#include "diffusion/ic_model.h"
#include "diffusion/lt_model.h"
#include "diffusion/propagation.h"
#include "graph/generators/erdos_renyi.h"
#include "test_util.h"

namespace tends::diffusion {
namespace {

using ::tends::testing::MakeGraph;

// ------------------------------------------------------- EdgeProbabilities

TEST(EdgeProbabilitiesTest, UniformAssignsAllEdges) {
  auto graph = MakeGraph(3, {{0, 1}, {1, 2}, {2, 0}});
  auto probs = EdgeProbabilities::Uniform(graph, 0.4);
  EXPECT_EQ(probs.size(), 3u);
  EXPECT_DOUBLE_EQ(probs.Get(graph, 0, 1), 0.4);
  EXPECT_DOUBLE_EQ(probs.Get(graph, 2, 0), 0.4);
}

TEST(EdgeProbabilitiesTest, GaussianClampsToRange) {
  Rng graph_rng(1);
  auto graph =
      graph::GenerateErdosRenyiM(100, 2000, graph_rng).value();
  Rng rng(2);
  auto probs = EdgeProbabilities::Gaussian(graph, 0.3, 0.05, rng);
  double sum = 0.0;
  for (double p : probs.values()) {
    EXPECT_GE(p, 0.01);
    EXPECT_LE(p, 0.99);
    sum += p;
  }
  // Mean should be close to 0.3 (the paper's setting).
  EXPECT_NEAR(sum / probs.size(), 0.3, 0.01);
}

TEST(EdgeProbabilitiesTest, GaussianMostlyWithinTwoSigma) {
  Rng graph_rng(3);
  auto graph = graph::GenerateErdosRenyiM(100, 3000, graph_rng).value();
  Rng rng(4);
  auto probs = EdgeProbabilities::Gaussian(graph, 0.3, 0.05, rng);
  // The paper: >95% of probabilities within mean +/- 0.1 (= 2 sigma).
  uint32_t within = 0;
  for (double p : probs.values()) {
    within += p >= 0.2 && p <= 0.4;
  }
  EXPECT_GT(static_cast<double>(within) / probs.size(), 0.95);
}

// ---------------------------------------------------------------- IC model

TEST(IcModelTest, ProbabilityOneInfectsReachableSet) {
  // 0 -> 1 -> 2, 3 isolated.
  auto graph = MakeGraph(4, {{0, 1}, {1, 2}});
  auto probs = EdgeProbabilities::Uniform(graph, 1.0);
  IndependentCascadeModel model(graph, probs);
  Rng rng(5);
  auto cascade = model.Run({0}, rng);
  ASSERT_TRUE(cascade.ok());
  EXPECT_EQ(cascade->infection_time[0], 0);
  EXPECT_EQ(cascade->infection_time[1], 1);
  EXPECT_EQ(cascade->infection_time[2], 2);
  EXPECT_EQ(cascade->infection_time[3], kNeverInfected);
}

TEST(IcModelTest, ProbabilityZeroInfectsOnlySources) {
  auto graph = MakeGraph(3, {{0, 1}, {1, 2}});
  auto probs = EdgeProbabilities::Uniform(graph, 0.0);
  IndependentCascadeModel model(graph, probs);
  Rng rng(6);
  auto cascade = model.Run({0, 2}, rng);
  ASSERT_TRUE(cascade.ok());
  EXPECT_EQ(cascade->NumInfected(), 2u);
  EXPECT_EQ(cascade->infection_time[1], kNeverInfected);
}

TEST(IcModelTest, RejectsBadSources) {
  auto graph = MakeGraph(3, {{0, 1}});
  auto probs = EdgeProbabilities::Uniform(graph, 0.5);
  IndependentCascadeModel model(graph, probs);
  Rng rng(7);
  EXPECT_FALSE(model.Run({3}, rng).ok());
  EXPECT_FALSE(model.Run({0, 0}, rng).ok());
}

TEST(IcModelTest, MaxRoundsBoundsSpread) {
  // Chain of 5 with certain transmission.
  auto graph = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto probs = EdgeProbabilities::Uniform(graph, 1.0);
  IndependentCascadeModel model(graph, probs);
  Rng rng(8);
  auto cascade = model.Run({0}, rng, /*max_rounds=*/2);
  ASSERT_TRUE(cascade.ok());
  EXPECT_EQ(cascade->NumInfected(), 3u);  // rounds 0,1,2
  EXPECT_EQ(cascade->infection_time[3], kNeverInfected);
}

// Property suite: IC invariants on random graphs and probabilities.
class IcInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IcInvariantTest, SourcesAtTimeZeroAndInfectionClosure) {
  Rng graph_rng(GetParam());
  auto graph = graph::GenerateErdosRenyiM(60, 300, graph_rng).value();
  Rng rng(GetParam() + 1);
  auto probs = EdgeProbabilities::Gaussian(graph, 0.4, 0.1, rng);
  IndependentCascadeModel model(graph, probs);
  auto sources = rng.SampleWithoutReplacement(60, 9);
  std::vector<graph::NodeId> source_vec(sources.begin(), sources.end());
  auto cascade = model.Run(source_vec, rng);
  ASSERT_TRUE(cascade.ok());
  // 1. Sources are infected at time 0.
  for (graph::NodeId s : source_vec) {
    EXPECT_EQ(cascade->infection_time[s], 0);
  }
  // 2. Every infected non-source has an in-neighbor infected exactly one
  //    round earlier (its IC infector).
  for (uint32_t v = 0; v < 60; ++v) {
    int32_t tv = cascade->infection_time[v];
    if (tv <= 0) continue;
    bool has_infector = false;
    for (graph::NodeId u : graph.InNeighbors(v)) {
      if (cascade->infection_time[u] == tv - 1) {
        has_infector = true;
        break;
      }
    }
    EXPECT_TRUE(has_infector) << "node " << v << " infected at " << tv
                              << " without an infector";
  }
  // 3. Times are either kNeverInfected or non-negative.
  for (int32_t t : cascade->infection_time) {
    EXPECT_TRUE(t == kNeverInfected || t >= 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcInvariantTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(IcModelTest, DeterministicGivenRngState) {
  auto graph = MakeGraph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  auto probs = EdgeProbabilities::Uniform(graph, 0.5);
  IndependentCascadeModel model(graph, probs);
  Rng a(9), b(9);
  auto c1 = model.Run({0}, a);
  auto c2 = model.Run({0}, b);
  EXPECT_EQ(c1->infection_time, c2->infection_time);
}

// ---------------------------------------------------------------- LT model

TEST(LtModelTest, FullWeightChainSpreads) {
  // Single parent with raw probability 1.0: weight 1 >= any threshold in
  // (0, 1], so the infection must propagate down the chain.
  auto graph = MakeGraph(3, {{0, 1}, {1, 2}});
  auto probs = EdgeProbabilities::Uniform(graph, 1.0);
  LinearThresholdModel model(graph, probs);
  Rng rng(10);
  auto cascade = model.Run({0}, rng);
  ASSERT_TRUE(cascade.ok());
  EXPECT_EQ(cascade->NumInfected(), 3u);
  EXPECT_EQ(cascade->infection_time[2], 2);
}

TEST(LtModelTest, RejectsBadSources) {
  auto graph = MakeGraph(2, {{0, 1}});
  auto probs = EdgeProbabilities::Uniform(graph, 0.5);
  LinearThresholdModel model(graph, probs);
  Rng rng(11);
  EXPECT_FALSE(model.Run({2}, rng).ok());
  EXPECT_FALSE(model.Run({1, 1}, rng).ok());
}

class LtInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LtInvariantTest, InfectionClosure) {
  Rng graph_rng(GetParam());
  auto graph = graph::GenerateErdosRenyiM(50, 250, graph_rng).value();
  Rng rng(GetParam() + 7);
  auto probs = EdgeProbabilities::Gaussian(graph, 0.5, 0.1, rng);
  LinearThresholdModel model(graph, probs);
  auto cascade = model.Run({0, 1, 2, 3, 4}, rng);
  ASSERT_TRUE(cascade.ok());
  // Every infected non-source has at least one in-neighbor infected
  // strictly earlier (threshold crossings need infected parents).
  for (uint32_t v = 0; v < 50; ++v) {
    int32_t tv = cascade->infection_time[v];
    if (tv <= 0) continue;
    bool has_earlier_parent = false;
    for (graph::NodeId u : graph.InNeighbors(v)) {
      int32_t tu = cascade->infection_time[u];
      if (tu != kNeverInfected && tu < tv) {
        has_earlier_parent = true;
        break;
      }
    }
    EXPECT_TRUE(has_earlier_parent);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LtInvariantTest,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(LtModelTest, MaxRoundsBoundsSpread) {
  auto graph = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  auto probs = EdgeProbabilities::Uniform(graph, 1.0);
  LinearThresholdModel model(graph, probs);
  Rng rng(12);
  auto cascade = model.Run({0}, rng, /*max_rounds=*/1);
  ASSERT_TRUE(cascade.ok());
  EXPECT_EQ(cascade->NumInfected(), 2u);
}

}  // namespace
}  // namespace tends::diffusion
