#include <algorithm>

#include <gtest/gtest.h>

#include "inference/correlation.h"
#include "inference/lift.h"
#include "inference/multree.h"
#include "inference/netrate.h"
#include "metrics/fscore.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::MakeGraph;
using ::tends::testing::SimulateUniform;

graph::DirectedGraph ChainTruth() {
  return MakeGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
}

// -------------------------------------------------------------- NetRate

TEST(NetRateTest, RequiresCascades) {
  NetRate netrate;
  diffusion::DiffusionObservations empty;
  auto result = netrate.Infer(empty);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("no recorded cascades"),
            std::string::npos)
      << result.status();
}

diffusion::DiffusionObservations RaggedObservations() {
  auto observations = SimulateUniform(ChainTruth(), 0.5, 20, 0.2, 29);
  // Cascade 3 loses a node: the row no longer matches num_nodes().
  observations.cascades[3].infection_time.pop_back();
  return observations;
}

TEST(BaselineValidationTest, RaggedCascadeRowsAreRejectedWithPreciseErrors) {
  auto ragged = RaggedObservations();

  NetRate netrate;
  auto netrate_result = netrate.Infer(ragged);
  ASSERT_FALSE(netrate_result.ok());
  EXPECT_TRUE(netrate_result.status().IsInvalidArgument());
  EXPECT_NE(netrate_result.status().message().find("cascade 3"),
            std::string::npos)
      << netrate_result.status();
  EXPECT_NE(netrate_result.status().message().find("ragged"),
            std::string::npos)
      << netrate_result.status();

  MulTree multree({.num_edges = 5});
  auto multree_result = multree.Infer(ragged);
  ASSERT_FALSE(multree_result.ok());
  EXPECT_TRUE(multree_result.status().IsInvalidArgument());
  EXPECT_NE(multree_result.status().message().find("ragged"),
            std::string::npos)
      << multree_result.status();

  Lift lift({.num_edges = 5});
  auto lift_result = lift.Infer(ragged);
  ASSERT_FALSE(lift_result.ok());
  EXPECT_TRUE(lift_result.status().IsInvalidArgument());
}

TEST(BaselineValidationTest, OutOfRangeSourcesAreRejected) {
  auto observations = SimulateUniform(ChainTruth(), 0.5, 20, 0.2, 31);
  observations.cascades[1].sources.push_back(99);
  NetRate netrate;
  auto result = netrate.Infer(observations);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("source 99 out of range"),
            std::string::npos)
      << result.status();
}

TEST(NetRateTest, NameIsStable) {
  NetRate netrate;
  EXPECT_EQ(netrate.name(), "NetRate");
}

TEST(NetRateTest, RecoversChainWithBestThreshold) {
  auto truth = ChainTruth();
  auto observations = SimulateUniform(truth, 0.6, 400, 0.17, 21);
  NetRateOptions options;
  options.max_iterations = 100;  // converged mode
  NetRate netrate(options);
  auto inferred = netrate.Infer(observations);
  ASSERT_TRUE(inferred.ok()) << inferred.status();
  metrics::EdgeMetrics metrics = metrics::EvaluateBestThreshold(*inferred, truth);
  EXPECT_GT(metrics.f_score, 0.6) << metrics.DebugString();
}

TEST(NetRateTest, AllWeightsArePositiveRates) {
  auto truth = ChainTruth();
  auto observations = SimulateUniform(truth, 0.5, 150, 0.2, 23);
  NetRate netrate;
  auto inferred = netrate.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  for (const auto& scored : inferred->edges()) {
    EXPECT_GT(scored.weight, 0.0);
    EXPECT_LE(scored.weight, NetRateOptions().rate_cap);
  }
}

TEST(NetRateTest, MoreIterationsDoNotHurtMuch) {
  auto truth = ChainTruth();
  auto observations = SimulateUniform(truth, 0.6, 300, 0.17, 25);
  NetRateOptions few, many;
  few.max_iterations = 2;
  many.max_iterations = 60;
  NetRate netrate_few(few), netrate_many(many);
  auto f = metrics::EvaluateBestThreshold(*netrate_few.Infer(observations),
                                          truth);
  auto m = metrics::EvaluateBestThreshold(*netrate_many.Infer(observations),
                                          truth);
  EXPECT_GE(m.f_score + 0.05, f.f_score);
}

TEST(NetRateTest, DeterministicOnSameObservations) {
  auto truth = ChainTruth();
  auto observations = SimulateUniform(truth, 0.5, 150, 0.2, 27);
  NetRate a, b;
  auto r1 = a.Infer(observations);
  auto r2 = b.Infer(observations);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->num_edges(), r2->num_edges());
  for (size_t e = 0; e < r1->num_edges(); ++e) {
    EXPECT_EQ(r1->edges()[e].edge, r2->edges()[e].edge);
    EXPECT_DOUBLE_EQ(r1->edges()[e].weight, r2->edges()[e].weight);
  }
}

// -------------------------------------------------------------- MulTree

TEST(MulTreeTest, RequiresEdgeCountAndCascades) {
  MulTree no_edges({});
  diffusion::DiffusionObservations empty;
  EXPECT_FALSE(no_edges.Infer(empty).ok());
  MulTreeOptions options;
  options.num_edges = 5;
  MulTree no_cascades(options);
  EXPECT_FALSE(no_cascades.Infer(empty).ok());
}

TEST(MulTreeTest, ProducesAtMostRequestedEdges) {
  auto truth = ChainTruth();
  auto observations = SimulateUniform(truth, 0.6, 200, 0.17, 29);
  MulTreeOptions options;
  options.num_edges = truth.num_edges();
  MulTree multree(options);
  auto inferred = multree.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  EXPECT_LE(inferred->num_edges(), truth.num_edges());
}

TEST(MulTreeTest, RecoversChain) {
  auto truth = ChainTruth();
  auto observations = SimulateUniform(truth, 0.6, 400, 0.17, 31);
  MulTreeOptions options;
  options.num_edges = truth.num_edges();
  MulTree multree(options);
  auto inferred = multree.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  metrics::EdgeMetrics metrics = metrics::EvaluateEdges(*inferred, truth);
  EXPECT_GT(metrics.f_score, 0.6) << metrics.DebugString();
}

TEST(MulTreeTest, SelectedGainsAreNonIncreasing) {
  // Submodularity: the gain recorded at selection k is >= the gain at k+1.
  auto truth = ChainTruth();
  auto observations = SimulateUniform(truth, 0.6, 200, 0.17, 33);
  MulTreeOptions options;
  options.num_edges = 10;
  MulTree multree(options);
  auto inferred = multree.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  const auto& edges = inferred->edges();
  for (size_t e = 1; e < edges.size(); ++e) {
    EXPECT_GE(edges[e - 1].weight, edges[e].weight - 1e-9);
  }
}

TEST(MulTreeTest, DeterministicOnSameObservations) {
  auto truth = ChainTruth();
  auto observations = SimulateUniform(truth, 0.5, 150, 0.2, 35);
  MulTreeOptions options;
  options.num_edges = 5;
  MulTree a(options), b(options);
  auto r1 = a.Infer(observations);
  auto r2 = b.Infer(observations);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->num_edges(), r2->num_edges());
  for (size_t e = 0; e < r1->num_edges(); ++e) {
    EXPECT_EQ(r1->edges()[e].edge, r2->edges()[e].edge);
  }
}

// ----------------------------------------------------------------- LIFT

TEST(LiftTest, RequiresEdgeCountAndSources) {
  Lift no_edges({});
  diffusion::DiffusionObservations empty;
  EXPECT_FALSE(no_edges.Infer(empty).ok());
  LiftOptions options;
  options.num_edges = 5;
  Lift no_sources(options);
  EXPECT_FALSE(no_sources.Infer(empty).ok());
}

TEST(LiftTest, ProducesExactlyRequestedEdges) {
  auto truth = ChainTruth();
  auto observations = SimulateUniform(truth, 0.6, 300, 0.3, 37);
  LiftOptions options;
  options.num_edges = truth.num_edges();
  Lift lift(options);
  auto inferred = lift.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  EXPECT_EQ(inferred->num_edges(), truth.num_edges());
}

TEST(LiftTest, SourceLiftBeatsChance) {
  // On a strongly-transmitting chain with many observations the lift
  // ranking must beat random edge guessing (chance F ~ m / (n*(n-1))).
  auto truth = ChainTruth();
  auto observations = SimulateUniform(truth, 0.7, 600, 0.2, 39);
  LiftOptions options;
  options.num_edges = truth.num_edges();
  Lift lift(options);
  auto inferred = lift.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  metrics::EdgeMetrics metrics = metrics::EvaluateEdges(*inferred, truth);
  EXPECT_GT(metrics.f_score, 0.3) << metrics.DebugString();
}

// ----------------------------------------------------------- Correlation

TEST(CorrelationTest, RequiresEdgeCount) {
  CorrelationBaseline baseline({});
  diffusion::DiffusionObservations empty;
  EXPECT_FALSE(baseline.Infer(empty).ok());
}

TEST(CorrelationTest, TopPairsMatchImiRanking) {
  auto truth = ChainTruth();
  auto observations = SimulateUniform(truth, 0.6, 300, 0.2, 41);
  CorrelationOptions options;
  options.num_edges = truth.num_edges();
  CorrelationBaseline baseline(options);
  auto inferred = baseline.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  EXPECT_EQ(inferred->num_edges(), truth.num_edges());
  metrics::EdgeMetrics metrics = metrics::EvaluateEdges(*inferred, truth);
  EXPECT_GT(metrics.f_score, 0.3);
}

}  // namespace
}  // namespace tends::inference
