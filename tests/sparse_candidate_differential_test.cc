// Differential proof that candidate_mode=sparse is byte-identical to the
// dense reference pipeline: same edges, bit-cast-equal weights, equal
// diagnostics, across a grid of sizes, process counts, noise levels,
// max_candidates caps and thread counts — including the on-disk network
// file bytes at n=2000 (the ISSUE acceptance gate).

#include <bit>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "diffusion/noise.h"
#include "graph/generators/erdos_renyi.h"
#include "graph/generators/powerlaw.h"
#include "inference/io.h"
#include "inference/session.h"
#include "inference/tends.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::MakeStatuses;
using ::tends::testing::SimulateUniform;

diffusion::StatusMatrix SimulatedStatuses(uint32_t n, uint32_t beta,
                                          double noise, uint64_t seed) {
  Rng rng(seed);
  auto truth = graph::GenerateErdosRenyi(
      {.num_nodes = n, .edge_probability = 6.0 / n}, rng);
  if (!truth.ok()) std::abort();
  diffusion::StatusMatrix statuses =
      SimulateUniform(*truth, 0.4, beta, 0.15, seed + 1).statuses;
  if (noise > 0.0) {
    auto noisy = diffusion::ApplyStatusNoise(
        statuses, {.miss_probability = noise, .false_alarm_probability = noise},
        rng);
    if (!noisy.ok()) std::abort();
    statuses = std::move(noisy).value();
  }
  return statuses;
}

void ExpectBitIdentical(const InferredNetwork& a, const InferredNetwork& b,
                        const std::string& label) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes()) << label;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << label;
  for (size_t e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.edges()[e].edge.from, b.edges()[e].edge.from) << label;
    ASSERT_EQ(a.edges()[e].edge.to, b.edges()[e].edge.to) << label;
    ASSERT_EQ(std::bit_cast<uint64_t>(a.edges()[e].weight),
              std::bit_cast<uint64_t>(b.edges()[e].weight))
        << label << " edge " << e;
  }
}

/// Runs both modes on `statuses` with otherwise identical options and
/// requires byte-identical networks and equal diagnostics.
void ExpectSparseEqualsDense(const diffusion::StatusMatrix& statuses,
                             TendsOptions options, const std::string& label) {
  // Simulations legitimately produce all-0/all-1 columns; the comparison
  // wants the best-effort topology from both modes, not a rejection.
  options.reject_degenerate_columns = false;
  options.candidate_mode = CandidateMode::kDense;
  Tends dense(options);
  auto dense_result = dense.InferFromStatuses(statuses);
  ASSERT_TRUE(dense_result.ok()) << label << ": " << dense_result.status();

  options.candidate_mode = CandidateMode::kSparse;
  Tends sparse(options);
  auto sparse_result = sparse.InferFromStatuses(statuses);
  ASSERT_TRUE(sparse_result.ok()) << label << ": " << sparse_result.status();

  ExpectBitIdentical(*dense_result, *sparse_result, label);
  EXPECT_EQ(std::bit_cast<uint64_t>(dense.diagnostics().tau),
            std::bit_cast<uint64_t>(sparse.diagnostics().tau))
      << label;
  EXPECT_EQ(dense.diagnostics().kmeans_iterations,
            sparse.diagnostics().kmeans_iterations)
      << label;
  EXPECT_EQ(std::bit_cast<uint64_t>(dense.diagnostics().network_score),
            std::bit_cast<uint64_t>(sparse.diagnostics().network_score))
      << label;
  EXPECT_EQ(dense.diagnostics().clipped_nodes,
            sparse.diagnostics().clipped_nodes)
      << label;
  EXPECT_EQ(dense.diagnostics().max_candidates_seen,
            sparse.diagnostics().max_candidates_seen)
      << label;
  EXPECT_EQ(std::bit_cast<uint64_t>(dense.diagnostics().mean_candidates),
            std::bit_cast<uint64_t>(sparse.diagnostics().mean_candidates))
      << label;
  EXPECT_EQ(dense.diagnostics().total_score_evaluations,
            sparse.diagnostics().total_score_evaluations)
      << label;
}

TEST(SparseDifferentialTest, MatchesDenseAcrossSimulationGrid) {
  for (uint32_t n : {40u, 90u}) {
    for (uint32_t beta : {64u, 150u}) {
      for (double noise : {0.0, 0.05}) {
        const diffusion::StatusMatrix statuses =
            SimulatedStatuses(n, beta, noise, 31 * n + beta);
        for (uint32_t max_candidates : {1u, 4u, 16u}) {
          for (uint32_t num_threads : {1u, 8u}) {
            TendsOptions options;
            options.max_candidates = max_candidates;
            options.num_threads = num_threads;
            std::ostringstream label;
            label << "n=" << n << " beta=" << beta << " noise=" << noise
                  << " k=" << max_candidates << " threads=" << num_threads;
            ExpectSparseEqualsDense(statuses, options, label.str());
          }
        }
      }
    }
  }
}

TEST(SparseDifferentialTest, MatchesDenseOnTauMultiplierAndOverride) {
  const diffusion::StatusMatrix statuses = SimulatedStatuses(60, 120, 0.02, 7);
  for (double multiplier : {0.5, 1.0, 2.0}) {
    TendsOptions options;
    options.tau_multiplier = multiplier;
    ExpectSparseEqualsDense(statuses, options,
                            "tau_multiplier=" + std::to_string(multiplier));
  }
  for (double override_value : {0.0, 0.01}) {
    TendsOptions options;
    options.tau_override = override_value;
    ExpectSparseEqualsDense(statuses, options,
                            "tau_override=" + std::to_string(override_value));
  }
}

TEST(SparseDifferentialTest, MatchesDenseOnDegenerateInputs) {
  // Hand-built corner cases: an all-zero column (isolated node), an
  // all-one column, an all-infected process and an empty process.
  const diffusion::StatusMatrix statuses = MakeStatuses({
      {1, 0, 1, 0, 1, 1},
      {1, 1, 0, 0, 0, 1},
      {1, 1, 1, 0, 1, 1},
      {0, 0, 0, 0, 0, 0},
      {1, 0, 1, 0, 0, 1},
      {1, 1, 0, 0, 1, 0},
  });
  TendsOptions options;
  options.reject_degenerate_columns = false;
  ExpectSparseEqualsDense(statuses, options, "degenerate columns");
  // All-infected matrix: every pair fully co-occurs, zero IMI everywhere.
  diffusion::StatusMatrix saturated(8, 5);
  for (uint32_t p = 0; p < 8; ++p) {
    for (uint32_t v = 0; v < 5; ++v) saturated.Set(p, v, 1);
  }
  ExpectSparseEqualsDense(saturated, options, "all infected");
}

TEST(SparseDifferentialTest, SessionRunMatchesFreshSparseInfer) {
  const diffusion::StatusMatrix statuses = SimulatedStatuses(70, 130, 0.0, 17);
  InferenceSession session(statuses);
  for (uint32_t num_threads : {1u, 8u}) {
    for (double multiplier : {0.8, 1.0}) {
      TendsOptions options;
      options.candidate_mode = CandidateMode::kSparse;
      options.reject_degenerate_columns = false;
      options.num_threads = num_threads;
      options.tau_multiplier = multiplier;
      Tends fresh(options);
      auto expected = fresh.InferFromStatuses(statuses);
      ASSERT_TRUE(expected.ok()) << expected.status();
      auto run = session.Run(options);
      ASSERT_TRUE(run.ok()) << run.status();
      ExpectBitIdentical(run->network, *expected, "session sparse");
      EXPECT_EQ(std::bit_cast<uint64_t>(run->diagnostics.tau),
                std::bit_cast<uint64_t>(fresh.diagnostics().tau));
      EXPECT_EQ(std::bit_cast<uint64_t>(run->diagnostics.network_score),
                std::bit_cast<uint64_t>(fresh.diagnostics().network_score));
    }
  }
}

TEST(SparseDifferentialTest, ValidateRejectsUnsupportedSparseCombinations) {
  TendsOptions options;
  options.candidate_mode = CandidateMode::kSparse;
  EXPECT_TRUE(options.Validate().ok());

  TendsOptions traditional = options;
  traditional.use_traditional_mi = true;
  EXPECT_TRUE(traditional.Validate().IsInvalidArgument());

  TendsOptions unpruned = options;
  unpruned.enable_pruning = false;
  EXPECT_TRUE(unpruned.Validate().IsInvalidArgument());

  TendsOptions negative_tau = options;
  negative_tau.tau_override = -0.5;
  EXPECT_TRUE(negative_tau.Validate().IsInvalidArgument());

  TendsOptions zero_tau = options;
  zero_tau.tau_override = 0.0;
  EXPECT_TRUE(zero_tau.Validate().ok());
}

// The ISSUE acceptance gate: at n=2000 the on-disk network files written
// by the two modes must be byte-equal, across the option grid.
TEST(SparseDifferentialTest, OnDiskFilesByteEqualAtN2000) {
  Rng rng(4242);
  graph::PowerlawOptions graph_options;
  graph_options.num_nodes = 2000;
  graph_options.avg_degree = 3.0;
  auto truth = graph::GeneratePowerlawHavelHakimi(graph_options, rng);
  ASSERT_TRUE(truth.ok()) << truth.status();
  const diffusion::StatusMatrix statuses =
      SimulateUniform(*truth, 0.4, 128, 0.03, 8).statuses;

  const std::string dir = ::testing::TempDir();
  auto file_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };

  int grid_point = 0;
  for (uint32_t max_candidates : {4u, 16u}) {
    for (double multiplier : {0.8, 1.0}) {
      for (uint32_t num_threads : {1u, 8u}) {
        TendsOptions options;
        options.max_candidates = max_candidates;
        options.tau_multiplier = multiplier;
        options.num_threads = num_threads;
        options.reject_degenerate_columns = false;

        options.candidate_mode = CandidateMode::kDense;
        auto dense = Tends(options).InferFromStatuses(statuses);
        ASSERT_TRUE(dense.ok()) << dense.status();
        const std::string dense_path =
            dir + "/dense_" + std::to_string(grid_point) + ".txt";
        ASSERT_TRUE(WriteInferredNetworkFile(*dense, dense_path).ok());

        options.candidate_mode = CandidateMode::kSparse;
        auto sparse = Tends(options).InferFromStatuses(statuses);
        ASSERT_TRUE(sparse.ok()) << sparse.status();
        const std::string sparse_path =
            dir + "/sparse_" + std::to_string(grid_point) + ".txt";
        ASSERT_TRUE(WriteInferredNetworkFile(*sparse, sparse_path).ok());

        const std::string dense_bytes = file_bytes(dense_path);
        ASSERT_FALSE(dense_bytes.empty());
        EXPECT_EQ(dense_bytes, file_bytes(sparse_path))
            << "k=" << max_candidates << " mult=" << multiplier
            << " threads=" << num_threads;
        ++grid_point;
      }
    }
  }
}

}  // namespace
}  // namespace tends::inference
