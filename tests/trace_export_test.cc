// Trace timeline export: the Chrome-trace JSON shape (golden string),
// the structural validator's acceptance of real exports and rejection of
// every corruption mode, stable per-thread tracks under multi-threaded
// recording, Snapshot's non-consuming contract, and the dropped-span
// tally's path into the manifest and the timeline's otherData.

#include "common/trace_export.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/memory_stats.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "inference/tends.h"

namespace tends {
namespace {

TraceExportMeta UnitMeta() {
  TraceExportMeta meta;
  meta.tool = "unit";
  meta.config = {{"k", "v"}};
  return meta;
}

TEST(TraceExportTest, GoldenSingleSpanJson) {
  Tracer tracer;
  tracer.Record("alpha", /*detail=*/7, /*depth=*/0, /*start_ns=*/1000,
                /*duration_ns=*/2500);
  const std::string json =
      ChromeTraceJsonFromSpans(UnitMeta(), tracer.Snapshot(), tracer.dropped());
  // ts/dur are microseconds: 1000ns -> 1, 2500ns -> 2.5.
  const std::string expected =
      std::string(
          "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
          "\"schema\":\"tends.trace.v1\",\"tool\":\"unit\",\"git\":\"") +
      BuildGitDescribe() +
      "\",\"dropped_spans\":0,\"config\":{\"k\":\"v\"}},"
      "\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"unit\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"main\"}},"
      "{\"name\":\"alpha\",\"cat\":\"tends\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":0,\"ts\":1,\"dur\":2.5,\"args\":{\"depth\":0,\"detail\":7}}"
      "]}";
  EXPECT_EQ(json, expected);
  EXPECT_TRUE(ValidateChromeTraceJson(json).ok());
}

TEST(TraceExportTest, DetailOmittedWhenAbsent) {
  Tracer tracer;
  tracer.Record("plain", /*detail=*/-1, 0, 0, 10);
  const std::string json = ChromeTraceJson(UnitMeta(), tracer);
  EXPECT_EQ(json.find("\"detail\""), std::string::npos);
  EXPECT_TRUE(ValidateChromeTraceJson(json).ok());
}

TEST(TraceExportTest, ValidatorRejectsEveryCorruptionMode) {
  Tracer tracer;
  tracer.Record("alpha", 7, 0, 1000, 2500);
  const std::string good = ChromeTraceJson(UnitMeta(), tracer);
  ASSERT_TRUE(ValidateChromeTraceJson(good).ok());

  auto corrupt = [&](const std::string& from, const std::string& to) {
    std::string bad = good;
    size_t pos = bad.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    bad.replace(pos, from.size(), to);
    return bad;
  };
  // Wrong schema tag.
  EXPECT_FALSE(
      ValidateChromeTraceJson(corrupt("tends.trace.v1", "other.v9")).ok());
  // Bad phase letter.
  EXPECT_FALSE(ValidateChromeTraceJson(corrupt("\"ph\":\"X\"", "\"ph\":\"Q\""))
                   .ok());
  // Negative timestamp.
  EXPECT_FALSE(
      ValidateChromeTraceJson(corrupt("\"ts\":1", "\"ts\":-1")).ok());
  // Missing traceEvents entirely.
  EXPECT_FALSE(ValidateChromeTraceJson("{\"displayTimeUnit\":\"ms\"}").ok());
  // Not JSON at all: the parse error propagates.
  EXPECT_FALSE(ValidateChromeTraceJson("not json").ok());
}

TEST(TraceExportTest, ValidatorRejectsUnsortedEvents) {
  // Hand-built out-of-order span list (the exporter itself always sorts
  // because Snapshot/Drain do).
  std::vector<TraceSpan> spans(2);
  spans[0] = {"late", -1, 0, 0, 2000, 10};
  spans[1] = {"early", -1, 0, 0, 1000, 10};
  const std::string json = ChromeTraceJsonFromSpans(UnitMeta(), spans, 0);
  Status status = ValidateChromeTraceJson(json);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("nondecreasing"), std::string::npos);
}

TEST(TraceExportTest, MultiThreadExportNamesEveryThreadTrack) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        tracer.Record("work", i, 0, t * 1000 + i, 5);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(tracer.num_threads(), static_cast<uint32_t>(kThreads));

  const std::string json = ChromeTraceJson(UnitMeta(), tracer);
  ASSERT_TRUE(ValidateChromeTraceJson(json).ok());
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<int64_t> named;
  std::set<std::string> names;
  size_t complete_events = 0;
  for (const JsonValue& event : events->array()) {
    const std::string& kind = event.Find("name")->string_value();
    if (event.Find("ph")->string_value() == "M") {
      if (kind == "thread_name") {
        named.insert(event.Find("tid")->int_value());
        names.insert(event.FindPath({"args", "name"})->string_value());
      }
      continue;
    }
    ++complete_events;
  }
  // One track per recording thread, densely numbered 0..kThreads-1 with
  // distinct display names ("main" plus worker-N).
  EXPECT_EQ(named.size(), static_cast<size_t>(kThreads));
  EXPECT_EQ(names.size(), static_cast<size_t>(kThreads));
  EXPECT_TRUE(names.count("main"));
  for (int t = 0; t < kThreads; ++t) EXPECT_TRUE(named.count(t));
  EXPECT_EQ(complete_events,
            static_cast<size_t>(kThreads) * kSpansPerThread);
}

TEST(TraceExportTest, SnapshotDoesNotConsumeSpans) {
  Tracer tracer;
  tracer.Record("a", -1, 0, 100, 10);
  tracer.Record("b", -1, 0, 50, 10);
  std::vector<TraceSpan> snapshot = tracer.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_STREQ(snapshot[0].name, "b");  // same sort order as Drain
  EXPECT_STREQ(snapshot[1].name, "a");
  // The spans are still there for the manifest's Summaries and for Drain.
  EXPECT_EQ(tracer.Summaries().size(), 2u);
  EXPECT_EQ(tracer.Drain().size(), 2u);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

// These two need compiled-in instrumentation: RecordRunStats and the
// TENDS_TRACE_SPAN sites inside the inference pipeline are no-ops in the
// nometrics build (direct Tracer::Record calls above work either way).
#if TENDS_METRICS_ENABLED

TEST(TraceExportTest, DroppedSpansSurfaceInManifestAndTimeline) {
  MetricsRegistry registry;
  const uint64_t extra = 5;
  for (uint64_t i = 0; i < Tracer::kMaxSpansPerThread + extra; ++i) {
    registry.tracer().Record("flood", -1, 0, static_cast<int64_t>(i), 1);
  }
  ASSERT_EQ(registry.tracer().dropped(), extra);

  // RecordRunStats turns the tally into the tends.trace.dropped_spans
  // gauge, which the tends.metrics.v1 manifest then carries.
  RecordRunStats(&registry);
  RunManifest manifest;
  manifest.tool = "unit";
  auto parsed = ParseJson(MetricsManifestJson(manifest, registry));
  ASSERT_TRUE(parsed.ok());
  const JsonValue* gauge =
      parsed->FindPath({"metrics", "gauges", "tends.trace.dropped_spans"});
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->int_value(), static_cast<int64_t>(extra));

  // The timeline's otherData carries the same tally.
  auto trace = ParseJson(ChromeTraceJson(UnitMeta(), registry.tracer()));
  ASSERT_TRUE(trace.ok());
  const JsonValue* dropped = trace->FindPath({"otherData", "dropped_spans"});
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->int_value(), static_cast<int64_t>(extra));
}

TEST(TraceExportTest, EndToEndInferExportValidates) {
  // A real inference run with a registry attached: export its timeline to
  // a file, re-read it, validate structurally, and confirm the export did
  // not consume the spans the manifest's Summaries section needs.
  diffusion::StatusMatrix statuses(96, 20);
  for (uint32_t p = 0; p < 96; ++p) {
    for (uint32_t node = 0; node < 20; ++node) {
      statuses.Set(p, node, (p + node) % 3 == 0 ? 1 : 0);
    }
  }
  MetricsRegistry registry;
  RunContext context;
  context.metrics = &registry;
  inference::Tends tends{inference::TendsOptions()};
  auto result = tends.InferFromStatuses(statuses, context);
  ASSERT_TRUE(result.ok()) << result.status();

  TraceExportMeta meta;
  meta.tool = "tends_tests";
  meta.config = {{"n", "20"}, {"beta", "96"}};
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "tends_trace_export_test.json";
  ASSERT_TRUE(
      WriteChromeTraceFile(meta, registry.tracer(), path.string()).ok());

  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Status valid = ValidateChromeTraceJson(buffer.str());
  EXPECT_TRUE(valid.ok()) << valid;

  // Span detail payloads (node ids) ride along in args.detail.
  auto parsed = ParseJson(buffer.str());
  ASSERT_TRUE(parsed.ok());
  bool any_detail = false;
  for (const JsonValue& event : parsed->Find("traceEvents")->array()) {
    if (event.FindPath({"args", "detail"}) != nullptr) any_detail = true;
  }
  EXPECT_TRUE(any_detail);

  EXPECT_FALSE(registry.tracer().Summaries().empty());
  std::filesystem::remove(path);

  // Unwritable target: a clean IoError, not a crash or silent success.
  EXPECT_FALSE(WriteChromeTraceFile(meta, registry.tracer(),
                                    "/nonexistent_dir/trace.json")
                   .ok());
}

#endif  // TENDS_METRICS_ENABLED

}  // namespace
}  // namespace tends
