#include "diffusion/noise.h"

#include <limits>

#include <gtest/gtest.h>

#include "test_util.h"

namespace tends::diffusion {
namespace {

using ::tends::testing::MakeStatuses;

TEST(StatusNoiseTest, ZeroNoiseIsIdentity) {
  auto statuses = MakeStatuses({{1, 0, 1}, {0, 1, 0}});
  Rng rng(1);
  auto noisy = ApplyStatusNoise(statuses, {}, rng);
  ASSERT_TRUE(noisy.ok());
  for (uint32_t p = 0; p < 2; ++p) {
    for (uint32_t v = 0; v < 3; ++v) {
      EXPECT_EQ(noisy->Get(p, v), statuses.Get(p, v));
    }
  }
}

TEST(StatusNoiseTest, FullMissErasesAllInfections) {
  auto statuses = MakeStatuses({{1, 1}, {1, 0}});
  Rng rng(2);
  auto noisy = ApplyStatusNoise(statuses, {.miss_probability = 1.0}, rng);
  ASSERT_TRUE(noisy.ok());
  for (uint32_t p = 0; p < 2; ++p) {
    for (uint32_t v = 0; v < 2; ++v) {
      EXPECT_EQ(noisy->Get(p, v), 0);
    }
  }
}

TEST(StatusNoiseTest, FullFalseAlarmInfectsEverything) {
  auto statuses = MakeStatuses({{0, 0}, {1, 0}});
  Rng rng(3);
  auto noisy =
      ApplyStatusNoise(statuses, {.false_alarm_probability = 1.0}, rng);
  ASSERT_TRUE(noisy.ok());
  for (uint32_t p = 0; p < 2; ++p) {
    for (uint32_t v = 0; v < 2; ++v) {
      EXPECT_EQ(noisy->Get(p, v), 1);
    }
  }
}

TEST(StatusNoiseTest, ValidatesProbabilities) {
  auto statuses = MakeStatuses({{1, 0}});
  Rng rng(4);
  auto miss = ApplyStatusNoise(statuses, {.miss_probability = -0.1}, rng);
  ASSERT_FALSE(miss.ok());
  EXPECT_TRUE(miss.status().IsInvalidArgument());
  EXPECT_NE(miss.status().message().find("miss_probability"),
            std::string::npos);
  auto alarm =
      ApplyStatusNoise(statuses, {.false_alarm_probability = 1.1}, rng);
  ASSERT_FALSE(alarm.ok());
  EXPECT_TRUE(alarm.status().IsInvalidArgument());
  EXPECT_NE(alarm.status().message().find("false_alarm_probability"),
            std::string::npos);
}

TEST(StatusNoiseTest, RejectsNanProbabilities) {
  auto statuses = MakeStatuses({{1, 0}});
  Rng rng(4);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto miss = ApplyStatusNoise(statuses, {.miss_probability = nan}, rng);
  ASSERT_FALSE(miss.ok());
  EXPECT_TRUE(miss.status().IsInvalidArgument());
  auto alarm = ApplyStatusNoise(statuses, {.false_alarm_probability = nan}, rng);
  ASSERT_FALSE(alarm.ok());
  EXPECT_TRUE(alarm.status().IsInvalidArgument());
}

TEST(StatusNoiseTest, AcceptsBoundaryProbabilities) {
  auto statuses = MakeStatuses({{1, 0}});
  Rng rng(4);
  EXPECT_TRUE(ApplyStatusNoise(statuses,
                               {.miss_probability = 0.0,
                                .false_alarm_probability = 0.0},
                               rng)
                  .ok());
  EXPECT_TRUE(ApplyStatusNoise(statuses,
                               {.miss_probability = 1.0,
                                .false_alarm_probability = 1.0},
                               rng)
                  .ok());
}

TEST(StatusNoiseTest, FlipRatesMatchConfiguredProbabilities) {
  StatusMatrix statuses(200, 50);
  for (uint32_t p = 0; p < 200; ++p) {
    for (uint32_t v = 0; v < 50; ++v) {
      statuses.Set(p, v, v % 2);  // half infected
    }
  }
  Rng rng(5);
  auto noisy = ApplyStatusNoise(
      statuses, {.miss_probability = 0.2, .false_alarm_probability = 0.05},
      rng);
  ASSERT_TRUE(noisy.ok());
  uint32_t missed = 0, alarmed = 0;
  const uint32_t per_class = 200 * 25;
  for (uint32_t p = 0; p < 200; ++p) {
    for (uint32_t v = 0; v < 50; ++v) {
      if (statuses.Get(p, v) == 1 && noisy->Get(p, v) == 0) ++missed;
      if (statuses.Get(p, v) == 0 && noisy->Get(p, v) == 1) ++alarmed;
    }
  }
  EXPECT_NEAR(static_cast<double>(missed) / per_class, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(alarmed) / per_class, 0.05, 0.01);
}

TEST(StatusNoiseTest, DeterministicGivenSeed) {
  auto statuses = MakeStatuses({{1, 0, 1, 0}, {0, 1, 0, 1}});
  Rng a(6), b(6);
  auto n1 = ApplyStatusNoise(statuses, {.miss_probability = 0.5}, a);
  auto n2 = ApplyStatusNoise(statuses, {.miss_probability = 0.5}, b);
  ASSERT_TRUE(n1.ok() && n2.ok());
  for (uint32_t p = 0; p < 2; ++p) {
    for (uint32_t v = 0; v < 4; ++v) {
      EXPECT_EQ(n1->Get(p, v), n2->Get(p, v));
    }
  }
}

}  // namespace
}  // namespace tends::diffusion
