// Durable-IO primitives: CRC-32 known answers, the self-verifying frame
// format (round-trip plus distinct Corruption diagnoses for torn, flipped
// and foreign bytes), atomic file replacement, and the deadline-aware
// retry policy — including the scripted write-fault seam that the
// checkpoint tests build on.

#include "common/durable_io.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/metrics.h"

namespace tends {
namespace {

std::string TempDir(const char* name) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "tends_durable_io" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(DurableIoTest, Crc32MatchesTheIeeeCheckValue) {
  // The canonical check value of CRC-32/ISO-HDLC (what zlib computes).
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST(DurableIoTest, Crc32ChainsAcrossBuffers) {
  const std::string payload = "the quick brown fox";
  uint32_t whole = Crc32(payload);
  uint32_t chained = Crc32(payload.substr(7), Crc32(payload.substr(0, 7)));
  EXPECT_EQ(whole, chained);
}

TEST(DurableIoTest, FramesRoundTripIncludingEmptyAndBinaryPayloads) {
  std::string blob;
  const std::string binary{"\x00\xff\n\r tends\x7f", 10};
  AppendFrame("header", &blob);
  AppendFrame("", &blob);
  AppendFrame(binary, &blob);

  auto frames = ParseFrames(blob);
  ASSERT_TRUE(frames.ok()) << frames.status();
  ASSERT_EQ(frames->size(), 3u);
  EXPECT_EQ((*frames)[0], "header");
  EXPECT_EQ((*frames)[1], "");
  EXPECT_EQ((*frames)[2], binary);
}

TEST(DurableIoTest, ParseFramesAcceptsAnEmptyBuffer) {
  auto frames = ParseFrames("");
  ASSERT_TRUE(frames.ok()) << frames.status();
  EXPECT_TRUE(frames->empty());
}

TEST(DurableIoTest, TornHeaderIsCorruption) {
  std::string blob;
  AppendFrame("payload", &blob);
  auto torn = ParseFrames(std::string_view(blob).substr(0, 5));
  ASSERT_FALSE(torn.ok());
  EXPECT_TRUE(torn.status().IsCorruption()) << torn.status();
}

TEST(DurableIoTest, TornPayloadIsCorruption) {
  std::string blob;
  AppendFrame("a long enough payload to tear", &blob);
  auto torn = ParseFrames(std::string_view(blob).substr(0, blob.size() - 3));
  ASSERT_FALSE(torn.ok());
  EXPECT_TRUE(torn.status().IsCorruption()) << torn.status();
}

TEST(DurableIoTest, BadMagicIsCorruption) {
  std::string blob;
  AppendFrame("payload", &blob);
  blob[0] = 'X';
  auto parsed = ParseFrames(blob);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption()) << parsed.status();
  EXPECT_NE(parsed.status().message().find("magic"), std::string::npos)
      << parsed.status();
}

TEST(DurableIoTest, FlippedPayloadBitIsCorruptionNamingTheFrame) {
  std::string blob;
  AppendFrame("frame zero", &blob);
  AppendFrame("frame one", &blob);
  blob[blob.size() - 2] ^= 0x10;  // inside frame 1's payload
  auto parsed = ParseFrames(blob);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption()) << parsed.status();
  EXPECT_NE(parsed.status().message().find("frame 1"), std::string::npos)
      << parsed.status();
}

TEST(DurableIoTest, AtomicWriteCreatesAndOverwrites) {
  const std::string dir = TempDir("atomic");
  const std::string path = dir + "/artifact";

  ASSERT_TRUE(AtomicWriteFile(path, "first").ok());
  auto first = ReadFileToString(path);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, "first");

  ASSERT_TRUE(AtomicWriteFile(path, "second, longer contents").ok());
  auto second = ReadFileToString(path);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(*second, "second, longer contents");

  // No stray temp file is left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(DurableIoTest, ReadMissingFileIsNotFound) {
  auto missing = ReadFileToString(TempDir("missing") + "/nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status();
}

TEST(DurableIoTest, EnsureDirectoryIsIdempotentAndRejectsFiles) {
  const std::string dir = TempDir("ensure");
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  EXPECT_TRUE(EnsureDirectory(dir + "/sub").ok());
  EXPECT_TRUE(EnsureDirectory(dir + "/sub").ok());
  ASSERT_TRUE(AtomicWriteFile(dir + "/file", "x").ok());
  EXPECT_FALSE(EnsureDirectory(dir + "/file").ok());
}

TEST(RetryTest, SucceedsFirstTryWithoutSleeping) {
  int calls = 0;
  Status status = RetryWithBackoff({}, RunContext(), [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, AbsorbsTransientFailuresAndCountsRetries) {
  MetricsRegistry metrics;
  Counter* retries = &metrics.GetCounter("tends.checkpoint.retries");
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = std::chrono::milliseconds(1);
  int calls = 0;
  Status status = RetryWithBackoff(
      policy, RunContext(),
      [&] {
        return ++calls < 3 ? Status::IoError("transient") : Status::OK();
      },
      retries);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries->value(), 2u);
}

TEST(RetryTest, ExhaustionReturnsTheLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::milliseconds(1);
  int calls = 0;
  Status status = RetryWithBackoff(policy, RunContext(), [&] {
    ++calls;
    return Status::IoError("always down");
  });
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsIoError());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, NonTransientErrorsAreNeverRetried) {
  int calls = 0;
  Status status = RetryWithBackoff({}, RunContext(), [&] {
    ++calls;
    return Status::Corruption("damaged data, retrying cannot help");
  });
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ExpiredContextStillRunsTheOpOnceButNeverRetries) {
  // The expiry-flush path depends on this: a deadline-expired run must
  // still get one attempt at persisting its best-so-far state.
  RunContext expired;
  expired.deadline = Deadline::Expired();
  int calls = 0;
  Status ok = RetryWithBackoff({}, expired, [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(calls, 1);

  calls = 0;
  Status failed = RetryWithBackoff({}, expired, [&] {
    ++calls;
    return Status::IoError("transient");
  });
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.IsIoError());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, BackoffNeverOverrunsATightDeadline) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = std::chrono::milliseconds(200);
  RunContext context;
  context.deadline = Deadline::AfterMillis(20);
  int calls = 0;
  auto start = std::chrono::steady_clock::now();
  Status status = RetryWithBackoff(policy, context, [&] {
    ++calls;
    return Status::IoError("transient");
  });
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(status.ok());
  // Gave up long before the 9 x 200ms a deadline-blind loop would sleep.
  EXPECT_LT(elapsed, std::chrono::milliseconds(2000));
  EXPECT_LT(calls, 10);
}

TEST(WriteFaultTest, TransientWriteFailuresAreAbsorbedByRetries) {
  const std::string dir = TempDir("faults_write");
  const std::string path = dir + "/artifact";
  ScopedWriteFaults faults({.fail_writes = 2});
  RetryPolicy policy;
  policy.initial_backoff = std::chrono::milliseconds(1);
  Status status = RetryWithBackoff(policy, RunContext(), [&] {
    return AtomicWriteFile(path, "payload");
  });
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(faults.write_failures_injected(), 2);
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "payload");
}

TEST(WriteFaultTest, FailedRenameLeavesTheOldFileIntact) {
  const std::string dir = TempDir("faults_rename");
  const std::string path = dir + "/artifact";
  ASSERT_TRUE(AtomicWriteFile(path, "old").ok());

  {
    ScopedWriteFaults faults({.fail_renames = 1});
    Status status = AtomicWriteFile(path, "new");
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(status.IsIoError()) << status;
    EXPECT_EQ(faults.rename_failures_injected(), 1);
  }

  // Atomicity: the failed replacement never touched the real file and the
  // temp file was cleaned up.
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "old");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(WriteFaultTest, TornWriteIsCaughtByTheFrameParser) {
  const std::string dir = TempDir("faults_tear");
  const std::string path = dir + "/artifact";
  std::string blob;
  AppendFrame("a payload that will be torn mid-frame", &blob);

  {
    ScopedWriteFaults faults({.tear_at_byte = blob.size() / 2});
    ASSERT_TRUE(AtomicWriteFile(path, blob).ok());
    EXPECT_TRUE(faults.tear_injected());
  }

  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_LT(bytes->size(), blob.size());
  auto frames = ParseFrames(*bytes);
  ASSERT_FALSE(frames.ok());
  EXPECT_TRUE(frames.status().IsCorruption()) << frames.status();
}

TEST(WriteFaultTest, FlippedBitIsCaughtByTheChecksum) {
  const std::string dir = TempDir("faults_flip");
  const std::string path = dir + "/artifact";
  std::string blob;
  AppendFrame("checksummed payload", &blob);

  {
    ScopedWriteFaults faults({.flip_bit_at_byte = blob.size() - 1});
    ASSERT_TRUE(AtomicWriteFile(path, blob).ok());
    EXPECT_TRUE(faults.flip_injected());
  }

  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_EQ(bytes->size(), blob.size());
  auto frames = ParseFrames(*bytes);
  ASSERT_FALSE(frames.ok());
  EXPECT_TRUE(frames.status().IsCorruption()) << frames.status();
}

}  // namespace
}  // namespace tends
