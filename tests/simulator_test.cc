#include "diffusion/simulator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "diffusion/propagation.h"
#include "graph/generators/erdos_renyi.h"
#include "test_util.h"

namespace tends::diffusion {
namespace {

using ::tends::testing::MakeGraph;

graph::DirectedGraph TestGraph() {
  Rng rng(1);
  return graph::GenerateErdosRenyiM(40, 160, rng).value();
}

TEST(SimulatorTest, ValidatesConfig) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  Rng rng(2);
  SimulationConfig config;
  config.num_processes = 0;
  EXPECT_FALSE(Simulate(graph, probs, config, rng).ok());
  config = SimulationConfig();
  config.initial_infection_ratio = 0.0;
  EXPECT_FALSE(Simulate(graph, probs, config, rng).ok());
  config.initial_infection_ratio = 1.5;
  EXPECT_FALSE(Simulate(graph, probs, config, rng).ok());
}

TEST(SimulatorTest, RejectsEmptyGraphAndMisalignedProbabilities) {
  graph::DirectedGraph empty(0);
  auto empty_probs = EdgeProbabilities::Uniform(empty, 0.3);
  Rng rng(3);
  SimulationConfig config;
  EXPECT_FALSE(Simulate(empty, empty_probs, config, rng).ok());

  auto graph = TestGraph();
  EXPECT_FALSE(Simulate(graph, empty_probs, config, rng).ok());
}

TEST(SimulatorTest, ProducesRequestedProcessCount) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  Rng rng(4);
  SimulationConfig config;
  config.num_processes = 37;
  auto observations = Simulate(graph, probs, config, rng);
  ASSERT_TRUE(observations.ok());
  EXPECT_EQ(observations->num_processes(), 37u);
  EXPECT_EQ(observations->cascades.size(), 37u);
  EXPECT_EQ(observations->num_nodes(), 40u);
}

TEST(SimulatorTest, SourceCountMatchesAlpha) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  Rng rng(5);
  SimulationConfig config;
  config.initial_infection_ratio = 0.15;  // 0.15 * 40 = 6 sources
  auto observations = Simulate(graph, probs, config, rng);
  ASSERT_TRUE(observations.ok());
  for (const auto& cascade : observations->cascades) {
    EXPECT_EQ(cascade.sources.size(), 6u);
  }
}

TEST(SimulatorTest, TinyAlphaStillGetsOneSource) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  Rng rng(6);
  SimulationConfig config;
  config.initial_infection_ratio = 0.001;
  auto observations = Simulate(graph, probs, config, rng);
  ASSERT_TRUE(observations.ok());
  EXPECT_EQ(observations->cascades[0].sources.size(), 1u);
}

TEST(SimulatorTest, StatusesAgreeWithCascades) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.4);
  Rng rng(7);
  SimulationConfig config;
  config.num_processes = 25;
  auto observations = Simulate(graph, probs, config, rng);
  ASSERT_TRUE(observations.ok());
  for (uint32_t p = 0; p < 25; ++p) {
    for (uint32_t v = 0; v < 40; ++v) {
      EXPECT_EQ(observations->statuses.Get(p, v),
                observations->cascades[p].Infected(v) ? 1 : 0);
    }
  }
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  SimulationConfig config;
  Rng a(8), b(8);
  auto o1 = Simulate(graph, probs, config, a);
  auto o2 = Simulate(graph, probs, config, b);
  ASSERT_TRUE(o1.ok() && o2.ok());
  for (uint32_t p = 0; p < o1->num_processes(); ++p) {
    EXPECT_EQ(o1->cascades[p].infection_time, o2->cascades[p].infection_time);
  }
}

TEST(SimulatorTest, ProcessesVaryWithinOneBatch) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  Rng rng(9);
  SimulationConfig config;
  auto observations = Simulate(graph, probs, config, rng);
  ASSERT_TRUE(observations.ok());
  // Different processes should have different source sets / outcomes.
  bool any_difference = false;
  for (uint32_t p = 1; p < observations->num_processes(); ++p) {
    if (observations->cascades[p].sources !=
        observations->cascades[0].sources) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(SimulatorTest, LinearThresholdModelRuns) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.6);
  Rng rng(10);
  SimulationConfig config;
  config.model = DiffusionModel::kLinearThreshold;
  auto observations = Simulate(graph, probs, config, rng);
  ASSERT_TRUE(observations.ok());
  EXPECT_EQ(observations->num_processes(), config.num_processes);
}

TEST(SimulatorTest, HigherProbabilityInfectsMore) {
  auto graph = TestGraph();
  Rng rng_low(11), rng_high(11);
  auto probs_low = EdgeProbabilities::Uniform(graph, 0.05);
  auto probs_high = EdgeProbabilities::Uniform(graph, 0.8);
  SimulationConfig config;
  auto low = Simulate(graph, probs_low, config, rng_low);
  auto high = Simulate(graph, probs_high, config, rng_high);
  ASSERT_TRUE(low.ok() && high.ok());
  uint64_t low_total = 0, high_total = 0;
  for (uint32_t v = 0; v < 40; ++v) {
    low_total += low->statuses.InfectionCount(v);
    high_total += high->statuses.InfectionCount(v);
  }
  EXPECT_GT(high_total, low_total);
}

}  // namespace
}  // namespace tends::diffusion
