#include "diffusion/simulator.h"

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "common/random.h"
#include "diffusion/propagation.h"
#include "diffusion/status_simulator.h"
#include "graph/generators/erdos_renyi.h"
#include "inference/counting.h"
#include "test_util.h"

namespace tends::diffusion {
namespace {

using ::tends::testing::MakeGraph;

graph::DirectedGraph TestGraph() {
  Rng rng(1);
  return graph::GenerateErdosRenyiM(40, 160, rng).value();
}

TEST(SimulatorTest, ValidatesConfig) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  Rng rng(2);
  SimulationConfig config;
  config.num_processes = 0;
  EXPECT_FALSE(Simulate(graph, probs, config, rng).ok());
  config = SimulationConfig();
  config.initial_infection_ratio = 0.0;
  EXPECT_FALSE(Simulate(graph, probs, config, rng).ok());
  config.initial_infection_ratio = 1.5;
  EXPECT_FALSE(Simulate(graph, probs, config, rng).ok());
}

TEST(SimulatorTest, RejectsEmptyGraphAndMisalignedProbabilities) {
  graph::DirectedGraph empty(0);
  auto empty_probs = EdgeProbabilities::Uniform(empty, 0.3);
  Rng rng(3);
  SimulationConfig config;
  EXPECT_FALSE(Simulate(empty, empty_probs, config, rng).ok());

  auto graph = TestGraph();
  EXPECT_FALSE(Simulate(graph, empty_probs, config, rng).ok());
}

TEST(SimulatorTest, ProducesRequestedProcessCount) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  Rng rng(4);
  SimulationConfig config;
  config.num_processes = 37;
  auto observations = Simulate(graph, probs, config, rng);
  ASSERT_TRUE(observations.ok());
  EXPECT_EQ(observations->num_processes(), 37u);
  EXPECT_EQ(observations->cascades.size(), 37u);
  EXPECT_EQ(observations->num_nodes(), 40u);
}

TEST(SimulatorTest, SourceCountMatchesAlpha) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  Rng rng(5);
  SimulationConfig config;
  config.initial_infection_ratio = 0.15;  // 0.15 * 40 = 6 sources
  auto observations = Simulate(graph, probs, config, rng);
  ASSERT_TRUE(observations.ok());
  for (const auto& cascade : observations->cascades) {
    EXPECT_EQ(cascade.sources.size(), 6u);
  }
}

TEST(SimulatorTest, TinyAlphaStillGetsOneSource) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  Rng rng(6);
  SimulationConfig config;
  config.initial_infection_ratio = 0.001;
  auto observations = Simulate(graph, probs, config, rng);
  ASSERT_TRUE(observations.ok());
  EXPECT_EQ(observations->cascades[0].sources.size(), 1u);
}

TEST(SimulatorTest, StatusesAgreeWithCascades) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.4);
  Rng rng(7);
  SimulationConfig config;
  config.num_processes = 25;
  auto observations = Simulate(graph, probs, config, rng);
  ASSERT_TRUE(observations.ok());
  for (uint32_t p = 0; p < 25; ++p) {
    for (uint32_t v = 0; v < 40; ++v) {
      EXPECT_EQ(observations->statuses.Get(p, v),
                observations->cascades[p].Infected(v) ? 1 : 0);
    }
  }
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  SimulationConfig config;
  Rng a(8), b(8);
  auto o1 = Simulate(graph, probs, config, a);
  auto o2 = Simulate(graph, probs, config, b);
  ASSERT_TRUE(o1.ok() && o2.ok());
  for (uint32_t p = 0; p < o1->num_processes(); ++p) {
    EXPECT_EQ(o1->cascades[p].infection_time, o2->cascades[p].infection_time);
  }
}

TEST(SimulatorTest, ProcessesVaryWithinOneBatch) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  Rng rng(9);
  SimulationConfig config;
  auto observations = Simulate(graph, probs, config, rng);
  ASSERT_TRUE(observations.ok());
  // Different processes should have different source sets / outcomes.
  bool any_difference = false;
  for (uint32_t p = 1; p < observations->num_processes(); ++p) {
    if (observations->cascades[p].sources !=
        observations->cascades[0].sources) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(SimulatorTest, LinearThresholdModelRuns) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.6);
  Rng rng(10);
  SimulationConfig config;
  config.model = DiffusionModel::kLinearThreshold;
  auto observations = Simulate(graph, probs, config, rng);
  ASSERT_TRUE(observations.ok());
  EXPECT_EQ(observations->num_processes(), config.num_processes);
}

TEST(SimulatorTest, RejectsZeroThreads) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  Rng rng(12);
  SimulationConfig config;
  config.num_threads = 0;
  auto observations = Simulate(graph, probs, config, rng);
  ASSERT_FALSE(observations.ok());
  EXPECT_NE(observations.status().message().find("num_threads"),
            std::string::npos);
  Rng rng2(12);
  EXPECT_FALSE(SimulateStatuses(graph, probs, config, rng2).ok());
}

TEST(SimulatorTest, RejectsBadSirRecovery) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  SimulationConfig config;
  config.model = DiffusionModel::kSir;
  for (double recovery : {0.0, -0.1, 1.5}) {
    config.sir_recovery_probability = recovery;
    Rng rng(13);
    EXPECT_FALSE(Simulate(graph, probs, config, rng).ok()) << recovery;
    Rng rng2(13);
    EXPECT_FALSE(SimulateStatuses(graph, probs, config, rng2).ok()) << recovery;
  }
}

TEST(SimulatorTest, SirModelRuns) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.5);
  Rng rng(14);
  SimulationConfig config;
  config.model = DiffusionModel::kSir;
  config.sir_recovery_probability = 0.3;
  auto observations = Simulate(graph, probs, config, rng);
  ASSERT_TRUE(observations.ok());
  EXPECT_EQ(observations->num_processes(), config.num_processes);
  for (uint32_t p = 0; p < observations->num_processes(); ++p) {
    for (uint32_t v = 0; v < observations->num_nodes(); ++v) {
      EXPECT_EQ(observations->statuses.Get(p, v),
                observations->cascades[p].Infected(v) ? 1 : 0);
    }
  }
}

// ------------------------------------------- parallel engine determinism

SimulationConfig ModelConfig(DiffusionModel model) {
  SimulationConfig config;
  config.num_processes = 96;
  config.initial_infection_ratio = 0.1;
  config.model = model;
  config.sir_recovery_probability = 0.4;
  return config;
}

TEST(SimulatorTest, ByteIdenticalAtAnyThreadCount) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.35);
  for (DiffusionModel model :
       {DiffusionModel::kIndependentCascade, DiffusionModel::kLinearThreshold,
        DiffusionModel::kSir}) {
    SimulationConfig config = ModelConfig(model);
    Rng baseline_rng(15);
    auto baseline = Simulate(graph, probs, config, baseline_rng);
    ASSERT_TRUE(baseline.ok()) << baseline.status();
    for (uint32_t threads : {4u, 8u}) {
      config.num_threads = threads;
      Rng rng(15);
      auto observations = Simulate(graph, probs, config, rng);
      ASSERT_TRUE(observations.ok()) << observations.status();
      for (uint32_t p = 0; p < config.num_processes; ++p) {
        EXPECT_EQ(0, std::memcmp(observations->statuses.Row(p),
                                 baseline->statuses.Row(p),
                                 observations->statuses.num_nodes()));
        EXPECT_EQ(observations->cascades[p].sources,
                  baseline->cascades[p].sources);
        EXPECT_EQ(observations->cascades[p].infection_time,
                  baseline->cascades[p].infection_time);
        EXPECT_EQ(observations->cascades[p].infector,
                  baseline->cascades[p].infector);
      }
    }
  }
}

TEST(SimulatorTest, StatusesFastPathMatchesSimulate) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.35);
  for (DiffusionModel model :
       {DiffusionModel::kIndependentCascade, DiffusionModel::kLinearThreshold,
        DiffusionModel::kSir}) {
    SimulationConfig config = ModelConfig(model);
    Rng full_rng(16);
    auto full = Simulate(graph, probs, config, full_rng);
    ASSERT_TRUE(full.ok()) << full.status();
    const inference::PackedStatuses expected_packed(full->statuses);
    for (uint32_t threads : {1u, 4u, 8u}) {
      config.num_threads = threads;
      Rng rng(16);
      auto fast = SimulateStatuses(graph, probs, config, rng);
      ASSERT_TRUE(fast.ok()) << fast.status();
      ASSERT_EQ(fast->statuses.num_processes(), config.num_processes);
      for (uint32_t p = 0; p < config.num_processes; ++p) {
        EXPECT_EQ(0, std::memcmp(fast->statuses.Row(p), full->statuses.Row(p),
                                 fast->statuses.num_nodes()));
      }
      ASSERT_EQ(fast->packed.words_per_node(), expected_packed.words_per_node());
      for (uint32_t v = 0; v < fast->packed.num_nodes(); ++v) {
        EXPECT_EQ(0, std::memcmp(fast->packed.Column(v),
                                 expected_packed.Column(v),
                                 fast->packed.words_per_node() *
                                     sizeof(uint64_t)));
      }
    }
  }
}

TEST(SimulatorTest, MaxRoundsRespectedByFastPath) {
  auto graph = TestGraph();
  auto probs = EdgeProbabilities::Uniform(graph, 0.8);
  SimulationConfig config;
  config.num_processes = 32;
  config.max_rounds = 1;
  Rng full_rng(17);
  auto full = Simulate(graph, probs, config, full_rng);
  ASSERT_TRUE(full.ok());
  Rng fast_rng(17);
  auto fast = SimulateStatuses(graph, probs, config, fast_rng);
  ASSERT_TRUE(fast.ok());
  for (uint32_t p = 0; p < config.num_processes; ++p) {
    EXPECT_EQ(0, std::memcmp(fast->statuses.Row(p), full->statuses.Row(p),
                             fast->statuses.num_nodes()));
  }
}

TEST(SimulatorTest, HigherProbabilityInfectsMore) {
  auto graph = TestGraph();
  Rng rng_low(11), rng_high(11);
  auto probs_low = EdgeProbabilities::Uniform(graph, 0.05);
  auto probs_high = EdgeProbabilities::Uniform(graph, 0.8);
  SimulationConfig config;
  auto low = Simulate(graph, probs_low, config, rng_low);
  auto high = Simulate(graph, probs_high, config, rng_high);
  ASSERT_TRUE(low.ok() && high.ok());
  uint64_t low_total = 0, high_total = 0;
  for (uint32_t v = 0; v < 40; ++v) {
    low_total += low->statuses.InfectionCount(v);
    high_total += high->statuses.InfectionCount(v);
  }
  EXPECT_GT(high_total, low_total);
}

}  // namespace
}  // namespace tends::diffusion
