// Deadline / cancellation behaviour: expired contexts stop every algorithm
// without hangs or errors, best-so-far partial results stay structurally
// valid, and an unlimited deadline reproduces the unconstrained output
// byte for byte at any thread count.

#include "common/run_context.h"

#include <sstream>

#include <gtest/gtest.h>

#include "diffusion/simulator.h"
#include "inference/correlation.h"
#include "inference/io.h"
#include "inference/lift.h"
#include "inference/multree.h"
#include "inference/netinf.h"
#include "inference/netrate.h"
#include "inference/path.h"
#include "inference/tends.h"
#include "test_util.h"

namespace tends {
namespace {

TEST(DeadlineTest, DefaultIsUnlimited) {
  Deadline deadline;
  EXPECT_TRUE(deadline.is_unlimited());
  EXPECT_FALSE(deadline.HasExpired());
  EXPECT_EQ(deadline.Remaining(), std::chrono::nanoseconds::max());
}

TEST(DeadlineTest, ExpiredIsExpiredFromTheStart) {
  Deadline deadline = Deadline::Expired();
  EXPECT_FALSE(deadline.is_unlimited());
  EXPECT_TRUE(deadline.HasExpired());
  EXPECT_EQ(deadline.Remaining(), std::chrono::nanoseconds::zero());
}

TEST(DeadlineTest, GenerousBudgetHasNotExpired) {
  Deadline deadline = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(deadline.is_unlimited());
  EXPECT_FALSE(deadline.HasExpired());
  EXPECT_GT(deadline.Remaining(), std::chrono::nanoseconds::zero());
}

TEST(CancellationTokenTest, IsStickyAndObservedByContext) {
  CancellationToken token;
  EXPECT_FALSE(token.Cancelled());
  RunContext context;
  context.cancellation = &token;
  EXPECT_FALSE(context.IsUnconstrained());
  EXPECT_FALSE(context.ShouldStop());
  token.RequestCancellation();
  EXPECT_TRUE(token.Cancelled());
  EXPECT_TRUE(context.ShouldStop());
  token.RequestCancellation();  // idempotent
  EXPECT_TRUE(token.Cancelled());
}

TEST(RunContextTest, DefaultIsUnconstrained) {
  RunContext context;
  EXPECT_TRUE(context.IsUnconstrained());
  EXPECT_FALSE(context.ShouldStop());
}

TEST(StopCheckerTest, UnconstrainedContextNeverStops) {
  RunContext context;
  StopChecker stop(context, /*stride=*/1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(stop.ShouldStop());
    EXPECT_FALSE(stop.ShouldStopNow());
  }
}

TEST(StopCheckerTest, ExpiredDeadlineStopsWithinOneStride) {
  RunContext context;
  context.deadline = Deadline::Expired();
  StopChecker stop(context, /*stride=*/8);
  bool stopped = false;
  for (int i = 0; i < 8 && !stopped; ++i) stopped = stop.ShouldStop();
  EXPECT_TRUE(stopped);
  // Sticky: every later call reports stopped without consulting the clock.
  EXPECT_TRUE(stop.ShouldStop());
  EXPECT_TRUE(stop.ShouldStopNow());
}

TEST(StopCheckerTest, ShouldStopNowIsUnthrottled) {
  RunContext context;
  context.deadline = Deadline::Expired();
  StopChecker stop(context, /*stride=*/1024);
  EXPECT_TRUE(stop.ShouldStopNow());
}

// ---------------------------------------------------------------------------
// Algorithm behaviour under expired / unlimited contexts.

diffusion::DiffusionObservations DenseObservations() {
  auto truth = testing::MakeGraph(12, {{0, 1},
                                       {1, 2},
                                       {2, 3},
                                       {3, 4},
                                       {4, 5},
                                       {5, 6},
                                       {6, 7},
                                       {7, 8},
                                       {8, 9},
                                       {9, 10},
                                       {10, 11},
                                       {11, 0},
                                       {0, 6},
                                       {3, 9}});
  return testing::SimulateUniform(truth, 0.5, 220, 0.25, 4242);
}

RunContext ExpiredContext() {
  RunContext context;
  context.deadline = Deadline::Expired();
  return context;
}

TEST(DeadlineInferenceTest, TendsExpiredDeadlineReturnsValidPartial) {
  auto observations = DenseObservations();
  inference::Tends tends;
  RunContext context = ExpiredContext();
  auto result = tends.Infer(observations, context);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_nodes(), observations.num_nodes());
  EXPECT_TRUE(tends.diagnostics().deadline_expired);
  EXPECT_EQ(tends.diagnostics().nodes_completed, 0u);
  EXPECT_EQ(result->num_edges(), 0u);
}

TEST(DeadlineInferenceTest, TendsCancellationTokenStopsTheRun) {
  auto observations = DenseObservations();
  CancellationToken token;
  token.RequestCancellation();
  RunContext context;
  context.cancellation = &token;
  inference::Tends tends;
  auto result = tends.Infer(observations, context);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(tends.diagnostics().deadline_expired);
  EXPECT_EQ(tends.diagnostics().nodes_completed, 0u);
}

TEST(DeadlineInferenceTest, TendsUncutRunCompletesAllNodes) {
  auto observations = DenseObservations();
  inference::Tends tends;
  auto result = tends.Infer(observations);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(tends.diagnostics().deadline_expired);
  EXPECT_EQ(tends.diagnostics().nodes_completed, observations.num_nodes());
}

TEST(DeadlineInferenceTest, TendsTightDeadlineNeverHangsOrErrors) {
  // Whatever the machine's speed, a 1 ms budget either finishes or cuts the
  // run; both must produce a structurally valid network.
  auto observations = DenseObservations();
  inference::Tends tends;
  RunContext context;
  context.deadline = Deadline::AfterMillis(1);
  auto result = tends.Infer(observations, context);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_nodes(), observations.num_nodes());
  if (tends.diagnostics().deadline_expired) {
    EXPECT_LT(tends.diagnostics().nodes_completed, observations.num_nodes());
  } else {
    EXPECT_EQ(tends.diagnostics().nodes_completed, observations.num_nodes());
  }
  for (const auto& scored : result->edges()) {
    EXPECT_LT(scored.edge.from, observations.num_nodes());
    EXPECT_LT(scored.edge.to, observations.num_nodes());
  }
}

TEST(DeadlineInferenceTest, UnlimitedDeadlineIsByteIdenticalAtAnyThreadCount) {
  auto observations = DenseObservations();
  std::string baseline;
  {
    inference::Tends tends;
    auto result = tends.Infer(observations);
    ASSERT_TRUE(result.ok());
    std::ostringstream out;
    ASSERT_TRUE(inference::WriteInferredNetwork(*result, out).ok());
    baseline = out.str();
  }
  for (uint32_t threads : {1u, 2u, 4u}) {
    inference::TendsOptions options;
    options.num_threads = threads;
    inference::Tends tends(options);
    RunContext context;
    context.deadline = Deadline::AfterMillis(3'600'000);  // generous, finite
    auto result = tends.Infer(observations, context);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(tends.diagnostics().deadline_expired);
    std::ostringstream out;
    ASSERT_TRUE(inference::WriteInferredNetwork(*result, out).ok());
    EXPECT_EQ(out.str(), baseline) << "threads=" << threads;
  }
}

TEST(DeadlineInferenceTest, BaselinesReturnValidPartialsOnExpiredDeadline) {
  auto observations = DenseObservations();
  RunContext context = ExpiredContext();
  const uint64_t budget = 14;

  inference::NetRate netrate;
  auto netrate_result = netrate.Infer(observations, context);
  ASSERT_TRUE(netrate_result.ok()) << netrate_result.status();
  EXPECT_EQ(netrate_result->num_edges(), 0u);

  inference::NetInf netinf({.num_edges = budget});
  auto netinf_result = netinf.Infer(observations, context);
  ASSERT_TRUE(netinf_result.ok()) << netinf_result.status();
  EXPECT_EQ(netinf_result->num_edges(), 0u);

  inference::MulTree multree({.num_edges = budget});
  auto multree_result = multree.Infer(observations, context);
  ASSERT_TRUE(multree_result.ok()) << multree_result.status();
  EXPECT_EQ(multree_result->num_edges(), 0u);

  inference::Lift lift({.num_edges = budget});
  auto lift_result = lift.Infer(observations, context);
  ASSERT_TRUE(lift_result.ok()) << lift_result.status();

  inference::CorrelationBaseline correlation({.num_edges = budget});
  auto correlation_result = correlation.Infer(observations, context);
  ASSERT_TRUE(correlation_result.ok()) << correlation_result.status();

  inference::Path path({.num_edges = budget});
  auto path_result = path.Infer(observations, context);
  ASSERT_TRUE(path_result.ok()) << path_result.status();
  EXPECT_EQ(path_result->num_edges(), 0u);
}

TEST(DeadlineInferenceTest, BaselinesMatchUnconstrainedUnderGenerousDeadline) {
  auto observations = DenseObservations();
  RunContext context;
  context.deadline = Deadline::AfterMillis(3'600'000);
  const uint64_t budget = 14;

  inference::NetInf a({.num_edges = budget}), b({.num_edges = budget});
  auto unconstrained = a.Infer(observations);
  auto bounded = b.Infer(observations, context);
  ASSERT_TRUE(unconstrained.ok() && bounded.ok());
  ASSERT_EQ(unconstrained->num_edges(), bounded->num_edges());
  for (size_t e = 0; e < unconstrained->num_edges(); ++e) {
    EXPECT_EQ(unconstrained->edges()[e].edge, bounded->edges()[e].edge);
  }
}

}  // namespace
}  // namespace tends
