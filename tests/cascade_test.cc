#include "diffusion/cascade.h"

#include <gtest/gtest.h>

namespace tends::diffusion {
namespace {

TEST(CascadeTest, NumInfectedCountsNonNegativeTimes) {
  Cascade cascade;
  cascade.infection_time = {0, kNeverInfected, 2, 1, kNeverInfected};
  EXPECT_EQ(cascade.NumInfected(), 3u);
  EXPECT_TRUE(cascade.Infected(0));
  EXPECT_FALSE(cascade.Infected(1));
  EXPECT_TRUE(cascade.Infected(3));
}

TEST(CascadeTest, FinalStatuses) {
  Cascade cascade;
  cascade.infection_time = {0, kNeverInfected, 3};
  EXPECT_EQ(cascade.FinalStatuses(), (std::vector<uint8_t>{1, 0, 1}));
}

TEST(StatusMatrixTest, SetAndGet) {
  StatusMatrix matrix(2, 3);
  EXPECT_EQ(matrix.num_processes(), 2u);
  EXPECT_EQ(matrix.num_nodes(), 3u);
  EXPECT_EQ(matrix.Get(0, 0), 0);
  matrix.Set(1, 2, 1);
  EXPECT_EQ(matrix.Get(1, 2), 1);
  EXPECT_EQ(matrix.Get(0, 2), 0);
}

TEST(StatusMatrixTest, RowPointerMatchesGet) {
  StatusMatrix matrix(2, 3);
  matrix.Set(1, 0, 1);
  matrix.Set(1, 2, 1);
  const uint8_t* row = matrix.Row(1);
  EXPECT_EQ(row[0], 1);
  EXPECT_EQ(row[1], 0);
  EXPECT_EQ(row[2], 1);
}

TEST(StatusMatrixTest, InfectionCount) {
  StatusMatrix matrix(3, 2);
  matrix.Set(0, 1, 1);
  matrix.Set(2, 1, 1);
  EXPECT_EQ(matrix.InfectionCount(0), 0u);
  EXPECT_EQ(matrix.InfectionCount(1), 2u);
}

TEST(StatusesFromCascadesTest, BuildsMatrix) {
  Cascade a, b;
  a.infection_time = {0, kNeverInfected, 1};
  b.infection_time = {kNeverInfected, 2, kNeverInfected};
  StatusMatrix matrix = StatusesFromCascades({a, b});
  EXPECT_EQ(matrix.num_processes(), 2u);
  EXPECT_EQ(matrix.num_nodes(), 3u);
  EXPECT_EQ(matrix.Get(0, 0), 1);
  EXPECT_EQ(matrix.Get(0, 1), 0);
  EXPECT_EQ(matrix.Get(0, 2), 1);
  EXPECT_EQ(matrix.Get(1, 1), 1);
  EXPECT_EQ(matrix.Get(1, 2), 0);
}

TEST(StatusesFromCascadesTest, EmptyInput) {
  StatusMatrix matrix = StatusesFromCascades({});
  EXPECT_EQ(matrix.num_processes(), 0u);
  EXPECT_EQ(matrix.num_nodes(), 0u);
}

}  // namespace
}  // namespace tends::diffusion
