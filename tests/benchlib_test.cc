#include "benchlib/experiment.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators/erdos_renyi.h"

namespace tends::benchlib {
namespace {

graph::DirectedGraph SmallGraph() {
  Rng rng(1);
  return graph::GenerateErdosRenyiM(30, 120, rng).value();
}

TEST(BenchlibTest, FigureTableColumnsAreStable) {
  Table table = MakeFigureTable({});
  EXPECT_EQ(table.num_columns(), 7u);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(BenchlibTest, ExperimentHonoursTendsOptions) {
  auto truth = SmallGraph();
  ExperimentConfig config;
  config.beta = 40;
  config.algorithms = {.tends = true,
                       .netrate = false,
                       .multree = false,
                       .lift = false};
  config.tends_options.tau_multiplier = 2.0;
  auto strict = RunExperiment(truth, config);
  config.tends_options.tau_multiplier = 0.5;
  auto lax = RunExperiment(truth, config);
  ASSERT_TRUE(strict.ok() && lax.ok());
  // A stricter threshold cannot infer more edges than a laxer one.
  EXPECT_LE((*strict)[0].inferred_edges, (*lax)[0].inferred_edges);
}

TEST(BenchlibTest, ExperimentHonoursNetRateBudget) {
  auto truth = SmallGraph();
  ExperimentConfig config;
  config.beta = 40;
  config.algorithms = {.tends = false,
                       .netrate = true,
                       .multree = false,
                       .lift = false};
  config.netrate_options.max_iterations = 1;
  auto one = RunExperiment(truth, config);
  config.netrate_options.max_iterations = 50;
  auto fifty = RunExperiment(truth, config);
  ASSERT_TRUE(one.ok() && fifty.ok());
  // Converged EM prunes more zero rates, so it emits no more raw edges.
  EXPECT_LE((*fifty)[0].inferred_edges, (*one)[0].inferred_edges);
}

TEST(BenchlibTest, DifferentSeedsChangeOutcomes) {
  auto truth = SmallGraph();
  ExperimentConfig config;
  config.beta = 40;
  config.algorithms = {.tends = true,
                       .netrate = false,
                       .multree = false,
                       .lift = false};
  config.seed = 1;
  auto a = RunExperiment(truth, config);
  config.seed = 2;
  auto b = RunExperiment(truth, config);
  ASSERT_TRUE(a.ok() && b.ok());
  // Not a hard invariant, but with different diffusion draws the inferred
  // edge counts virtually always differ on this workload.
  EXPECT_NE((*a)[0].inferred_edges, (*b)[0].inferred_edges);
}

TEST(BenchlibTest, LinearThresholdModelSelectable) {
  auto truth = SmallGraph();
  ExperimentConfig config;
  config.beta = 30;
  config.model = diffusion::DiffusionModel::kLinearThreshold;
  config.algorithms = {.tends = true,
                       .netrate = false,
                       .multree = false,
                       .lift = false};
  auto result = RunExperiment(truth, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)[0].algorithm, "TENDS");
}

}  // namespace
}  // namespace tends::benchlib
