#include "graph/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace tends::graph {
namespace {

using ::tends::testing::MakeGraph;

TEST(GraphStatsTest, EmptyGraph) {
  DirectedGraph graph(0);
  GraphStats stats = ComputeStats(graph);
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_edges, 0u);
}

TEST(GraphStatsTest, DirectedTriangle) {
  auto graph = MakeGraph(3, {{0, 1}, {1, 2}, {2, 0}});
  GraphStats stats = ComputeStats(graph);
  EXPECT_EQ(stats.num_nodes, 3u);
  EXPECT_EQ(stats.num_edges, 3u);
  EXPECT_DOUBLE_EQ(stats.average_degree, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_total_degree, 2.0);
  EXPECT_DOUBLE_EQ(stats.stddev_total_degree, 0.0);
  EXPECT_EQ(stats.max_total_degree, 2u);
  EXPECT_EQ(stats.num_weak_components, 1u);
  EXPECT_EQ(stats.largest_weak_component, 3u);
  EXPECT_DOUBLE_EQ(stats.reciprocity, 0.0);
}

TEST(GraphStatsTest, ReciprocityOfBidirectionalPair) {
  auto graph = MakeGraph(3, {{0, 1}, {1, 0}, {1, 2}});
  GraphStats stats = ComputeStats(graph);
  EXPECT_DOUBLE_EQ(stats.reciprocity, 2.0 / 3.0);
}

TEST(GraphStatsTest, ComponentsAreWeak) {
  // 0 -> 1 and 2 -> 3: two weak components even though no node is
  // reachable from every other.
  auto graph = MakeGraph(5, {{0, 1}, {2, 3}});
  GraphStats stats = ComputeStats(graph);
  EXPECT_EQ(stats.num_weak_components, 3u);  // {0,1}, {2,3}, {4}
  EXPECT_EQ(stats.largest_weak_component, 2u);
}

TEST(GraphStatsTest, WeakComponentsLabeling) {
  auto graph = MakeGraph(4, {{1, 0}, {3, 2}});
  auto comp = WeakComponents(graph);
  ASSERT_EQ(comp.size(), 4u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(GraphStatsTest, DegreeHistogram) {
  auto graph = MakeGraph(4, {{0, 1}, {0, 2}, {0, 3}});
  auto hist = DegreeHistogram(graph);
  // Node 0 has total degree 3; nodes 1-3 have total degree 1.
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 3u);
  EXPECT_EQ(hist[2], 0u);
  EXPECT_EQ(hist[3], 1u);
}

TEST(GraphStatsTest, MaxInOutDegrees) {
  auto graph = MakeGraph(4, {{0, 1}, {2, 1}, {3, 1}, {1, 0}});
  GraphStats stats = ComputeStats(graph);
  EXPECT_EQ(stats.max_in_degree, 3u);
  EXPECT_EQ(stats.max_out_degree, 1u);
  EXPECT_EQ(stats.max_total_degree, 4u);  // node 1: in 3 + out 1
}

TEST(GraphStatsTest, StddevOfUnevenDegrees) {
  // Star: center total degree 3, leaves 1. Mean 1.5, variance 0.75.
  auto graph = MakeGraph(4, {{0, 1}, {0, 2}, {0, 3}});
  GraphStats stats = ComputeStats(graph);
  EXPECT_NEAR(stats.stddev_total_degree, std::sqrt(0.75), 1e-12);
}

TEST(GraphStatsTest, DebugStringMentionsCounts) {
  auto graph = MakeGraph(2, {{0, 1}});
  std::string s = ComputeStats(graph).DebugString();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("m=1"), std::string::npos);
}


TEST(ClusteringTest, TriangleIsFullyClustered) {
  auto graph = MakeGraph(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(graph), 1.0);
}

TEST(ClusteringTest, PathHasNoTriangles) {
  auto graph = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(graph), 0.0);
}

TEST(ClusteringTest, ReciprocalEdgesCollapse) {
  // Directed triangle plus all reverse edges: still one undirected
  // triangle, coefficient 1.
  auto graph = MakeGraph(3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 0}, {0, 2}});
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(graph), 1.0);
}

TEST(ClusteringTest, HandComputedMixedGraph) {
  // Triangle 0-1-2 plus pendant 3 attached to 2.
  // Triangles*3 = 3; triples: deg(0)=2 ->1, deg(1)=2 ->1, deg(2)=3 ->3,
  // deg(3)=1 ->0; total 5. C = 3/5.
  auto graph = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(graph), 0.6);
}

TEST(ClusteringTest, EmptyGraphIsZero) {
  DirectedGraph graph(4);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(graph), 0.0);
}

TEST(ModularityTest, TwoCliquesPerfectPartition) {
  // Two disjoint triangles; partition = components. Q = 2*(1/2 - 1/4) = 0.5.
  auto graph = MakeGraph(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  std::vector<uint32_t> community = {0, 0, 0, 1, 1, 1};
  EXPECT_NEAR(Modularity(graph, community), 0.5, 1e-12);
}

TEST(ModularityTest, SingleCommunityIsZero) {
  auto graph = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  std::vector<uint32_t> community = {0, 0, 0, 0};
  EXPECT_NEAR(Modularity(graph, community), 0.0, 1e-12);
}

TEST(ModularityTest, GoodPartitionBeatsBadPartition) {
  auto graph = MakeGraph(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {0, 3}});
  std::vector<uint32_t> good = {0, 0, 0, 1, 1, 1};
  std::vector<uint32_t> bad = {0, 1, 0, 1, 0, 1};
  EXPECT_GT(Modularity(graph, good), Modularity(graph, bad));
}

TEST(ModularityTest, EdgelessGraphIsZero) {
  DirectedGraph graph(3);
  std::vector<uint32_t> community = {0, 1, 2};
  EXPECT_DOUBLE_EQ(Modularity(graph, community), 0.0);
}

}  // namespace
}  // namespace tends::graph
