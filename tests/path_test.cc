#include "inference/path.h"

#include <gtest/gtest.h>

#include "diffusion/cascade.h"
#include "metrics/fscore.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::MakeGraph;
using ::tends::testing::SimulateUniform;

// -------------------------------------------------------- trace extraction

TEST(ExtractPathTracesTest, WalksInfectorChains) {
  diffusion::Cascade cascade;
  // 0 (source) infected 1, which infected 2; 3 never infected.
  cascade.sources = {0};
  cascade.infection_time = {0, 1, 2, diffusion::kNeverInfected};
  cascade.infector = {diffusion::kNoInfector, 0, 1, diffusion::kNoInfector};
  auto traces = diffusion::ExtractPathTraces({cascade}, 3);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0], (std::vector<graph::NodeId>{0, 1, 2}));
}

TEST(ExtractPathTracesTest, LengthTwoYieldsTransmissionEdges) {
  diffusion::Cascade cascade;
  cascade.sources = {0};
  cascade.infection_time = {0, 1, 2};
  cascade.infector = {diffusion::kNoInfector, 0, 1};
  auto traces = diffusion::ExtractPathTraces({cascade}, 2);
  ASSERT_EQ(traces.size(), 2u);  // 0->1 and 1->2
  EXPECT_EQ(traces[0], (std::vector<graph::NodeId>{0, 1}));
  EXPECT_EQ(traces[1], (std::vector<graph::NodeId>{1, 2}));
}

TEST(ExtractPathTracesTest, SkipsCascadesWithoutInfectors) {
  diffusion::Cascade cascade;
  cascade.sources = {0};
  cascade.infection_time = {0, 1};
  auto traces = diffusion::ExtractPathTraces({cascade}, 2);
  EXPECT_TRUE(traces.empty());
}

TEST(ExtractPathTracesTest, TooShortChainsAreDropped) {
  diffusion::Cascade cascade;
  cascade.sources = {0};
  cascade.infection_time = {0, 1};
  cascade.infector = {diffusion::kNoInfector, 0};
  auto traces = diffusion::ExtractPathTraces({cascade}, 3);
  EXPECT_TRUE(traces.empty());
}

TEST(ExtractPathTracesTest, IcSimulationProducesConsistentChains) {
  auto truth = MakeGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  auto observations = SimulateUniform(truth, 0.7, 100, 0.2, 71);
  auto traces = diffusion::ExtractPathTraces(observations.cascades, 3);
  for (const auto& trace : traces) {
    ASSERT_EQ(trace.size(), 3u);
    // Every consecutive pair in a trace must be a true edge.
    EXPECT_TRUE(truth.HasEdge(trace[0], trace[1]));
    EXPECT_TRUE(truth.HasEdge(trace[1], trace[2]));
  }
}

// ----------------------------------------------------------------- PATH

TEST(PathTest, RequiresEdgeCountAndTraces) {
  Path no_edges({});
  diffusion::DiffusionObservations empty;
  EXPECT_FALSE(no_edges.Infer(empty).ok());

  PathOptions options;
  options.num_edges = 4;
  Path path(options);
  diffusion::DiffusionObservations no_infectors;
  diffusion::Cascade cascade;
  cascade.infection_time = {0, 1};
  no_infectors.cascades.push_back(cascade);
  no_infectors.statuses = diffusion::StatusMatrix(1, 2);
  Status status = path.Infer(no_infectors).status();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(PathTest, RecoversChainFromOracleTraces) {
  auto truth = MakeGraph(
      6, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}, {3, 2}, {3, 4}, {4, 3},
          {4, 5}, {5, 4}});
  auto observations = SimulateUniform(truth, 0.5, 400, 0.2, 73);
  PathOptions options;
  options.num_edges = truth.num_edges();
  Path path(options);
  auto inferred = path.Infer(observations);
  ASSERT_TRUE(inferred.ok()) << inferred.status();
  metrics::EdgeMetrics metrics = metrics::EvaluateEdges(*inferred, truth);
  // Unordered triples leave endpoint pairs tied with skip pairs (a node at
  // a chain end co-occurs with its 2-hop neighbour exactly as often as
  // with its direct one), so even oracle traces cap the naive counting
  // well below 1 on a short chain — but far above the ~0.18 chance level.
  EXPECT_GT(metrics.f_score, 0.5) << metrics.DebugString();
}

TEST(PathTest, LengthTwoOracleTracesAreTrivial) {
  // With transmission *edges* as traces, PATH reduces to reading off the
  // true edges; recovery should be near perfect.
  auto truth = MakeGraph(
      6, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}, {3, 2}, {3, 4}, {4, 3},
          {4, 5}, {5, 4}});
  auto observations = SimulateUniform(truth, 0.5, 400, 0.2, 73);
  PathOptions options;
  options.num_edges = truth.num_edges();
  options.trace_length = 2;
  Path path(options);
  auto inferred = path.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  metrics::EdgeMetrics metrics = metrics::EvaluateEdges(*inferred, truth);
  EXPECT_GT(metrics.f_score, 0.95) << metrics.DebugString();
}

TEST(PathTest, EmitsBothDirectionsOfChosenPairs) {
  auto truth = MakeGraph(4, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}, {3, 2}});
  auto observations = SimulateUniform(truth, 0.6, 200, 0.3, 75);
  PathOptions options;
  options.num_edges = 6;
  Path path(options);
  auto inferred = path.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  for (const auto& scored : inferred->edges()) {
    bool reverse_present = false;
    for (const auto& other : inferred->edges()) {
      if (other.edge.from == scored.edge.to &&
          other.edge.to == scored.edge.from) {
        reverse_present = true;
        break;
      }
    }
    // Up to KeepTopM truncation inside a tie group, pairs come in both
    // directions; with identical pair weights both survive or the budget
    // boundary splits at most one pair.
    (void)reverse_present;
  }
  EXPECT_LE(inferred->num_edges(), 6u);
}

TEST(PathTest, ValidatesTraceLength) {
  PathOptions options;
  options.num_edges = 4;
  options.trace_length = 1;
  Path path(options);
  auto truth = MakeGraph(3, {{0, 1}, {1, 2}});
  auto observations = SimulateUniform(truth, 0.6, 50, 0.3, 77);
  EXPECT_FALSE(path.Infer(observations).ok());
}

}  // namespace
}  // namespace tends::inference
