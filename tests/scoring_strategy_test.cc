// The scoring-strategy planner and its output-invariance contract: the
// per-node choice between packed column scans and a contingency cube is a
// pure cost decision — networks, diagnostics, and score_evaluations
// accounting must be bit-identical across strategy x thread count x
// candidate mode (including the on-disk network file bytes), and the
// planner itself must be a deterministic function of (options, beta, |C|)
// with hard fallbacks for sets the cube cannot hold.

#include <bit>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/random.h"
#include "graph/generators/erdos_renyi.h"
#include "inference/io.h"
#include "inference/session.h"
#include "inference/tends.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::SimulateUniform;

diffusion::StatusMatrix SimulatedStatuses(uint32_t n, uint32_t beta,
                                          uint64_t seed) {
  Rng rng(seed);
  auto truth = graph::GenerateErdosRenyi(
      {.num_nodes = n, .edge_probability = 6.0 / n}, rng);
  if (!truth.ok()) std::abort();
  return SimulateUniform(*truth, 0.4, beta, 0.15, seed + 1).statuses;
}

void ExpectBitIdentical(const InferredNetwork& a, const InferredNetwork& b,
                        const std::string& label) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes()) << label;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << label;
  for (size_t e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.edges()[e].edge.from, b.edges()[e].edge.from) << label;
    ASSERT_EQ(a.edges()[e].edge.to, b.edges()[e].edge.to) << label;
    ASSERT_EQ(std::bit_cast<uint64_t>(a.edges()[e].weight),
              std::bit_cast<uint64_t>(b.edges()[e].weight))
        << label << " edge " << e;
  }
}

// --- planner unit behavior -------------------------------------------------

TEST(ScoringStrategyPlanTest, ForcedPackedIsAlwaysHonored) {
  ParentSearchOptions options;
  options.scoring_strategy = ScoringStrategy::kPacked;
  for (uint32_t beta : {1u, 64u, 16384u}) {
    for (size_t k : {size_t{0}, size_t{4}, size_t{12}}) {
      EXPECT_EQ(PlanScoringStrategy(options, beta, k),
                ScoringStrategy::kPacked)
          << "beta=" << beta << " k=" << k;
    }
  }
}

TEST(ScoringStrategyPlanTest, ForcedCubeFallsBackWhenIneligible) {
  ParentSearchOptions options;
  options.scoring_strategy = ScoringStrategy::kCube;
  // Eligible set: honored even where the cost model would say packed.
  EXPECT_EQ(PlanScoringStrategy(options, 64, 4), ScoringStrategy::kCube);
  // Nothing to cube.
  EXPECT_EQ(PlanScoringStrategy(options, 16384, 0), ScoringStrategy::kPacked);
  // Over the candidate cap.
  EXPECT_EQ(PlanScoringStrategy(options, 16384,
                                options.max_cube_candidates + 1),
            ScoringStrategy::kPacked);
  // Over the memory budget (2^8 codes x 8 bytes = 2 KiB > 1 KiB).
  options.cube_memory_budget_bytes = 1024;
  EXPECT_EQ(PlanScoringStrategy(options, 16384, 8), ScoringStrategy::kPacked);
  EXPECT_EQ(PlanScoringStrategy(options, 16384, 7), ScoringStrategy::kCube);
}

TEST(ScoringStrategyPlanTest, CandidateCapClampsToCubeHardLimit) {
  ParentSearchOptions options;
  options.scoring_strategy = ScoringStrategy::kCube;
  options.max_cube_candidates = 64;  // far past what a cube can represent
  EXPECT_EQ(PlanScoringStrategy(options, 1024, CandidateCube::kMaxCubeCandidates),
            ScoringStrategy::kCube);
  EXPECT_EQ(
      PlanScoringStrategy(options, 1024, CandidateCube::kMaxCubeCandidates + 1),
      ScoringStrategy::kPacked);
}

TEST(ScoringStrategyPlanTest, AutoNeverSubstitutesTheNaiveOracle) {
  ParentSearchOptions options;
  options.kernel = CountingKernel::kNaive;
  // Heavily cube-favored point; auto must still keep the oracle in use.
  EXPECT_EQ(PlanScoringStrategy(options, 16384, 8), ScoringStrategy::kPacked);
  // A forced cube is an explicit override and stays honored.
  options.scoring_strategy = ScoringStrategy::kCube;
  EXPECT_EQ(PlanScoringStrategy(options, 16384, 8), ScoringStrategy::kCube);
}

TEST(ScoringStrategyPlanTest, AutoFollowsTheCostModelAcrossBeta) {
  ParentSearchOptions options;
  // The acceptance point: large beta, capped candidates — cube must win.
  EXPECT_EQ(PlanScoringStrategy(options, 16384, 8), ScoringStrategy::kCube);
  // Tiny beta: one or two words per scan, the cube build cannot pay off.
  EXPECT_EQ(PlanScoringStrategy(options, 64, 8), ScoringStrategy::kPacked);
  // Large candidate sets make the 2^|C| fold dominate even at large beta.
  EXPECT_EQ(PlanScoringStrategy(options, 16384, 12), ScoringStrategy::kPacked);
}

// --- output invariance -----------------------------------------------------

struct StrategyArm {
  ScoringStrategy strategy;
  const char* name;
};

constexpr StrategyArm kArms[] = {
    {ScoringStrategy::kAuto, "auto"},
    {ScoringStrategy::kPacked, "packed"},
    {ScoringStrategy::kCube, "cube"},
};

TEST(ScoringStrategyDifferentialTest,
     NetworksIdenticalAcrossStrategyThreadsAndMode) {
  const diffusion::StatusMatrix statuses = SimulatedStatuses(90, 150, 71);

  TendsOptions baseline_options;
  baseline_options.reject_degenerate_columns = false;
  baseline_options.max_candidates = 8;
  baseline_options.search.scoring_strategy = ScoringStrategy::kPacked;
  Tends baseline(baseline_options);
  auto expected = baseline.InferFromStatuses(statuses);
  ASSERT_TRUE(expected.ok()) << expected.status();

  for (const StrategyArm& arm : kArms) {
    for (uint32_t num_threads : {1u, 8u}) {
      for (CandidateMode mode :
           {CandidateMode::kDense, CandidateMode::kSparse}) {
        TendsOptions options = baseline_options;
        options.search.scoring_strategy = arm.strategy;
        options.num_threads = num_threads;
        options.candidate_mode = mode;
        std::ostringstream label;
        label << arm.name << " threads=" << num_threads << " mode="
              << (mode == CandidateMode::kDense ? "dense" : "sparse");
        Tends tends(options);
        auto result = tends.InferFromStatuses(statuses);
        ASSERT_TRUE(result.ok()) << label.str() << ": " << result.status();
        ExpectBitIdentical(*expected, *result, label.str());
        // Same accounting semantics: an evaluation is an evaluation no
        // matter which structure answered it.
        EXPECT_EQ(baseline.diagnostics().total_score_evaluations,
                  tends.diagnostics().total_score_evaluations)
            << label.str();
        EXPECT_EQ(std::bit_cast<uint64_t>(baseline.diagnostics().network_score),
                  std::bit_cast<uint64_t>(tends.diagnostics().network_score))
            << label.str();
      }
    }
  }
}

TEST(ScoringStrategyDifferentialTest, EveryNodeIsAttributedToExactlyOnePath) {
  const diffusion::StatusMatrix statuses = SimulatedStatuses(60, 130, 5);
  for (const StrategyArm& arm : kArms) {
    MetricsRegistry registry;
    RunContext context;
    context.metrics = &registry;
    TendsOptions options;
    options.reject_degenerate_columns = false;
    options.max_candidates = 6;
    options.search.scoring_strategy = arm.strategy;
    Tends tends(options);
    ASSERT_TRUE(tends.InferFromStatuses(statuses, context).ok()) << arm.name;
    const uint64_t cube_nodes =
        registry.CounterValue("tends.parent_search.cube_nodes");
    const uint64_t packed_nodes =
        registry.CounterValue("tends.parent_search.packed_nodes");
    EXPECT_EQ(cube_nodes + packed_nodes, statuses.num_nodes()) << arm.name;
    if (arm.strategy == ScoringStrategy::kPacked) {
      EXPECT_EQ(cube_nodes, 0u);
    }
    if (arm.strategy == ScoringStrategy::kCube) {
      // Only candidate-less nodes may fall back under a forced cube.
      EXPECT_GT(cube_nodes, 0u);
    }
  }
}

TEST(ScoringStrategyDifferentialTest, OnDiskFilesByteEqualAcrossStrategies) {
  const diffusion::StatusMatrix statuses = SimulatedStatuses(250, 128, 23);
  const std::string dir = ::testing::TempDir();
  auto file_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };

  TendsOptions options;
  options.reject_degenerate_columns = false;
  options.max_candidates = 8;
  options.search.scoring_strategy = ScoringStrategy::kPacked;
  auto baseline = Tends(options).InferFromStatuses(statuses);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const std::string baseline_path = dir + "/scoring_baseline.txt";
  ASSERT_TRUE(WriteInferredNetworkFile(*baseline, baseline_path).ok());
  const std::string baseline_bytes = file_bytes(baseline_path);
  ASSERT_FALSE(baseline_bytes.empty());

  int arm_index = 0;
  for (const StrategyArm& arm : kArms) {
    for (uint32_t num_threads : {1u, 8u}) {
      for (CandidateMode mode :
           {CandidateMode::kDense, CandidateMode::kSparse}) {
        TendsOptions run_options = options;
        run_options.search.scoring_strategy = arm.strategy;
        run_options.num_threads = num_threads;
        run_options.candidate_mode = mode;
        auto network = Tends(run_options).InferFromStatuses(statuses);
        ASSERT_TRUE(network.ok()) << network.status();
        const std::string path =
            dir + "/scoring_arm_" + std::to_string(arm_index++) + ".txt";
        ASSERT_TRUE(WriteInferredNetworkFile(*network, path).ok());
        EXPECT_EQ(baseline_bytes, file_bytes(path))
            << arm.name << " threads=" << num_threads << " mode="
            << (mode == CandidateMode::kDense ? "dense" : "sparse");
      }
    }
  }
}

TEST(ScoringStrategyDifferentialTest, IncrementalRefreshInvariantToStrategy) {
  // The dirty-node path of IncrementalRunner::Refresh routes through the
  // same planner; appended refreshes must stay byte-identical to a fresh
  // packed inference over the concatenated stream for every strategy.
  const diffusion::StatusMatrix full = SimulatedStatuses(50, 160, 99);
  const uint32_t n = full.num_nodes();
  const uint32_t base_rows = 100;
  diffusion::StatusMatrix base(base_rows, n);
  diffusion::StatusMatrix chunk(full.num_processes() - base_rows, n);
  for (uint32_t p = 0; p < full.num_processes(); ++p) {
    for (uint32_t v = 0; v < n; ++v) {
      if (p < base_rows) {
        base.Set(p, v, full.Get(p, v));
      } else {
        chunk.Set(p - base_rows, v, full.Get(p, v));
      }
    }
  }

  TendsOptions options;
  options.reject_degenerate_columns = false;
  options.max_candidates = 6;
  Tends fresh(options);
  auto expected = fresh.InferFromStatuses(full);
  ASSERT_TRUE(expected.ok()) << expected.status();

  for (const StrategyArm& arm : kArms) {
    TendsOptions run_options = options;
    run_options.search.scoring_strategy = arm.strategy;
    InferenceSession session(base);
    IncrementalRunner runner(session, run_options, {});
    ASSERT_TRUE(runner.Refresh().ok()) << arm.name;
    ASSERT_TRUE(session.AppendStatuses(chunk).ok()) << arm.name;
    auto refreshed = runner.Refresh();
    ASSERT_TRUE(refreshed.ok()) << arm.name << ": " << refreshed.status();
    ExpectBitIdentical(*expected, refreshed->network, arm.name);
    EXPECT_EQ(fresh.diagnostics().total_score_evaluations,
              refreshed->diagnostics.total_score_evaluations)
        << arm.name;
  }
}

}  // namespace
}  // namespace tends::inference
