#include "diffusion/sir_model.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "diffusion/ic_model.h"
#include "graph/generators/erdos_renyi.h"
#include "inference/tends.h"
#include "metrics/fscore.h"
#include "test_util.h"

namespace tends::diffusion {
namespace {

using ::tends::testing::MakeGraph;

TEST(SirModelTest, ValidatesOptionsAndSources) {
  auto graph = MakeGraph(3, {{0, 1}, {1, 2}});
  auto probs = EdgeProbabilities::Uniform(graph, 0.5);
  Rng rng(1);
  SirModel bad(graph, probs, {.recovery_probability = 0.0});
  EXPECT_FALSE(bad.Run({0}, rng).ok());
  SirModel model(graph, probs);
  EXPECT_FALSE(model.Run({5}, rng).ok());
  EXPECT_FALSE(model.Run({0, 0}, rng).ok());
}

TEST(SirModelTest, InstantRecoveryMatchesIcSpread) {
  // With recovery_probability = 1 each node is infectious for exactly one
  // round: the reachable distribution equals the IC model's. Compare the
  // expected outbreak sizes on a fixed graph over many runs.
  Rng graph_rng(2);
  auto graph = graph::GenerateErdosRenyiM(40, 160, graph_rng).value();
  auto probs = EdgeProbabilities::Uniform(graph, 0.3);
  SirModel sir(graph, probs, {.recovery_probability = 1.0});
  IndependentCascadeModel ic(graph, probs);
  double sir_total = 0, ic_total = 0;
  constexpr int kRuns = 400;
  Rng rng_sir(3), rng_ic(4);
  for (int r = 0; r < kRuns; ++r) {
    sir_total += sir.Run({0, 1, 2}, rng_sir)->NumInfected();
    ic_total += ic.Run({0, 1, 2}, rng_ic)->NumInfected();
  }
  EXPECT_NEAR(sir_total / kRuns, ic_total / kRuns,
              0.12 * (ic_total / kRuns) + 1.0);
}

TEST(SirModelTest, SlowerRecoverySpreadsFurther) {
  Rng graph_rng(5);
  auto graph = graph::GenerateErdosRenyiM(60, 240, graph_rng).value();
  auto probs = EdgeProbabilities::Uniform(graph, 0.15);
  auto mean_outbreak = [&](double recovery) {
    SirModel model(graph, probs, {.recovery_probability = recovery});
    Rng rng(6);
    double total = 0;
    for (int r = 0; r < 300; ++r) {
      total += model.Run({0, 1}, rng)->NumInfected();
    }
    return total / 300;
  };
  EXPECT_GT(mean_outbreak(0.2), mean_outbreak(1.0) + 1.0);
}

TEST(SirModelTest, InfectionClosureAndInfectorConsistency) {
  Rng graph_rng(7);
  auto graph = graph::GenerateErdosRenyiM(50, 250, graph_rng).value();
  Rng rng(8);
  auto probs = EdgeProbabilities::Gaussian(graph, 0.3, 0.05, rng);
  SirModel model(graph, probs, {.recovery_probability = 0.4});
  auto cascade = model.Run({0, 1, 2, 3, 4}, rng);
  ASSERT_TRUE(cascade.ok());
  for (uint32_t v = 0; v < 50; ++v) {
    const int32_t tv = cascade->infection_time[v];
    if (tv <= 0) continue;
    const graph::NodeId infector = cascade->infector[v];
    ASSERT_NE(infector, kNoInfector);
    // The recorded infector is a true in-neighbor infected strictly
    // earlier (SIR allows gaps > 1 round, unlike IC).
    EXPECT_TRUE(graph.HasEdge(infector, v));
    EXPECT_LT(cascade->infection_time[infector], tv);
  }
}

TEST(SirModelTest, MaxRoundsBoundsSpread) {
  auto graph = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto probs = EdgeProbabilities::Uniform(graph, 1.0);
  SirModel model(graph, probs,
                 {.recovery_probability = 0.5, .max_rounds = 2});
  Rng rng(9);
  auto cascade = model.Run({0}, rng);
  ASSERT_TRUE(cascade.ok());
  EXPECT_LE(cascade->NumInfected(), 3u);
}

TEST(SirModelTest, TendsRecoversStructureFromSirOutbreaks) {
  // Status-only inference is diffusion-model agnostic: "ever infected"
  // statuses from SIR outbreaks still carry the topology.
  auto truth = MakeGraph(
      6, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}, {3, 2}, {3, 4}, {4, 3},
          {4, 5}, {5, 4}});
  auto probs = EdgeProbabilities::Uniform(truth, 0.4);
  SirModel model(truth, probs, {.recovery_probability = 0.5});
  Rng rng(10);
  std::vector<Cascade> cascades;
  for (int r = 0; r < 400; ++r) {
    auto sources = rng.SampleWithoutReplacement(6, 1);
    cascades.push_back(
        model.Run({sources.begin(), sources.end()}, rng).value());
  }
  DiffusionObservations observations;
  observations.cascades = cascades;
  observations.statuses = StatusesFromCascades(cascades);
  inference::Tends tends;
  auto inferred = tends.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  metrics::EdgeMetrics metrics = metrics::EvaluateEdges(*inferred, truth);
  EXPECT_GT(metrics.f_score, 0.5) << metrics.DebugString();
}

}  // namespace
}  // namespace tends::diffusion
