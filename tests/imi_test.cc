#include "inference/imi.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::MakeStatuses;

PairCounts Counts(uint32_t c00, uint32_t c01, uint32_t c10, uint32_t c11) {
  PairCounts counts;
  counts.c00 = c00;
  counts.c01 = c01;
  counts.c10 = c10;
  counts.c11 = c11;
  return counts;
}

TEST(PointwiseMiTermTest, ZeroJointProbabilityIsZero) {
  EXPECT_DOUBLE_EQ(PointwiseMiTerm(Counts(5, 5, 0, 5), 1, 0), 0.0);
}

TEST(PointwiseMiTermTest, HandComputed) {
  // c11=4, c00=4, c10=1, c01=1, total=10.
  // P(1,1)=0.4, P_i(1)=0.5, P_j(1)=0.5 -> 0.4*log2(0.4/0.25).
  PairCounts counts = Counts(4, 1, 1, 4);
  EXPECT_NEAR(PointwiseMiTerm(counts, 1, 1), 0.4 * std::log2(1.6), 1e-12);
  EXPECT_NEAR(PointwiseMiTerm(counts, 1, 0), 0.1 * std::log2(0.4), 1e-12);
}

TEST(PointwiseMiTermTest, IndependentIsZero) {
  // Exactly independent: P(a,b) = P(a)P(b) for all cells.
  PairCounts counts = Counts(4, 4, 4, 4);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      EXPECT_NEAR(PointwiseMiTerm(counts, a, b), 0.0, 1e-12);
    }
  }
}

TEST(TraditionalMiTest, NonNegativeOnRandomTables) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    PairCounts counts =
        Counts(rng.NextBounded(20), rng.NextBounded(20),
               rng.NextBounded(20), rng.NextBounded(20));
    if (counts.total() == 0) continue;
    EXPECT_GE(TraditionalMi(counts), -1e-12);
  }
}

TEST(InfectionMiTest, PositiveForPositivelyCorrelatedInfections) {
  EXPECT_GT(InfectionMi(Counts(40, 5, 5, 50)), 0.1);
}

TEST(InfectionMiTest, NegativeForAntiCorrelatedInfections) {
  // i infected exactly when j is not.
  EXPECT_LT(InfectionMi(Counts(2, 48, 48, 2)), -0.1);
}

TEST(InfectionMiTest, NearZeroForIndependent) {
  EXPECT_NEAR(InfectionMi(Counts(25, 25, 25, 25)), 0.0, 1e-12);
}

TEST(InfectionMiTest, TraditionalMiCannotTellCorrelationSign) {
  // Traditional MI is identical for the correlated and anti-correlated
  // tables; infection MI separates them (the paper's motivation, Eq. 25).
  PairCounts positive = Counts(45, 5, 5, 45);
  PairCounts negative = Counts(5, 45, 45, 5);
  EXPECT_NEAR(TraditionalMi(positive), TraditionalMi(negative), 1e-12);
  EXPECT_GT(InfectionMi(positive), 0.2);
  EXPECT_LT(InfectionMi(negative), -0.2);
}

TEST(ImiMatrixTest, SymmetricWithZeroDiagonal) {
  auto statuses = MakeStatuses({
      {1, 1, 0}, {1, 1, 1}, {0, 0, 1}, {0, 1, 0}, {1, 0, 0},
  });
  ImiMatrix imi(statuses, /*use_traditional_mi=*/false);
  EXPECT_EQ(imi.num_nodes(), 3u);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(imi.Get(i, i), 0.0);
    for (uint32_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(imi.Get(i, j), imi.Get(j, i));
    }
  }
}

TEST(ImiMatrixTest, MatchesDirectComputation) {
  Rng rng(7);
  diffusion::StatusMatrix statuses(150, 10);
  for (uint32_t p = 0; p < 150; ++p) {
    for (uint32_t v = 0; v < 10; ++v) {
      statuses.Set(p, v, rng.NextBernoulli(0.4));
    }
  }
  ImiMatrix imi(statuses, false);
  ImiMatrix mi(statuses, true);
  for (uint32_t i = 0; i < 10; ++i) {
    for (uint32_t j = i + 1; j < 10; ++j) {
      PairCounts counts = CountPair(statuses, i, j);
      EXPECT_NEAR(imi.Get(i, j), InfectionMi(counts), 1e-12);
      EXPECT_NEAR(mi.Get(i, j), TraditionalMi(counts), 1e-12);
    }
  }
}

TEST(ImiMatrixTest, UpperTriangleSizeAndContent) {
  auto statuses = MakeStatuses({{1, 0, 1, 0}, {0, 1, 0, 1}});
  ImiMatrix imi(statuses, false);
  auto values = imi.UpperTriangleValues();
  EXPECT_EQ(values.size(), 6u);  // C(4,2)
  EXPECT_DOUBLE_EQ(values[0], imi.Get(0, 1));
  EXPECT_DOUBLE_EQ(values.back(), imi.Get(2, 3));
}

TEST(ImiMatrixTest, ParentChildPairsScoreHigherThanUnrelated) {
  // Simulate on a chain 0 -> 1 -> 2 ... to check that adjacent pairs carry
  // higher IMI than distant ones.
  auto truth = ::tends::testing::MakeGraph(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  auto observations =
      ::tends::testing::SimulateUniform(truth, 0.7, 400, 0.2, 11);
  ImiMatrix imi(observations.statuses, false);
  EXPECT_GT(imi.Get(0, 1), imi.Get(0, 5));
}

}  // namespace
}  // namespace tends::inference
