#include "inference/local_score.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "inference/counting.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::MakeStatuses;

// ------------------------------------------------------------ hand-computed

TEST(LogLikelihoodTest, PerfectPredictorHasZeroLogLikelihood) {
  // Child exactly mirrors the parent: every conditional is deterministic,
  // so L = 1 and log L = 0.
  auto statuses = MakeStatuses({{1, 1}, {1, 1}, {0, 0}, {0, 0}});
  JointCounts counts = CountJoint(statuses, 0, {1});
  EXPECT_DOUBLE_EQ(LogLikelihood(counts), 0.0);
}

TEST(LogLikelihoodTest, UninformativeParentMatchesMarginalEntropy) {
  // Child is 1 in half the processes regardless of the parent; log L =
  // -beta * H(child) = -4 bits for beta = 4.
  auto statuses = MakeStatuses({{1, 1}, {0, 1}, {1, 0}, {0, 0}});
  JointCounts counts = CountJoint(statuses, 0, {1});
  EXPECT_NEAR(LogLikelihood(counts), -4.0, 1e-12);
}

TEST(LogLikelihoodTest, HandComputedMixedCase) {
  // Parent=1 in 3 processes (child: 1,1,0), parent=0 in 1 process (child 0).
  // L = (2/3)^2 * (1/3)^1 * (1/1)^1; log2 = 2*log2(2/3) + log2(1/3).
  auto statuses = MakeStatuses({{1, 1}, {1, 1}, {0, 1}, {0, 0}});
  JointCounts counts = CountJoint(statuses, 0, {1});
  double expected = 2 * std::log2(2.0 / 3.0) + std::log2(1.0 / 3.0);
  EXPECT_NEAR(LogLikelihood(counts), expected, 1e-12);
}

TEST(ScorePenaltyTest, HandComputed) {
  // Two observed combos with N = 3 and N = 1:
  // penalty = 0.5 * (log2(4) + log2(2)) = 1.5.
  auto statuses = MakeStatuses({{1, 1}, {1, 1}, {0, 1}, {0, 0}});
  JointCounts counts = CountJoint(statuses, 0, {1});
  EXPECT_NEAR(ScorePenalty(counts), 1.5, 1e-12);
}

TEST(ScorePenaltyTest, UnobservedCombosContributeNothing) {
  // Only one of two combos observed: phi = 1, and the penalty counts only
  // the observed one (log2(N+1) = log2(3)).
  auto statuses = MakeStatuses({{1, 1}, {0, 1}});
  JointCounts counts = CountJoint(statuses, 0, {1});
  EXPECT_EQ(counts.num_unobserved, 1u);
  EXPECT_NEAR(ScorePenalty(counts), 0.5 * std::log2(3.0), 1e-12);
}

TEST(LocalScoreTest, IsLikelihoodMinusPenalty) {
  auto statuses = MakeStatuses({{1, 1}, {1, 0}, {0, 1}, {0, 0}});
  JointCounts counts = CountJoint(statuses, 0, {1});
  EXPECT_NEAR(LocalScore(counts), LogLikelihood(counts) - ScorePenalty(counts),
              1e-12);
}

TEST(EmptySetLocalScoreTest, MatchesCountJointOnEmptyParents) {
  auto statuses = MakeStatuses({{1, 0}, {0, 0}, {1, 1}, {1, 1}, {0, 1}});
  JointCounts counts = CountJoint(statuses, 0, {});
  uint32_t n2 = statuses.InfectionCount(0);
  uint32_t n1 = statuses.num_processes() - n2;
  EXPECT_NEAR(LocalScore(counts), EmptySetLocalScore(n1, n2), 1e-12);
}

TEST(EmptySetLocalScoreTest, DegenerateCounts) {
  EXPECT_DOUBLE_EQ(EmptySetLocalScore(0, 0), 0.0);
  // All infected: L = 1, penalty = 0.5*log2(beta+1).
  EXPECT_NEAR(EmptySetLocalScore(0, 7), -0.5 * std::log2(8.0), 1e-12);
}

// ------------------------------------------------------------------ Lemma 1

struct Lemma1Case {
  uint32_t a1, a2, b1, b2;
};

class Lemma1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma1Test, InequalityHoldsOnRandomIntegers) {
  // (b/a)^b <= (b1/a1)^b1 * (b2/a2)^b2 in log space, with the convention
  // 0*log(0/x) = 0 (terms with b_k = 0 vanish, matching the paper's usage
  // where b_k counts successes out of a_k trials, b_k <= a_k).
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t a1 = static_cast<uint32_t>(rng.NextBounded(50));
    uint32_t a2 = static_cast<uint32_t>(rng.NextBounded(50));
    if (a1 + a2 == 0) continue;
    uint32_t b1 = a1 ? static_cast<uint32_t>(rng.NextBounded(a1 + 1)) : 0;
    uint32_t b2 = a2 ? static_cast<uint32_t>(rng.NextBounded(a2 + 1)) : 0;
    uint32_t a = a1 + a2, b = b1 + b2;
    auto term = [](uint32_t num, uint32_t den) {
      return num == 0 ? 0.0 : num * std::log2(static_cast<double>(num) / den);
    };
    double lhs = term(b, a);
    double rhs = term(b1, a1) + term(b2, a2);
    EXPECT_LE(lhs, rhs + 1e-9) << "a1=" << a1 << " a2=" << a2 << " b1=" << b1
                               << " b2=" << b2;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Test, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------- Theorem 1

class Theorem1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem1Test, LikelihoodIsMonotoneUnderParentAddition) {
  // L(v, F) <= L(v, F u {x}) for any data and any extra node x.
  Rng rng(GetParam());
  diffusion::StatusMatrix statuses(40, 8);
  for (uint32_t p = 0; p < 40; ++p) {
    for (uint32_t v = 0; v < 8; ++v) {
      statuses.Set(p, v, rng.NextBernoulli(0.5));
    }
  }
  for (int trial = 0; trial < 30; ++trial) {
    graph::NodeId child = static_cast<graph::NodeId>(rng.NextBounded(8));
    // Random parent set not containing child.
    std::vector<graph::NodeId> parents;
    for (uint32_t v = 0; v < 8; ++v) {
      if (v != child && rng.NextBernoulli(0.3)) parents.push_back(v);
    }
    // Pick an extra node outside F u {child}.
    graph::NodeId extra = UINT32_MAX;
    for (uint32_t v = 0; v < 8; ++v) {
      if (v != child &&
          std::find(parents.begin(), parents.end(), v) == parents.end()) {
        extra = v;
        break;
      }
    }
    if (extra == UINT32_MAX) continue;
    double before = LogLikelihood(CountJoint(statuses, child, parents));
    std::vector<graph::NodeId> larger = parents;
    larger.push_back(extra);
    double after = LogLikelihood(CountJoint(statuses, child, larger));
    EXPECT_LE(before, after + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Test,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// ------------------------------------------------------------------ Theorem 2

TEST(DeltaITest, MatchesFormula) {
  // beta=10, N1=4, N2=6.
  double expected = 2 * 4 * std::log2(10.0 / 4.0) +
                    2 * 6 * std::log2(10.0 / 6.0) + std::log2(11.0);
  EXPECT_NEAR(DeltaI(10, 4, 6), expected, 1e-12);
}

TEST(DeltaITest, ZeroCountTermsVanish) {
  EXPECT_NEAR(DeltaI(10, 0, 10), std::log2(11.0), 1e-12);
  EXPECT_NEAR(DeltaI(10, 10, 0), std::log2(11.0), 1e-12);
}

TEST(WithinParentBoundTest, BoundBehaviour) {
  // |F| <= log2(phi + delta).
  EXPECT_TRUE(WithinParentBound(3, 0, 8.0));    // 3 <= 3
  EXPECT_FALSE(WithinParentBound(4, 0, 8.0));   // 4 > 3
  EXPECT_TRUE(WithinParentBound(4, 8, 8.0));    // 4 <= 4
  EXPECT_TRUE(WithinParentBound(0, 0, 1.0));    // 0 <= 0
}

TEST(WithinParentBoundTest, EquivalentToObservedVsDelta) {
  // s <= log2(2^s - observed + delta)  <=>  observed <= delta (for the
  // phi = 2^s - observed form used by the search).
  for (uint32_t s = 1; s <= 10; ++s) {
    uint64_t possible = uint64_t{1} << s;
    for (uint64_t observed : {uint64_t{0}, possible / 2, possible}) {
      double delta = 100.0;
      bool bound = WithinParentBound(s, possible - observed, delta);
      EXPECT_EQ(bound, static_cast<double>(observed) <= delta);
    }
  }
}

// --------------------------------------------------------- decomposability

TEST(NetworkScoreTest, EqualsSumOfLocalScores) {
  Rng rng(99);
  diffusion::StatusMatrix statuses(30, 6);
  for (uint32_t p = 0; p < 30; ++p) {
    for (uint32_t v = 0; v < 6; ++v) {
      statuses.Set(p, v, rng.NextBernoulli(0.5));
    }
  }
  std::vector<std::vector<graph::NodeId>> parents = {
      {1}, {0, 2}, {}, {4}, {3, 5}, {0}};
  double total = NetworkScore(statuses, parents);
  double sum = 0.0;
  for (uint32_t v = 0; v < 6; ++v) {
    sum += LocalScoreFor(statuses, v, parents[v]);
  }
  EXPECT_NEAR(total, sum, 1e-9);
}

TEST(LocalScoreTest, MorePredictiveParentScoresHigher) {
  // Node 1 mirrors the child exactly; node 2 is noise.
  auto statuses = MakeStatuses({
      {1, 1, 0}, {1, 1, 1}, {0, 0, 0}, {0, 0, 1},
      {1, 1, 1}, {0, 0, 0}, {1, 1, 0}, {0, 0, 1},
  });
  EXPECT_GT(LocalScoreFor(statuses, 0, {1}), LocalScoreFor(statuses, 0, {2}));
}

}  // namespace
}  // namespace tends::inference
