// Randomized end-to-end stress tests: for a sweep of seeds and workload
// shapes, run the full pipeline and check structural invariants that must
// hold for ANY input — valid edges, sane metrics, determinism — rather
// than specific accuracy numbers.

#include <set>

#include <gtest/gtest.h>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "graph/generators/barabasi_albert.h"
#include "graph/generators/erdos_renyi.h"
#include "graph/generators/lfr.h"
#include "graph/generators/watts_strogatz.h"
#include "inference/lift.h"
#include "inference/multree.h"
#include "inference/netinf.h"
#include "inference/netrate.h"
#include "inference/path.h"
#include "inference/tends.h"
#include "metrics/fscore.h"
#include "metrics/pr_curve.h"

namespace tends {
namespace {

struct StressCase {
  uint64_t seed;
  int graph_kind;  // 0 = ER, 1 = BA, 2 = WS, 3 = LFR
  double mu;
  double alpha;
};

class PipelineStressTest : public ::testing::TestWithParam<StressCase> {};

graph::DirectedGraph MakeStressGraph(const StressCase& param) {
  Rng rng(param.seed);
  switch (param.graph_kind) {
    case 0:
      return graph::GenerateErdosRenyiM(60, 240, rng).value();
    case 1:
      return graph::GenerateBarabasiAlbert(
                 {.num_nodes = 60, .edges_per_node = 2}, rng)
          .value();
    case 2:
      return graph::GenerateWattsStrogatz({.num_nodes = 60,
                                           .neighbors_each_side = 2,
                                           .rewire_probability = 0.2},
                                          rng)
          .value();
    default:
      return graph::GenerateLfr(graph::LfrOptions::FromPaperParams(60, 4, 2),
                                rng)
          .value();
  }
}

void CheckInferredValid(const inference::InferredNetwork& network,
                        uint32_t n) {
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (const auto& scored : network.edges()) {
    EXPECT_LT(scored.edge.from, n);
    EXPECT_LT(scored.edge.to, n);
    EXPECT_NE(scored.edge.from, scored.edge.to) << "self loop inferred";
    EXPECT_TRUE(seen.insert({scored.edge.from, scored.edge.to}).second)
        << "duplicate edge inferred";
  }
}

void CheckMetricsSane(const metrics::EdgeMetrics& metrics) {
  EXPECT_GE(metrics.precision, 0.0);
  EXPECT_LE(metrics.precision, 1.0);
  EXPECT_GE(metrics.recall, 0.0);
  EXPECT_LE(metrics.recall, 1.0);
  EXPECT_GE(metrics.f_score, 0.0);
  EXPECT_LE(metrics.f_score, 1.0);
}

TEST_P(PipelineStressTest, AllAlgorithmsSatisfyStructuralInvariants) {
  const StressCase& param = GetParam();
  graph::DirectedGraph truth = MakeStressGraph(param);
  Rng rng(param.seed + 1);
  auto probabilities =
      diffusion::EdgeProbabilities::Gaussian(truth, param.mu, 0.05, rng);
  diffusion::SimulationConfig config;
  config.num_processes = 60;
  config.initial_infection_ratio = param.alpha;
  auto observations =
      diffusion::Simulate(truth, probabilities, config, rng);
  ASSERT_TRUE(observations.ok());

  const uint32_t n = truth.num_nodes();
  // TENDS. The sweep includes sparse workloads (alpha down to 0.05) where
  // a node can escape every process, so the degenerate-column rejection is
  // disabled to exercise the best-effort path.
  inference::TendsOptions tends_options;
  tends_options.reject_degenerate_columns = false;
  inference::Tends tends(tends_options);
  auto tends_result = tends.Infer(*observations);
  ASSERT_TRUE(tends_result.ok());
  CheckInferredValid(*tends_result, n);
  CheckMetricsSane(metrics::EvaluateEdges(*tends_result, truth));
  // NetRate (+ PR curve on its weighted output).
  inference::NetRate netrate;
  auto netrate_result = netrate.Infer(*observations);
  ASSERT_TRUE(netrate_result.ok());
  CheckInferredValid(*netrate_result, n);
  metrics::PrCurve curve = metrics::ComputePrCurve(*netrate_result, truth);
  EXPECT_GE(curve.average_precision, 0.0);
  EXPECT_LE(curve.average_precision, 1.0);
  for (size_t k = 1; k < curve.points.size(); ++k) {
    EXPECT_GE(curve.points[k].recall, curve.points[k - 1].recall);
  }
  // MulTree / NetInf / LIFT / PATH with the true budget.
  inference::MulTree multree({.num_edges = truth.num_edges()});
  auto multree_result = multree.Infer(*observations);
  ASSERT_TRUE(multree_result.ok());
  CheckInferredValid(*multree_result, n);
  EXPECT_LE(multree_result->num_edges(), truth.num_edges());

  inference::NetInf netinf({.num_edges = truth.num_edges()});
  auto netinf_result = netinf.Infer(*observations);
  ASSERT_TRUE(netinf_result.ok());
  CheckInferredValid(*netinf_result, n);

  inference::Lift lift({.num_edges = truth.num_edges()});
  auto lift_result = lift.Infer(*observations);
  ASSERT_TRUE(lift_result.ok());
  CheckInferredValid(*lift_result, n);

  inference::Path path({.num_edges = truth.num_edges()});
  auto path_result = path.Infer(*observations);
  ASSERT_TRUE(path_result.ok());
  CheckInferredValid(*path_result, n);
}

TEST_P(PipelineStressTest, TendsIsDeterministicAcrossRuns) {
  const StressCase& param = GetParam();
  graph::DirectedGraph truth = MakeStressGraph(param);
  Rng rng(param.seed + 2);
  auto probabilities =
      diffusion::EdgeProbabilities::Gaussian(truth, param.mu, 0.05, rng);
  diffusion::SimulationConfig config;
  config.num_processes = 40;
  config.initial_infection_ratio = param.alpha;
  auto observations = diffusion::Simulate(truth, probabilities, config, rng);
  ASSERT_TRUE(observations.ok());
  inference::TendsOptions options;
  options.reject_degenerate_columns = false;  // sparse sweep, see above
  inference::Tends a(options), b(options);
  auto r1 = a.Infer(*observations);
  auto r2 = b.Infer(*observations);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->num_edges(), r2->num_edges());
  for (size_t e = 0; e < r1->num_edges(); ++e) {
    EXPECT_EQ(r1->edges()[e].edge, r2->edges()[e].edge);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PipelineStressTest,
    ::testing::Values(StressCase{101, 0, 0.3, 0.15},
                      StressCase{102, 1, 0.3, 0.15},
                      StressCase{103, 2, 0.3, 0.15},
                      StressCase{104, 3, 0.3, 0.15},
                      StressCase{105, 0, 0.2, 0.05},
                      StressCase{106, 1, 0.4, 0.25},
                      StressCase{107, 2, 0.5, 0.10},
                      StressCase{108, 3, 0.2, 0.25},
                      StressCase{109, 3, 0.4, 0.05}));

}  // namespace
}  // namespace tends
