#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace tends {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  // Mean of U(0,1) is 0.5; stderr ~ 0.29/sqrt(20000) ~ 0.002.
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(19);
  for (int i = 0; i < 500; ++i) {
    double v = rng.NextDouble(-2.5, 4.0);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 4.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / kSamples;
  double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(37);
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextGaussian(0.3, 0.05);
  EXPECT_NEAR(sum / kSamples, 0.3, 0.005);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(RngTest, ShuffleEmptyAndSingle) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {5};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{5});
}

class SampleWithoutReplacementTest
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(SampleWithoutReplacementTest, DistinctAndInRange) {
  auto [n, k] = GetParam();
  Rng rng(1000 + n * 31 + k);
  std::vector<uint32_t> sample = rng.SampleWithoutReplacement(n, k);
  EXPECT_EQ(sample.size(), k);
  std::set<uint32_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), k);
  for (uint32_t v : sample) EXPECT_LT(v, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleWithoutReplacementTest,
    ::testing::Values(std::pair<uint32_t, uint32_t>{10, 0},
                      std::pair<uint32_t, uint32_t>{10, 1},
                      std::pair<uint32_t, uint32_t>{10, 3},
                      std::pair<uint32_t, uint32_t>{10, 10},
                      std::pair<uint32_t, uint32_t>{100, 5},
                      std::pair<uint32_t, uint32_t>{100, 50},
                      std::pair<uint32_t, uint32_t>{100, 99},
                      std::pair<uint32_t, uint32_t>{1000, 17},
                      std::pair<uint32_t, uint32_t>{1, 1}));

TEST(RngTest, SampleWithoutReplacementUniformity) {
  // Each element of [0, 10) should be sampled ~ k/n of the time.
  Rng rng(47);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 10000;
  for (int t = 0; t < kTrials; ++t) {
    for (uint32_t v : rng.SampleWithoutReplacement(10, 3)) ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.3, 0.03);
  }
}

TEST(RngTest, ForkIsIndependentOfParentPosition) {
  Rng parent1(99);
  Rng parent2(99);
  parent2.NextUint64();  // advance one stream
  // Forked children depend only on the parent's seed and the stream id.
  EXPECT_EQ(parent1.Fork(5).NextUint64(), parent2.Fork(5).NextUint64());
}

TEST(RngTest, ForkStreamsDiffer) {
  Rng parent(99);
  EXPECT_NE(parent.Fork(1).NextUint64(), parent.Fork(2).NextUint64());
}

TEST(RngTest, ForkDoesNotPerturbParent) {
  Rng a(5), b(5);
  (void)a.Fork(77);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(0), b(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace tends
