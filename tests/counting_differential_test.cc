// Differential tests proving the packed counting kernels bit-identical to
// the naive reference oracle: PackedStatuses::CountJoint and the
// IncrementalJointCounter against CountJoint on randomized status
// matrices, sweeping beta across 64-bit word boundaries and parent-set
// sizes across the popcount/code-path cutover. The equality is exact
// (combo encodings, counts, emission order), which is what makes the
// packed kernel safe to substitute under the likelihood score without any
// tolerance argument.

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "inference/counting.h"
#include "test_util.h"

namespace tends::inference {
namespace {

diffusion::StatusMatrix RandomStatuses(uint32_t beta, uint32_t n,
                                       double density, uint64_t seed) {
  Rng rng(seed);
  diffusion::StatusMatrix statuses(beta, n);
  for (uint32_t p = 0; p < beta; ++p) {
    for (uint32_t v = 0; v < n; ++v) {
      statuses.Set(p, v, rng.NextBernoulli(density));
    }
  }
  return statuses;
}

/// Canonical form: observed combinations sorted ascending (both kernels
/// already emit this order; sorting here makes the comparison independent
/// of that implementation detail, per the differential-test contract).
JointCounts Canonical(const JointCounts& counts) {
  std::vector<size_t> order(counts.num_observed());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return counts.combo[a] < counts.combo[b];
  });
  JointCounts sorted;
  sorted.num_unobserved = counts.num_unobserved;
  sorted.num_possible = counts.num_possible;
  for (size_t j : order) {
    sorted.combo.push_back(counts.combo[j]);
    sorted.child0_count.push_back(counts.child0_count[j]);
    sorted.child1_count.push_back(counts.child1_count[j]);
  }
  return sorted;
}

void ExpectIdentical(const JointCounts& expected, const JointCounts& actual) {
  JointCounts want = Canonical(expected);
  JointCounts got = Canonical(actual);
  EXPECT_EQ(want.combo, got.combo);
  EXPECT_EQ(want.child0_count, got.child0_count);
  EXPECT_EQ(want.child1_count, got.child1_count);
  EXPECT_EQ(want.num_unobserved, got.num_unobserved);
  EXPECT_EQ(want.num_possible, got.num_possible);
}

void ExpectProperties(const JointCounts& counts, uint32_t beta, uint32_t s) {
  uint64_t total = 0;
  for (size_t j = 0; j < counts.num_observed(); ++j) {
    total += counts.child0_count[j] + counts.child1_count[j];
  }
  EXPECT_EQ(total, beta) << "counts must partition the processes";
  EXPECT_EQ(counts.num_possible, uint64_t{1} << s);
  EXPECT_EQ(counts.num_observed() + counts.num_unobserved,
            counts.num_possible);
  for (size_t j = 0; j < counts.num_observed(); ++j) {
    EXPECT_LT(counts.combo[j], counts.num_possible);
    if (j > 0) {
      EXPECT_LT(counts.combo[j - 1], counts.combo[j]);
    }
  }
}

// beta values straddling the 64-bit word boundaries, per the issue spec.
class PackedCountJointTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PackedCountJointTest, MatchesNaiveAcrossParentSetSizes) {
  const uint32_t beta = GetParam();
  const uint32_t n = 16;
  auto statuses = RandomStatuses(beta, n, 0.4, 1000 + beta);
  PackedStatuses packed(statuses);
  Rng rng(beta * 7 + 1);
  // 0..6 per the spec, then 7..8 to cross the popcount/code-path cutover.
  for (uint32_t s = 0; s <= 8; ++s) {
    // Several random parent sets per size, in random (unsorted) order —
    // the bit encoding must follow the given order, not node ids.
    for (uint32_t trial = 0; trial < 4; ++trial) {
      std::vector<graph::NodeId> pool(n - 1);
      std::iota(pool.begin(), pool.end(), graph::NodeId{1});
      for (uint32_t b = 0; b < s; ++b) {
        std::swap(pool[b], pool[b + static_cast<uint32_t>(rng.NextBounded(n - 1 - b))]);
      }
      std::vector<graph::NodeId> parents(pool.begin(), pool.begin() + s);
      JointCounts naive = CountJoint(statuses, 0, parents);
      JointCounts fast = packed.CountJoint(0, parents);
      ExpectIdentical(naive, fast);
      ExpectProperties(fast, beta, s);
    }
  }
}

TEST_P(PackedCountJointTest, IncrementalMatchesNaiveOnSortedUnions) {
  const uint32_t beta = GetParam();
  const uint32_t n = 14;
  auto statuses = RandomStatuses(beta, n, 0.35, 2000 + beta);
  PackedStatuses packed(statuses);
  IncrementalJointCounter counter(packed, 0);
  Rng rng(beta * 13 + 5);
  // Grow a base set the way the greedy search does, probing random
  // extensions at every step; each probe must equal the naive kernel on
  // the sorted union.
  std::vector<graph::NodeId> base;
  for (uint32_t round = 0; round < 5; ++round) {
    counter.SetBase(base);
    for (uint32_t probe = 0; probe < 6; ++probe) {
      const uint32_t extras = 1 + static_cast<uint32_t>(rng.NextBounded(3));
      std::vector<graph::NodeId> extra;
      for (uint32_t e = 0; e < extras; ++e) {
        // May collide with the base or repeat — the counter must dedup.
        extra.push_back(1 + static_cast<uint32_t>(rng.NextBounded(n - 1)));
      }
      std::vector<graph::NodeId> merged = base;
      for (graph::NodeId v : extra) {
        auto it = std::lower_bound(merged.begin(), merged.end(), v);
        if (it == merged.end() || *it != v) merged.insert(it, v);
      }
      JointCounts naive = CountJoint(statuses, 0, merged);
      JointCounts fast = counter.Count(extra);
      ExpectIdentical(naive, fast);
      ExpectProperties(fast, beta, static_cast<uint32_t>(merged.size()));
    }
    // Adopt one new member for the next round (keeps the base sorted).
    graph::NodeId adopt = 1 + static_cast<uint32_t>(rng.NextBounded(n - 1));
    auto it = std::lower_bound(base.begin(), base.end(), adopt);
    if (it == base.end() || *it != adopt) base.insert(it, adopt);
  }
}

// 1..1000 straddle the 64-bit word boundaries per the issue spec; 512 and
// 1024 are whole 512-process vector blocks (no scalar tail), 1000 mixes a
// full block with a padded scalar tail.
INSTANTIATE_TEST_SUITE_P(WordBoundaries, PackedCountJointTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 512,
                                           1000, 1024));

TEST(PackedCountJointTest, EmptyBaseCountEqualsStandalone) {
  auto statuses = RandomStatuses(150, 10, 0.5, 7);
  PackedStatuses packed(statuses);
  IncrementalJointCounter counter(packed, 3);
  EXPECT_TRUE(counter.base().empty());
  for (graph::NodeId v : {0u, 1u, 7u}) {
    ExpectIdentical(CountJoint(statuses, 3, {v}), counter.Count({v}));
  }
  // The empty extension reproduces the base (empty-set) statistics.
  ExpectIdentical(CountJoint(statuses, 3, {}), counter.Count({}));
}

TEST(PackedCountJointTest, SparsePathAboveDenseCutoffMatchesNaive) {
  // 15 parents exercises the hashed tally on both sides plus the canonical
  // sort that makes the hashed emission deterministic.
  auto statuses = RandomStatuses(128, 20, 0.5, 11);
  PackedStatuses packed(statuses);
  std::vector<graph::NodeId> parents;
  for (uint32_t b = 1; b <= 15; ++b) parents.push_back(b);
  JointCounts naive = CountJoint(statuses, 0, parents);
  JointCounts fast = packed.CountJoint(0, parents);
  ExpectIdentical(naive, fast);
  ExpectProperties(fast, 128, 15);

  // Incremental counter across the dense/sparse boundary: base of 13,
  // extensions pushing the union to 15.
  std::vector<graph::NodeId> base(parents.begin(), parents.begin() + 13);
  IncrementalJointCounter counter(packed, 0);
  counter.SetBase(base);
  ExpectIdentical(CountJoint(statuses, 0, parents),
                  counter.Count({14, 15}));
}

// --- CandidateCube vs the naive oracle ------------------------------------
//
// The cube answers any sorted subset of its candidate set by highest-bit
// marginalization; every answer must be bit-identical to the naive
// CountJoint over that subset. The sweep crosses the same 64-bit word
// boundaries as the kernel tests and every candidate-set size the planner
// default cap admits, and exercises all three build paths (row-major
// matrix scan, packed-column scatter, split contiguous AddRows) against
// each other by exhaustive subset comparison — 2^|C| subsets covers the
// full cell array, so equality here is cell-array equality.

class CandidateCubeDifferentialTest : public ::testing::TestWithParam<uint32_t> {
};

TEST_P(CandidateCubeDifferentialTest, AllBuildsMatchNaiveOnEverySubset) {
  const uint32_t beta = GetParam();
  const uint32_t n = 16;
  auto statuses = RandomStatuses(beta, n, 0.4, 3000 + beta);
  PackedStatuses packed(statuses);
  for (uint32_t k = 0; k <= 12; ++k) {
    std::vector<graph::NodeId> candidates;
    for (uint32_t b = 0; b < k; ++b) candidates.push_back(1 + b);

    CandidateCube from_matrix(statuses, 0, candidates);
    CandidateCube from_packed(packed, 0, candidates);
    // Split build: a prefix matrix, then the remaining rows appended in
    // two contiguous chunks (the incremental session's cube lifecycle).
    const uint32_t half = beta / 2;
    diffusion::StatusMatrix prefix(half, n);
    for (uint32_t p = 0; p < half; ++p) {
      for (uint32_t v = 0; v < n; ++v) {
        prefix.Set(p, v, statuses.Get(p, v));
      }
    }
    CandidateCube split(prefix, 0, candidates);
    const uint32_t mid = half + (beta - half) / 2;
    split.AddRows(statuses, half, mid);
    split.AddRows(statuses, mid, beta);

    EXPECT_EQ(from_matrix.num_processes(), beta);
    EXPECT_EQ(from_packed.num_processes(), beta);
    EXPECT_EQ(split.num_processes(), beta);
    EXPECT_EQ(from_packed.child_infected_count(),
              from_matrix.child_infected_count());
    EXPECT_EQ(split.child_infected_count(),
              from_matrix.child_infected_count());

    for (uint32_t mask = 0; mask < (1u << k); ++mask) {
      std::vector<graph::NodeId> subset;
      for (uint32_t b = 0; b < k; ++b) {
        if ((mask >> b) & 1) subset.push_back(candidates[b]);
      }
      JointCounts naive = CountJoint(statuses, 0, subset);
      ExpectIdentical(naive, from_matrix.Count(subset));
      ExpectIdentical(naive, from_packed.Count(subset));
      ExpectIdentical(naive, split.Count(subset));
      ExpectProperties(from_packed.Count(subset), beta,
                       static_cast<uint32_t>(subset.size()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, CandidateCubeDifferentialTest,
                         ::testing::Values(63, 64, 65, 127, 128));

TEST(CandidateCubeDifferentialTest, DegenerateColumnsMatchNaive) {
  // Constant columns pin cube code bits (all-0) or their complements
  // (all-1); a degenerate *child* pins the per-cell child split. Both
  // build paths must agree with the oracle cell-for-cell.
  diffusion::StatusMatrix statuses(70, 6);
  Rng rng(17);
  for (uint32_t p = 0; p < 70; ++p) {
    statuses.Set(p, 0, rng.NextBernoulli(0.5));
    statuses.Set(p, 1, 0);  // never infected
    statuses.Set(p, 2, 1);  // always infected
    statuses.Set(p, 3, rng.NextBernoulli(0.5));
    statuses.Set(p, 4, 0);  // degenerate child below
    statuses.Set(p, 5, rng.NextBernoulli(0.2));
  }
  PackedStatuses packed(statuses);
  for (graph::NodeId child : {graph::NodeId{0}, graph::NodeId{4}}) {
    const std::vector<graph::NodeId> candidates = {1, 2, 3, 5};
    CandidateCube from_matrix(statuses, child, candidates);
    CandidateCube from_packed(packed, child, candidates);
    for (uint32_t mask = 0; mask < 16; ++mask) {
      std::vector<graph::NodeId> subset;
      for (uint32_t b = 0; b < 4; ++b) {
        if ((mask >> b) & 1) subset.push_back(candidates[b]);
      }
      JointCounts naive = CountJoint(statuses, child, subset);
      ExpectIdentical(naive, from_matrix.Count(subset));
      ExpectIdentical(naive, from_packed.Count(subset));
    }
  }
}

TEST(PackedCountJointTest, AllZeroAndAllOneColumns) {
  // Degenerate columns stress the pad-mask handling: a constant-0 parent
  // pins its combo bit, a constant-1 parent pins the complement.
  diffusion::StatusMatrix statuses(70, 4);
  Rng rng(13);
  for (uint32_t p = 0; p < 70; ++p) {
    statuses.Set(p, 0, rng.NextBernoulli(0.5));
    statuses.Set(p, 1, 0);
    statuses.Set(p, 2, 1);
    statuses.Set(p, 3, rng.NextBernoulli(0.5));
  }
  PackedStatuses packed(statuses);
  for (const auto& parents :
       {std::vector<graph::NodeId>{1}, std::vector<graph::NodeId>{2},
        std::vector<graph::NodeId>{1, 2},
        std::vector<graph::NodeId>{2, 3, 1}}) {
    ExpectIdentical(CountJoint(statuses, 0, parents),
                    packed.CountJoint(0, parents));
  }
}

}  // namespace
}  // namespace tends::inference
