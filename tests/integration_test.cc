// End-to-end tests of the full pipeline: generator -> simulator ->
// inference -> evaluation, including the benchlib experiment runner and
// the paper's qualitative claims on small workloads.

#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "diffusion/propagation.h"
#include "graph/datasets.h"
#include "graph/generators/lfr.h"
#include "inference/io.h"
#include "inference/tends.h"
#include "metrics/fscore.h"
#include "test_util.h"

namespace tends {
namespace {

graph::DirectedGraph SmallLfr(uint64_t seed) {
  Rng rng(seed);
  return graph::GenerateLfr(graph::LfrOptions::FromPaperParams(80, 4, 2), rng)
      .value();
}

TEST(IntegrationTest, TendsBeatsChanceOnLfr) {
  auto truth = SmallLfr(1);
  auto observations = testing::SimulateUniform(truth, 0.3, 150, 0.15, 2);
  inference::Tends tends;
  auto inferred = tends.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  metrics::EdgeMetrics metrics = metrics::EvaluateEdges(*inferred, truth);
  // Chance F on this density is ~ 0.05; TENDS should be far above.
  EXPECT_GT(metrics.f_score, 0.5) << metrics.DebugString();
}

TEST(IntegrationTest, MoreProcessesImproveTends) {
  // Corollary 1: the selected parent sets are consistent as beta grows;
  // empirically the F-score should trend upward from very few processes.
  auto truth = SmallLfr(3);
  auto evaluate = [&](uint32_t beta) {
    auto observations = testing::SimulateUniform(truth, 0.3, beta, 0.15, 4);
    inference::Tends tends;
    auto inferred = tends.Infer(observations);
    return metrics::EvaluateEdges(*inferred, truth).f_score;
  };
  double f_small = evaluate(25);
  double f_large = evaluate(400);
  EXPECT_GT(f_large, f_small + 0.05);
}

TEST(IntegrationTest, RunExperimentReturnsAllSelectedAlgorithms) {
  auto truth = SmallLfr(5);
  benchlib::ExperimentConfig config;
  config.beta = 60;
  auto evaluations = benchlib::RunExperiment(truth, config);
  ASSERT_TRUE(evaluations.ok()) << evaluations.status();
  ASSERT_EQ(evaluations->size(), 4u);
  EXPECT_EQ((*evaluations)[0].algorithm, "TENDS");
  EXPECT_EQ((*evaluations)[1].algorithm, "NetRate");
  EXPECT_EQ((*evaluations)[2].algorithm, "MulTree");
  EXPECT_EQ((*evaluations)[3].algorithm, "LIFT");
  for (const auto& evaluation : *evaluations) {
    EXPECT_GE(evaluation.metrics.f_score, 0.0);
    EXPECT_LE(evaluation.metrics.f_score, 1.0);
    EXPECT_GE(evaluation.seconds, 0.0);
  }
}

TEST(IntegrationTest, RunExperimentSubsetSelection) {
  auto truth = SmallLfr(7);
  benchlib::ExperimentConfig config;
  config.beta = 40;
  config.algorithms = {.tends = true,
                       .netrate = false,
                       .multree = false,
                       .lift = true};
  auto evaluations = benchlib::RunExperiment(truth, config);
  ASSERT_TRUE(evaluations.ok());
  ASSERT_EQ(evaluations->size(), 2u);
  EXPECT_EQ((*evaluations)[0].algorithm, "TENDS");
  EXPECT_EQ((*evaluations)[1].algorithm, "LIFT");
}

TEST(IntegrationTest, RunExperimentValidatesRepetitions) {
  auto truth = SmallLfr(9);
  benchlib::ExperimentConfig config;
  config.repetitions = 0;
  EXPECT_FALSE(benchlib::RunExperiment(truth, config).ok());
}

TEST(IntegrationTest, RunExperimentAveragesRepetitions) {
  auto truth = SmallLfr(11);
  benchlib::ExperimentConfig config;
  config.beta = 40;
  config.repetitions = 2;
  config.algorithms = {.tends = true,
                       .netrate = false,
                       .multree = false,
                       .lift = false};
  auto evaluations = benchlib::RunExperiment(truth, config);
  ASSERT_TRUE(evaluations.ok());
  EXPECT_LE((*evaluations)[0].metrics.f_score, 1.0);
}

TEST(IntegrationTest, RunExperimentIsDeterministic) {
  auto truth = SmallLfr(13);
  benchlib::ExperimentConfig config;
  config.beta = 50;
  config.algorithms = {.tends = true,
                       .netrate = false,
                       .multree = false,
                       .lift = false};
  auto e1 = benchlib::RunExperiment(truth, config);
  auto e2 = benchlib::RunExperiment(truth, config);
  ASSERT_TRUE(e1.ok() && e2.ok());
  EXPECT_DOUBLE_EQ((*e1)[0].metrics.f_score, (*e2)[0].metrics.f_score);
}

TEST(IntegrationTest, MakeFigureTableShape) {
  auto truth = SmallLfr(15);
  benchlib::ExperimentConfig config;
  config.beta = 40;
  config.algorithms = {.tends = true,
                       .netrate = false,
                       .multree = false,
                       .lift = true};
  auto evaluations = benchlib::RunExperiment(truth, config);
  ASSERT_TRUE(evaluations.ok());
  Table table = benchlib::MakeFigureTable({{"setting-a", *evaluations}});
  EXPECT_EQ(table.num_columns(), 7u);
  EXPECT_EQ(table.num_rows(), 2u);  // 2 algorithms x 1 setting
}

TEST(IntegrationTest, TendsWorksOnLinearThresholdData) {
  // Extension: TENDS is model-agnostic (it only sees statuses), so it
  // should also recover structure from LT-model diffusions.
  auto truth = SmallLfr(17);
  Rng rng(18);
  auto probs = diffusion::EdgeProbabilities::Uniform(truth, 0.45);
  diffusion::SimulationConfig sim;
  sim.num_processes = 200;
  sim.model = diffusion::DiffusionModel::kLinearThreshold;
  auto observations = diffusion::Simulate(truth, probs, sim, rng);
  ASSERT_TRUE(observations.ok());
  inference::Tends tends;
  auto inferred = tends.Infer(*observations);
  ASSERT_TRUE(inferred.ok());
  metrics::EdgeMetrics metrics = metrics::EvaluateEdges(*inferred, truth);
  EXPECT_GT(metrics.f_score, 0.2) << metrics.DebugString();
}

TEST(IntegrationTest, DatasetSurrogatePipelineRuns) {
  auto truth = graph::MakeNetSciSurrogate().value();
  auto observations = testing::SimulateUniform(truth, 0.3, 30, 0.15, 19);
  // 30 processes on the NetSci surrogate leave some nodes never infected;
  // run best-effort instead of rejecting the degenerate columns.
  inference::TendsOptions tends_options;
  tends_options.reject_degenerate_columns = false;
  inference::Tends tends(tends_options);
  auto inferred = tends.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  EXPECT_GT(inferred->num_edges(), 0u);
}

TEST(IntegrationTest, PackedAndNaiveKernelsWriteIdenticalNetworkFiles) {
  // End-to-end equivalence at the file level: run the pipeline once with
  // each counting kernel, serialize both inferred networks, and compare
  // the files byte for byte (formatting included, not just edge sets).
  auto truth = SmallLfr(21);
  auto observations = testing::SimulateUniform(truth, 0.3, 120, 0.15, 22);

  auto infer_to_file = [&](inference::CountingKernel kernel,
                           const std::string& path) {
    inference::TendsOptions options;
    options.search.kernel = kernel;
    inference::Tends tends(options);
    auto inferred = tends.Infer(observations);
    ASSERT_TRUE(inferred.ok()) << inferred.status();
    EXPECT_GT(inferred->num_edges(), 0u);
    ASSERT_TRUE(inference::WriteInferredNetworkFile(*inferred, path).ok());
  };

  const std::string packed_path =
      ::testing::TempDir() + "/network_packed.txt";
  const std::string naive_path = ::testing::TempDir() + "/network_naive.txt";
  infer_to_file(inference::CountingKernel::kPacked, packed_path);
  infer_to_file(inference::CountingKernel::kNaive, naive_path);

  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string packed_bytes = slurp(packed_path);
  const std::string naive_bytes = slurp(naive_path);
  ASSERT_FALSE(packed_bytes.empty());
  EXPECT_EQ(packed_bytes, naive_bytes);
}

TEST(IntegrationTest, FastBenchModeReadsEnvironment) {
  unsetenv("TENDS_BENCH_FAST");
  EXPECT_FALSE(benchlib::FastBenchMode());
  setenv("TENDS_BENCH_FAST", "1", 1);
  EXPECT_TRUE(benchlib::FastBenchMode());
  unsetenv("TENDS_BENCH_FAST");
}

}  // namespace
}  // namespace tends
