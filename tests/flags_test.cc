#include "common/flags.h"

#include <gtest/gtest.h>

namespace tends {
namespace {

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return argv;
}

TEST(FlagParserTest, ParsesAllTypesEqualsForm) {
  std::string s = "default";
  int64_t i = 0;
  uint32_t u = 0;
  double d = 0.0;
  bool b = false;
  FlagParser parser("test");
  parser.AddString("s", &s, "a string");
  parser.AddInt64("i", &i, "an int");
  parser.AddUint32("u", &u, "a uint");
  parser.AddDouble("d", &d, "a double");
  parser.AddBool("b", &b, "a bool");
  auto argv = Argv({"--s=hello", "--i=-5", "--u=7", "--d=0.25", "--b=true"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(i, -5);
  EXPECT_EQ(u, 7u);
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_TRUE(b);
}

TEST(FlagParserTest, ParsesSpaceSeparatedForm) {
  std::string s;
  FlagParser parser("test");
  parser.AddString("name", &s, "x");
  auto argv = Argv({"--name", "value"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(s, "value");
}

TEST(FlagParserTest, BareBoolFlagMeansTrue) {
  bool b = false;
  FlagParser parser("test");
  parser.AddBool("verbose", &b, "x");
  auto argv = Argv({"--verbose"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(b);
}

TEST(FlagParserTest, BoolRejectsGarbage) {
  bool b = false;
  FlagParser parser("test");
  parser.AddBool("flag", &b, "x");
  auto argv = Argv({"--flag=maybe"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, UnknownFlagIsError) {
  FlagParser parser("test");
  auto argv = Argv({"--nope=1"});
  Status status = parser.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("--nope"), std::string::npos);
}

TEST(FlagParserTest, MissingValueIsError) {
  std::string s;
  FlagParser parser("test");
  parser.AddString("name", &s, "x");
  auto argv = Argv({"--name"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, BadNumericValueIsError) {
  uint32_t u = 0;
  FlagParser parser("test");
  parser.AddUint32("count", &u, "x");
  auto argv = Argv({"--count=abc"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  auto argv2 = Argv({"--count=-3"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv2.size()), argv2.data()).ok());
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  std::string s;
  FlagParser parser("test");
  parser.AddString("s", &s, "x");
  auto argv = Argv({"first", "--s=v", "second"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(FlagParserTest, DoubleDashEndsFlagParsing) {
  std::string s = "default";
  FlagParser parser("test");
  parser.AddString("s", &s, "x");
  auto argv = Argv({"--", "--s=ignored"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(s, "default");
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"--s=ignored"}));
}

TEST(FlagParserTest, HelpReturnsUsageAsNotFound) {
  uint32_t u = 3;
  FlagParser parser("my tool");
  parser.AddUint32("count", &u, "how many");
  auto argv = Argv({"--help"});
  Status status = parser.Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(status.IsNotFound());
  EXPECT_NE(status.message().find("my tool"), std::string::npos);
  EXPECT_NE(status.message().find("--count"), std::string::npos);
  EXPECT_NE(status.message().find("default: 3"), std::string::npos);
}

TEST(FlagParserTest, WasSetTracksExplicitFlags) {
  uint32_t u = 9;
  double d = 1.5;
  FlagParser parser("test");
  parser.AddUint32("u", &u, "x");
  parser.AddDouble("d", &d, "x");
  auto argv = Argv({"--u=10"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(parser.WasSet("u"));
  EXPECT_FALSE(parser.WasSet("d"));
  EXPECT_FALSE(parser.WasSet("never_registered"));
}

TEST(FlagParserTest, WasSetEvenWhenValueEqualsDefault) {
  // Explicitly passing the default value still counts as "set" — the
  // property the (since-removed) --num_threads deprecation shim leaned on,
  // kept pinned because any future alias resolution needs it too.
  uint32_t threads = 1;
  FlagParser parser("test");
  parser.AddUint32("threads", &threads, "x");
  auto argv = Argv({"--threads=1"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(threads, 1u);
  EXPECT_TRUE(parser.WasSet("threads"));
}

TEST(FlagParserTest, WasSetResetsOnReparse) {
  uint32_t u = 0;
  FlagParser parser("test");
  parser.AddUint32("u", &u, "x");
  auto argv = Argv({"--u=10"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(parser.WasSet("u"));
  auto argv2 = Argv({});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv2.size()), argv2.data()).ok());
  EXPECT_FALSE(parser.WasSet("u"));
}

TEST(FlagParserTest, WasSetCoversBareBoolForm) {
  bool b = false;
  FlagParser parser("test");
  parser.AddBool("verbose", &b, "x");
  auto argv = Argv({"--verbose"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(parser.WasSet("verbose"));
}

TEST(FlagParserTest, DefaultsPreservedWhenUnset) {
  uint32_t u = 9;
  double d = 1.5;
  FlagParser parser("test");
  parser.AddUint32("u", &u, "x");
  parser.AddDouble("d", &d, "x");
  auto argv = Argv({"--u=10"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(u, 10u);
  EXPECT_DOUBLE_EQ(d, 1.5);
}

}  // namespace
}  // namespace tends
