#include "graph/datasets.h"

#include <gtest/gtest.h>

#include "graph/stats.h"

namespace tends::graph {
namespace {

TEST(DatasetsTest, NetSciSurrogateMatchesPublishedSize) {
  auto graph = MakeNetSciSurrogate();
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->num_nodes(), kNetSciNodes);
  // 1602 influence relationships (801 mutual ties, both directions).
  EXPECT_EQ(graph->num_edges(), kNetSciDirectedEdges);
}

TEST(DatasetsTest, NetSciIsFullyReciprocal) {
  auto graph = MakeNetSciSurrogate();
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(ComputeStats(*graph).reciprocity, 1.0);
}

TEST(DatasetsTest, DunfSurrogateMatchesPublishedSize) {
  auto graph = MakeDunfSurrogate();
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->num_nodes(), kDunfNodes);
  EXPECT_EQ(graph->num_edges(), kDunfDirectedEdges);
}

TEST(DatasetsTest, DunfHasConfiguredReciprocity) {
  auto graph = MakeDunfSurrogate();
  ASSERT_TRUE(graph.ok());
  // 60% mutual-follow rate, not fully reciprocal.
  EXPECT_NEAR(ComputeStats(*graph).reciprocity, 0.6, 0.02);
}

TEST(DatasetsTest, SurrogatesAreDeterministic) {
  EXPECT_EQ(*MakeNetSciSurrogate(), *MakeNetSciSurrogate());
  EXPECT_EQ(*MakeDunfSurrogate(), *MakeDunfSurrogate());
}

TEST(DatasetsTest, SurrogatesHaveHeavyTails) {
  auto netsci = MakeNetSciSurrogate().value();
  GraphStats stats = ComputeStats(netsci);
  // Hubs well above the mean degree, as in real coauthorship networks.
  EXPECT_GT(stats.max_total_degree, 2.5 * stats.mean_total_degree);
}

}  // namespace
}  // namespace tends::graph
