#include "metrics/pr_curve.h"

#include <gtest/gtest.h>

#include "metrics/fscore.h"
#include "test_util.h"

namespace tends::metrics {
namespace {

using ::tends::testing::MakeGraph;

inference::InferredNetwork Net(
    uint32_t n,
    std::initializer_list<std::tuple<uint32_t, uint32_t, double>> edges) {
  inference::InferredNetwork network(n);
  for (auto [u, v, w] : edges) network.AddEdge(u, v, w);
  return network;
}

TEST(PrCurveTest, PerfectRankingHasUnitAveragePrecision) {
  auto truth = MakeGraph(4, {{0, 1}, {1, 2}});
  auto inferred = Net(4, {{0, 1, 0.9}, {1, 2, 0.8}, {2, 3, 0.1}});
  PrCurve curve = ComputePrCurve(inferred, truth);
  ASSERT_EQ(curve.points.size(), 3u);
  EXPECT_DOUBLE_EQ(curve.points[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve.points[0].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve.points[1].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve.points[1].recall, 1.0);
  EXPECT_NEAR(curve.average_precision, 1.0, 1e-12);
}

TEST(PrCurveTest, WorstRankingHasLowAveragePrecision) {
  auto truth = MakeGraph(4, {{0, 1}});
  auto inferred = Net(4, {{2, 3, 0.9}, {3, 2, 0.8}, {0, 1, 0.1}});
  PrCurve curve = ComputePrCurve(inferred, truth);
  ASSERT_EQ(curve.points.size(), 3u);
  // AP = precision-at-full-recall * recall step = (1/3) * 1.
  EXPECT_NEAR(curve.average_precision, 1.0 / 3.0, 1e-12);
}

TEST(PrCurveTest, TieGroupsShareOnePoint) {
  auto truth = MakeGraph(4, {{0, 1}, {1, 2}});
  auto inferred = Net(4, {{0, 1, 0.5}, {1, 2, 0.5}, {2, 3, 0.5}});
  PrCurve curve = ComputePrCurve(inferred, truth);
  ASSERT_EQ(curve.points.size(), 1u);
  EXPECT_EQ(curve.points[0].kept_edges, 3u);
  EXPECT_NEAR(curve.points[0].precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(curve.points[0].recall, 1.0);
}

TEST(PrCurveTest, RecallIsMonotoneAndPointsOrdered) {
  auto truth = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto inferred = Net(5, {{0, 1, 0.9},
                          {4, 0, 0.8},
                          {1, 2, 0.7},
                          {2, 0, 0.6},
                          {2, 3, 0.5}});
  PrCurve curve = ComputePrCurve(inferred, truth);
  for (size_t k = 1; k < curve.points.size(); ++k) {
    EXPECT_GE(curve.points[k].recall, curve.points[k - 1].recall);
    EXPECT_LT(curve.points[k].threshold, curve.points[k - 1].threshold);
  }
}

TEST(PrCurveTest, BestThresholdFScoreIsOnTheCurve) {
  auto truth = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}});
  auto inferred = Net(5, {{0, 1, 0.9},
                          {3, 1, 0.8},
                          {1, 2, 0.7},
                          {2, 3, 0.3},
                          {4, 2, 0.2}});
  PrCurve curve = ComputePrCurve(inferred, truth);
  EdgeMetrics best = EvaluateBestThreshold(inferred, truth);
  double best_f_on_curve = 0.0;
  for (const PrPoint& point : curve.points) {
    if (point.precision + point.recall > 0) {
      best_f_on_curve = std::max(
          best_f_on_curve, 2 * point.precision * point.recall /
                               (point.precision + point.recall));
    }
  }
  EXPECT_NEAR(best_f_on_curve, best.f_score, 1e-12);
}

TEST(PrCurveTest, EmptyInputsAreHandled) {
  auto truth = MakeGraph(3, {{0, 1}});
  inference::InferredNetwork empty(3);
  PrCurve curve = ComputePrCurve(empty, truth);
  EXPECT_TRUE(curve.points.empty());
  EXPECT_DOUBLE_EQ(curve.average_precision, 0.0);

  graph::DirectedGraph no_edges(3);
  auto inferred = Net(3, {{0, 1, 0.5}});
  PrCurve no_truth = ComputePrCurve(inferred, no_edges);
  EXPECT_TRUE(no_truth.points.empty());
}

TEST(PrCurveTest, DuplicateEdgesCountedOnce) {
  auto truth = MakeGraph(3, {{0, 1}});
  auto inferred = Net(3, {{0, 1, 0.9}, {0, 1, 0.2}});
  PrCurve curve = ComputePrCurve(inferred, truth);
  ASSERT_EQ(curve.points.size(), 1u);
  EXPECT_EQ(curve.points[0].kept_edges, 1u);
  EXPECT_DOUBLE_EQ(curve.points[0].precision, 1.0);
}

}  // namespace
}  // namespace tends::metrics
