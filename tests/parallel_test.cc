#include "common/parallel.h"

#include <atomic>
#include <numeric>

#include <gtest/gtest.h>

#include "inference/netrate.h"
#include "inference/tends.h"
#include "test_util.h"

namespace tends {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int t = 0; t < 100; ++t) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, MinimumOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int t = 0; t < 50; ++t) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(4, 0, 1000, [&](uint32_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  int calls = 0;
  ParallelFor(4, 5, 5, [&](uint32_t) { ++calls; });
  ParallelFor(4, 7, 3, [&](uint32_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, SingleThreadRunsInOrder) {
  std::vector<uint32_t> order;
  ParallelFor(1, 3, 8, [&](uint32_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<uint32_t>{3, 4, 5, 6, 7}));
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(16, 0, 3, [&](uint32_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, GrainVariantsCoverRangeExactlyOnce) {
  for (uint32_t grain : {1u, 3u, 7u, 64u, 1000u, 5000u}) {
    std::vector<std::atomic<int>> hits(1000);
    ParallelFor(ParallelForOptions{.num_threads = 4, .grain = grain}, 0, 1000,
                [&](uint32_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "grain=" << grain;
  }
}

TEST(ParallelForTest, GrainSingleThreadRunsInOrder) {
  std::vector<uint32_t> order;
  ParallelFor(ParallelForOptions{.num_threads = 1, .grain = 16}, 3, 8,
              [&](uint32_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<uint32_t>{3, 4, 5, 6, 7}));
}

TEST(ParallelForTest, NestedParallelForCompletes) {
  // Both levels share the process-wide pool; the caller-drains design must
  // keep this from deadlocking even when workers are saturated by the
  // outer level.
  std::atomic<int> counter{0};
  ParallelFor(4, 0, 8, [&](uint32_t) {
    ParallelFor(4, 0, 100, [&](uint32_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 800);
}

TEST(ParallelForTest, RepeatedCallsReuseSharedPool) {
  const uint32_t before = SharedThreadPool().num_threads();
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::vector<std::atomic<int>> hits(64);
    ParallelFor(ParallelForOptions{.num_threads = 4, .grain = 5}, 0, 64,
                [&](uint32_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
  // The pool grew at most once (to 3 extra workers) and was reused after.
  EXPECT_GE(SharedThreadPool().num_threads(), 3u);
  EXPECT_GE(SharedThreadPool().num_threads(), before);
}

TEST(ThreadPoolTest, EnsureWorkersGrowsAndNeverShrinks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2u);
  pool.EnsureWorkers(5);
  EXPECT_EQ(pool.num_threads(), 5u);
  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.num_threads(), 5u);
  std::atomic<int> counter{0};
  for (int t = 0; t < 200; ++t) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SharedPoolIsOneProcessWideInstance) {
  EXPECT_EQ(&SharedThreadPool(), &SharedThreadPool());
}

TEST(ThreadPoolTest, ReuseAcrossManyWaitCycles) {
  // Stress the submit/wait handshake that ParallelFor leans on: a stale
  // Wait or lost notification shows up here (and under tsan) long before
  // it corrupts a simulation.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int t = 0; t < 8; ++t) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    ASSERT_EQ(counter.load(), (cycle + 1) * 8);
  }
}

// ----------------------------- parallel inference produces identical output

TEST(ParallelInferenceTest, TendsIsThreadCountInvariant) {
  auto truth = testing::MakeGraph(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}});
  auto observations = testing::SimulateUniform(truth, 0.5, 200, 0.2, 61);
  inference::TendsOptions serial_options, parallel_options;
  parallel_options.num_threads = 4;
  inference::Tends serial(serial_options), parallel(parallel_options);
  auto r1 = serial.Infer(observations);
  auto r2 = parallel.Infer(observations);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->num_edges(), r2->num_edges());
  for (size_t e = 0; e < r1->num_edges(); ++e) {
    EXPECT_EQ(r1->edges()[e].edge, r2->edges()[e].edge);
    EXPECT_DOUBLE_EQ(r1->edges()[e].weight, r2->edges()[e].weight);
  }
  EXPECT_DOUBLE_EQ(serial.diagnostics().network_score,
                   parallel.diagnostics().network_score);
}

TEST(ParallelInferenceTest, NetRateIsThreadCountInvariant) {
  auto truth = testing::MakeGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  auto observations = testing::SimulateUniform(truth, 0.5, 120, 0.2, 63);
  inference::NetRateOptions serial_options, parallel_options;
  parallel_options.num_threads = 4;
  inference::NetRate serial(serial_options), parallel(parallel_options);
  auto r1 = serial.Infer(observations);
  auto r2 = parallel.Infer(observations);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->num_edges(), r2->num_edges());
  for (size_t e = 0; e < r1->num_edges(); ++e) {
    EXPECT_EQ(r1->edges()[e].edge, r2->edges()[e].edge);
    EXPECT_DOUBLE_EQ(r1->edges()[e].weight, r2->edges()[e].weight);
  }
}

}  // namespace
}  // namespace tends
