#include "inference/sparse_candidates.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/random.h"
#include "inference/counting.h"
#include "inference/imi.h"
#include "inference/kmeans_threshold.h"
#include "test_util.h"

namespace tends::inference {
namespace {

diffusion::StatusMatrix RandomStatuses(uint32_t beta, uint32_t n,
                                       double density, uint64_t seed) {
  Rng rng(seed);
  diffusion::StatusMatrix matrix(beta, n);
  for (uint32_t p = 0; p < beta; ++p) {
    for (uint32_t v = 0; v < n; ++v) {
      matrix.Set(p, v, rng.NextBernoulli(density) ? 1 : 0);
    }
  }
  return matrix;
}

// ------------------------------------------------------- inverted index

// The inverted index must be the exact row view of the packed columns:
// process p's list is the ascending ids of the nodes infected in p.
// Exercised across word-boundary process counts (1, 63, 64, 65, 129).
TEST(SparseInvertedIndexTest, MatchesNaiveRowScanAcrossWordBoundaries) {
  for (uint32_t beta : {1u, 63u, 64u, 65u, 129u}) {
    for (double density : {0.0, 0.07, 0.5, 1.0}) {
      const diffusion::StatusMatrix statuses =
          RandomStatuses(beta, 37, density, 1000 + beta);
      const PackedStatuses packed(statuses);
      const InvertedStatusIndex index(packed);
      ASSERT_EQ(index.num_processes(), beta);
      uint64_t total = 0;
      for (uint32_t p = 0; p < beta; ++p) {
        std::vector<uint32_t> expected;
        for (uint32_t v = 0; v < statuses.num_nodes(); ++v) {
          if (statuses.Get(p, v) != 0) expected.push_back(v);
        }
        ASSERT_EQ(index.Size(p), expected.size())
            << "beta=" << beta << " density=" << density << " p=" << p;
        for (uint32_t e = 0; e < expected.size(); ++e) {
          EXPECT_EQ(index.Nodes(p)[e], expected[e]);
        }
        total += expected.size();
      }
      EXPECT_EQ(index.total_infections(), total);
    }
  }
}

// --------------------------------------------------------- sparse index

SparseCandidateIndex BuildWith(const diffusion::StatusMatrix& statuses,
                               SparseRowStrategy strategy,
                               uint32_t num_threads = 1) {
  const PackedStatuses packed(statuses);
  SparseCandidateOptions options;
  options.num_threads = num_threads;
  options.strategy = strategy;
  return BuildSparseCandidateIndex(packed, packed.InfectedCounts(), options);
}

/// The index must hold exactly the pairs with co-infection and strictly
/// positive infection MI, with values bit-identical to the dense matrix.
void ExpectMatchesDenseOracle(const diffusion::StatusMatrix& statuses,
                              const SparseCandidateIndex& index) {
  const uint32_t n = statuses.num_nodes();
  const PackedStatuses packed(statuses);
  const ImiMatrix dense(packed, /*use_traditional_mi=*/false);
  ASSERT_EQ(index.num_nodes(), n);
  ASSERT_EQ(index.num_processes(), statuses.num_processes());
  for (uint32_t i = 0; i < n; ++i) {
    const SparseCandidateIndex::RowView row = index.Row(i);
    // Rows are strictly ascending by neighbor, never self-referential.
    for (size_t e = 0; e + 1 < row.size; ++e) {
      ASSERT_LT(row.neighbors[e], row.neighbors[e + 1]);
    }
    size_t cursor = 0;
    for (uint32_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const PairCounts counts = packed.CountPair(i, j);
      const double dense_value = dense.Get(i, j);
      const bool expected_present = counts.c11 > 0 && dense_value > 0.0;
      const bool present = cursor < row.size && row.neighbors[cursor] == j;
      ASSERT_EQ(present, expected_present)
          << "pair (" << i << ", " << j << "): c11=" << counts.c11
          << " imi=" << dense_value;
      if (present) {
        EXPECT_EQ(std::bit_cast<uint64_t>(row.values[cursor]),
                  std::bit_cast<uint64_t>(dense_value))
            << "pair (" << i << ", " << j << ")";
        EXPECT_EQ(std::bit_cast<uint64_t>(index.Get(i, j)),
                  std::bit_cast<uint64_t>(dense_value));
        // Symmetry: the mirrored entry stores the same double.
        EXPECT_EQ(std::bit_cast<uint64_t>(index.Get(j, i)),
                  std::bit_cast<uint64_t>(dense_value));
        ++cursor;
      } else {
        EXPECT_EQ(index.Get(i, j), 0.0);
      }
    }
    ASSERT_EQ(cursor, row.size) << "row " << i << " holds extra entries";
  }
}

TEST(SparseIndexTest, MatchesDenseOracleOnRandomMatrices) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (double density : {0.05, 0.3, 0.8}) {
      const diffusion::StatusMatrix statuses =
          RandomStatuses(90, 45, density, seed);
      for (SparseRowStrategy strategy :
           {SparseRowStrategy::kAuto, SparseRowStrategy::kMergeOnly,
            SparseRowStrategy::kPopcountOnly}) {
        ExpectMatchesDenseOracle(statuses, BuildWith(statuses, strategy));
      }
    }
  }
}

TEST(SparseIndexTest, HandlesDegenerateColumnsAndProcesses) {
  using ::tends::testing::MakeStatuses;
  // Node 0: all-one column; node 3: all-zero column (isolated); process 2:
  // all-infected; process 3: empty.
  const diffusion::StatusMatrix statuses = MakeStatuses({
      {1, 0, 1, 0, 1},
      {1, 1, 0, 0, 0},
      {1, 1, 1, 0, 1},
      {0, 0, 0, 0, 0},
      {1, 0, 1, 0, 0},
  });
  for (SparseRowStrategy strategy :
       {SparseRowStrategy::kAuto, SparseRowStrategy::kMergeOnly,
        SparseRowStrategy::kPopcountOnly}) {
    const SparseCandidateIndex index = BuildWith(statuses, strategy);
    ExpectMatchesDenseOracle(statuses, index);
    // The all-zero column never co-occurs: its row must be empty.
    EXPECT_EQ(index.Row(3).size, 0u);
  }
}

// Both row strategies and any thread count must produce byte-identical
// indexes — the cost model may only shift time.
TEST(SparseIndexTest, StrategiesAndThreadCountsAreByteIdentical) {
  const diffusion::StatusMatrix statuses = RandomStatuses(129, 64, 0.2, 99);
  const SparseCandidateIndex reference =
      BuildWith(statuses, SparseRowStrategy::kMergeOnly, 1);
  for (SparseRowStrategy strategy :
       {SparseRowStrategy::kAuto, SparseRowStrategy::kPopcountOnly}) {
    for (uint32_t num_threads : {1u, 8u}) {
      const SparseCandidateIndex other =
          BuildWith(statuses, strategy, num_threads);
      ASSERT_EQ(other.num_entries(), reference.num_entries());
      for (uint32_t i = 0; i < reference.num_nodes(); ++i) {
        const auto a = reference.Row(i);
        const auto b = other.Row(i);
        ASSERT_EQ(a.size, b.size) << "row " << i;
        for (size_t e = 0; e < a.size; ++e) {
          EXPECT_EQ(a.neighbors[e], b.neighbors[e]);
          EXPECT_EQ(std::bit_cast<uint64_t>(a.values[e]),
                    std::bit_cast<uint64_t>(b.values[e]));
        }
      }
    }
  }
}

TEST(SparseIndexTest, StatsPartitionTheOrderedPairs) {
  const uint32_t n = 45;
  const diffusion::StatusMatrix statuses = RandomStatuses(70, n, 0.1, 5);
  for (SparseRowStrategy strategy :
       {SparseRowStrategy::kAuto, SparseRowStrategy::kMergeOnly,
        SparseRowStrategy::kPopcountOnly}) {
    const SparseCandidateIndex index = BuildWith(statuses, strategy);
    const SparseIndexStats& stats = index.stats();
    EXPECT_EQ(stats.pairs_visited + stats.pairs_skipped,
              static_cast<uint64_t>(n) * (n - 1));
    EXPECT_EQ(stats.merge_rows + stats.popcount_rows, n);
    // Visited pairs are exactly the co-occurring ones — strategy-invariant.
    const PackedStatuses packed(statuses);
    uint64_t co_occurring = 0;
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = 0; j < n; ++j) {
        if (j != i && packed.CountPair(i, j).c11 > 0) ++co_occurring;
      }
    }
    EXPECT_EQ(stats.pairs_visited, co_occurring);
  }
  EXPECT_EQ(BuildWith(statuses, SparseRowStrategy::kMergeOnly)
                .stats()
                .popcount_rows,
            0u);
  EXPECT_EQ(BuildWith(statuses, SparseRowStrategy::kPopcountOnly)
                .stats()
                .merge_rows,
            0u);
}

// The sparse K-means overload must reproduce the dense threshold exactly
// except for noise_count, which loses the non-positive pairs the index
// never stores (see kmeans_threshold.h).
TEST(SparseIndexTest, KmeansThresholdMatchesDenseExceptNoiseCount) {
  for (uint64_t seed : {11u, 12u}) {
    const diffusion::StatusMatrix statuses = RandomStatuses(150, 60, 0.2, seed);
    const PackedStatuses packed(statuses);
    const ImiMatrix dense(packed, /*use_traditional_mi=*/false);
    const SparseCandidateIndex sparse =
        BuildWith(statuses, SparseRowStrategy::kAuto);
    const ImiThreshold from_dense = FindImiThreshold(dense);
    const ImiThreshold from_sparse = FindImiThreshold(sparse);
    EXPECT_EQ(std::bit_cast<uint64_t>(from_dense.tau),
              std::bit_cast<uint64_t>(from_sparse.tau));
    EXPECT_EQ(std::bit_cast<uint64_t>(from_dense.signal_mean),
              std::bit_cast<uint64_t>(from_sparse.signal_mean));
    EXPECT_EQ(from_dense.signal_count, from_sparse.signal_count);
    EXPECT_EQ(from_dense.iterations, from_sparse.iterations);
    // Dense clusters every non-negative upper-triangle value; sparse only
    // the strictly positive ones. The difference is exactly the zero /
    // negative-dropped complement.
    EXPECT_GE(from_dense.noise_count, from_sparse.noise_count);
    const size_t positive = sparse.PositiveUpperTriangleValues().size();
    EXPECT_EQ(from_sparse.noise_count + from_sparse.signal_count, positive);
  }
}

TEST(SparseIndexTest, AllNonPositiveMatrixYieldsEmptyIndexAndZeroTau) {
  using ::tends::testing::MakeStatuses;
  // Perfectly anti-correlated pair plus an empty node: every IMI <= 0.
  const diffusion::StatusMatrix statuses = MakeStatuses({
      {1, 0, 0},
      {0, 1, 0},
      {1, 0, 0},
      {0, 1, 0},
  });
  const SparseCandidateIndex index =
      BuildWith(statuses, SparseRowStrategy::kAuto);
  EXPECT_EQ(index.num_entries(), 0u);
  const ImiThreshold threshold = FindImiThreshold(index);
  EXPECT_EQ(threshold.tau, 0.0);
  EXPECT_EQ(threshold.iterations, 0u);
}

// ---------------------------------------------------------- top-k heap

/// Oracle top-k: full sort under the (value desc, id asc) ranking.
std::vector<graph::NodeId> OracleTopK(
    std::vector<std::pair<double, graph::NodeId>> entries, uint32_t k) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  if (entries.size() > k) entries.resize(k);
  std::vector<graph::NodeId> ids;
  for (const auto& [value, id] : entries) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(SparseHeapTest, MatchesFullSortOracleOnRandomStreams) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t k = 1 + static_cast<uint32_t>(rng.NextBounded(12));
    const uint32_t count = static_cast<uint32_t>(rng.NextBounded(40));
    std::vector<std::pair<double, graph::NodeId>> entries;
    TopKCandidateHeap heap(k);
    for (uint32_t e = 0; e < count; ++e) {
      // Coarse values force plenty of exact ties.
      const double value = static_cast<double>(rng.NextBounded(6)) * 0.25;
      const graph::NodeId id = static_cast<graph::NodeId>(e);
      entries.emplace_back(value, id);
      heap.Push(value, id);
    }
    EXPECT_EQ(heap.SortedIds(), OracleTopK(entries, k)) << "trial " << trial;
  }
}

TEST(SparseHeapTest, AdversarialTiesKeepSmallestIds) {
  // All values identical: the (value desc, id asc) order must retain
  // exactly the k smallest ids no matter the arrival order.
  TopKCandidateHeap heap(3);
  for (graph::NodeId id : {9u, 1u, 7u, 0u, 8u, 2u, 5u}) {
    heap.Push(0.5, id);
  }
  EXPECT_EQ(heap.SortedIds(), (std::vector<graph::NodeId>{0, 1, 2}));
}

TEST(SparseHeapTest, NeverEvictsAStrictlyBetterCandidate) {
  TopKCandidateHeap heap(2);
  heap.Push(3.0, 10);
  heap.Push(2.0, 20);
  // Worse than both: must be rejected, not swapped in.
  heap.Push(1.0, 1);
  EXPECT_EQ(heap.SortedIds(), (std::vector<graph::NodeId>{10, 20}));
  // Better than the current worst: evicts exactly the worst.
  heap.Push(2.5, 30);
  EXPECT_EQ(heap.SortedIds(), (std::vector<graph::NodeId>{10, 30}));
  // Equal value, higher id than the worst: ranks below it, rejected.
  heap.Push(2.5, 40);
  EXPECT_EQ(heap.SortedIds(), (std::vector<graph::NodeId>{10, 30}));
  // Equal value, lower id than the worst: ranks above it, evicts it.
  heap.Push(2.5, 25);
  EXPECT_EQ(heap.SortedIds(), (std::vector<graph::NodeId>{10, 25}));
}

TEST(SparseHeapTest, UnderfilledAndZeroCapacityEdges) {
  TopKCandidateHeap empty(0);
  empty.Push(1.0, 1);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.SortedIds().empty());

  TopKCandidateHeap heap(5);
  heap.Push(1.0, 2);
  heap.Push(4.0, 1);
  EXPECT_EQ(heap.size(), 2u);
  EXPECT_EQ(heap.SortedIds(), (std::vector<graph::NodeId>{1, 2}));
}

}  // namespace
}  // namespace tends::inference
