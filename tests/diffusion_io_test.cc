#include "diffusion/io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "test_util.h"

namespace tends::diffusion {
namespace {

DiffusionObservations SampleObservations() {
  auto truth = ::tends::testing::MakeGraph(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  return ::tends::testing::SimulateUniform(truth, 0.5, 20, 0.2, 77);
}

TEST(ObservationsIoTest, RoundTrip) {
  DiffusionObservations original = SampleObservations();
  std::stringstream stream;
  ASSERT_TRUE(WriteObservations(original, stream).ok());
  auto parsed = ReadObservations(stream);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->cascades.size(), original.cascades.size());
  for (size_t p = 0; p < original.cascades.size(); ++p) {
    EXPECT_EQ(parsed->cascades[p].sources, original.cascades[p].sources);
    EXPECT_EQ(parsed->cascades[p].infection_time,
              original.cascades[p].infection_time);
  }
  // Derived statuses must agree too.
  for (uint32_t p = 0; p < original.num_processes(); ++p) {
    for (uint32_t v = 0; v < original.num_nodes(); ++v) {
      EXPECT_EQ(parsed->statuses.Get(p, v), original.statuses.Get(p, v));
    }
  }
}

TEST(ObservationsIoTest, RejectsMissingHeader) {
  std::istringstream in("processes 1 nodes 2\n");
  EXPECT_TRUE(ReadObservations(in).status().IsCorruption());
}

TEST(ObservationsIoTest, RejectsBadDimensions) {
  std::istringstream in("# tends-observations v1\nprocesses x nodes 2\n");
  EXPECT_TRUE(ReadObservations(in).status().IsCorruption());
}

TEST(ObservationsIoTest, RejectsTruncation) {
  std::istringstream in(
      "# tends-observations v1\nprocesses 2 nodes 2\nprocess 0\nsources 0\n"
      "times 0 -1\n");
  EXPECT_TRUE(ReadObservations(in).status().IsCorruption());
}

TEST(ObservationsIoTest, RejectsWrongTimeCount) {
  std::istringstream in(
      "# tends-observations v1\nprocesses 1 nodes 3\nprocess 0\nsources 0\n"
      "times 0 -1\n");
  EXPECT_TRUE(ReadObservations(in).status().IsCorruption());
}

TEST(ObservationsIoTest, RejectsSourceOutOfRange) {
  std::istringstream in(
      "# tends-observations v1\nprocesses 1 nodes 2\nprocess 0\nsources 5\n"
      "times 0 -1\n");
  EXPECT_TRUE(ReadObservations(in).status().IsCorruption());
}

TEST(ObservationsIoTest, RejectsSourceWithNonzeroTime) {
  std::istringstream in(
      "# tends-observations v1\nprocesses 1 nodes 2\nprocess 0\nsources 0\n"
      "times 3 -1\n");
  EXPECT_TRUE(ReadObservations(in).status().IsCorruption());
}

TEST(ObservationsIoTest, FileErrors) {
  EXPECT_TRUE(
      ReadObservationsFile("/nonexistent_tends/o.txt").status().IsIoError());
  DiffusionObservations observations = SampleObservations();
  EXPECT_TRUE(WriteObservationsFile(observations, "/nonexistent_tends/o.txt")
                  .IsIoError());
}

TEST(StatusMatrixIoTest, RoundTrip) {
  auto statuses = ::tends::testing::MakeStatuses(
      {{1, 0, 1}, {0, 0, 0}, {1, 1, 1}});
  std::stringstream stream;
  ASSERT_TRUE(WriteStatusMatrix(statuses, stream).ok());
  auto parsed = ReadStatusMatrix(stream);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_processes(), 3u);
  EXPECT_EQ(parsed->num_nodes(), 3u);
  for (uint32_t p = 0; p < 3; ++p) {
    for (uint32_t v = 0; v < 3; ++v) {
      EXPECT_EQ(parsed->Get(p, v), statuses.Get(p, v));
    }
  }
}

TEST(StatusMatrixIoTest, RejectsNonBinaryCell) {
  std::istringstream in("# tends-statuses v1\nprocesses 1 nodes 2\n1 2\n");
  EXPECT_TRUE(ReadStatusMatrix(in).status().IsCorruption());
}

TEST(StatusMatrixIoTest, RejectsShortRow) {
  std::istringstream in("# tends-statuses v1\nprocesses 1 nodes 3\n1 0\n");
  EXPECT_TRUE(ReadStatusMatrix(in).status().IsCorruption());
}

TEST(StatusMatrixIoTest, RejectsMissingRows) {
  std::istringstream in("# tends-statuses v1\nprocesses 2 nodes 2\n1 0\n");
  EXPECT_TRUE(ReadStatusMatrix(in).status().IsCorruption());
}

TEST(StatusMatrixIoTest, StrictErrorsNameLineAndToken) {
  std::istringstream in(
      "# tends-statuses v1\nprocesses 2 nodes 2\n1 0\n1 x\n");
  auto status = ReadStatusMatrix(in).status();
  ASSERT_TRUE(status.IsCorruption());
  EXPECT_NE(status.message().find("line 4"), std::string::npos) << status;
  EXPECT_NE(status.message().find("'x'"), std::string::npos) << status;
}

TEST(StatusMatrixIoTest, PermissiveSkipsCorruptRows) {
  std::istringstream in(
      "# tends-statuses v1\nprocesses 4 nodes 3\n1 0 1\n1 x 0\n0 1\n"
      "0 0 1\n");
  CorruptionReport report;
  auto parsed = ReadStatusMatrix(in, {.mode = IoMode::kPermissive}, &report);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_processes(), 2u);
  EXPECT_EQ(parsed->num_nodes(), 3u);
  EXPECT_EQ(parsed->Get(0, 0), 1);
  EXPECT_EQ(parsed->Get(1, 2), 1);
  EXPECT_EQ(report.count(CorruptionKind::kBadToken), 1u);
  EXPECT_EQ(report.count(CorruptionKind::kWrongWidth), 1u);
  // Only 2 of the declared 4 rows arrived at all; the scan hit EOF.
  EXPECT_EQ(report.count(CorruptionKind::kTruncation), 1u);
  EXPECT_EQ(report.skipped_records(), 2u);
}

TEST(StatusMatrixIoTest, PermissiveToleratesTruncation) {
  std::istringstream in("# tends-statuses v1\nprocesses 3 nodes 2\n1 0\n");
  CorruptionReport report;
  auto parsed = ReadStatusMatrix(in, {.mode = IoMode::kPermissive}, &report);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_processes(), 1u);
  EXPECT_EQ(report.count(CorruptionKind::kTruncation), 1u);
  EXPECT_EQ(report.stats(CorruptionKind::kTruncation).first_line, 0u);
}

TEST(StatusMatrixIoTest, PermissiveStillFailsWithNoSurvivingRows) {
  std::istringstream in("# tends-statuses v1\nprocesses 2 nodes 2\nx y\n");
  CorruptionReport report;
  EXPECT_TRUE(ReadStatusMatrix(in, {.mode = IoMode::kPermissive}, &report)
                  .status()
                  .IsCorruption());
  EXPECT_FALSE(report.empty());
}

TEST(ObservationsIoTest, StrictErrorsNameLineAndToken) {
  std::istringstream in(
      "# tends-observations v1\nprocesses 1 nodes 2\nprocess 0\n"
      "sources q\ntimes 0 -1\n");
  auto status = ReadObservations(in).status();
  ASSERT_TRUE(status.IsCorruption());
  EXPECT_NE(status.message().find("line 4"), std::string::npos) << status;
  EXPECT_NE(status.message().find("'q'"), std::string::npos) << status;
}

TEST(ObservationsIoTest, PermissiveSkipsCorruptBlocksAndResyncs) {
  std::istringstream in(
      "# tends-observations v1\nprocesses 3 nodes 2\n"
      "process 0\nsources 0\ntimes 0 1\n"
      "process 1\nsources 9\ntimes 0 1\n"   // source out of range
      "process 2\nsources 1\ntimes 1 0\n"); // fine
  CorruptionReport report;
  auto parsed = ReadObservations(in, {.mode = IoMode::kPermissive}, &report);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->cascades.size(), 2u);
  EXPECT_EQ(parsed->cascades[0].sources, std::vector<graph::NodeId>{0});
  EXPECT_EQ(parsed->cascades[1].sources, std::vector<graph::NodeId>{1});
  EXPECT_EQ(report.count(CorruptionKind::kOutOfRange), 1u);
  EXPECT_EQ(report.skipped_records(), 1u);
  // Derived statuses cover only the surviving processes.
  EXPECT_EQ(parsed->statuses.num_processes(), 2u);
}

TEST(ObservationsIoTest, PermissiveToleratesHeaderDamage) {
  std::istringstream in(
      "## zends-observations v?\nprocesses 1 nodes 2\n"
      "process 0\nsources 0\ntimes 0 -1\n");
  CorruptionReport report;
  auto parsed = ReadObservations(in, {.mode = IoMode::kPermissive}, &report);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->cascades.size(), 1u);
  EXPECT_EQ(report.count(CorruptionKind::kBadStructure), 1u);
}

TEST(ObservationsIoTest, PermissiveStillFailsWithNoSurvivingBlocks) {
  std::istringstream in(
      "# tends-observations v1\nprocesses 1 nodes 2\nprocess 0\n"
      "sources 0\ntimes 7 7\n");  // source time inconsistent -> block dropped
  CorruptionReport report;
  EXPECT_TRUE(ReadObservations(in, {.mode = IoMode::kPermissive}, &report)
                  .status()
                  .IsCorruption());
  EXPECT_FALSE(report.empty());
}

}  // namespace
}  // namespace tends::diffusion
