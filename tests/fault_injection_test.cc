// Fault-injection harness: drives the full simulate → write → corrupt →
// read → infer → evaluate path through truncation, bit flips and garbage
// tokens. Strict reads must fail with a Corruption status naming the
// offending line; permissive reads must complete end-to-end on whatever
// survived, with a non-empty CorruptionReport — and nothing may crash.

#include "common/fault_injection.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/io_hardening.h"
#include "diffusion/io.h"
#include "diffusion/simulator.h"
#include "inference/tends.h"
#include "metrics/fscore.h"
#include "test_util.h"

namespace tends {
namespace {

graph::DirectedGraph Truth() {
  return testing::MakeGraph(10, {{0, 1},
                                 {1, 2},
                                 {2, 3},
                                 {3, 4},
                                 {4, 5},
                                 {5, 6},
                                 {6, 7},
                                 {7, 8},
                                 {8, 9},
                                 {9, 0},
                                 {0, 5},
                                 {2, 7}});
}

std::string CleanObservationsPayload(
    diffusion::DiffusionObservations* observations_out = nullptr) {
  auto truth = Truth();
  auto observations = testing::SimulateUniform(truth, 0.5, 120, 0.2, 90210);
  std::ostringstream out;
  EXPECT_TRUE(diffusion::WriteObservations(observations, out).ok());
  if (observations_out != nullptr) *observations_out = observations;
  return out.str();
}

std::string CleanStatusesPayload() {
  auto truth = Truth();
  auto observations = testing::SimulateUniform(truth, 0.5, 120, 0.2, 90210);
  std::ostringstream out;
  EXPECT_TRUE(diffusion::WriteStatusMatrix(observations.statuses, out).ok());
  return out.str();
}

TEST(FaultInjectionTest, CorruptionIsDeterministicPerSeed) {
  const std::string payload = CleanStatusesPayload();
  FaultInjectionOptions options;
  options.seed = 17;
  options.bit_flip_rate = 0.01;
  options.garbage_token_rate = 0.2;
  EXPECT_EQ(CorruptPayload(payload, options),
            CorruptPayload(payload, options));
  FaultInjectionOptions other = options;
  other.seed = 18;
  EXPECT_NE(CorruptPayload(payload, options), CorruptPayload(payload, other));
}

TEST(FaultInjectionTest, TruncationCutsAtTheConfiguredByte) {
  const std::string payload = CleanStatusesPayload();
  FaultInjectionOptions options;
  options.truncate_at_byte = 10;
  EXPECT_EQ(CorruptPayload(payload, options), payload.substr(0, 10));
}

TEST(FaultInjectionTest, StreamServesShortChunksFaithfully) {
  // No corruption configured: awkward buffer boundaries alone must never
  // change what a reader sees.
  const std::string payload = CleanStatusesPayload();
  FaultInjectionOptions options;
  options.max_read_chunk = 1;
  FaultInjectingStream in(payload, options);
  EXPECT_EQ(in.corrupted(), payload);
  auto parsed = diffusion::ReadStatusMatrix(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_processes(), 120u);
  EXPECT_EQ(parsed->num_nodes(), 10u);
}

TEST(FaultInjectionTest, MidLineTruncationNamesTheLineInStrictMode) {
  const std::string payload = CleanObservationsPayload();
  FaultInjectionOptions options;
  options.truncate_at_byte = payload.size() * 3 / 5;
  // Make sure the cut lands mid-line so the damaged row itself is visible.
  ASSERT_NE(payload[options.truncate_at_byte - 1], '\n');

  FaultInjectingStream strict_in(payload, options);
  auto strict = diffusion::ReadObservations(strict_in);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsCorruption());
  EXPECT_NE(strict.status().message().find("line"), std::string::npos)
      << strict.status();

  FaultInjectingStream permissive_in(payload, options);
  CorruptionReport report;
  auto permissive = diffusion::ReadObservations(
      permissive_in, {.mode = IoMode::kPermissive}, &report);
  ASSERT_TRUE(permissive.ok()) << permissive.status();
  EXPECT_FALSE(report.empty());
  EXPECT_GT(report.count(CorruptionKind::kTruncation) +
                report.count(CorruptionKind::kWrongWidth),
            0u);
  EXPECT_GT(permissive->cascades.size(), 0u);
  EXPECT_LT(permissive->cascades.size(), 120u);
}

TEST(FaultInjectionTest, GarbageTokensAreSkippedRowByRowInPermissiveMode) {
  const std::string payload = CleanStatusesPayload();
  FaultInjectionOptions options;
  options.seed = 5;
  options.garbage_token_rate = 0.3;

  FaultInjectingStream strict_in(payload, options);
  auto strict = diffusion::ReadStatusMatrix(strict_in);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsCorruption());
  EXPECT_NE(strict.status().message().find("line"), std::string::npos)
      << strict.status();

  FaultInjectingStream permissive_in(payload, options);
  CorruptionReport report;
  auto permissive = diffusion::ReadStatusMatrix(
      permissive_in, {.mode = IoMode::kPermissive}, &report);
  ASSERT_TRUE(permissive.ok()) << permissive.status();
  EXPECT_FALSE(report.empty());
  EXPECT_GT(report.skipped_records(), 0u);
  EXPECT_LT(permissive->num_processes(), 120u);
  EXPECT_GT(permissive->num_processes(), 0u);
  EXPECT_EQ(permissive->num_nodes(), 10u);
  EXPECT_NE(report.Summary().find("corruption report:"), std::string::npos);
}

struct FaultCase {
  const char* name;
  FaultInjectionOptions options;
};

class FaultPipelineTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultPipelineTest, PermissiveReadCompletesTheFullPipeline) {
  // simulate → write → corrupt → read (permissive) → infer → evaluate.
  diffusion::DiffusionObservations clean;
  const std::string payload = CleanObservationsPayload(&clean);
  const FaultInjectionOptions& fault = GetParam().options;

  FaultInjectingStream in(payload, fault);
  CorruptionReport report;
  auto recovered =
      diffusion::ReadObservations(in, {.mode = IoMode::kPermissive}, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(report.empty()) << GetParam().name;
  ASSERT_GT(recovered->cascades.size(), 0u);
  EXPECT_LE(recovered->cascades.size(), clean.cascades.size());

  // Dropped processes can leave a node uninfected everywhere; run TENDS in
  // best-effort mode on whatever survived.
  inference::TendsOptions tends_options;
  tends_options.reject_degenerate_columns = false;
  inference::Tends tends(tends_options);
  auto inferred = tends.Infer(*recovered);
  ASSERT_TRUE(inferred.ok()) << inferred.status();
  EXPECT_EQ(inferred->num_nodes(), 10u);

  metrics::EdgeMetrics metrics = metrics::EvaluateEdges(*inferred, Truth());
  EXPECT_GE(metrics.f_score, 0.0);
  EXPECT_LE(metrics.f_score, 1.0);
}

TEST_P(FaultPipelineTest, StrictReadFailsWithCorruption) {
  const std::string payload = CleanObservationsPayload();
  FaultInjectingStream in(payload, GetParam().options);
  auto result = diffusion::ReadObservations(in);
  ASSERT_FALSE(result.ok()) << GetParam().name;
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
}

INSTANTIATE_TEST_SUITE_P(
    Faults, FaultPipelineTest,
    ::testing::Values(
        FaultCase{"truncation", {.seed = 1, .truncate_at_byte = 2000}},
        FaultCase{"bit_flips", {.seed = 11, .bit_flip_rate = 0.002}},
        FaultCase{"garbage_tokens", {.seed = 7, .garbage_token_rate = 0.15}},
        FaultCase{"combined",
                  {.seed = 23,
                   .bit_flip_rate = 0.001,
                   .garbage_token_rate = 0.1,
                   .truncate_at_byte = 5000}}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace tends
