#include "common/trace.h"

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace tends {
namespace {

TEST(TracerTest, RecordsSpansInStartOrder) {
  Tracer tracer;
  tracer.Record("b", -1, 0, 200, 10);
  tracer.Record("a", -1, 0, 100, 10);
  tracer.Record("c", -1, 0, 300, 10);
  std::vector<TraceSpan> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "a");
  EXPECT_STREQ(spans[1].name, "b");
  EXPECT_STREQ(spans[2].name, "c");
  // Drain moves the spans out.
  EXPECT_TRUE(tracer.Drain().empty());
}

TEST(TracerTest, ScopedSpanNestingTracksDepth) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    {
      ScopedSpan inner(&tracer, "inner", 7);
      { ScopedSpan innermost(&tracer, "innermost"); }
    }
    { ScopedSpan sibling(&tracer, "sibling"); }
  }
  std::vector<TraceSpan> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 4u);
  // Inner spans close (and record) before outer ones, but Drain orders by
  // start time: outer, inner, innermost, sibling.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[1].detail, 7);
  EXPECT_STREQ(spans[2].name, "innermost");
  EXPECT_EQ(spans[2].depth, 2u);
  EXPECT_STREQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[3].depth, 1u);
  // Containment: children start no earlier and end no later than parents.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].duration_ns,
            spans[0].start_ns + spans[0].duration_ns);
}

TEST(TracerTest, NullTracerIsDisabled) {
  // Must not crash or allocate; depth bookkeeping must stay balanced.
  { ScopedSpan span(nullptr, "ignored"); }
  Tracer tracer;
  { ScopedSpan span(&tracer, "real"); }
  std::vector<TraceSpan> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].depth, 0u);
}

TEST(TracerTest, ThreadsGetDistinctIndices) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span(&tracer, "work", i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tracer.num_threads(), static_cast<uint32_t>(kThreads));
  EXPECT_EQ(tracer.dropped(), 0u);
  std::vector<TraceSpan> spans = tracer.Drain();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads) * kSpansPerThread);
  std::vector<int> per_thread(kThreads, 0);
  for (const TraceSpan& span : spans) {
    ASSERT_LT(span.thread_index, static_cast<uint32_t>(kThreads));
    ++per_thread[span.thread_index];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[t], kSpansPerThread);
  }
}

TEST(TracerTest, SummariesAggregateByName) {
  Tracer tracer;
  tracer.Record("x", -1, 0, 0, 10);
  tracer.Record("y", -1, 0, 5, 20);
  tracer.Record("x", -1, 0, 30, 30);
  std::vector<TraceSummary> summaries = tracer.Summaries();
  ASSERT_EQ(summaries.size(), 2u);
  auto find = [&](const char* name) -> const TraceSummary* {
    for (const auto& s : summaries) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const TraceSummary* x = find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->count, 2u);
  EXPECT_EQ(x->total_ns, 40u);
  const TraceSummary* y = find("y");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->count, 1u);
  EXPECT_EQ(y->total_ns, 20u);
  // Summaries does not drain.
  EXPECT_EQ(tracer.Drain().size(), 3u);
}

TEST(TracerTest, PerThreadCapCountsDropsInsteadOfGrowing) {
  Tracer tracer;
  const size_t extra = 100;
  for (size_t i = 0; i < Tracer::kMaxSpansPerThread + extra; ++i) {
    tracer.Record("flood", -1, 0, static_cast<int64_t>(i), 1);
  }
  EXPECT_EQ(tracer.dropped(), extra);
  EXPECT_EQ(tracer.Drain().size(), Tracer::kMaxSpansPerThread);
}

TEST(TracerTest, TwoTracersOnOneThreadDoNotAlias) {
  Tracer first;
  first.Record("a", -1, 0, 0, 1);
  Tracer second;
  second.Record("b", -1, 0, 0, 1);
  first.Record("a2", -1, 0, 5, 1);
  std::vector<TraceSpan> first_spans = first.Drain();
  std::vector<TraceSpan> second_spans = second.Drain();
  ASSERT_EQ(first_spans.size(), 2u);
  ASSERT_EQ(second_spans.size(), 1u);
  EXPECT_STREQ(second_spans[0].name, "b");
}

}  // namespace
}  // namespace tends
