#include "inference/parent_search.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "inference/local_score.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::MakeStatuses;

// ------------------------------------------------------ ForEachCombination

TEST(ForEachCombinationTest, EnumeratesAllSubsetsUpToSize) {
  std::vector<graph::NodeId> candidates = {3, 7, 9, 12};
  std::vector<std::vector<graph::NodeId>> seen;
  ForEachCombination(candidates, 2, [&](const std::vector<graph::NodeId>& w) {
    seen.push_back(w);
  });
  // C(4,1) + C(4,2) = 4 + 6 = 10.
  EXPECT_EQ(seen.size(), 10u);
  std::set<std::vector<graph::NodeId>> distinct(seen.begin(), seen.end());
  EXPECT_EQ(distinct.size(), 10u);
  // Size-1 subsets come first, in candidate order.
  EXPECT_EQ(seen[0], std::vector<graph::NodeId>{3});
  EXPECT_EQ(seen[3], std::vector<graph::NodeId>{12});
  EXPECT_EQ(seen[4], (std::vector<graph::NodeId>{3, 7}));
}

TEST(ForEachCombinationTest, MaxSizeClampedToCandidateCount) {
  std::vector<graph::NodeId> candidates = {1, 2};
  int count = 0;
  ForEachCombination(candidates, 10,
                     [&](const std::vector<graph::NodeId>&) { ++count; });
  EXPECT_EQ(count, 3);  // {1}, {2}, {1,2}
}

TEST(ForEachCombinationTest, EmptyCandidates) {
  int count = 0;
  ForEachCombination({}, 3,
                     [&](const std::vector<graph::NodeId>&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ForEachCombinationTest, FullPowerSetMinusEmpty) {
  std::vector<graph::NodeId> candidates = {0, 1, 2, 3, 4};
  int count = 0;
  ForEachCombination(candidates, 5,
                     [&](const std::vector<graph::NodeId>&) { ++count; });
  EXPECT_EQ(count, 31);  // 2^5 - 1
}

// ------------------------------------------------------------- FindParents

// Deterministic planted data: child (node 0) = OR of parents 1 and 2;
// nodes 3, 4 are independent noise.
diffusion::StatusMatrix PlantedOrData(uint32_t beta, uint64_t seed) {
  Rng rng(seed);
  diffusion::StatusMatrix statuses(beta, 5);
  for (uint32_t p = 0; p < beta; ++p) {
    uint8_t p1 = rng.NextBernoulli(0.5);
    uint8_t p2 = rng.NextBernoulli(0.5);
    statuses.Set(p, 1, p1);
    statuses.Set(p, 2, p2);
    statuses.Set(p, 0, p1 | p2);
    statuses.Set(p, 3, rng.NextBernoulli(0.5));
    statuses.Set(p, 4, rng.NextBernoulli(0.5));
  }
  return statuses;
}

TEST(FindParentsTest, RecoversPlantedParents) {
  auto statuses = PlantedOrData(200, 42);
  ParentSearchOptions options;
  ParentSearchResult result = FindParents(statuses, 0, {1, 2, 3, 4}, options);
  EXPECT_EQ(result.parents, (std::vector<graph::NodeId>{1, 2}));
  EXPECT_GT(result.score, result.empty_score);
}

TEST(FindParentsTest, EmptyCandidatesYieldEmptyResult) {
  auto statuses = PlantedOrData(50, 1);
  ParentSearchResult result = FindParents(statuses, 0, {}, {});
  EXPECT_TRUE(result.parents.empty());
  EXPECT_DOUBLE_EQ(result.score, result.empty_score);
  EXPECT_EQ(result.combinations_considered, 0u);
}

TEST(FindParentsTest, NoiseCandidatesAreNotAdded) {
  auto statuses = PlantedOrData(300, 7);
  ParentSearchOptions options;
  ParentSearchResult result = FindParents(statuses, 0, {3, 4}, options);
  // Pure-noise candidates should not beat the empty set... they may add a
  // tiny spurious correlation on finite data, so allow at most one.
  EXPECT_LE(result.parents.size(), 1u);
}

TEST(FindParentsTest, ScoreIsConsistentWithLocalScore) {
  auto statuses = PlantedOrData(150, 9);
  ParentSearchOptions options;
  ParentSearchResult result = FindParents(statuses, 0, {1, 2, 3}, options);
  EXPECT_NEAR(result.score, LocalScoreFor(statuses, 0, result.parents), 1e-9);
}

TEST(FindParentsTest, MaxParentsCapsGrowth) {
  auto statuses = PlantedOrData(200, 11);
  ParentSearchOptions options;
  options.max_parents = 1;
  ParentSearchResult result = FindParents(statuses, 0, {1, 2, 3, 4}, options);
  EXPECT_LE(result.parents.size(), 1u);
}

TEST(FindParentsTest, StaticModeAddsRankedCombinations) {
  auto statuses = PlantedOrData(200, 13);
  ParentSearchOptions options;
  options.greedy_mode = GreedyMode::kStaticAlgorithm1;
  ParentSearchResult result = FindParents(statuses, 0, {1, 2, 3, 4}, options);
  // The literal Algorithm-1 reading merges every admitted combination while
  // the Theorem-2 bound holds, so the planted parents must be included.
  EXPECT_TRUE(std::binary_search(result.parents.begin(), result.parents.end(),
                                 1u));
  EXPECT_TRUE(std::binary_search(result.parents.begin(), result.parents.end(),
                                 2u));
}

TEST(FindParentsTest, AdaptiveStopsWhenNothingImproves) {
  // Child constant 1: no parent can improve over the empty set (likelihood
  // is already perfect; any parent only adds penalty).
  diffusion::StatusMatrix statuses(60, 3);
  Rng rng(17);
  for (uint32_t p = 0; p < 60; ++p) {
    statuses.Set(p, 0, 1);
    statuses.Set(p, 1, rng.NextBernoulli(0.5));
    statuses.Set(p, 2, rng.NextBernoulli(0.5));
  }
  ParentSearchResult result = FindParents(statuses, 0, {1, 2}, {});
  EXPECT_TRUE(result.parents.empty());
}

TEST(FindParentsTest, ResultIsSorted) {
  auto statuses = PlantedOrData(250, 19);
  ParentSearchResult result = FindParents(statuses, 0, {4, 2, 1, 3}, {});
  EXPECT_TRUE(std::is_sorted(result.parents.begin(), result.parents.end()));
}

TEST(FindParentsTest, DeterministicAcrossRuns) {
  auto statuses = PlantedOrData(150, 23);
  ParentSearchResult a = FindParents(statuses, 0, {1, 2, 3, 4}, {});
  ParentSearchResult b = FindParents(statuses, 0, {1, 2, 3, 4}, {});
  EXPECT_EQ(a.parents, b.parents);
  EXPECT_DOUBLE_EQ(a.score, b.score);
  EXPECT_EQ(a.score_evaluations, b.score_evaluations);
}

TEST(FindParentsTest, DiagnosticsArePopulated) {
  auto statuses = PlantedOrData(100, 29);
  ParentSearchOptions options;
  options.max_combination_size = 2;
  ParentSearchResult result = FindParents(statuses, 0, {1, 2, 3}, options);
  // C(3,1) + C(3,2) = 6 combinations enumerated at most.
  EXPECT_LE(result.combinations_considered, 6u);
  EXPECT_GT(result.combinations_considered, 0u);
  EXPECT_GT(result.score_evaluations, 0u);
  EXPECT_GT(result.delta, 0.0);
}

class CombinationSizeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CombinationSizeTest, RecoversOrParentsAtAnyEta) {
  auto statuses = PlantedOrData(300, 31);
  ParentSearchOptions options;
  options.max_combination_size = GetParam();
  ParentSearchResult result = FindParents(statuses, 0, {1, 2, 3, 4}, options);
  EXPECT_EQ(result.parents, (std::vector<graph::NodeId>{1, 2}));
}

INSTANTIATE_TEST_SUITE_P(Eta, CombinationSizeTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace tends::inference
