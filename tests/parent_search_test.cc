#include "inference/parent_search.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "inference/local_score.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::MakeStatuses;

// ------------------------------------------------------ ForEachCombination

TEST(ForEachCombinationTest, EnumeratesAllSubsetsUpToSize) {
  std::vector<graph::NodeId> candidates = {3, 7, 9, 12};
  std::vector<std::vector<graph::NodeId>> seen;
  ForEachCombination(candidates, 2, [&](const std::vector<graph::NodeId>& w) {
    seen.push_back(w);
  });
  // C(4,1) + C(4,2) = 4 + 6 = 10.
  EXPECT_EQ(seen.size(), 10u);
  std::set<std::vector<graph::NodeId>> distinct(seen.begin(), seen.end());
  EXPECT_EQ(distinct.size(), 10u);
  // Size-1 subsets come first, in candidate order.
  EXPECT_EQ(seen[0], std::vector<graph::NodeId>{3});
  EXPECT_EQ(seen[3], std::vector<graph::NodeId>{12});
  EXPECT_EQ(seen[4], (std::vector<graph::NodeId>{3, 7}));
}

TEST(ForEachCombinationTest, MaxSizeClampedToCandidateCount) {
  std::vector<graph::NodeId> candidates = {1, 2};
  int count = 0;
  ForEachCombination(candidates, 10,
                     [&](const std::vector<graph::NodeId>&) { ++count; });
  EXPECT_EQ(count, 3);  // {1}, {2}, {1,2}
}

TEST(ForEachCombinationTest, EmptyCandidates) {
  int count = 0;
  ForEachCombination({}, 3,
                     [&](const std::vector<graph::NodeId>&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ForEachCombinationTest, FullPowerSetMinusEmpty) {
  std::vector<graph::NodeId> candidates = {0, 1, 2, 3, 4};
  int count = 0;
  ForEachCombination(candidates, 5,
                     [&](const std::vector<graph::NodeId>&) { ++count; });
  EXPECT_EQ(count, 31);  // 2^5 - 1
}

uint64_t Choose(uint32_t k, uint32_t s) {
  uint64_t c = 1;
  for (uint32_t b = 0; b < s; ++b) c = c * (k - b) / (b + 1);
  return c;
}

TEST(ForEachCombinationTest, VisitCountIsSumOfBinomials) {
  // k = 7 candidates, max size 4: C(7,1)+C(7,2)+C(7,3)+C(7,4) = 98.
  std::vector<graph::NodeId> candidates = {2, 3, 5, 7, 11, 13, 17};
  uint64_t count = 0;
  std::vector<uint64_t> per_size(5, 0);
  ForEachCombination(candidates, 4, [&](const std::vector<graph::NodeId>& w) {
    ++count;
    ++per_size[w.size()];
  });
  EXPECT_EQ(count, 98u);
  for (uint32_t s = 1; s <= 4; ++s) {
    EXPECT_EQ(per_size[s], Choose(7, s)) << "size " << s;
  }
}

TEST(ForEachCombinationTest, VisitsBySizeThenLexicographicOrder) {
  // Within each size the index tuples must advance lexicographically, and
  // all size-s subsets precede every size-(s+1) subset.
  std::vector<graph::NodeId> candidates = {10, 20, 30, 40, 50};
  std::vector<std::vector<graph::NodeId>> seen;
  ForEachCombination(candidates, 4, [&](const std::vector<graph::NodeId>& w) {
    seen.push_back(w);
  });
  ASSERT_FALSE(seen.empty());
  for (size_t v = 1; v < seen.size(); ++v) {
    const auto& prev = seen[v - 1];
    const auto& cur = seen[v];
    if (prev.size() == cur.size()) {
      EXPECT_TRUE(std::lexicographical_compare(prev.begin(), prev.end(),
                                               cur.begin(), cur.end()))
          << "visit " << v;
    } else {
      EXPECT_EQ(prev.size() + 1, cur.size()) << "visit " << v;
    }
  }
  // Each subset preserves candidate order (positions ascending).
  for (const auto& w : seen) {
    EXPECT_TRUE(std::is_sorted(w.begin(), w.end()));
  }
}

// ------------------------------------------------------------- FindParents

// Deterministic planted data: child (node 0) = OR of parents 1 and 2;
// nodes 3, 4 are independent noise.
diffusion::StatusMatrix PlantedOrData(uint32_t beta, uint64_t seed) {
  Rng rng(seed);
  diffusion::StatusMatrix statuses(beta, 5);
  for (uint32_t p = 0; p < beta; ++p) {
    uint8_t p1 = rng.NextBernoulli(0.5);
    uint8_t p2 = rng.NextBernoulli(0.5);
    statuses.Set(p, 1, p1);
    statuses.Set(p, 2, p2);
    statuses.Set(p, 0, p1 | p2);
    statuses.Set(p, 3, rng.NextBernoulli(0.5));
    statuses.Set(p, 4, rng.NextBernoulli(0.5));
  }
  return statuses;
}

TEST(FindParentsTest, RecoversPlantedParents) {
  auto statuses = PlantedOrData(200, 42);
  ParentSearchOptions options;
  ParentSearchResult result = FindParents(statuses, 0, {1, 2, 3, 4}, options);
  EXPECT_EQ(result.parents, (std::vector<graph::NodeId>{1, 2}));
  EXPECT_GT(result.score, result.empty_score);
}

TEST(FindParentsTest, EmptyCandidatesYieldEmptyResult) {
  auto statuses = PlantedOrData(50, 1);
  ParentSearchResult result = FindParents(statuses, 0, {}, {});
  EXPECT_TRUE(result.parents.empty());
  EXPECT_DOUBLE_EQ(result.score, result.empty_score);
  EXPECT_EQ(result.combinations_considered, 0u);
}

TEST(FindParentsTest, NoiseCandidatesAreNotAdded) {
  auto statuses = PlantedOrData(300, 7);
  ParentSearchOptions options;
  ParentSearchResult result = FindParents(statuses, 0, {3, 4}, options);
  // Pure-noise candidates should not beat the empty set... they may add a
  // tiny spurious correlation on finite data, so allow at most one.
  EXPECT_LE(result.parents.size(), 1u);
}

TEST(FindParentsTest, ScoreIsConsistentWithLocalScore) {
  auto statuses = PlantedOrData(150, 9);
  ParentSearchOptions options;
  ParentSearchResult result = FindParents(statuses, 0, {1, 2, 3}, options);
  EXPECT_NEAR(result.score, LocalScoreFor(statuses, 0, result.parents), 1e-9);
}

TEST(FindParentsTest, MaxParentsCapsGrowth) {
  auto statuses = PlantedOrData(200, 11);
  ParentSearchOptions options;
  options.max_parents = 1;
  ParentSearchResult result = FindParents(statuses, 0, {1, 2, 3, 4}, options);
  EXPECT_LE(result.parents.size(), 1u);
}

TEST(FindParentsTest, StaticModeAddsRankedCombinations) {
  auto statuses = PlantedOrData(200, 13);
  ParentSearchOptions options;
  options.greedy_mode = GreedyMode::kStaticAlgorithm1;
  ParentSearchResult result = FindParents(statuses, 0, {1, 2, 3, 4}, options);
  // The literal Algorithm-1 reading merges every admitted combination while
  // the Theorem-2 bound holds, so the planted parents must be included.
  EXPECT_TRUE(std::binary_search(result.parents.begin(), result.parents.end(),
                                 1u));
  EXPECT_TRUE(std::binary_search(result.parents.begin(), result.parents.end(),
                                 2u));
}

TEST(FindParentsTest, AdaptiveStopsWhenNothingImproves) {
  // Child constant 1: no parent can improve over the empty set (likelihood
  // is already perfect; any parent only adds penalty).
  diffusion::StatusMatrix statuses(60, 3);
  Rng rng(17);
  for (uint32_t p = 0; p < 60; ++p) {
    statuses.Set(p, 0, 1);
    statuses.Set(p, 1, rng.NextBernoulli(0.5));
    statuses.Set(p, 2, rng.NextBernoulli(0.5));
  }
  ParentSearchResult result = FindParents(statuses, 0, {1, 2}, {});
  EXPECT_TRUE(result.parents.empty());
}

TEST(FindParentsTest, ResultIsSorted) {
  auto statuses = PlantedOrData(250, 19);
  ParentSearchResult result = FindParents(statuses, 0, {4, 2, 1, 3}, {});
  EXPECT_TRUE(std::is_sorted(result.parents.begin(), result.parents.end()));
}

TEST(FindParentsTest, DeterministicAcrossRuns) {
  auto statuses = PlantedOrData(150, 23);
  ParentSearchResult a = FindParents(statuses, 0, {1, 2, 3, 4}, {});
  ParentSearchResult b = FindParents(statuses, 0, {1, 2, 3, 4}, {});
  EXPECT_EQ(a.parents, b.parents);
  EXPECT_DOUBLE_EQ(a.score, b.score);
  EXPECT_EQ(a.score_evaluations, b.score_evaluations);
}

TEST(FindParentsTest, DiagnosticsArePopulated) {
  auto statuses = PlantedOrData(100, 29);
  ParentSearchOptions options;
  options.max_combination_size = 2;
  ParentSearchResult result = FindParents(statuses, 0, {1, 2, 3}, options);
  // C(3,1) + C(3,2) = 6 combinations enumerated at most.
  EXPECT_LE(result.combinations_considered, 6u);
  EXPECT_GT(result.combinations_considered, 0u);
  EXPECT_GT(result.score_evaluations, 0u);
  EXPECT_GT(result.delta, 0.0);
}

TEST(FindParentsTest, ExpiredContextLeavesValidPartialResult) {
  // An already-expired deadline latches the StopChecker mid-enumeration
  // (the throttled poll fires on its 64th call; 8 candidates at eta = 3
  // yield 92 combinations, comfortably past the stride). The search must
  // wind down — not abort — returning a structurally valid result with
  // `stopped` set and the adaptive greedy phase never entered.
  Rng rng(37);
  diffusion::StatusMatrix statuses(120, 9);
  for (uint32_t p = 0; p < 120; ++p) {
    for (uint32_t v = 0; v < 9; ++v) {
      statuses.Set(p, v, rng.NextBernoulli(0.4));
    }
  }
  std::vector<graph::NodeId> candidates = {1, 2, 3, 4, 5, 6, 7, 8};
  RunContext expired;
  expired.deadline = Deadline::Expired();
  for (CountingKernel kernel :
       {CountingKernel::kPacked, CountingKernel::kNaive}) {
    ParentSearchOptions options;
    options.kernel = kernel;
    ParentSearchResult result =
        FindParents(statuses, 0, candidates, options, expired);
    EXPECT_TRUE(result.stopped);
    // Enumeration was cut short: fewer evaluations than the full 92.
    EXPECT_LT(result.score_evaluations, 92u);
    EXPECT_GT(result.score_evaluations, 0u);
    // Valid partial result: sorted parents, score consistent with them
    // (the greedy loop observed the latch immediately, so F_i is empty and
    // the score is still the empty-set score).
    EXPECT_TRUE(std::is_sorted(result.parents.begin(), result.parents.end()));
    EXPECT_TRUE(result.parents.empty());
    EXPECT_DOUBLE_EQ(result.score, result.empty_score);
  }
}

TEST(FindParentsTest, CancellationTokenStopsSearch) {
  // A pre-cancelled token behaves like an expired deadline: best-so-far
  // result, stopped flag set.
  auto statuses = PlantedOrData(150, 41);
  CancellationToken token;
  token.RequestCancellation();
  RunContext cancelled;
  cancelled.cancellation = &token;
  std::vector<graph::NodeId> candidates = {1, 2, 3, 4};
  ParentSearchResult result = FindParents(statuses, 0, candidates, {},
                                          cancelled);
  // 14 combinations at the default eta = 3 is below the poll stride, so
  // enumeration completes; the unthrottled boundary check still reports
  // the stop before the greedy phase commits to more work.
  EXPECT_TRUE(result.stopped);
  EXPECT_TRUE(std::is_sorted(result.parents.begin(), result.parents.end()));
}

TEST(FindParentsTest, UnconstrainedContextMatchesDefault) {
  // Passing an explicit unconstrained context is bit-identical to the
  // default: the StopChecker never reads the clock and nothing stops.
  auto statuses = PlantedOrData(200, 43);
  RunContext context;
  ParentSearchResult with_context =
      FindParents(statuses, 0, {1, 2, 3, 4}, {}, context);
  ParentSearchResult without = FindParents(statuses, 0, {1, 2, 3, 4}, {});
  EXPECT_FALSE(with_context.stopped);
  EXPECT_EQ(with_context.parents, without.parents);
  EXPECT_DOUBLE_EQ(with_context.score, without.score);
  EXPECT_EQ(with_context.score_evaluations, without.score_evaluations);
}

class CombinationSizeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CombinationSizeTest, RecoversOrParentsAtAnyEta) {
  auto statuses = PlantedOrData(300, 31);
  ParentSearchOptions options;
  options.max_combination_size = GetParam();
  ParentSearchResult result = FindParents(statuses, 0, {1, 2, 3, 4}, options);
  EXPECT_EQ(result.parents, (std::vector<graph::NodeId>{1, 2}));
}

INSTANTIATE_TEST_SUITE_P(Eta, CombinationSizeTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace tends::inference
