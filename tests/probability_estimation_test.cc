#include "inference/probability_estimation.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "diffusion/propagation.h"
#include "inference/tends.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::MakeGraph;
using ::tends::testing::MakeStatuses;

TEST(ProbabilityEstimationTest, ValidatesInputs) {
  diffusion::StatusMatrix empty;
  InferredNetwork network(0);
  EXPECT_FALSE(EstimatePropagationProbabilities(empty, network).ok());

  auto statuses = MakeStatuses({{1, 0}});
  InferredNetwork mismatched(3);
  EXPECT_FALSE(EstimatePropagationProbabilities(statuses, mismatched).ok());
}

TEST(ProbabilityEstimationTest, HandComputedSingleParent) {
  // Edge 1 -> 0. Node 1 infected in 4 processes; node 0 infected in 3 of
  // them. No co-parents, so the isolated estimate = (3+1)/(4+2).
  auto statuses = MakeStatuses({
      {1, 1}, {1, 1}, {1, 1}, {0, 1}, {0, 0},
  });
  InferredNetwork network(2);
  network.AddEdge(1, 0);
  auto estimates = EstimatePropagationProbabilities(statuses, network);
  ASSERT_TRUE(estimates.ok());
  ASSERT_EQ(estimates->size(), 1u);
  EXPECT_EQ((*estimates)[0].support, 4u);
  EXPECT_NEAR((*estimates)[0].probability, 4.0 / 6.0, 1e-12);
}

TEST(ProbabilityEstimationTest, CoParentConditioningIsolatesInfluence) {
  // Node 0 has parents 1 and 2. Parent 2 always infects; parent 1 never
  // does. The isolated estimate for edge (1 -> 0) only uses processes
  // where 2 is uninfected.
  auto statuses = MakeStatuses({
      {1, 1, 1},  // both parents infected
      {1, 0, 1},  // only parent 2
      {0, 1, 0},  // only parent 1, child uninfected
      {0, 1, 0},
      {0, 1, 0},
  });
  InferredNetwork network(3);
  network.AddEdge(1, 0);
  network.AddEdge(2, 0);
  auto estimates = EstimatePropagationProbabilities(statuses, network);
  ASSERT_TRUE(estimates.ok());
  ASSERT_EQ(estimates->size(), 2u);
  // Edge 1 -> 0: isolated processes are the three {0,1,0} rows.
  EXPECT_EQ((*estimates)[0].support, 3u);
  EXPECT_NEAR((*estimates)[0].probability, (0 + 1.0) / (3 + 2.0), 1e-12);
  // Edge 2 -> 0: isolated processes are the two where 1 is uninfected...
  EXPECT_EQ((*estimates)[1].support, 1u);
}

TEST(ProbabilityEstimationTest, FallsBackToPairEstimate) {
  // Parents 1 and 2 are always co-infected: no isolated processes exist
  // for either edge, so the pair estimate is used (support = 0).
  auto statuses = MakeStatuses({
      {1, 1, 1}, {1, 1, 1}, {0, 1, 1}, {0, 0, 0},
  });
  InferredNetwork network(3);
  network.AddEdge(1, 0);
  network.AddEdge(2, 0);
  auto estimates = EstimatePropagationProbabilities(statuses, network);
  ASSERT_TRUE(estimates.ok());
  EXPECT_EQ((*estimates)[0].support, 0u);
  // P(0=1 | 1=1) with smoothing = (2+1)/(3+2).
  EXPECT_NEAR((*estimates)[0].probability, 3.0 / 5.0, 1e-12);
}

TEST(ProbabilityEstimationTest, NeverInfectedParentGetsPrior) {
  auto statuses = MakeStatuses({{0, 0}, {1, 0}});
  InferredNetwork network(2);
  network.AddEdge(1, 0);  // parent 1 never infected
  auto estimates = EstimatePropagationProbabilities(statuses, network);
  ASSERT_TRUE(estimates.ok());
  EXPECT_DOUBLE_EQ((*estimates)[0].probability, 0.5);
}

TEST(ProbabilityEstimationTest, RecoversSimulatedProbabilityOrdering) {
  // Two independent edges with very different true probabilities; the
  // estimates should preserve the ordering (and be in the right ballpark).
  auto truth = MakeGraph(4, {{0, 1}, {2, 3}});
  Rng rng(9);
  diffusion::EdgeProbabilities probabilities =
      diffusion::EdgeProbabilities::Uniform(truth, 0.0);
  // Hand-assign: p(0->1) = 0.8, p(2->3) = 0.2 by regenerating via Gaussian
  // with zero stddev around per-edge means is not supported; instead use
  // two separate simulations and merge? Simpler: run with uniform 0.8 and
  // check the estimate lands near 0.8.
  probabilities = diffusion::EdgeProbabilities::Uniform(truth, 0.8);
  diffusion::SimulationConfig config;
  config.num_processes = 400;
  config.initial_infection_ratio = 0.25;
  auto observations = diffusion::Simulate(truth, probabilities, config, rng);
  ASSERT_TRUE(observations.ok());
  InferredNetwork network(4);
  network.AddEdge(0, 1);
  network.AddEdge(2, 3);
  auto estimates =
      EstimatePropagationProbabilities(observations->statuses, network);
  ASSERT_TRUE(estimates.ok());
  for (const auto& estimate : *estimates) {
    // The status-only estimate is upward-biased by indirect effects (here
    // none: node 1/3 can only be infected by its parent or as a source).
    // Sources inflate it, so allow a generous band around 0.8.
    EXPECT_GT(estimate.probability, 0.6);
    EXPECT_LT(estimate.probability, 1.0);
  }
}

}  // namespace
}  // namespace tends::inference
