#include "inference/netinf.h"

#include <gtest/gtest.h>

#include "inference/multree.h"
#include "metrics/fscore.h"
#include "test_util.h"

namespace tends::inference {
namespace {

using ::tends::testing::MakeGraph;
using ::tends::testing::SimulateUniform;

TEST(NetInfTest, RequiresEdgeCountAndCascades) {
  NetInf no_edges({});
  diffusion::DiffusionObservations empty;
  EXPECT_FALSE(no_edges.Infer(empty).ok());
  NetInfOptions options;
  options.num_edges = 3;
  NetInf no_cascades(options);
  EXPECT_FALSE(no_cascades.Infer(empty).ok());
}

TEST(NetInfTest, RecoversChain) {
  auto truth = MakeGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  auto observations = SimulateUniform(truth, 0.6, 400, 0.17, 51);
  NetInfOptions options;
  options.num_edges = truth.num_edges();
  NetInf netinf(options);
  auto inferred = netinf.Infer(observations);
  ASSERT_TRUE(inferred.ok()) << inferred.status();
  metrics::EdgeMetrics metrics = metrics::EvaluateEdges(*inferred, truth);
  EXPECT_GT(metrics.f_score, 0.5) << metrics.DebugString();
}

TEST(NetInfTest, StopsWhenEverythingExplained) {
  // A single edge explains all infections of node 1; once selected, no
  // further edge has positive gain, so NetInf may stop below the budget.
  auto truth = MakeGraph(2, {{0, 1}});
  auto observations = SimulateUniform(truth, 0.9, 100, 0.5, 53);
  NetInfOptions options;
  options.num_edges = 50;  // far above what can be explained
  NetInf netinf(options);
  auto inferred = netinf.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  EXPECT_LT(inferred->num_edges(), 50u);
}

TEST(NetInfTest, GainsAreNonIncreasing) {
  auto truth = MakeGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  auto observations = SimulateUniform(truth, 0.6, 200, 0.17, 55);
  NetInfOptions options;
  options.num_edges = 10;
  NetInf netinf(options);
  auto inferred = netinf.Infer(observations);
  ASSERT_TRUE(inferred.ok());
  const auto& edges = inferred->edges();
  for (size_t e = 1; e < edges.size(); ++e) {
    EXPECT_GE(edges[e - 1].weight, edges[e].weight - 1e-9);
  }
}

TEST(NetInfTest, DeterministicOnSameObservations) {
  auto truth = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto observations = SimulateUniform(truth, 0.5, 150, 0.2, 57);
  NetInfOptions options;
  options.num_edges = 4;
  NetInf a(options), b(options);
  auto r1 = a.Infer(observations);
  auto r2 = b.Infer(observations);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->num_edges(), r2->num_edges());
  for (size_t e = 0; e < r1->num_edges(); ++e) {
    EXPECT_EQ(r1->edges()[e].edge, r2->edges()[e].edge);
  }
}

TEST(NetInfTest, MulTreeConsidersRedundantParentsNetInfDoesNot) {
  // Diamond: 0 -> {1,2} -> 3. With high transmission, node 3 usually has
  // two time-respecting explanations. NetInf's best-tree objective gains
  // nothing from the second one, MulTree's all-trees objective does, so
  // with budget 4 MulTree should recover at least as many diamond edges.
  auto truth = MakeGraph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  auto observations = SimulateUniform(truth, 0.8, 500, 0.25, 59);
  MulTreeOptions multree_options;
  multree_options.num_edges = 4;
  NetInfOptions netinf_options;
  netinf_options.num_edges = 4;
  MulTree multree(multree_options);
  NetInf netinf(netinf_options);
  auto multree_result = multree.Infer(observations);
  auto netinf_result = netinf.Infer(observations);
  ASSERT_TRUE(multree_result.ok() && netinf_result.ok());
  double multree_f = metrics::EvaluateEdges(*multree_result, truth).f_score;
  double netinf_f = metrics::EvaluateEdges(*netinf_result, truth).f_score;
  EXPECT_GE(multree_f + 1e-9, netinf_f);
}

}  // namespace
}  // namespace tends::inference
