// Viral-marketing scenario: learn the influence graph of a social platform
// from campaign outcomes, then pick seed users for the next campaign.
//
// The platform ran many past campaigns; for each it only knows which users
// eventually adopted (final statuses), not when or through whom. The
// example:
//   1. builds a scale-free "who influences whom" network (Barabasi-Albert),
//   2. simulates past campaigns (Independent Cascade adoptions),
//   3. reconstructs the influence topology with TENDS from adoption
//      statuses only,
//   4. estimates per-edge adoption probabilities on the inferred graph and
//      greedily selects seed users by expected spread (Monte-Carlo IC on
//      the *inferred* network), comparing their true influence against
//      random and degree-based seeding on the *real* network.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "common/random.h"
#include "diffusion/ic_model.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "graph/generators/barabasi_albert.h"
#include "graph/stats.h"
#include "inference/probability_estimation.h"
#include "inference/tends.h"
#include "metrics/fscore.h"

namespace {

using namespace tends;

// Average number of adopters when seeding `seeds` on `network` with the
// given edge probabilities (Monte-Carlo over IC runs).
double ExpectedSpread(const graph::DirectedGraph& network,
                      const diffusion::EdgeProbabilities& probabilities,
                      const std::vector<graph::NodeId>& seeds,
                      uint32_t simulations, uint64_t seed) {
  diffusion::IndependentCascadeModel model(network, probabilities);
  Rng rng(seed);
  double total = 0.0;
  for (uint32_t s = 0; s < simulations; ++s) {
    Rng run_rng = rng.Fork(s);
    auto cascade = model.Run(seeds, run_rng);
    total += cascade.ok() ? cascade->NumInfected() : 0;
  }
  return total / simulations;
}

}  // namespace

int main() {
  // 1. Ground-truth influence network (hidden from the marketer).
  Rng rng(77);
  auto influence_or = graph::GenerateBarabasiAlbert(
      {.num_nodes = 200, .edges_per_node = 2, .bidirectional = true}, rng);
  if (!influence_or.ok()) {
    std::cerr << "network generation failed: " << influence_or.status()
              << "\n";
    return EXIT_FAILURE;
  }
  const graph::DirectedGraph influence = std::move(influence_or).value();
  std::cout << "Hidden influence network: "
            << graph::ComputeStats(influence).DebugString() << "\n";

  // 2. 250 past campaigns, each seeded at 10% random users.
  auto adoption =
      diffusion::EdgeProbabilities::Gaussian(influence, 0.25, 0.05, rng);
  diffusion::SimulationConfig campaigns;
  campaigns.num_processes = 250;
  campaigns.initial_infection_ratio = 0.10;
  auto history_or = diffusion::Simulate(influence, adoption, campaigns, rng);
  if (!history_or.ok()) {
    std::cerr << "simulation failed: " << history_or.status() << "\n";
    return EXIT_FAILURE;
  }
  const diffusion::DiffusionObservations history =
      std::move(history_or).value();
  std::cout << "Observed final adoptions of " << history.num_processes()
            << " past campaigns\n";

  // 3. Reconstruct the influence topology from adoption statuses.
  inference::Tends tends;
  auto inferred_or = tends.InferFromStatuses(history.statuses);
  if (!inferred_or.ok()) {
    std::cerr << "inference failed: " << inferred_or.status() << "\n";
    return EXIT_FAILURE;
  }
  const inference::InferredNetwork inferred = std::move(inferred_or).value();
  metrics::EdgeMetrics accuracy = metrics::EvaluateEdges(inferred, influence);
  std::cout << "Reconstruction: " << accuracy.DebugString() << "\n";

  // 4a. Estimate adoption probabilities on the inferred edges and build a
  //     working model of the platform.
  auto estimates_or = inference::EstimatePropagationProbabilities(
      history.statuses, inferred);
  if (!estimates_or.ok()) {
    std::cerr << "estimation failed: " << estimates_or.status() << "\n";
    return EXIT_FAILURE;
  }
  auto model_graph_or = inferred.ToGraph();
  if (!model_graph_or.ok()) {
    std::cerr << "inferred graph invalid: " << model_graph_or.status() << "\n";
    return EXIT_FAILURE;
  }
  const graph::DirectedGraph model_graph = std::move(model_graph_or).value();
  // Align the estimated probabilities with the model graph's edge order.
  std::vector<double> model_probs(model_graph.num_edges(), 0.1);
  for (const auto& estimate : *estimates_or) {
    uint64_t index =
        model_graph.EdgeIndex(estimate.edge.from, estimate.edge.to);
    if (index != graph::DirectedGraph::kInvalidEdgeIndex) {
      model_probs[index] = estimate.probability;
    }
  }
  // 4b. Greedy seed selection on the inferred model (marginal expected
  //     spread, Monte-Carlo IC on the inferred graph with the estimated
  //     per-edge probabilities).
  constexpr uint32_t kSeedBudget = 5;
  std::vector<graph::NodeId> chosen;
  auto working_probs_or =
      diffusion::EdgeProbabilities::FromValues(model_graph, model_probs);
  if (!working_probs_or.ok()) {
    std::cerr << "bad estimated probabilities: " << working_probs_or.status()
              << "\n";
    return EXIT_FAILURE;
  }
  const diffusion::EdgeProbabilities working_probs =
      std::move(working_probs_or).value();
  for (uint32_t pick = 0; pick < kSeedBudget; ++pick) {
    double best_spread = -1.0;
    graph::NodeId best_user = 0;
    for (uint32_t candidate = 0; candidate < model_graph.num_nodes();
         ++candidate) {
      if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end()) {
        continue;
      }
      std::vector<graph::NodeId> trial = chosen;
      trial.push_back(candidate);
      double spread =
          ExpectedSpread(model_graph, working_probs, trial, 40, 900 + pick);
      if (spread > best_spread) {
        best_spread = spread;
        best_user = candidate;
      }
    }
    chosen.push_back(best_user);
  }
  std::cout << "Selected seed users (from the inferred model):";
  for (graph::NodeId u : chosen) std::cout << ' ' << u;
  std::cout << "\n";

  // 5. Judge the seeds on the REAL network against baselines.
  double inferred_seeding =
      ExpectedSpread(influence, adoption, chosen, 400, 1234);
  // Random seeding baseline.
  Rng baseline_rng(4321);
  auto random_sample =
      baseline_rng.SampleWithoutReplacement(influence.num_nodes(), kSeedBudget);
  std::vector<graph::NodeId> random_seeds(random_sample.begin(),
                                          random_sample.end());
  double random_seeding =
      ExpectedSpread(influence, adoption, random_seeds, 400, 1234);
  std::cout << "True expected adopters - inferred-model seeding: "
            << inferred_seeding << ", random seeding: " << random_seeding
            << "\n";
  // Learning the topology should beat blind seeding.
  return inferred_seeding > random_seeding ? EXIT_SUCCESS : EXIT_FAILURE;
}
