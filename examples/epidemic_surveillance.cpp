// Epidemic surveillance scenario: reconstruct who-infects-whom from
// end-of-outbreak serology, under imperfect testing.
//
// A regional contact network is not directly observable, but after each of
// many outbreaks, health authorities test everyone once and record who was
// ever infected (final statuses — no infection timestamps, matching the
// incubation-period argument of the paper's introduction). Tests are
// imperfect: some infections are missed (asymptomatic / false-negative
// tests) and some healthy people test positive.
//
// The example:
//   1. builds a synthetic contact network (Watts-Strogatz small world:
//      households + shortcut contacts),
//   2. simulates outbreaks and corrupts the serology with test noise,
//   3. reconstructs the contact topology with TENDS,
//   4. estimates per-contact transmission probabilities and flags the
//      highest-risk links for intervention.

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/random.h"
#include "diffusion/noise.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "graph/generators/watts_strogatz.h"
#include "graph/stats.h"
#include "inference/probability_estimation.h"
#include "inference/tends.h"
#include "metrics/fscore.h"

int main() {
  using namespace tends;

  // 1. Contact network: 150 people, each with 4 ring contacts, 10% of
  //    contacts rewired to long-range shortcuts.
  Rng rng(2026);
  auto contacts_or = graph::GenerateWattsStrogatz(
      {.num_nodes = 150,
       .neighbors_each_side = 2,
       .rewire_probability = 0.1,
       .bidirectional = true},
      rng);
  if (!contacts_or.ok()) {
    std::cerr << "network generation failed: " << contacts_or.status() << "\n";
    return EXIT_FAILURE;
  }
  const graph::DirectedGraph contacts = std::move(contacts_or).value();
  std::cout << "Contact network: " << graph::ComputeStats(contacts).DebugString()
            << "\n";

  // 2. 200 observed outbreaks; per-contact transmission ~ N(0.35, 0.05^2);
  //    each outbreak starts from ~8% random index cases.
  auto transmission =
      diffusion::EdgeProbabilities::Gaussian(contacts, 0.35, 0.05, rng);
  diffusion::SimulationConfig outbreaks;
  outbreaks.num_processes = 200;
  outbreaks.initial_infection_ratio = 0.08;
  auto observations_or =
      diffusion::Simulate(contacts, transmission, outbreaks, rng);
  if (!observations_or.ok()) {
    std::cerr << "simulation failed: " << observations_or.status() << "\n";
    return EXIT_FAILURE;
  }
  // Imperfect serology: 5% missed infections, 1% false positives.
  auto serology_or = diffusion::ApplyStatusNoise(
      observations_or->statuses,
      {.miss_probability = 0.05, .false_alarm_probability = 0.01}, rng);
  if (!serology_or.ok()) {
    std::cerr << "noise injection failed: " << serology_or.status() << "\n";
    return EXIT_FAILURE;
  }
  const diffusion::StatusMatrix serology = std::move(serology_or).value();
  std::cout << "Observed " << serology.num_processes()
            << " outbreaks via end-of-outbreak serology (5% miss, 1% false "
               "alarm)\n";

  // 3. Reconstruct the contact topology from the noisy statuses alone.
  inference::Tends tends;
  auto inferred_or = tends.InferFromStatuses(serology);
  if (!inferred_or.ok()) {
    std::cerr << "inference failed: " << inferred_or.status() << "\n";
    return EXIT_FAILURE;
  }
  const inference::InferredNetwork inferred = std::move(inferred_or).value();
  metrics::EdgeMetrics accuracy = metrics::EvaluateEdges(inferred, contacts);
  std::cout << "Reconstructed " << inferred.num_edges()
            << " directed contact links: " << accuracy.DebugString() << "\n";

  // 4. Transmission-risk triage: estimate per-link probabilities and list
  //    the riskiest reconstructed links.
  auto estimates_or =
      inference::EstimatePropagationProbabilities(serology, inferred);
  if (!estimates_or.ok()) {
    std::cerr << "estimation failed: " << estimates_or.status() << "\n";
    return EXIT_FAILURE;
  }
  auto estimates = std::move(estimates_or).value();
  std::sort(estimates.begin(), estimates.end(),
            [](const inference::EdgeProbabilityEstimate& a,
               const inference::EdgeProbabilityEstimate& b) {
              return a.probability > b.probability;
            });
  std::cout << "Highest-risk links (candidates for targeted intervention):\n";
  for (size_t e = 0; e < estimates.size() && e < 8; ++e) {
    std::cout << "  person " << estimates[e].edge.from << " -> person "
              << estimates[e].edge.to << "  estimated transmission "
              << estimates[e].probability << " (from " << estimates[e].support
              << " isolating outbreaks)\n";
  }
  return accuracy.f_score > 0.3 ? EXIT_SUCCESS : EXIT_FAILURE;
}
