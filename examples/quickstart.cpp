// Quickstart: build a small diffusion network, simulate status-only
// observations, reconstruct the topology with TENDS, and score the result.
//
// This is the minimal end-to-end use of the library's public API:
//   graph generation -> diffusion simulation -> inference -> evaluation.

#include <cstdlib>
#include <iostream>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "graph/generators/lfr.h"
#include "graph/stats.h"
#include "inference/tends.h"
#include "metrics/fscore.h"

int main() {
  using namespace tends;

  // 1. A ground-truth diffusion network: LFR benchmark graph with 100
  //    nodes and average degree 4 (the paper's LFR1 configuration).
  Rng rng(/*seed=*/7);
  graph::LfrOptions lfr = graph::LfrOptions::FromPaperParams(
      /*n=*/100, /*kappa=*/4.0, /*t=*/2.0);
  auto graph_or = graph::GenerateLfr(lfr, rng);
  if (!graph_or.ok()) {
    std::cerr << "graph generation failed: " << graph_or.status() << "\n";
    return EXIT_FAILURE;
  }
  const graph::DirectedGraph truth = std::move(graph_or).value();
  std::cout << "Ground truth: " << graph::ComputeStats(truth).DebugString()
            << "\n";

  // 2. Simulate 150 diffusion processes (beta), 15% random initial
  //    infections (alpha), edge probabilities ~ N(0.3, 0.05^2).
  diffusion::EdgeProbabilities probabilities =
      diffusion::EdgeProbabilities::Gaussian(truth, /*mean=*/0.3,
                                             /*stddev=*/0.05, rng);
  diffusion::SimulationConfig sim_config;  // beta=150, alpha=0.15 defaults
  auto observations_or =
      diffusion::Simulate(truth, probabilities, sim_config, rng);
  if (!observations_or.ok()) {
    std::cerr << "simulation failed: " << observations_or.status() << "\n";
    return EXIT_FAILURE;
  }
  const diffusion::DiffusionObservations observations =
      std::move(observations_or).value();
  std::cout << "Observed " << observations.num_processes()
            << " diffusion processes (final statuses only are used below)\n";

  // 3. Reconstruct the topology from the final infection statuses alone.
  inference::Tends tends;
  auto inferred_or = tends.InferFromStatuses(observations.statuses);
  if (!inferred_or.ok()) {
    std::cerr << "inference failed: " << inferred_or.status() << "\n";
    return EXIT_FAILURE;
  }
  const inference::InferredNetwork inferred = std::move(inferred_or).value();
  std::cout << "Inferred " << inferred.num_edges() << " directed edges "
            << "(pruning threshold tau=" << tends.diagnostics().tau << ")\n";

  // 4. Score against the ground truth.
  metrics::EdgeMetrics metrics = metrics::EvaluateEdges(inferred, truth);
  std::cout << metrics.DebugString() << "\n";
  // An F-score far above chance demonstrates status-only reconstruction.
  return metrics.f_score > 0.3 ? EXIT_SUCCESS : EXIT_FAILURE;
}
