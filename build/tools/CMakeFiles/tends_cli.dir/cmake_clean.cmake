file(REMOVE_RECURSE
  "CMakeFiles/tends_cli.dir/tends_cli.cc.o"
  "CMakeFiles/tends_cli.dir/tends_cli.cc.o.d"
  "tends_cli"
  "tends_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tends_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
