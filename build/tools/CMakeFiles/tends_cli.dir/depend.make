# Empty dependencies file for tends_cli.
# This may be replaced when dependencies are built.
