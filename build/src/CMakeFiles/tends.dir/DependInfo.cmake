
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchlib/experiment.cc" "src/CMakeFiles/tends.dir/benchlib/experiment.cc.o" "gcc" "src/CMakeFiles/tends.dir/benchlib/experiment.cc.o.d"
  "/root/repo/src/benchlib/pruning_sweep.cc" "src/CMakeFiles/tends.dir/benchlib/pruning_sweep.cc.o" "gcc" "src/CMakeFiles/tends.dir/benchlib/pruning_sweep.cc.o.d"
  "/root/repo/src/common/fault_injection.cc" "src/CMakeFiles/tends.dir/common/fault_injection.cc.o" "gcc" "src/CMakeFiles/tends.dir/common/fault_injection.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/tends.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/tends.dir/common/flags.cc.o.d"
  "/root/repo/src/common/io_hardening.cc" "src/CMakeFiles/tends.dir/common/io_hardening.cc.o" "gcc" "src/CMakeFiles/tends.dir/common/io_hardening.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/tends.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/tends.dir/common/logging.cc.o.d"
  "/root/repo/src/common/parallel.cc" "src/CMakeFiles/tends.dir/common/parallel.cc.o" "gcc" "src/CMakeFiles/tends.dir/common/parallel.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/tends.dir/common/random.cc.o" "gcc" "src/CMakeFiles/tends.dir/common/random.cc.o.d"
  "/root/repo/src/common/run_context.cc" "src/CMakeFiles/tends.dir/common/run_context.cc.o" "gcc" "src/CMakeFiles/tends.dir/common/run_context.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/tends.dir/common/status.cc.o" "gcc" "src/CMakeFiles/tends.dir/common/status.cc.o.d"
  "/root/repo/src/common/stringutil.cc" "src/CMakeFiles/tends.dir/common/stringutil.cc.o" "gcc" "src/CMakeFiles/tends.dir/common/stringutil.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/tends.dir/common/table.cc.o" "gcc" "src/CMakeFiles/tends.dir/common/table.cc.o.d"
  "/root/repo/src/diffusion/cascade.cc" "src/CMakeFiles/tends.dir/diffusion/cascade.cc.o" "gcc" "src/CMakeFiles/tends.dir/diffusion/cascade.cc.o.d"
  "/root/repo/src/diffusion/ic_model.cc" "src/CMakeFiles/tends.dir/diffusion/ic_model.cc.o" "gcc" "src/CMakeFiles/tends.dir/diffusion/ic_model.cc.o.d"
  "/root/repo/src/diffusion/io.cc" "src/CMakeFiles/tends.dir/diffusion/io.cc.o" "gcc" "src/CMakeFiles/tends.dir/diffusion/io.cc.o.d"
  "/root/repo/src/diffusion/lt_model.cc" "src/CMakeFiles/tends.dir/diffusion/lt_model.cc.o" "gcc" "src/CMakeFiles/tends.dir/diffusion/lt_model.cc.o.d"
  "/root/repo/src/diffusion/noise.cc" "src/CMakeFiles/tends.dir/diffusion/noise.cc.o" "gcc" "src/CMakeFiles/tends.dir/diffusion/noise.cc.o.d"
  "/root/repo/src/diffusion/propagation.cc" "src/CMakeFiles/tends.dir/diffusion/propagation.cc.o" "gcc" "src/CMakeFiles/tends.dir/diffusion/propagation.cc.o.d"
  "/root/repo/src/diffusion/simulator.cc" "src/CMakeFiles/tends.dir/diffusion/simulator.cc.o" "gcc" "src/CMakeFiles/tends.dir/diffusion/simulator.cc.o.d"
  "/root/repo/src/diffusion/sir_model.cc" "src/CMakeFiles/tends.dir/diffusion/sir_model.cc.o" "gcc" "src/CMakeFiles/tends.dir/diffusion/sir_model.cc.o.d"
  "/root/repo/src/diffusion/validation.cc" "src/CMakeFiles/tends.dir/diffusion/validation.cc.o" "gcc" "src/CMakeFiles/tends.dir/diffusion/validation.cc.o.d"
  "/root/repo/src/graph/builder.cc" "src/CMakeFiles/tends.dir/graph/builder.cc.o" "gcc" "src/CMakeFiles/tends.dir/graph/builder.cc.o.d"
  "/root/repo/src/graph/datasets.cc" "src/CMakeFiles/tends.dir/graph/datasets.cc.o" "gcc" "src/CMakeFiles/tends.dir/graph/datasets.cc.o.d"
  "/root/repo/src/graph/generators/barabasi_albert.cc" "src/CMakeFiles/tends.dir/graph/generators/barabasi_albert.cc.o" "gcc" "src/CMakeFiles/tends.dir/graph/generators/barabasi_albert.cc.o.d"
  "/root/repo/src/graph/generators/configuration.cc" "src/CMakeFiles/tends.dir/graph/generators/configuration.cc.o" "gcc" "src/CMakeFiles/tends.dir/graph/generators/configuration.cc.o.d"
  "/root/repo/src/graph/generators/erdos_renyi.cc" "src/CMakeFiles/tends.dir/graph/generators/erdos_renyi.cc.o" "gcc" "src/CMakeFiles/tends.dir/graph/generators/erdos_renyi.cc.o.d"
  "/root/repo/src/graph/generators/lfr.cc" "src/CMakeFiles/tends.dir/graph/generators/lfr.cc.o" "gcc" "src/CMakeFiles/tends.dir/graph/generators/lfr.cc.o.d"
  "/root/repo/src/graph/generators/watts_strogatz.cc" "src/CMakeFiles/tends.dir/graph/generators/watts_strogatz.cc.o" "gcc" "src/CMakeFiles/tends.dir/graph/generators/watts_strogatz.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/tends.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/tends.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/tends.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/tends.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/CMakeFiles/tends.dir/graph/stats.cc.o" "gcc" "src/CMakeFiles/tends.dir/graph/stats.cc.o.d"
  "/root/repo/src/inference/correlation.cc" "src/CMakeFiles/tends.dir/inference/correlation.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/correlation.cc.o.d"
  "/root/repo/src/inference/counting.cc" "src/CMakeFiles/tends.dir/inference/counting.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/counting.cc.o.d"
  "/root/repo/src/inference/imi.cc" "src/CMakeFiles/tends.dir/inference/imi.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/imi.cc.o.d"
  "/root/repo/src/inference/inferred_network.cc" "src/CMakeFiles/tends.dir/inference/inferred_network.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/inferred_network.cc.o.d"
  "/root/repo/src/inference/io.cc" "src/CMakeFiles/tends.dir/inference/io.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/io.cc.o.d"
  "/root/repo/src/inference/kmeans_threshold.cc" "src/CMakeFiles/tends.dir/inference/kmeans_threshold.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/kmeans_threshold.cc.o.d"
  "/root/repo/src/inference/lift.cc" "src/CMakeFiles/tends.dir/inference/lift.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/lift.cc.o.d"
  "/root/repo/src/inference/local_score.cc" "src/CMakeFiles/tends.dir/inference/local_score.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/local_score.cc.o.d"
  "/root/repo/src/inference/multree.cc" "src/CMakeFiles/tends.dir/inference/multree.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/multree.cc.o.d"
  "/root/repo/src/inference/netinf.cc" "src/CMakeFiles/tends.dir/inference/netinf.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/netinf.cc.o.d"
  "/root/repo/src/inference/netrate.cc" "src/CMakeFiles/tends.dir/inference/netrate.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/netrate.cc.o.d"
  "/root/repo/src/inference/parent_search.cc" "src/CMakeFiles/tends.dir/inference/parent_search.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/parent_search.cc.o.d"
  "/root/repo/src/inference/path.cc" "src/CMakeFiles/tends.dir/inference/path.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/path.cc.o.d"
  "/root/repo/src/inference/probability_estimation.cc" "src/CMakeFiles/tends.dir/inference/probability_estimation.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/probability_estimation.cc.o.d"
  "/root/repo/src/inference/tends.cc" "src/CMakeFiles/tends.dir/inference/tends.cc.o" "gcc" "src/CMakeFiles/tends.dir/inference/tends.cc.o.d"
  "/root/repo/src/metrics/evaluation.cc" "src/CMakeFiles/tends.dir/metrics/evaluation.cc.o" "gcc" "src/CMakeFiles/tends.dir/metrics/evaluation.cc.o.d"
  "/root/repo/src/metrics/fscore.cc" "src/CMakeFiles/tends.dir/metrics/fscore.cc.o" "gcc" "src/CMakeFiles/tends.dir/metrics/fscore.cc.o.d"
  "/root/repo/src/metrics/pr_curve.cc" "src/CMakeFiles/tends.dir/metrics/pr_curve.cc.o" "gcc" "src/CMakeFiles/tends.dir/metrics/pr_curve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
