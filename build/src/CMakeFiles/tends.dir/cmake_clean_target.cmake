file(REMOVE_RECURSE
  "libtends.a"
)
