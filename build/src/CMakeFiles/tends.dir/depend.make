# Empty dependencies file for tends.
# This may be replaced when dependencies are built.
