# Empty compiler generated dependencies file for ablation_trees.
# This may be replaced when dependencies are built.
