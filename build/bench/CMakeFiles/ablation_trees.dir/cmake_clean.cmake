file(REMOVE_RECURSE
  "CMakeFiles/ablation_trees.dir/ablation_trees.cc.o"
  "CMakeFiles/ablation_trees.dir/ablation_trees.cc.o.d"
  "ablation_trees"
  "ablation_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
