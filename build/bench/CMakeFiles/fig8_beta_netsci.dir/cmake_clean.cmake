file(REMOVE_RECURSE
  "CMakeFiles/fig8_beta_netsci.dir/fig8_beta_netsci.cc.o"
  "CMakeFiles/fig8_beta_netsci.dir/fig8_beta_netsci.cc.o.d"
  "fig8_beta_netsci"
  "fig8_beta_netsci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_beta_netsci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
