# Empty dependencies file for fig8_beta_netsci.
# This may be replaced when dependencies are built.
