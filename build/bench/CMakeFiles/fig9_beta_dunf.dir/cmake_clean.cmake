file(REMOVE_RECURSE
  "CMakeFiles/fig9_beta_dunf.dir/fig9_beta_dunf.cc.o"
  "CMakeFiles/fig9_beta_dunf.dir/fig9_beta_dunf.cc.o.d"
  "fig9_beta_dunf"
  "fig9_beta_dunf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_beta_dunf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
