# Empty compiler generated dependencies file for fig9_beta_dunf.
# This may be replaced when dependencies are built.
