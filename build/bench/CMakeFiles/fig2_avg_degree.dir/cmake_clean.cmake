file(REMOVE_RECURSE
  "CMakeFiles/fig2_avg_degree.dir/fig2_avg_degree.cc.o"
  "CMakeFiles/fig2_avg_degree.dir/fig2_avg_degree.cc.o.d"
  "fig2_avg_degree"
  "fig2_avg_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_avg_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
