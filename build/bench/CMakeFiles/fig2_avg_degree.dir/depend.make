# Empty dependencies file for fig2_avg_degree.
# This may be replaced when dependencies are built.
