# Empty compiler generated dependencies file for ablation_path.
# This may be replaced when dependencies are built.
