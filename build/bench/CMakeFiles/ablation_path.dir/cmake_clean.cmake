file(REMOVE_RECURSE
  "CMakeFiles/ablation_path.dir/ablation_path.cc.o"
  "CMakeFiles/ablation_path.dir/ablation_path.cc.o.d"
  "ablation_path"
  "ablation_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
