# Empty compiler generated dependencies file for fig10_pruning_netsci.
# This may be replaced when dependencies are built.
