file(REMOVE_RECURSE
  "CMakeFiles/fig10_pruning_netsci.dir/fig10_pruning_netsci.cc.o"
  "CMakeFiles/fig10_pruning_netsci.dir/fig10_pruning_netsci.cc.o.d"
  "fig10_pruning_netsci"
  "fig10_pruning_netsci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pruning_netsci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
