file(REMOVE_RECURSE
  "CMakeFiles/fig11_pruning_dunf.dir/fig11_pruning_dunf.cc.o"
  "CMakeFiles/fig11_pruning_dunf.dir/fig11_pruning_dunf.cc.o.d"
  "fig11_pruning_dunf"
  "fig11_pruning_dunf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pruning_dunf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
