# Empty compiler generated dependencies file for fig11_pruning_dunf.
# This may be replaced when dependencies are built.
