# Empty dependencies file for fig4_alpha_netsci.
# This may be replaced when dependencies are built.
