file(REMOVE_RECURSE
  "CMakeFiles/fig4_alpha_netsci.dir/fig4_alpha_netsci.cc.o"
  "CMakeFiles/fig4_alpha_netsci.dir/fig4_alpha_netsci.cc.o.d"
  "fig4_alpha_netsci"
  "fig4_alpha_netsci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_alpha_netsci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
