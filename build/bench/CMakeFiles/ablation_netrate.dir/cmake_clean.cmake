file(REMOVE_RECURSE
  "CMakeFiles/ablation_netrate.dir/ablation_netrate.cc.o"
  "CMakeFiles/ablation_netrate.dir/ablation_netrate.cc.o.d"
  "ablation_netrate"
  "ablation_netrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_netrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
