# Empty compiler generated dependencies file for ablation_netrate.
# This may be replaced when dependencies are built.
