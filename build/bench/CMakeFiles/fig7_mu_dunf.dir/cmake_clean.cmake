file(REMOVE_RECURSE
  "CMakeFiles/fig7_mu_dunf.dir/fig7_mu_dunf.cc.o"
  "CMakeFiles/fig7_mu_dunf.dir/fig7_mu_dunf.cc.o.d"
  "fig7_mu_dunf"
  "fig7_mu_dunf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_mu_dunf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
