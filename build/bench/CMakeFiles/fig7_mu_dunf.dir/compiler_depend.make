# Empty compiler generated dependencies file for fig7_mu_dunf.
# This may be replaced when dependencies are built.
