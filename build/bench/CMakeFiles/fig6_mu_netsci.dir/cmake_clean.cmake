file(REMOVE_RECURSE
  "CMakeFiles/fig6_mu_netsci.dir/fig6_mu_netsci.cc.o"
  "CMakeFiles/fig6_mu_netsci.dir/fig6_mu_netsci.cc.o.d"
  "fig6_mu_netsci"
  "fig6_mu_netsci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mu_netsci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
