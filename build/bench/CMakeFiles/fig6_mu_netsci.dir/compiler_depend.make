# Empty compiler generated dependencies file for fig6_mu_netsci.
# This may be replaced when dependencies are built.
