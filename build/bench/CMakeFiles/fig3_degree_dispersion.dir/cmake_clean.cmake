file(REMOVE_RECURSE
  "CMakeFiles/fig3_degree_dispersion.dir/fig3_degree_dispersion.cc.o"
  "CMakeFiles/fig3_degree_dispersion.dir/fig3_degree_dispersion.cc.o.d"
  "fig3_degree_dispersion"
  "fig3_degree_dispersion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_degree_dispersion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
