# Empty dependencies file for fig3_degree_dispersion.
# This may be replaced when dependencies are built.
