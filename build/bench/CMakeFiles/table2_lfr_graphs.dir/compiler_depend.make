# Empty compiler generated dependencies file for table2_lfr_graphs.
# This may be replaced when dependencies are built.
