file(REMOVE_RECURSE
  "CMakeFiles/table2_lfr_graphs.dir/table2_lfr_graphs.cc.o"
  "CMakeFiles/table2_lfr_graphs.dir/table2_lfr_graphs.cc.o.d"
  "table2_lfr_graphs"
  "table2_lfr_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_lfr_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
