file(REMOVE_RECURSE
  "CMakeFiles/fig5_alpha_dunf.dir/fig5_alpha_dunf.cc.o"
  "CMakeFiles/fig5_alpha_dunf.dir/fig5_alpha_dunf.cc.o.d"
  "fig5_alpha_dunf"
  "fig5_alpha_dunf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_alpha_dunf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
