# Empty dependencies file for fig5_alpha_dunf.
# This may be replaced when dependencies are built.
