# Empty dependencies file for tends_tests.
# This may be replaced when dependencies are built.
