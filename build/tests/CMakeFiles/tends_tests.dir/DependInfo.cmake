
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/tends_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/benchlib_test.cc" "tests/CMakeFiles/tends_tests.dir/benchlib_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/benchlib_test.cc.o.d"
  "/root/repo/tests/cascade_test.cc" "tests/CMakeFiles/tends_tests.dir/cascade_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/cascade_test.cc.o.d"
  "/root/repo/tests/counting_test.cc" "tests/CMakeFiles/tends_tests.dir/counting_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/counting_test.cc.o.d"
  "/root/repo/tests/datasets_test.cc" "tests/CMakeFiles/tends_tests.dir/datasets_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/datasets_test.cc.o.d"
  "/root/repo/tests/diffusion_io_test.cc" "tests/CMakeFiles/tends_tests.dir/diffusion_io_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/diffusion_io_test.cc.o.d"
  "/root/repo/tests/diffusion_models_test.cc" "tests/CMakeFiles/tends_tests.dir/diffusion_models_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/diffusion_models_test.cc.o.d"
  "/root/repo/tests/fault_injection_test.cc" "tests/CMakeFiles/tends_tests.dir/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/fault_injection_test.cc.o.d"
  "/root/repo/tests/flags_test.cc" "tests/CMakeFiles/tends_tests.dir/flags_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/flags_test.cc.o.d"
  "/root/repo/tests/fscore_test.cc" "tests/CMakeFiles/tends_tests.dir/fscore_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/fscore_test.cc.o.d"
  "/root/repo/tests/generators_test.cc" "tests/CMakeFiles/tends_tests.dir/generators_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/generators_test.cc.o.d"
  "/root/repo/tests/graph_io_test.cc" "tests/CMakeFiles/tends_tests.dir/graph_io_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/graph_io_test.cc.o.d"
  "/root/repo/tests/graph_stats_test.cc" "tests/CMakeFiles/tends_tests.dir/graph_stats_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/graph_stats_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/tends_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/imi_test.cc" "tests/CMakeFiles/tends_tests.dir/imi_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/imi_test.cc.o.d"
  "/root/repo/tests/inference_io_test.cc" "tests/CMakeFiles/tends_tests.dir/inference_io_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/inference_io_test.cc.o.d"
  "/root/repo/tests/inferred_network_test.cc" "tests/CMakeFiles/tends_tests.dir/inferred_network_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/inferred_network_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/tends_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/kmeans_test.cc" "tests/CMakeFiles/tends_tests.dir/kmeans_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/kmeans_test.cc.o.d"
  "/root/repo/tests/local_score_test.cc" "tests/CMakeFiles/tends_tests.dir/local_score_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/local_score_test.cc.o.d"
  "/root/repo/tests/netinf_test.cc" "tests/CMakeFiles/tends_tests.dir/netinf_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/netinf_test.cc.o.d"
  "/root/repo/tests/noise_test.cc" "tests/CMakeFiles/tends_tests.dir/noise_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/noise_test.cc.o.d"
  "/root/repo/tests/parallel_test.cc" "tests/CMakeFiles/tends_tests.dir/parallel_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/parallel_test.cc.o.d"
  "/root/repo/tests/parent_search_test.cc" "tests/CMakeFiles/tends_tests.dir/parent_search_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/parent_search_test.cc.o.d"
  "/root/repo/tests/path_test.cc" "tests/CMakeFiles/tends_tests.dir/path_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/path_test.cc.o.d"
  "/root/repo/tests/pr_curve_test.cc" "tests/CMakeFiles/tends_tests.dir/pr_curve_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/pr_curve_test.cc.o.d"
  "/root/repo/tests/probability_estimation_test.cc" "tests/CMakeFiles/tends_tests.dir/probability_estimation_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/probability_estimation_test.cc.o.d"
  "/root/repo/tests/random_test.cc" "tests/CMakeFiles/tends_tests.dir/random_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/random_test.cc.o.d"
  "/root/repo/tests/run_context_test.cc" "tests/CMakeFiles/tends_tests.dir/run_context_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/run_context_test.cc.o.d"
  "/root/repo/tests/simulator_test.cc" "tests/CMakeFiles/tends_tests.dir/simulator_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/simulator_test.cc.o.d"
  "/root/repo/tests/sir_model_test.cc" "tests/CMakeFiles/tends_tests.dir/sir_model_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/sir_model_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/tends_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/tends_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/stringutil_test.cc" "tests/CMakeFiles/tends_tests.dir/stringutil_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/stringutil_test.cc.o.d"
  "/root/repo/tests/table_test.cc" "tests/CMakeFiles/tends_tests.dir/table_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/table_test.cc.o.d"
  "/root/repo/tests/tends_test.cc" "tests/CMakeFiles/tends_tests.dir/tends_test.cc.o" "gcc" "tests/CMakeFiles/tends_tests.dir/tends_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tends.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
