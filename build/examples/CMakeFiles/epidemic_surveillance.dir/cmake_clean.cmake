file(REMOVE_RECURSE
  "CMakeFiles/epidemic_surveillance.dir/epidemic_surveillance.cpp.o"
  "CMakeFiles/epidemic_surveillance.dir/epidemic_surveillance.cpp.o.d"
  "epidemic_surveillance"
  "epidemic_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epidemic_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
