# Empty dependencies file for epidemic_surveillance.
# This may be replaced when dependencies are built.
