# Empty dependencies file for viral_marketing.
# This may be replaced when dependencies are built.
