#ifndef TENDS_METRICS_EVALUATION_H_
#define TENDS_METRICS_EVALUATION_H_

#include <string>

#include "common/statusor.h"
#include "diffusion/simulator.h"
#include "graph/graph.h"
#include "inference/network_inference.h"
#include "metrics/fscore.h"

namespace tends::metrics {

/// One algorithm's result on one workload: accuracy plus wall time.
struct AlgorithmEvaluation {
  std::string algorithm;
  EdgeMetrics metrics;
  double seconds = 0.0;
  uint64_t inferred_edges = 0;
  /// The algorithm's own DiagnosticsJson() after the run — uniform across
  /// TENDS and the baselines (no special-casing by the harness).
  std::string diagnostics_json = "{}";
  /// Process peak RSS sampled right after the run (common/memory_stats.h);
  /// 0 when /proc is unreadable. Process-wide, so within one process it is
  /// nondecreasing across evaluations — an attribution hint, not an exact
  /// per-algorithm figure (the tends.mem.* gauges are the exact ones).
  int64_t peak_rss_bytes = 0;
};

/// Runs `algorithm` on `observations`, times it, and scores it against
/// `truth`. When `sweep_threshold` is set, the F-score is the best over all
/// weight thresholds (the paper's NetRate treatment); otherwise the full
/// inferred edge set is scored. `context` (deadline, cancellation, metrics
/// sink) is forwarded to the algorithm; the default is unconstrained and
/// unmetered.
StatusOr<AlgorithmEvaluation> RunAndEvaluate(
    inference::NetworkInference& algorithm,
    const diffusion::DiffusionObservations& observations,
    const graph::DirectedGraph& truth, bool sweep_threshold = false,
    const RunContext& context = RunContext());

}  // namespace tends::metrics

#endif  // TENDS_METRICS_EVALUATION_H_
