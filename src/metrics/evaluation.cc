#include "metrics/evaluation.h"

#include "common/memory_stats.h"
#include "common/timer.h"

namespace tends::metrics {

StatusOr<AlgorithmEvaluation> RunAndEvaluate(
    inference::NetworkInference& algorithm,
    const diffusion::DiffusionObservations& observations,
    const graph::DirectedGraph& truth, bool sweep_threshold,
    const RunContext& context) {
  AlgorithmEvaluation evaluation;
  evaluation.algorithm = std::string(algorithm.name());
  Timer timer;
  StatusOr<inference::InferredNetwork> inferred =
      algorithm.Infer(observations, context);
  evaluation.seconds = timer.ElapsedSeconds();
  evaluation.peak_rss_bytes = ReadPeakRssBytes().value_or(0);
  if (!inferred.ok()) return inferred.status();
  evaluation.diagnostics_json = algorithm.DiagnosticsJson();
  evaluation.inferred_edges = inferred->num_edges();
  evaluation.metrics = sweep_threshold
                           ? EvaluateBestThreshold(*inferred, truth)
                           : EvaluateEdges(*inferred, truth);
  return evaluation;
}

}  // namespace tends::metrics
