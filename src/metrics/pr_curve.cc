#include "metrics/pr_curve.h"

#include <algorithm>
#include <unordered_set>

namespace tends::metrics {

PrCurve ComputePrCurve(const inference::InferredNetwork& inferred,
                       const graph::DirectedGraph& truth) {
  // Deduplicate and sort by weight descending (ties by edge order for
  // determinism; tie groups share one curve point).
  std::unordered_set<uint64_t> seen;
  std::vector<inference::ScoredEdge> edges;
  edges.reserve(inferred.edges().size());
  for (const auto& scored : inferred.edges()) {
    uint64_t key =
        (static_cast<uint64_t>(scored.edge.from) << 32) | scored.edge.to;
    if (seen.insert(key).second) edges.push_back(scored);
  }
  std::sort(edges.begin(), edges.end(),
            [](const inference::ScoredEdge& a, const inference::ScoredEdge& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.edge < b.edge;
            });

  PrCurve curve;
  const uint64_t total_true = truth.num_edges();
  if (total_true == 0) return curve;
  uint64_t tp = 0;
  double previous_recall = 0.0;
  for (size_t k = 0; k < edges.size(); ++k) {
    const auto& edge = edges[k].edge;
    if (edge.from < truth.num_nodes() && truth.HasEdge(edge.from, edge.to)) {
      ++tp;
    }
    // Close the point at the end of each weight-tie group.
    if (k + 1 < edges.size() && edges[k + 1].weight == edges[k].weight) {
      continue;
    }
    PrPoint point;
    point.threshold = edges[k].weight;
    point.kept_edges = k + 1;
    point.precision = static_cast<double>(tp) / point.kept_edges;
    point.recall = static_cast<double>(tp) / total_true;
    curve.average_precision +=
        point.precision * (point.recall - previous_recall);
    previous_recall = point.recall;
    curve.points.push_back(point);
  }
  return curve;
}

}  // namespace tends::metrics
