#ifndef TENDS_METRICS_FSCORE_H_
#define TENDS_METRICS_FSCORE_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "inference/inferred_network.h"

namespace tends::metrics {

/// Directed-edge reconstruction quality versus the ground-truth topology
/// (§V-A "Performance Criteria").
struct EdgeMetrics {
  uint64_t true_positives = 0;
  uint64_t false_positives = 0;
  uint64_t false_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f_score = 0.0;

  std::string DebugString() const;
};

/// Compares inferred directed edges against the true graph. Duplicate
/// inferred edges are counted once.
EdgeMetrics EvaluateEdges(const inference::InferredNetwork& inferred,
                          const graph::DirectedGraph& truth);

/// The paper's preferential treatment of NetRate: sweeps a threshold over
/// the inferred edge weights, evaluates the F-score of the edges at or
/// above each candidate threshold, and returns the best result. With k
/// distinct weights this costs O(k + m) after sorting.
EdgeMetrics EvaluateBestThreshold(const inference::InferredNetwork& inferred,
                                  const graph::DirectedGraph& truth);

}  // namespace tends::metrics

#endif  // TENDS_METRICS_FSCORE_H_
