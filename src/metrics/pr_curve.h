#ifndef TENDS_METRICS_PR_CURVE_H_
#define TENDS_METRICS_PR_CURVE_H_

#include <vector>

#include "graph/graph.h"
#include "inference/inferred_network.h"

namespace tends::metrics {

/// One operating point of a weighted edge ranking.
struct PrPoint {
  /// Weight threshold: all edges with weight >= threshold are kept.
  double threshold = 0.0;
  uint64_t kept_edges = 0;
  double precision = 0.0;
  double recall = 0.0;
};

/// The precision-recall curve of a ranking plus summary statistics. For
/// weighted outputs (NetRate rates, IMI weights) this is a richer view
/// than the single best-threshold F-score.
struct PrCurve {
  /// One point per distinct weight, in decreasing-threshold order (edges
  /// in a weight-tie group enter together).
  std::vector<PrPoint> points;
  /// Average precision: sum over points of precision * recall-increment
  /// (the usual AP summary of the curve, in [0, 1]).
  double average_precision = 0.0;
};

/// Builds the PR curve of `inferred` (ranked by weight, descending,
/// duplicate edges counted once) against the true topology.
PrCurve ComputePrCurve(const inference::InferredNetwork& inferred,
                       const graph::DirectedGraph& truth);

}  // namespace tends::metrics

#endif  // TENDS_METRICS_PR_CURVE_H_
