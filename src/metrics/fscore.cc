#include "metrics/fscore.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/stringutil.h"

namespace tends::metrics {

namespace {

EdgeMetrics MetricsFromCounts(uint64_t tp, uint64_t fp, uint64_t fn) {
  EdgeMetrics metrics;
  metrics.true_positives = tp;
  metrics.false_positives = fp;
  metrics.false_negatives = fn;
  metrics.precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  metrics.recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
  metrics.f_score = metrics.precision + metrics.recall > 0
                        ? 2.0 * metrics.precision * metrics.recall /
                              (metrics.precision + metrics.recall)
                        : 0.0;
  return metrics;
}

uint64_t EdgeKey(const graph::Edge& e) {
  return (static_cast<uint64_t>(e.from) << 32) | e.to;
}

}  // namespace

std::string EdgeMetrics::DebugString() const {
  return StrFormat("EdgeMetrics(P=%.4f, R=%.4f, F=%.4f, tp=%llu, fp=%llu, fn=%llu)",
                   precision, recall, f_score,
                   static_cast<unsigned long long>(true_positives),
                   static_cast<unsigned long long>(false_positives),
                   static_cast<unsigned long long>(false_negatives));
}

EdgeMetrics EvaluateEdges(const inference::InferredNetwork& inferred,
                          const graph::DirectedGraph& truth) {
  std::unordered_set<uint64_t> seen;
  uint64_t tp = 0, fp = 0;
  for (const auto& scored : inferred.edges()) {
    if (!seen.insert(EdgeKey(scored.edge)).second) continue;
    if (scored.edge.from < truth.num_nodes() &&
        truth.HasEdge(scored.edge.from, scored.edge.to)) {
      ++tp;
    } else {
      ++fp;
    }
  }
  const uint64_t fn = truth.num_edges() - tp;
  return MetricsFromCounts(tp, fp, fn);
}

EdgeMetrics EvaluateBestThreshold(const inference::InferredNetwork& inferred,
                                  const graph::DirectedGraph& truth) {
  // Sort unique edges by weight descending; the candidate thresholds are
  // the distinct weights, so prefix k of the sorted list is the edge set
  // for the k-th threshold.
  std::unordered_set<uint64_t> seen;
  std::vector<inference::ScoredEdge> edges;
  edges.reserve(inferred.edges().size());
  for (const auto& scored : inferred.edges()) {
    if (seen.insert(EdgeKey(scored.edge)).second) edges.push_back(scored);
  }
  std::sort(edges.begin(), edges.end(),
            [](const inference::ScoredEdge& a, const inference::ScoredEdge& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.edge < b.edge;
            });
  const uint64_t total_true = truth.num_edges();
  EdgeMetrics best;  // zero-F default (threshold above all weights)
  best.false_negatives = total_true;
  uint64_t tp = 0;
  for (size_t k = 0; k < edges.size(); ++k) {
    const auto& e = edges[k].edge;
    if (e.from < truth.num_nodes() && truth.HasEdge(e.from, e.to)) ++tp;
    // A threshold boundary is only valid after the last edge of a weight
    // tie group (all edges with equal weight are in or out together).
    if (k + 1 < edges.size() && edges[k + 1].weight == edges[k].weight) {
      continue;
    }
    const uint64_t kept = k + 1;
    EdgeMetrics candidate =
        MetricsFromCounts(tp, kept - tp, total_true - tp);
    if (candidate.f_score > best.f_score) best = candidate;
  }
  return best;
}

}  // namespace tends::metrics
