#ifndef TENDS_COMMON_METRICS_H_
#define TENDS_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/trace.h"

/// Compile-time switch for the instrumentation macros. The build defines
/// TENDS_METRICS_ENABLED=0 when configured with -DTENDS_METRICS=OFF; the
/// macros then compile to no-ops (null pointers / empty statements) while
/// the MetricsRegistry type itself stays available, so code that writes
/// manifests still links and produces identical algorithmic results.
#ifndef TENDS_METRICS_ENABLED
#define TENDS_METRICS_ENABLED 1
#endif

namespace tends {

class JsonWriter;

/// Monotonically increasing event count. All operations are lock-free and
/// safe from any thread.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (signed). Safe from any thread.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed log2-scale histogram of non-negative values (typically durations
/// in nanoseconds or set sizes). Bucket b holds values whose bit width is
/// b, i.e. [2^(b-1), 2^b - 1]; bucket 0 holds exact zeros. Recording is a
/// single relaxed fetch_add; quantiles are approximated by the upper bound
/// of the bucket containing the requested rank.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket `b` (2^b - 1; bucket 0 -> 0).
  static uint64_t BucketUpperBound(int b);
  static int BucketIndex(uint64_t value);

  struct Summary {
    uint64_t count = 0;
    uint64_t sum = 0;
    double mean = 0.0;
    /// Bucket-upper-bound approximations.
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t p99 = 0;
    uint64_t max = 0;  // upper bound of the highest non-empty bucket
  };
  /// Consistent-enough snapshot for reporting (individual loads are
  /// relaxed; concurrent writers may skew a bucket by a few events).
  Summary Summarize() const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Accumulated wall-clock of one named pipeline stage.
struct StageTime {
  std::string name;
  uint64_t wall_ns = 0;
  /// Number of timed sections folded into wall_ns (e.g. one per node for
  /// per-node stages).
  uint64_t count = 0;
};

/// True when `name` follows the documented scheme `tends.<module>.<name>`:
/// all lowercase, segments of [a-z0-9_], at least three dot-separated
/// segments, first segment exactly "tends". (tools/check_metrics_names.sh
/// enforces the same pattern over source literals.)
bool IsValidMetricName(std::string_view name);

/// Thread-safe registry of named counters, gauges and histograms plus
/// per-stage wall-clock and an embedded span Tracer. Registration takes a
/// mutex once per name; the returned references are stable for the
/// registry's lifetime, so hot paths resolve a metric once and then use
/// lock-free operations only.
///
/// Metric names must follow `tends.<module>.<name>` (checked; a bad name
/// is a programming error and aborts). Stage names are bare lowercase
/// identifiers ("imi", "parent_search"); they are reported under their own
/// manifest section rather than the metric namespace.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Adds `ns` of wall-clock to stage `stage` (registered on first use,
  /// reported in registration order).
  void AddStageTime(std::string_view stage, uint64_t ns);

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Value of a counter, or 0 when it was never registered.
  uint64_t CounterValue(std::string_view name) const;
  /// Accumulated wall-clock of a stage, or 0 when never recorded.
  uint64_t StageWallNs(std::string_view stage) const;

  /// Snapshots, sorted by name (stages: registration order).
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, int64_t>> GaugeValues() const;
  std::vector<std::pair<std::string, Histogram::Summary>> HistogramSummaries()
      const;
  std::vector<StageTime> StageTimes() const;

  /// Writes the registry's state as one JSON object with keys "counters",
  /// "gauges", "histograms", "stages" and "spans" (span aggregates from
  /// the tracer).
  void WriteJson(JsonWriter& writer) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<StageTime> stages_;
  Tracer tracer_;
};

/// RAII stage timer: adds the elapsed wall-clock to `registry`'s stage
/// `stage` on destruction. Null registry = disabled (no clock reads).
class ScopedStage {
 public:
  ScopedStage(MetricsRegistry* registry, const char* stage)
      : registry_(registry), stage_(stage) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedStage() {
    if (registry_ == nullptr) return;
    registry_->AddStageTime(
        stage_, static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count()));
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  MetricsRegistry* registry_;
  const char* stage_;
  std::chrono::steady_clock::time_point start_;
};

/// Identity of one run for the manifest header. `config` is flattened
/// key/value pairs (flag settings, dataset paths, ...).
struct RunManifest {
  std::string tool;
  std::vector<std::pair<std::string, std::string>> config;
  double wall_seconds = 0.0;
};

/// `git describe` of the built tree (baked in at configure time; "unknown"
/// when the build ran outside a git checkout).
const char* BuildGitDescribe();

/// Renders the full run manifest: header (tool, git, schema, wall-clock)
/// plus the registry's metrics sections.
std::string MetricsManifestJson(const RunManifest& manifest,
                                const MetricsRegistry& registry);

/// Writes MetricsManifestJson to `path` (atomic-enough: fails with IoError
/// on any write problem).
Status WriteMetricsManifest(const RunManifest& manifest,
                            const MetricsRegistry& registry,
                            const std::string& path);

/// Background progress printer: every `interval` it calls `format` on the
/// registry and writes the returned line to stderr (empty string = skip).
/// Driven by the same counters the manifest exports, so progress output and
/// manifest never disagree. Stops (and joins) on destruction.
class ProgressReporter {
 public:
  ProgressReporter(const MetricsRegistry* registry,
                   std::chrono::milliseconds interval,
                   std::function<std::string(const MetricsRegistry&)> format);
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Idempotent; prints one final line before stopping.
  void Stop();

 private:
  void Loop();
  void EmitOnce();

  const MetricsRegistry* registry_;
  const std::chrono::milliseconds interval_;
  std::function<std::string(const MetricsRegistry&)> format_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

// ------------------------------------------------------------------ macros
//
// All hot-path instrumentation goes through these macros so that
// -DTENDS_METRICS=OFF removes even the null-pointer branches. `registry`
// arguments are MetricsRegistry* expressions (usually context.metrics) and
// may be null at runtime — the enabled macros branch on that.

#if TENDS_METRICS_ENABLED

/// Resolves a counter once (outside a loop): Counter* or nullptr.
#define TENDS_METRIC_COUNTER(registry, name) \
  ((registry) != nullptr ? &(registry)->GetCounter(name) : nullptr)

/// Adds to a Counter* resolved by TENDS_METRIC_COUNTER (null-safe).
#define TENDS_COUNTER_ADD(counter, delta)            \
  do {                                               \
    ::tends::Counter* tends_c_ = (counter);          \
    if (tends_c_ != nullptr) tends_c_->Add(delta);   \
  } while (0)

/// One-shot counter add by name (cold paths only: takes the registry map
/// lock on first use of the name).
#define TENDS_METRIC_ADD(registry, name, delta)                        \
  do {                                                                 \
    ::tends::MetricsRegistry* tends_r_ = (registry);                   \
    if (tends_r_ != nullptr) tends_r_->GetCounter(name).Add(delta);    \
  } while (0)

/// One-shot histogram record by name (cold paths only).
#define TENDS_METRIC_RECORD(registry, name, value)                       \
  do {                                                                   \
    ::tends::MetricsRegistry* tends_r_ = (registry);                     \
    if (tends_r_ != nullptr) tends_r_->GetHistogram(name).Record(value); \
  } while (0)

/// One-shot gauge set by name (cold paths only: allocation sites and
/// end-of-run finalization, never inner loops). The canonical way to
/// register the `tends.mem.<artifact>_bytes` gauges.
#define TENDS_GAUGE_SET(registry, name, value)                         \
  do {                                                                 \
    ::tends::MetricsRegistry* tends_r_ = (registry);                   \
    if (tends_r_ != nullptr)                                           \
      tends_r_->GetGauge(name).Set(static_cast<int64_t>(value));       \
  } while (0)

/// RAII stage timer for the current scope.
#define TENDS_METRICS_STAGE(registry, stage) \
  ::tends::ScopedStage TENDS_CONCAT_(tends_stage_, __LINE__)(registry, stage)

/// RAII trace span for the current scope; optional trailing int64 detail.
#define TENDS_TRACE_SPAN(registry, ...)                             \
  ::tends::ScopedSpan TENDS_CONCAT_(tends_span_, __LINE__)(         \
      (registry) != nullptr ? &(registry)->tracer() : nullptr,      \
      __VA_ARGS__)

#else  // !TENDS_METRICS_ENABLED

// The (void) casts keep variables that only feed the macros "used" so the
// OFF build stays -Wunused-variable clean; the casts evaluate cheap
// pointer/integer expressions that the optimizer discards.
#define TENDS_METRIC_COUNTER(registry, name) \
  ((void)(registry), static_cast<::tends::Counter*>(nullptr))
#define TENDS_COUNTER_ADD(counter, delta) \
  do {                                    \
    (void)(counter);                      \
    (void)(delta);                        \
  } while (0)
#define TENDS_METRIC_ADD(registry, name, delta) \
  do {                                          \
    (void)(registry);                           \
    (void)(delta);                              \
  } while (0)
#define TENDS_METRIC_RECORD(registry, name, value) \
  do {                                             \
    (void)(registry);                              \
    (void)(value);                                 \
  } while (0)
#define TENDS_GAUGE_SET(registry, name, value) \
  do {                                         \
    (void)(registry);                          \
    (void)(value);                             \
  } while (0)
#define TENDS_METRICS_STAGE(registry, stage) \
  do {                                       \
    (void)(registry);                        \
  } while (0)
#define TENDS_TRACE_SPAN(registry, ...) \
  do {                                  \
    (void)(registry);                   \
  } while (0)

#endif  // TENDS_METRICS_ENABLED

#ifndef TENDS_CONCAT_
#define TENDS_CONCAT_INNER_(a, b) a##b
#define TENDS_CONCAT_(a, b) TENDS_CONCAT_INNER_(a, b)
#endif

}  // namespace tends

#endif  // TENDS_COMMON_METRICS_H_
