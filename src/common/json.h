#ifndef TENDS_COMMON_JSON_H_
#define TENDS_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"

namespace tends {

/// Minimal streaming JSON writer used for run manifests, diagnostics and
/// bench records. Emits compact, valid JSON; the caller is responsible for
/// well-formed nesting (unbalanced Begin/End pairs are caught by a
/// TENDS_CHECK in the destructor of debug-style usage via Finish()).
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("nodes"); w.Int(42);
///   w.Key("stages"); w.BeginArray(); w.String("imi"); w.EndArray();
///   w.EndObject();
///   std::string out = w.TakeString();
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Object key; must be followed by exactly one value (or container).
  void Key(std::string_view key);

  void String(std::string_view value);
  /// Exact-match overload: without it a string literal converts to bool
  /// (const char* -> bool is a standard conversion, string_view is not).
  void String(const char* value) { String(std::string_view(value)); }
  void Int(int64_t value);
  void Uint(uint64_t value);
  /// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Convenience: Key(key) + value.
  void KeyValue(std::string_view key, std::string_view value);
  void KeyValue(std::string_view key, const char* value) {
    KeyValue(key, std::string_view(value));
  }
  void KeyValue(std::string_view key, int64_t value);
  void KeyValue(std::string_view key, uint64_t value);
  void KeyValue(std::string_view key, double value);
  void KeyValue(std::string_view key, bool value);

  /// True once every opened container has been closed again.
  bool balanced() const { return depth_ == 0; }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void MaybeComma();

  std::string out_;
  int depth_ = 0;
  bool needs_comma_ = false;
  bool after_key_ = false;
};

/// Appends the JSON string escape of `value` (without quotes) to `out`.
void AppendJsonEscaped(std::string& out, std::string_view value);

/// Parsed JSON document node: a small recursive value tree, sufficient for
/// round-trip tests and for consuming the run manifests this library
/// writes. Numbers are stored as double (plus the int64 value when the
/// token was integral).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  int64_t int_value() const { return int_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  /// Nested lookup: Find("a") then Find("b") ...; null on any miss.
  const JsonValue* FindPath(std::initializer_list<std::string_view> keys) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d, int64_t i);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> values);
  static JsonValue MakeObject(std::map<std::string, JsonValue> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  int64_t int_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage is a Corruption error). Depth-limited to keep malicious inputs
/// from exhausting the stack.
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace tends

#endif  // TENDS_COMMON_JSON_H_
