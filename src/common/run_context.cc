#include "common/run_context.h"

namespace tends {

std::chrono::nanoseconds Deadline::Remaining() const {
  if (is_unlimited()) return std::chrono::nanoseconds::max();
  const auto now = Clock::now();
  if (now >= expires_at_) return std::chrono::nanoseconds(0);
  return std::chrono::duration_cast<std::chrono::nanoseconds>(expires_at_ -
                                                              now);
}

}  // namespace tends
