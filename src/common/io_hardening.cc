#include "common/io_hardening.h"

#include <istream>

#include "common/metrics.h"
#include "common/stringutil.h"

namespace tends {

const char* CorruptionKindName(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kBadToken:
      return "bad-token";
    case CorruptionKind::kWrongWidth:
      return "wrong-width";
    case CorruptionKind::kNonFinite:
      return "non-finite";
    case CorruptionKind::kOutOfRange:
      return "out-of-range";
    case CorruptionKind::kTruncation:
      return "truncation";
    case CorruptionKind::kBadStructure:
      return "bad-structure";
  }
  return "unknown";
}

void CorruptionReport::Record(CorruptionKind kind, uint64_t line,
                              std::string_view message) {
  KindStats& stats = kinds_[static_cast<int>(kind)];
  if (stats.count == 0) {
    stats.first_line = line;
    stats.first_message = std::string(message);
  }
  ++stats.count;
  ++total_;
}

std::string CorruptionReport::Summary() const {
  if (empty()) return "corruption report: clean";
  std::string out = StrFormat(
      "corruption report: %llu event%s, %llu record%s skipped",
      static_cast<unsigned long long>(total_), total_ == 1 ? "" : "s",
      static_cast<unsigned long long>(skipped_records_),
      skipped_records_ == 1 ? "" : "s");
  for (int k = 0; k < kNumCorruptionKinds; ++k) {
    const KindStats& stats = kinds_[k];
    if (stats.count == 0) continue;
    out += StrFormat("\n  %s: %llu (first %s: %s)",
                     CorruptionKindName(static_cast<CorruptionKind>(k)),
                     static_cast<unsigned long long>(stats.count),
                     stats.first_line == 0
                         ? "at end of input"
                         : StrFormat("at line %llu",
                                     static_cast<unsigned long long>(
                                         stats.first_line))
                               .c_str(),
                     stats.first_message.c_str());
  }
  return out;
}

void CorruptionReport::ExportTo(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->GetCounter("tends.io.corruption_events").Add(total_);
  metrics->GetCounter("tends.io.skipped_records").Add(skipped_records_);
  for (int k = 0; k < kNumCorruptionKinds; ++k) {
    std::string name = "tends.io.corruption.";
    for (const char* p = CorruptionKindName(static_cast<CorruptionKind>(k));
         *p != '\0'; ++p) {
      name += *p == '-' ? '_' : *p;
    }
    metrics->GetCounter(name).Add(kinds_[k].count);
  }
}

bool LineReader::Next(std::string& line) {
  if (!std::getline(in_, line)) return false;
  ++line_number_;
  return true;
}

}  // namespace tends
