#include "common/table.h"

#include <algorithm>
#include <fstream>

#include "common/logging.h"
#include "common/stringutil.h"

namespace tends {

Table::Table(std::vector<std::string> column_names)
    : columns_(std::move(column_names)) {}

Table& Table::AddRow() {
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::Add(std::string cell) {
  TENDS_CHECK(!rows_.empty()) << "Add() before AddRow()";
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::Add(const char* cell) { return Add(std::string(cell)); }

Table& Table::AddInt(int64_t value) { return Add(StrFormat("%lld", static_cast<long long>(value))); }

Table& Table::AddDouble(double value, int precision) {
  return Add(StrFormat("%.*f", precision, value));
}

void Table::PrintText(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << cell;
      if (c + 1 < columns_.size()) {
        os << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::PrintCsv(std::ostream& os) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << CsvEscape(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << ',';
      os << (c < row.size() ? CsvEscape(row[c]) : std::string());
    }
    os << '\n';
  }
}

Status Table::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  PrintCsv(out);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace tends
