#ifndef TENDS_COMMON_FAULT_INJECTION_H_
#define TENDS_COMMON_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <istream>
#include <memory>
#include <streambuf>
#include <string>

#include "common/durable_io.h"

namespace tends {

/// Knobs of the fault-injecting stream wrapper. All corruption is a pure
/// function of (payload, options) — the same seed reproduces the same
/// damage byte-for-byte, so failing configurations can be replayed in
/// tests and bug reports.
struct FaultInjectionOptions {
  uint64_t seed = 1;

  /// Per-byte probability of flipping one random bit of the byte.
  double bit_flip_rate = 0.0;

  /// Per-line probability of splicing a garbage token (e.g. "#$Gx7!") into
  /// the middle of the line.
  double garbage_token_rate = 0.0;

  /// Drop everything from this byte offset on (simulates a torn write /
  /// partial download). SIZE_MAX = no truncation.
  size_t truncate_at_byte = SIZE_MAX;

  /// Serve at most this many bytes per underlying read so that consumers
  /// see short reads and buffer boundaries in awkward places. 0 = serve
  /// everything at once.
  size_t max_read_chunk = 7;
};

/// Returns `payload` with the configured faults applied (bit flips, garbage
/// tokens, truncation — in that order, so truncation can cut a flipped
/// byte). Exposed separately from the streambuf so tests can inspect the
/// exact corrupted bytes.
std::string CorruptPayload(const std::string& payload,
                           const FaultInjectionOptions& options);

/// A read-only streambuf serving a corrupted copy of `payload` in short
/// chunks. Drive any std::istream consumer through it to test behaviour
/// under damaged input:
///
///   FaultInjectingStream in(clean_bytes, {.seed = 7, .bit_flip_rate = 1e-3});
///   auto result = ReadStatusMatrix(in, {.mode = IoMode::kPermissive}, &report);
class FaultInjectingStreambuf : public std::streambuf {
 public:
  FaultInjectingStreambuf(const std::string& payload,
                          const FaultInjectionOptions& options);

  /// The corrupted bytes this buffer serves.
  const std::string& corrupted() const { return data_; }

 protected:
  int_type underflow() override;

 private:
  std::string data_;
  size_t served_ = 0;
  size_t max_chunk_;
};

/// Convenience istream owning its FaultInjectingStreambuf.
class FaultInjectingStream : public std::istream {
 public:
  FaultInjectingStream(const std::string& payload,
                       const FaultInjectionOptions& options);

  const std::string& corrupted() const { return buffer_->corrupted(); }

 private:
  std::unique_ptr<FaultInjectingStreambuf> buffer_;
};

/// Scripted write-side faults for the durable-IO path (AtomicWriteFile):
/// transient attempt failures that a RetryPolicy should absorb, plus silent
/// payload damage (torn write, bit flip) that the CRC framing must catch on
/// the next read. Deterministic — the script fires in call order, never by
/// chance.
struct WriteFaultOptions {
  /// Fail the first N write attempts with a transient kIoError (the bytes
  /// never reach the temp file).
  int fail_writes = 0;

  /// After the write-failure budget is spent, fail the next N rename steps
  /// with a transient kIoError (the temp file was written and fsync'd, but
  /// never became the real file).
  int fail_renames = 0;

  /// Torn write: the first otherwise-successful write silently persists
  /// only this many bytes of the payload (the classic crash-mid-write
  /// artifact an atomic rename normally rules out). SIZE_MAX = off.
  size_t tear_at_byte = SIZE_MAX;

  /// Bit flip: the first otherwise-successful write silently inverts one
  /// bit of the byte at this offset (clamped to the payload; applied after
  /// tearing). SIZE_MAX = off.
  size_t flip_bit_at_byte = SIZE_MAX;
};

/// RAII installer: registers itself as the process-global durable-IO fault
/// injector on construction and uninstalls on destruction. Only one may be
/// live at a time; construct/destroy from single-threaded test code.
class ScopedWriteFaults : public WriteFaultInjector {
 public:
  explicit ScopedWriteFaults(WriteFaultOptions options);
  ~ScopedWriteFaults() override;

  ScopedWriteFaults(const ScopedWriteFaults&) = delete;
  ScopedWriteFaults& operator=(const ScopedWriteFaults&) = delete;

  Status OnWrite(const std::string& path, std::string* contents) override;
  Status OnRename(const std::string& temp_path,
                  const std::string& path) override;

  /// Observability for assertions: attempts seen and faults actually fired.
  int writes_seen() const { return writes_seen_; }
  int renames_seen() const { return renames_seen_; }
  int write_failures_injected() const { return write_failures_injected_; }
  int rename_failures_injected() const { return rename_failures_injected_; }
  bool tear_injected() const { return tear_injected_; }
  bool flip_injected() const { return flip_injected_; }

 private:
  WriteFaultOptions options_;
  int writes_seen_ = 0;
  int renames_seen_ = 0;
  int write_failures_injected_ = 0;
  int rename_failures_injected_ = 0;
  bool tear_injected_ = false;
  bool flip_injected_ = false;
};

}  // namespace tends

#endif  // TENDS_COMMON_FAULT_INJECTION_H_
