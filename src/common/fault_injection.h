#ifndef TENDS_COMMON_FAULT_INJECTION_H_
#define TENDS_COMMON_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <istream>
#include <memory>
#include <streambuf>
#include <string>

namespace tends {

/// Knobs of the fault-injecting stream wrapper. All corruption is a pure
/// function of (payload, options) — the same seed reproduces the same
/// damage byte-for-byte, so failing configurations can be replayed in
/// tests and bug reports.
struct FaultInjectionOptions {
  uint64_t seed = 1;

  /// Per-byte probability of flipping one random bit of the byte.
  double bit_flip_rate = 0.0;

  /// Per-line probability of splicing a garbage token (e.g. "#$Gx7!") into
  /// the middle of the line.
  double garbage_token_rate = 0.0;

  /// Drop everything from this byte offset on (simulates a torn write /
  /// partial download). SIZE_MAX = no truncation.
  size_t truncate_at_byte = SIZE_MAX;

  /// Serve at most this many bytes per underlying read so that consumers
  /// see short reads and buffer boundaries in awkward places. 0 = serve
  /// everything at once.
  size_t max_read_chunk = 7;
};

/// Returns `payload` with the configured faults applied (bit flips, garbage
/// tokens, truncation — in that order, so truncation can cut a flipped
/// byte). Exposed separately from the streambuf so tests can inspect the
/// exact corrupted bytes.
std::string CorruptPayload(const std::string& payload,
                           const FaultInjectionOptions& options);

/// A read-only streambuf serving a corrupted copy of `payload` in short
/// chunks. Drive any std::istream consumer through it to test behaviour
/// under damaged input:
///
///   FaultInjectingStream in(clean_bytes, {.seed = 7, .bit_flip_rate = 1e-3});
///   auto result = ReadStatusMatrix(in, {.mode = IoMode::kPermissive}, &report);
class FaultInjectingStreambuf : public std::streambuf {
 public:
  FaultInjectingStreambuf(const std::string& payload,
                          const FaultInjectionOptions& options);

  /// The corrupted bytes this buffer serves.
  const std::string& corrupted() const { return data_; }

 protected:
  int_type underflow() override;

 private:
  std::string data_;
  size_t served_ = 0;
  size_t max_chunk_;
};

/// Convenience istream owning its FaultInjectingStreambuf.
class FaultInjectingStream : public std::istream {
 public:
  FaultInjectingStream(const std::string& payload,
                       const FaultInjectionOptions& options);

  const std::string& corrupted() const { return buffer_->corrupted(); }

 private:
  std::unique_ptr<FaultInjectingStreambuf> buffer_;
};

}  // namespace tends

#endif  // TENDS_COMMON_FAULT_INJECTION_H_
