#include "common/trace_export.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <string>

#include "common/json.h"
#include "common/metrics.h"
#include "common/stringutil.h"

namespace tends {

namespace {

constexpr int64_t kTracePid = 1;

void WriteMetadataEvent(JsonWriter& writer, const char* kind, uint32_t tid,
                        const std::string& display_name) {
  writer.BeginObject();
  writer.KeyValue("name", kind);
  writer.KeyValue("ph", "M");
  writer.KeyValue("pid", kTracePid);
  writer.KeyValue("tid", static_cast<int64_t>(tid));
  writer.Key("args");
  writer.BeginObject();
  writer.KeyValue("name", display_name);
  writer.EndObject();
  writer.EndObject();
}

}  // namespace

std::string ChromeTraceJsonFromSpans(const TraceExportMeta& meta,
                                     const std::vector<TraceSpan>& spans,
                                     uint64_t dropped_spans) {
  JsonWriter writer;
  writer.BeginObject();
  // Viewers show ms ticks; the events themselves carry microsecond ts/dur
  // (the unit the trace-event format fixes).
  writer.KeyValue("displayTimeUnit", "ms");

  writer.Key("otherData");
  writer.BeginObject();
  writer.KeyValue("schema", "tends.trace.v1");
  writer.KeyValue("tool", meta.tool);
  writer.KeyValue("git", BuildGitDescribe());
  writer.KeyValue("dropped_spans", dropped_spans);
  writer.Key("config");
  writer.BeginObject();
  for (const auto& [key, value] : meta.config) {
    writer.KeyValue(key, value);
  }
  writer.EndObject();
  writer.EndObject();

  writer.Key("traceEvents");
  writer.BeginArray();
  WriteMetadataEvent(writer, "process_name", 0,
                     meta.tool.empty() ? "tends" : meta.tool);
  std::set<uint32_t> threads;
  for (const TraceSpan& span : spans) threads.insert(span.thread_index);
  for (uint32_t thread : threads) {
    WriteMetadataEvent(writer, "thread_name", thread,
                       thread == 0 ? "main" : StrFormat("worker-%u", thread));
  }
  for (const TraceSpan& span : spans) {
    writer.BeginObject();
    writer.KeyValue("name", span.name == nullptr ? "" : span.name);
    writer.KeyValue("cat", "tends");
    writer.KeyValue("ph", "X");
    writer.KeyValue("pid", kTracePid);
    writer.KeyValue("tid", static_cast<int64_t>(span.thread_index));
    writer.KeyValue("ts", static_cast<double>(span.start_ns) / 1000.0);
    writer.KeyValue("dur", static_cast<double>(span.duration_ns) / 1000.0);
    writer.Key("args");
    writer.BeginObject();
    writer.KeyValue("depth", static_cast<int64_t>(span.depth));
    if (span.detail >= 0) writer.KeyValue("detail", span.detail);
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.TakeString();
}

std::string ChromeTraceJson(const TraceExportMeta& meta, const Tracer& tracer) {
  return ChromeTraceJsonFromSpans(meta, tracer.Snapshot(), tracer.dropped());
}

Status WriteChromeTraceFile(const TraceExportMeta& meta, const Tracer& tracer,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ChromeTraceJson(meta, tracer) << "\n";
  out.flush();
  if (!out) return Status::IoError("failed writing " + path);
  return Status::OK();
}

Status ValidateChromeTraceJson(std::string_view json) {
  StatusOr<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;

  std::vector<std::string> errors;
  auto fail = [&](std::string message) {
    if (errors.size() < 8) errors.push_back(std::move(message));
  };

  if (!root.is_object()) {
    return Status::InvalidArgument("trace: top level is not an object");
  }
  const JsonValue* unit = root.Find("displayTimeUnit");
  if (unit == nullptr || unit->type() != JsonValue::Type::kString) {
    fail("missing displayTimeUnit");
  }
  const JsonValue* schema = root.FindPath({"otherData", "schema"});
  if (schema == nullptr || schema->string_value() != "tends.trace.v1") {
    fail("otherData.schema is not \"tends.trace.v1\"");
  }
  const JsonValue* config = root.FindPath({"otherData", "config"});
  if (config == nullptr || !config->is_object()) {
    fail("otherData.config missing");
  }

  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array() || events->array().empty()) {
    fail("traceEvents missing or empty");
  } else {
    size_t process_names = 0;
    std::set<int64_t> named_threads;
    std::set<int64_t> used_threads;
    double last_ts = 0.0;
    size_t index = 0;
    for (const JsonValue& event : events->array()) {
      const std::string prefix =
          "traceEvents[" + std::to_string(index++) + "]: ";
      if (!event.is_object()) {
        fail(prefix + "not an object");
        continue;
      }
      const JsonValue* name = event.Find("name");
      if (name == nullptr || name->type() != JsonValue::Type::kString ||
          name->string_value().empty()) {
        fail(prefix + "missing name");
        continue;
      }
      const JsonValue* ph = event.Find("ph");
      const std::string phase =
          ph != nullptr && ph->type() == JsonValue::Type::kString
              ? ph->string_value()
              : "";
      if (phase != "X" && phase != "M") {
        fail(prefix + "ph must be \"X\" or \"M\"");
        continue;
      }
      const JsonValue* pid = event.Find("pid");
      const JsonValue* tid = event.Find("tid");
      if (pid == nullptr || pid->type() != JsonValue::Type::kNumber ||
          tid == nullptr || tid->type() != JsonValue::Type::kNumber) {
        fail(prefix + "missing numeric pid/tid");
        continue;
      }
      if (phase == "M") {
        if (name->string_value() == "process_name") ++process_names;
        if (name->string_value() == "thread_name") {
          named_threads.insert(tid->int_value());
        }
        continue;
      }
      const JsonValue* ts = event.Find("ts");
      const JsonValue* dur = event.Find("dur");
      if (ts == nullptr || ts->type() != JsonValue::Type::kNumber ||
          ts->number_value() < 0.0) {
        fail(prefix + "complete event missing non-negative ts");
        continue;
      }
      if (dur == nullptr || dur->type() != JsonValue::Type::kNumber ||
          dur->number_value() < 0.0) {
        fail(prefix + "complete event missing non-negative dur");
      }
      const JsonValue* depth = event.FindPath({"args", "depth"});
      if (depth == nullptr || depth->type() != JsonValue::Type::kNumber ||
          depth->int_value() < 0) {
        fail(prefix + "args.depth missing");
      }
      if (ts->number_value() < last_ts) {
        fail(prefix + "ts not nondecreasing (events must stay sorted)");
      }
      last_ts = ts->number_value();
      used_threads.insert(tid->int_value());
    }
    if (process_names != 1) {
      fail("expected exactly one process_name metadata event, found " +
           std::to_string(process_names));
    }
    for (int64_t thread : used_threads) {
      if (named_threads.count(thread) == 0) {
        fail("tid " + std::to_string(thread) + " has no thread_name track");
      }
    }
  }

  if (errors.empty()) return Status::OK();
  std::string joined = "invalid tends.trace.v1 timeline:";
  for (const std::string& error : errors) joined += "\n  " + error;
  return Status::InvalidArgument(joined);
}

}  // namespace tends
