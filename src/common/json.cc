#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/stringutil.h"

namespace tends {

// ----------------------------------------------------------------- writer

void AppendJsonEscaped(std::string& out, std::string_view value) {
  for (unsigned char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (needs_comma_) out_ += ',';
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  ++depth_;
  needs_comma_ = false;
}

void JsonWriter::EndObject() {
  out_ += '}';
  --depth_;
  needs_comma_ = true;
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  ++depth_;
  needs_comma_ = false;
}

void JsonWriter::EndArray() {
  out_ += ']';
  --depth_;
  needs_comma_ = true;
}

void JsonWriter::Key(std::string_view key) {
  if (needs_comma_) out_ += ',';
  out_ += '"';
  AppendJsonEscaped(out_, key);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += '"';
  AppendJsonEscaped(out_, value);
  out_ += '"';
  needs_comma_ = true;
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  needs_comma_ = true;
}

void JsonWriter::Uint(uint64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  needs_comma_ = true;
}

void JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
  }
  needs_comma_ = true;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  needs_comma_ = true;
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  needs_comma_ = true;
}

void JsonWriter::KeyValue(std::string_view key, std::string_view value) {
  Key(key);
  String(value);
}
void JsonWriter::KeyValue(std::string_view key, int64_t value) {
  Key(key);
  Int(value);
}
void JsonWriter::KeyValue(std::string_view key, uint64_t value) {
  Key(key);
  Uint(value);
}
void JsonWriter::KeyValue(std::string_view key, double value) {
  Key(key);
  Double(value);
}
void JsonWriter::KeyValue(std::string_view key, bool value) {
  Key(key);
  Bool(value);
}

// ----------------------------------------------------------------- value

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d, int64_t i) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> values) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(values);
  return v;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::FindPath(
    std::initializer_list<std::string_view> keys) const {
  const JsonValue* current = this;
  for (std::string_view key : keys) {
    if (current == nullptr) return nullptr;
    current = current->Find(key);
  }
  return current;
}

// ----------------------------------------------------------------- parser

namespace {

constexpr int kMaxParseDepth = 64;

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    TENDS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::Corruption("trailing garbage after JSON document");
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return Status::Corruption(StrFormat("JSON parse error at offset %zu: %s",
                                        pos_, what.c_str()));
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxParseDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      TENDS_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::MakeString(std::move(s));
    }
    if (ConsumeLiteral("null")) return JsonValue::MakeNull();
    if (ConsumeLiteral("true")) return JsonValue::MakeBool(true);
    if (ConsumeLiteral("false")) return JsonValue::MakeBool(false);
    return ParseNumber();
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      TENDS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      TENDS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    return JsonValue::MakeObject(std::move(members));
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> values;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::MakeArray(std::move(values));
    while (true) {
      TENDS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      values.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    return JsonValue::MakeArray(std::move(values));
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          uint32_t code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // UTF-8 encode (surrogate pairs are not recombined; the writer
          // only emits \u for control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = (c == '-' || c == '+') ? integral : false;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty()) return Error("expected a value");
    StatusOr<double> d = ParseDouble(token);
    if (!d.ok()) return Error("bad number '" + std::string(token) + "'");
    int64_t i = 0;
    if (integral) {
      StatusOr<int64_t> parsed = ParseInt64(token);
      if (parsed.ok()) i = *parsed;
    }
    if (!integral || i == 0) i = static_cast<int64_t>(*d);
    return JsonValue::MakeNumber(*d, i);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace tends
