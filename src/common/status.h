#ifndef TENDS_COMMON_STATUS_H_
#define TENDS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tends {

/// Error categories used across the library. Mirrors the RocksDB/Abseil
/// convention: a small closed set of codes plus a human-readable message.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIoError = 7,
  kCorruption = 8,
  kUnimplemented = 9,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument",
/// ...). Never returns null.
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. The library does not throw across
/// public API boundaries; fallible operations return Status (or StatusOr<T>).
///
/// Status is cheap to copy in the common OK case (no allocation) and carries
/// a code plus message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code with a
  /// non-empty message is allowed but the message is ignored by ok().
  Status(StatusCode code, std::string_view message)
      : code_(code), message_(message) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status IoError(std::string_view msg) {
    return Status(StatusCode::kIoError, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Evaluates `expr` (a Status expression); on error, returns it from the
/// enclosing function.
#define TENDS_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::tends::Status _tends_status = (expr);         \
    if (!_tends_status.ok()) return _tends_status;  \
  } while (false)

}  // namespace tends

#endif  // TENDS_COMMON_STATUS_H_
