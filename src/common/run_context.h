#ifndef TENDS_COMMON_RUN_CONTEXT_H_
#define TENDS_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tends {

class MetricsRegistry;

/// Wall-clock budget for a unit of work, measured on the monotonic
/// (steady) clock so that system-time adjustments can never expire or
/// extend it. Default-constructed deadlines are unlimited and cost nothing
/// to check.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited: Expired() is always false and never reads the clock.
  Deadline() = default;

  /// Expires `budget` after the call.
  static Deadline After(std::chrono::nanoseconds budget) {
    return Deadline(Clock::now() + budget);
  }
  static Deadline AfterMillis(int64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }
  /// Expired from the start; work observing it returns its initial
  /// best-so-far state (used by tests and admission control).
  static Deadline Expired() { return Deadline(Clock::time_point::min()); }
  static Deadline Infinite() { return Deadline(); }

  bool is_unlimited() const { return expires_at_ == Clock::time_point::max(); }

  /// True once the budget is exhausted. Monotone: never flips back.
  bool HasExpired() const {
    if (is_unlimited()) return false;
    return Clock::now() >= expires_at_;
  }

  /// Time left, clamped to zero. Unlimited deadlines report the maximum
  /// representable duration.
  std::chrono::nanoseconds Remaining() const;

 private:
  explicit Deadline(Clock::time_point expires_at) : expires_at_(expires_at) {}

  Clock::time_point expires_at_ = Clock::time_point::max();
};

/// Thread-safe, one-way cooperative cancellation flag. Any thread may
/// request cancellation; workers poll Cancelled() at convenient points and
/// wind down returning their best-so-far result. Cancellation is sticky.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void RequestCancellation() { cancelled_.store(true, std::memory_order_relaxed); }
  bool Cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Ambient execution constraints handed down to long-running library calls
/// (a deadline plus an optional external cancellation source). The default
/// context is unconstrained, and checking it is branch-cheap, so hot loops
/// can poll it unconditionally.
///
/// Contract (see DESIGN.md, "Robustness & error-handling contract"): an
/// algorithm that observes ShouldStop() does not abort — it stops starting
/// new work and returns the best partial result it has, flagging the early
/// exit in its diagnostics.
struct RunContext {
  Deadline deadline;
  /// Not owned; must outlive every call using this context. May be null.
  const CancellationToken* cancellation = nullptr;
  /// Observability sink (common/metrics.h). Not owned; may be null — all
  /// instrumentation sites treat null as "metrics disabled" and algorithms
  /// produce bit-identical results either way. Must outlive every call
  /// using this context.
  MetricsRegistry* metrics = nullptr;

  /// Constraint check only — a context that merely carries a metrics
  /// registry is still unconstrained.
  bool IsUnconstrained() const {
    return deadline.is_unlimited() && cancellation == nullptr;
  }

  bool ShouldStop() const {
    if (cancellation != nullptr && cancellation->Cancelled()) return true;
    return deadline.HasExpired();
  }
};

/// Amortizes RunContext::ShouldStop() for per-item hot loops: reads the
/// clock only every `stride` calls, and latches once stopped. A checker on
/// an unconstrained context never reads the clock at all.
class StopChecker {
 public:
  explicit StopChecker(const RunContext& context, uint32_t stride = 64)
      : context_(context),
        stride_(stride == 0 ? 1 : stride),
        unconstrained_(context.IsUnconstrained()) {}

  /// True once the context asked to stop; sticky afterwards.
  bool ShouldStop() {
    if (unconstrained_) return false;
    if (stopped_) return true;
    if (++calls_ % stride_ != 0) return false;
    stopped_ = context_.ShouldStop();
    return stopped_;
  }

  /// Unthrottled check, for loop boundaries where each iteration is heavy.
  bool ShouldStopNow() {
    if (unconstrained_) return false;
    if (!stopped_) stopped_ = context_.ShouldStop();
    return stopped_;
  }

 private:
  const RunContext& context_;
  const uint32_t stride_;
  const bool unconstrained_;
  uint32_t calls_ = 0;
  bool stopped_ = false;
};

}  // namespace tends

#endif  // TENDS_COMMON_RUN_CONTEXT_H_
