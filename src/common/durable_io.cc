#include "common/durable_io.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <thread>

#include "common/metrics.h"
#include "common/random.h"
#include "common/stringutil.h"

namespace tends {

namespace {

std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

Status ErrnoStatus(const char* what, const std::string& path) {
  return Status::IoError(
      StrFormat("%s %s: %s", what, path.c_str(), strerror(errno)));
}

void PutU32Le(uint32_t value, std::string* out) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
}

uint32_t GetU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

std::atomic<WriteFaultInjector*> g_write_fault_injector{nullptr};

/// Fsyncs the directory containing `path` so the rename itself is durable.
/// Best-effort: some filesystems refuse directory fsync; the write is
/// already atomic without it, just potentially not yet on stable storage.
void SyncParentDirectory(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)fsync(fd);
  close(fd);
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t crc) {
  static const std::array<uint32_t, 256> kTable = MakeCrc32Table();
  crc = ~crc;
  for (char byte : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(byte)) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

void AppendFrame(std::string_view payload, std::string* out) {
  out->append(kFrameMagic);
  PutU32Le(static_cast<uint32_t>(payload.size()), out);
  PutU32Le(Crc32(payload), out);
  out->append(payload);
}

StatusOr<std::vector<std::string_view>> ParseFrames(std::string_view data) {
  std::vector<std::string_view> payloads;
  size_t offset = 0;
  while (offset < data.size()) {
    if (data.size() - offset < kFrameHeaderBytes) {
      return Status::Corruption(StrFormat(
          "torn frame %zu at byte %zu: %zu trailing bytes, need a %zu-byte "
          "header",
          payloads.size(), offset, data.size() - offset, kFrameHeaderBytes));
    }
    if (data.substr(offset, kFrameMagic.size()) != kFrameMagic) {
      return Status::Corruption(
          StrFormat("bad frame magic in frame %zu at byte %zu",
                    payloads.size(), offset));
    }
    const uint32_t length = GetU32Le(data.data() + offset + 4);
    const uint32_t expected_crc = GetU32Le(data.data() + offset + 8);
    offset += kFrameHeaderBytes;
    if (data.size() - offset < length) {
      return Status::Corruption(StrFormat(
          "torn frame %zu: payload declares %u bytes but only %zu remain",
          payloads.size(), length, data.size() - offset));
    }
    std::string_view payload = data.substr(offset, length);
    const uint32_t actual_crc = Crc32(payload);
    if (actual_crc != expected_crc) {
      return Status::Corruption(StrFormat(
          "checksum mismatch in frame %zu: stored %08x, computed %08x",
          payloads.size(), expected_crc, actual_crc));
    }
    payloads.push_back(payload);
    offset += length;
  }
  return payloads;
}

Status RetryWithBackoff(const RetryPolicy& policy, const RunContext& context,
                        const std::function<Status()>& op, Counter* retries) {
  const uint32_t attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  // Deterministic jitter stream: reproducible backoff schedules in tests.
  SplitMix64 jitter_stream(0x7E7D5 /* "tends" on a phone pad */);
  std::chrono::nanoseconds backoff = policy.initial_backoff;
  Status last = Status::OK();
  for (uint32_t attempt = 1;; ++attempt) {
    last = op();
    // Only kIoError is transient; anything else describes the data or the
    // request and would fail identically on every retry.
    if (last.ok() || !last.IsIoError()) return last;
    if (attempt >= attempts || context.ShouldStop()) return last;
    double scale = 1.0;
    if (policy.jitter > 0.0) {
      const double unit =
          static_cast<double>(jitter_stream.Next() >> 11) * 0x1.0p-53;
      scale = 1.0 - policy.jitter + 2.0 * policy.jitter * unit;
    }
    auto sleep_for = std::chrono::nanoseconds(
        static_cast<int64_t>(static_cast<double>(backoff.count()) * scale));
    // Deadline-aware: never sleep past the budget — if the wait cannot
    // complete in time there is no point starting it.
    if (sleep_for > context.deadline.Remaining()) return last;
    if (sleep_for.count() > 0) std::this_thread::sleep_for(sleep_for);
    backoff = std::chrono::nanoseconds(static_cast<int64_t>(
        static_cast<double>(backoff.count()) * policy.backoff_multiplier));
    if (retries != nullptr) retries->Add(1);
  }
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string temp_path = path + ".tmp";
  std::string bytes(contents);
  WriteFaultInjector* injector =
      g_write_fault_injector.load(std::memory_order_acquire);
  if (injector != nullptr) {
    Status injected = injector->OnWrite(path, &bytes);
    if (!injected.ok()) return injected;
  }

  int fd = open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", temp_path);
  Status status = Status::OK();
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      status = ErrnoStatus("write", temp_path);
      break;
    }
    written += static_cast<size_t>(n);
  }
  if (status.ok() && fsync(fd) != 0) status = ErrnoStatus("fsync", temp_path);
  if (close(fd) != 0 && status.ok()) status = ErrnoStatus("close", temp_path);
  if (status.ok() && injector != nullptr) {
    status = injector->OnRename(temp_path, path);
  }
  if (status.ok() && rename(temp_path.c_str(), path.c_str()) != 0) {
    status = ErrnoStatus("rename", temp_path);
  }
  if (!status.ok()) {
    (void)unlink(temp_path.c_str());
    return status;
  }
  SyncParentDirectory(path);
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(StrFormat("%s does not exist", path.c_str()));
    }
    return ErrnoStatus("open", path);
  }
  std::string data;
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = ErrnoStatus("read", path);
      close(fd);
      return status;
    }
    if (n == 0) break;
    data.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  return data;
}

Status EnsureDirectory(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  if (mkdir(path.c_str(), 0755) == 0) return Status::OK();
  if (errno == EEXIST) {
    struct stat st;
    if (stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      return Status::OK();
    }
    return Status::IoError(
        StrFormat("%s exists and is not a directory", path.c_str()));
  }
  return ErrnoStatus("mkdir", path);
}

void SetWriteFaultInjectorForTest(WriteFaultInjector* injector) {
  g_write_fault_injector.store(injector, std::memory_order_release);
}

}  // namespace tends
