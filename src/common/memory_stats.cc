#include "common/memory_stats.h"

#include <fstream>
#include <sstream>
#include <string>

#include "common/metrics.h"

namespace tends {

namespace {

std::optional<int64_t> ReadProcSelfStatusBytes(std::string_view key) {
  std::ifstream in("/proc/self/status", std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return ParseProcStatusBytes(buffer.str(), key);
}

}  // namespace

std::optional<int64_t> ParseProcStatusBytes(std::string_view status_text,
                                            std::string_view key) {
  size_t pos = 0;
  while (pos < status_text.size()) {
    size_t eol = status_text.find('\n', pos);
    std::string_view line = status_text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? status_text.size() : eol + 1;

    // Exact "<key>:" prefix; "VmHWMx:" must not match "VmHWM".
    if (line.size() <= key.size() || line.substr(0, key.size()) != key ||
        line[key.size()] != ':') {
      continue;
    }
    std::string_view rest = line.substr(key.size() + 1);
    size_t digits = 0;
    while (digits < rest.size() && (rest[digits] == ' ' || rest[digits] == '\t')) {
      ++digits;
    }
    rest = rest.substr(digits);
    int64_t kb = 0;
    size_t consumed = 0;
    while (consumed < rest.size() && rest[consumed] >= '0' &&
           rest[consumed] <= '9') {
      int digit = rest[consumed] - '0';
      if (kb > (INT64_MAX - digit) / 10) return std::nullopt;  // overflow
      kb = kb * 10 + digit;
      ++consumed;
    }
    if (consumed == 0) return std::nullopt;  // no number after the key
    rest = rest.substr(consumed);
    while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
      rest.remove_prefix(1);
    }
    while (!rest.empty() &&
           (rest.back() == ' ' || rest.back() == '\t' || rest.back() == '\r')) {
      rest.remove_suffix(1);
    }
    if (rest != "kB") return std::nullopt;  // kernel always reports kB
    if (kb > INT64_MAX / 1024) return std::nullopt;
    return kb * 1024;
  }
  return std::nullopt;
}

std::optional<int64_t> ReadPeakRssBytes() {
  return ReadProcSelfStatusBytes("VmHWM");
}

std::optional<int64_t> ReadCurrentRssBytes() {
  return ReadProcSelfStatusBytes("VmRSS");
}

void RecordRunStats(MetricsRegistry* registry) {
#if TENDS_METRICS_ENABLED
  if (registry == nullptr) return;
  if (std::optional<int64_t> peak = ReadPeakRssBytes(); peak.has_value()) {
    TENDS_GAUGE_SET(registry, "tends.mem.peak_rss_bytes", *peak);
  }
  if (std::optional<int64_t> rss = ReadCurrentRssBytes(); rss.has_value()) {
    TENDS_GAUGE_SET(registry, "tends.mem.current_rss_bytes", *rss);
  }
  TENDS_GAUGE_SET(registry, "tends.trace.dropped_spans",
                  registry->tracer().dropped());
#else
  (void)registry;
#endif
}

}  // namespace tends
