#include "common/flags.h"

#include "common/stringutil.h"

namespace tends {

FlagParser::FlagParser(std::string program_description)
    : program_description_(std::move(program_description)) {}

void FlagParser::AddString(const std::string& name, std::string* destination,
                           const std::string& description) {
  flags_[name] = {Type::kString, destination, description, *destination};
}

void FlagParser::AddInt64(const std::string& name, int64_t* destination,
                          const std::string& description) {
  flags_[name] = {Type::kInt64, destination, description,
                  StrFormat("%lld", static_cast<long long>(*destination))};
}

void FlagParser::AddUint32(const std::string& name, uint32_t* destination,
                           const std::string& description) {
  flags_[name] = {Type::kUint32, destination, description,
                  StrFormat("%u", *destination)};
}

void FlagParser::AddDouble(const std::string& name, double* destination,
                           const std::string& description) {
  flags_[name] = {Type::kDouble, destination, description,
                  StrFormat("%g", *destination)};
}

void FlagParser::AddBool(const std::string& name, bool* destination,
                         const std::string& description) {
  flags_[name] = {Type::kBool, destination, description,
                  *destination ? "true" : "false"};
}

Status FlagParser::SetValue(const std::string& name, Flag& flag,
                            const std::string& value) {
  switch (flag.type) {
    case Type::kString:
      *static_cast<std::string*>(flag.destination) = value;
      return Status::OK();
    case Type::kInt64: {
      TENDS_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(value));
      *static_cast<int64_t*>(flag.destination) = parsed;
      return Status::OK();
    }
    case Type::kUint32: {
      TENDS_ASSIGN_OR_RETURN(uint32_t parsed, ParseUint32(value));
      *static_cast<uint32_t*>(flag.destination) = parsed;
      return Status::OK();
    }
    case Type::kDouble: {
      TENDS_ASSIGN_OR_RETURN(double parsed, ParseDouble(value));
      *static_cast<double*>(flag.destination) = parsed;
      return Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.destination) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.destination) = false;
      } else {
        return Status::InvalidArgument(
            StrFormat("--%s expects true/false, got '%s'", name.c_str(),
                      value.c_str()));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag type");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  positional_.clear();
  explicitly_set_.clear();
  if (argc > 0) program_name_ = argv[0];
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (flags_done || !StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    if (arg == "--help") return Status::NotFound(Usage());
    std::string body = arg.substr(2);
    std::string name = body;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name + "\n" + Usage());
    }
    if (!has_value) {
      if (it->second.type == Type::kBool) {
        value = "true";  // "--flag" means true
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
    }
    TENDS_RETURN_IF_ERROR(SetValue(name, it->second, value));
    explicitly_set_.insert(name);
  }
  return Status::OK();
}

std::string FlagParser::Usage() const {
  std::string usage = program_description_ + "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    usage += StrFormat("  --%-24s %s (default: %s)\n", name.c_str(),
                       flag.description.c_str(), flag.default_value.c_str());
  }
  return usage;
}

}  // namespace tends
