#ifndef TENDS_COMMON_TRACE_H_
#define TENDS_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tends {

/// One completed span: a named, timed section of work recorded by a
/// ScopedSpan. Times are nanoseconds relative to the owning Tracer's
/// construction (so spans from different threads share one timeline).
struct TraceSpan {
  /// Static string (macro-site literal); never owned.
  const char* name = nullptr;
  /// Optional payload, e.g. the node id of a parent search; -1 = none.
  int64_t detail = -1;
  /// Dense per-tracer index of the recording thread (registration order).
  uint32_t thread_index = 0;
  /// Nesting depth at the time the span opened (0 = top level).
  uint32_t depth = 0;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
};

/// Aggregate view of all spans sharing a name.
struct TraceSummary {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
};

/// Span collector with per-thread buffers: recording takes the recording
/// thread's own buffer lock (uncontended except during Drain), so tracing
/// scales with worker count. Buffers are registered lazily the first time
/// a thread records into a given tracer and are owned by the tracer.
///
/// A null Tracer* in ScopedSpan is the disabled path: no clock reads, no
/// allocation, a single branch per macro site.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Nanoseconds since this tracer was constructed (steady clock).
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Appends one completed span to the calling thread's buffer. Spans
  /// beyond the per-thread cap are counted as dropped instead of stored.
  void Record(const char* name, int64_t detail, uint32_t depth,
              int64_t start_ns, int64_t duration_ns);

  /// Moves out every buffered span (all threads), sorted by start time.
  /// Safe to call concurrently with Record; typically called once after
  /// the traced work has joined.
  std::vector<TraceSpan> Drain();

  /// Copies out every buffered span without clearing the buffers, in the
  /// same order as Drain. Lets the timeline exporter and the manifest's
  /// span summaries observe the same spans (export does not consume).
  std::vector<TraceSpan> Snapshot() const;

  /// Per-name aggregation of the currently buffered spans (does not
  /// drain).
  std::vector<TraceSummary> Summaries() const;

  /// Number of threads that have recorded into this tracer.
  uint32_t num_threads() const;

  /// Spans discarded because a thread buffer hit its cap.
  uint64_t dropped() const;

  /// Per-thread span cap; generous for per-node spans on paper-scale runs
  /// while bounding memory on runaway instrumentation.
  static constexpr size_t kMaxSpansPerThread = 1 << 17;

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceSpan> spans;
    uint64_t dropped = 0;
    uint32_t index = 0;
  };

  ThreadBuffer* LocalBuffer();

  const uint64_t id_;  // process-unique, for thread-local slot validation
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::map<std::thread::id, ThreadBuffer*> by_thread_;
};

/// RAII span: opens on construction, records into the tracer on
/// destruction. A null tracer disables it entirely.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name, int64_t detail = -1);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  int64_t detail_;
  int64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace tends

#endif  // TENDS_COMMON_TRACE_H_
