#ifndef TENDS_COMMON_TRACE_EXPORT_H_
#define TENDS_COMMON_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/trace.h"

namespace tends {

/// Run identity carried in the exported timeline's `otherData` block, so a
/// trace file is self-describing (which tool produced it, with which
/// configuration) when opened days later in a viewer.
struct TraceExportMeta {
  std::string tool;
  std::vector<std::pair<std::string, std::string>> config;
};

/// Renders spans as Chrome-trace-event JSON (the "JSON object format"
/// understood by chrome://tracing and Perfetto): one complete event
/// (`"ph":"X"`, microsecond ts/dur) per span on a per-thread track, one
/// `thread_name` metadata event per track, a `process_name` metadata event
/// carrying the tool, and an `otherData` object with the run config and
/// the dropped-span count (schema tag "tends.trace.v1"). Span `detail`
/// payloads (node ids) and nesting depth are emitted under `args`.
///
/// `spans` must be sorted by start time (the order Tracer::Drain and
/// Tracer::Snapshot produce).
std::string ChromeTraceJsonFromSpans(const TraceExportMeta& meta,
                                     const std::vector<TraceSpan>& spans,
                                     uint64_t dropped_spans);

/// Snapshots `tracer` (without draining it — manifest span summaries still
/// see every span afterwards) and renders the timeline.
std::string ChromeTraceJson(const TraceExportMeta& meta, const Tracer& tracer);

/// ChromeTraceJson written to `path`; IoError on any write problem.
Status WriteChromeTraceFile(const TraceExportMeta& meta, const Tracer& tracer,
                            const std::string& path);

/// Structural validator for an exported timeline (the trace-side
/// counterpart of tools/validate_bench_json): parses `json` and checks the
/// shape a viewer relies on — object root, non-empty `traceEvents`, every
/// event carrying name/ph/pid/tid, complete events with non-negative
/// microsecond ts/dur in nondecreasing ts order, exactly one process_name
/// metadata event, a thread_name track for every tid used, and the
/// "tends.trace.v1" schema tag. Returns the first few violations in the
/// error message.
Status ValidateChromeTraceJson(std::string_view json);

}  // namespace tends

#endif  // TENDS_COMMON_TRACE_EXPORT_H_
