#include "common/fault_injection.h"

#include <algorithm>
#include <iterator>

#include "common/random.h"

namespace tends {

namespace {

// Printable junk guaranteed to parse as neither an integer, a double, nor a
// 0/1 status token.
constexpr const char* kGarbageTokens[] = {"#$Gx7!", "NaNbUt", "0xZZ", "~~~",
                                          "<?>", "eE+bad"};

std::string MakeGarbageToken(Rng& rng) {
  return kGarbageTokens[rng.NextBounded(std::size(kGarbageTokens))];
}

}  // namespace

std::string CorruptPayload(const std::string& payload,
                           const FaultInjectionOptions& options) {
  Rng rng(options.seed);
  std::string data = payload;

  // Bit flips: each byte independently gets one random bit inverted.
  if (options.bit_flip_rate > 0.0) {
    for (char& byte : data) {
      if (rng.NextBernoulli(options.bit_flip_rate)) {
        byte = static_cast<char>(static_cast<unsigned char>(byte) ^
                                 (1u << rng.NextBounded(8)));
      }
    }
  }

  // Garbage tokens: per line, splice junk at a random interior position.
  if (options.garbage_token_rate > 0.0) {
    std::string spliced;
    spliced.reserve(data.size() + 16);
    size_t line_start = 0;
    while (line_start <= data.size()) {
      size_t line_end = data.find('\n', line_start);
      if (line_end == std::string::npos) line_end = data.size();
      std::string line = data.substr(line_start, line_end - line_start);
      if (!line.empty() && rng.NextBernoulli(options.garbage_token_rate)) {
        const size_t at = rng.NextBounded(line.size() + 1);
        line.insert(at, " " + MakeGarbageToken(rng) + " ");
      }
      spliced += line;
      if (line_end < data.size()) spliced += '\n';
      if (line_end >= data.size()) break;
      line_start = line_end + 1;
    }
    data = std::move(spliced);
  }

  // Truncation last: a torn write cuts whatever bytes were on the wire.
  if (options.truncate_at_byte < data.size()) {
    data.resize(options.truncate_at_byte);
  }
  return data;
}

FaultInjectingStreambuf::FaultInjectingStreambuf(
    const std::string& payload, const FaultInjectionOptions& options)
    : data_(CorruptPayload(payload, options)),
      max_chunk_(options.max_read_chunk == 0 ? data_.size()
                                             : options.max_read_chunk) {}

FaultInjectingStreambuf::int_type FaultInjectingStreambuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  if (served_ >= data_.size()) return traits_type::eof();
  // Serve the next short chunk.
  char* begin = data_.data() + served_;
  const size_t len = std::min(max_chunk_, data_.size() - served_);
  served_ += len;
  setg(begin, begin, begin + len);
  return traits_type::to_int_type(*gptr());
}

FaultInjectingStream::FaultInjectingStream(const std::string& payload,
                                           const FaultInjectionOptions& options)
    : std::istream(nullptr),
      buffer_(std::make_unique<FaultInjectingStreambuf>(payload, options)) {
  rdbuf(buffer_.get());
}

ScopedWriteFaults::ScopedWriteFaults(WriteFaultOptions options)
    : options_(options) {
  SetWriteFaultInjectorForTest(this);
}

ScopedWriteFaults::~ScopedWriteFaults() { SetWriteFaultInjectorForTest(nullptr); }

Status ScopedWriteFaults::OnWrite(const std::string& path,
                                  std::string* contents) {
  ++writes_seen_;
  if (write_failures_injected_ < options_.fail_writes) {
    ++write_failures_injected_;
    return Status::IoError("injected transient write failure for " + path);
  }
  if (!tear_injected_ && options_.tear_at_byte != SIZE_MAX) {
    tear_injected_ = true;
    if (options_.tear_at_byte < contents->size()) {
      contents->resize(options_.tear_at_byte);
    }
  }
  if (!flip_injected_ && options_.flip_bit_at_byte != SIZE_MAX &&
      !contents->empty()) {
    flip_injected_ = true;
    const size_t at = std::min(options_.flip_bit_at_byte, contents->size() - 1);
    (*contents)[at] = static_cast<char>(
        static_cast<unsigned char>((*contents)[at]) ^ 0x04u);
  }
  return Status::OK();
}

Status ScopedWriteFaults::OnRename(const std::string& temp_path,
                                   const std::string& path) {
  (void)temp_path;
  ++renames_seen_;
  if (rename_failures_injected_ < options_.fail_renames) {
    ++rename_failures_injected_;
    return Status::IoError("injected transient rename failure for " + path);
  }
  return Status::OK();
}

}  // namespace tends
