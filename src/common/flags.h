#ifndef TENDS_COMMON_FLAGS_H_
#define TENDS_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace tends {

/// Minimal command-line flag parser for the CLI tools and examples.
///
/// Flags are registered with a name, a description and a pointer to their
/// destination; Parse consumes "--name=value" and "--name value" forms
/// (plus "--bool_flag" as true) and leaves positional arguments available
/// via positional(). Unknown flags are errors.
class FlagParser {
 public:
  explicit FlagParser(std::string program_description);

  /// Registration. Destinations must outlive Parse. The current value of
  /// the destination is the default shown in usage.
  void AddString(const std::string& name, std::string* destination,
                 const std::string& description);
  void AddInt64(const std::string& name, int64_t* destination,
                const std::string& description);
  void AddUint32(const std::string& name, uint32_t* destination,
                 const std::string& description);
  void AddDouble(const std::string& name, double* destination,
                 const std::string& description);
  void AddBool(const std::string& name, bool* destination,
               const std::string& description);

  /// Parses argv. On success, positional() holds the non-flag arguments in
  /// order. "--" ends flag parsing. "--help" yields a NotFound status whose
  /// message is the usage text (callers print it and exit 0).
  Status Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// True iff the last Parse consumed an occurrence of --name, i.e. the
  /// user set the flag explicitly (even to its default value) as opposed
  /// to leaving it at the default. Lets callers arbitrate between a flag
  /// and its deprecated alias without sentinel defaults.
  bool WasSet(const std::string& name) const {
    return explicitly_set_.count(name) > 0;
  }

  /// Usage text listing all registered flags with defaults.
  std::string Usage() const;

 private:
  enum class Type { kString, kInt64, kUint32, kDouble, kBool };
  struct Flag {
    Type type;
    void* destination;
    std::string description;
    std::string default_value;
  };

  Status SetValue(const std::string& name, Flag& flag,
                  const std::string& value);

  std::string program_description_;
  std::string program_name_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  std::set<std::string> explicitly_set_;
};

}  // namespace tends

#endif  // TENDS_COMMON_FLAGS_H_
