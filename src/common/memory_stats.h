#ifndef TENDS_COMMON_MEMORY_STATS_H_
#define TENDS_COMMON_MEMORY_STATS_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace tends {

class MetricsRegistry;

/// Extracts the value of `key` (e.g. "VmHWM", "VmRSS") from the text of a
/// /proc/<pid>/status file and returns it in bytes. The kernel reports
/// these lines as "<key>:\t  <n> kB"; any deviation — key absent, value
/// missing or non-numeric, unexpected unit, overflow — yields nullopt,
/// never a crash: /proc is an interface we read, not one we control.
std::optional<int64_t> ParseProcStatusBytes(std::string_view status_text,
                                            std::string_view key);

/// Peak resident set size of this process (VmHWM from /proc/self/status).
/// nullopt on platforms or sandboxes without a readable /proc.
std::optional<int64_t> ReadPeakRssBytes();

/// Current resident set size of this process (VmRSS).
std::optional<int64_t> ReadCurrentRssBytes();

/// End-of-run finalization for a manifest-bound registry: samples process
/// memory into `tends.mem.peak_rss_bytes` / `tends.mem.current_rss_bytes`
/// (absent readings leave the gauges unregistered) and surfaces the
/// embedded tracer's dropped-span count as `tends.trace.dropped_spans`.
/// Null registry = no-op; compiled inert with TENDS_METRICS=OFF.
void RecordRunStats(MetricsRegistry* registry);

}  // namespace tends

#endif  // TENDS_COMMON_MEMORY_STATS_H_
