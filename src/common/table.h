#ifndef TENDS_COMMON_TABLE_H_
#define TENDS_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace tends {

/// Plain-text / CSV table builder used by the benchmark harness to print
/// the rows each paper figure reports. Cells are strings; numeric helpers
/// format with fixed precision so columns align.
class Table {
 public:
  explicit Table(std::vector<std::string> column_names);

  /// Starts a new row. Subsequent Add* calls fill it left to right.
  Table& AddRow();

  Table& Add(std::string cell);
  Table& Add(const char* cell);
  Table& AddInt(int64_t value);
  /// Fixed-point with `precision` digits after the decimal point.
  Table& AddDouble(double value, int precision = 4);

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return columns_.size(); }

  /// Renders an aligned ASCII table. Rows shorter than the header are padded
  /// with empty cells.
  void PrintText(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (fields containing comma/quote/newline are
  /// quoted, quotes doubled).
  void PrintCsv(std::ostream& os) const;

  /// Writes CSV to `path`.
  Status WriteCsvFile(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tends

#endif  // TENDS_COMMON_TABLE_H_
