#ifndef TENDS_COMMON_LOGGING_H_
#define TENDS_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace tends {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives every emitted log record (already formatted, without a
/// trailing newline). Invoked under the logging mutex, so sinks need no
/// synchronization of their own but must not log re-entrantly.
using LogSink = std::function<void(LogLevel level, std::string_view message)>;

/// Replaces the default stderr sink; pass nullptr (default-constructed
/// LogSink) to restore it. Intended for tests capturing log output.
/// Emission is serialized by a single mutex, so concurrent TENDS_LOG calls
/// from multiple threads never interleave within a message.
void SetLogSink(LogSink sink);

namespace internal_logging {

/// Stream-style log sink. Emits on destruction; kFatal aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it (used for disabled levels).
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define TENDS_LOG(level)                                                  \
  if (::tends::LogLevel::k##level < ::tends::GetLogLevel()) {             \
  } else                                                                  \
    ::tends::internal_logging::LogMessage(::tends::LogLevel::k##level,    \
                                          __FILE__, __LINE__)             \
        .stream()

/// Fatal assertion; active in all build modes (unlike assert()).
#define TENDS_CHECK(cond)                                                 \
  if (cond) {                                                             \
  } else                                                                  \
    ::tends::internal_logging::LogMessage(::tends::LogLevel::kFatal,      \
                                          __FILE__, __LINE__)             \
            .stream()                                                     \
        << "Check failed: " #cond " "

}  // namespace tends

#endif  // TENDS_COMMON_LOGGING_H_
