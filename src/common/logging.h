#ifndef TENDS_COMMON_LOGGING_H_
#define TENDS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace tends {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink. Emits on destruction; kFatal aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it (used for disabled levels).
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define TENDS_LOG(level)                                                  \
  if (::tends::LogLevel::k##level < ::tends::GetLogLevel()) {             \
  } else                                                                  \
    ::tends::internal_logging::LogMessage(::tends::LogLevel::k##level,    \
                                          __FILE__, __LINE__)             \
        .stream()

/// Fatal assertion; active in all build modes (unlike assert()).
#define TENDS_CHECK(cond)                                                 \
  if (cond) {                                                             \
  } else                                                                  \
    ::tends::internal_logging::LogMessage(::tends::LogLevel::kFatal,      \
                                          __FILE__, __LINE__)             \
            .stream()                                                     \
        << "Check failed: " #cond " "

}  // namespace tends

#endif  // TENDS_COMMON_LOGGING_H_
