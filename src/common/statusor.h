#ifndef TENDS_COMMON_STATUSOR_H_
#define TENDS_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace tends {

/// Either a value of type T or an error Status. Modeled on absl::StatusOr.
///
/// A StatusOr constructed from a T is ok(); one constructed from a non-OK
/// Status is not. Constructing from an OK Status is a programming error and
/// is converted to an Internal error so that misuse is observable rather
/// than undefined.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK Status");
    }
  }

  /// Constructs from a value.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors require ok(); checked via assert in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of `rexpr` (a StatusOr expression) to `lhs`, or returns
/// the error from the enclosing function.
#define TENDS_ASSIGN_OR_RETURN(lhs, rexpr)              \
  auto TENDS_CONCAT_(_tends_sor_, __LINE__) = (rexpr);  \
  if (!TENDS_CONCAT_(_tends_sor_, __LINE__).ok())       \
    return TENDS_CONCAT_(_tends_sor_, __LINE__).status(); \
  lhs = std::move(TENDS_CONCAT_(_tends_sor_, __LINE__)).value()

#define TENDS_CONCAT_INNER_(a, b) a##b
#define TENDS_CONCAT_(a, b) TENDS_CONCAT_INNER_(a, b)

}  // namespace tends

#endif  // TENDS_COMMON_STATUSOR_H_
