#ifndef TENDS_COMMON_DURABLE_IO_H_
#define TENDS_COMMON_DURABLE_IO_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/run_context.h"
#include "common/statusor.h"

namespace tends {

class Counter;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`, chained
/// from `crc` so multi-buffer payloads can be checksummed incrementally
/// (start from 0). Matches zlib's crc32: Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(std::string_view data, uint32_t crc = 0);

/// Length- and checksum-delimited framing for durable artifacts. Each frame
/// is self-verifying:
///
///   "TDF1" magic (4 bytes) | payload length (u32 LE) | payload CRC-32
///   (u32 LE) | payload bytes
///
/// so a reader can tell a clean file from a torn one (length overruns the
/// buffer), a bit-flipped one (CRC mismatch), and foreign bytes (bad
/// magic) — every failure mode maps to a distinct Corruption message.
inline constexpr std::string_view kFrameMagic = "TDF1";
inline constexpr size_t kFrameHeaderBytes = 12;

/// Appends one frame wrapping `payload` to `out`.
void AppendFrame(std::string_view payload, std::string* out);

/// Splits `data` into the payloads of its consecutive frames. The returned
/// views alias `data` (no copies) and are only valid while it lives. Fails
/// with Corruption on bad magic, a frame length overrunning the buffer
/// (torn/truncated file), trailing garbage shorter than a header, or a CRC
/// mismatch; the message names the frame index and byte offset.
StatusOr<std::vector<std::string_view>> ParseFrames(std::string_view data);

/// Bounded-retry policy for transient-failure-prone IO. Backoff grows
/// exponentially with deterministic jitter; sleeping never overruns the
/// RunContext deadline (a retry that could not finish waiting in time gives
/// up immediately instead).
struct RetryPolicy {
  /// Total attempts, including the first (1 = no retries).
  uint32_t max_attempts = 4;
  std::chrono::milliseconds initial_backoff{5};
  double backoff_multiplier = 2.0;
  /// Each sleep is scaled by a uniform factor in [1 - jitter, 1 + jitter],
  /// drawn from a deterministic per-call stream (reproducible tests).
  double jitter = 0.25;
};

/// Runs `op` until it succeeds, retrying only transient failures (kIoError).
/// Any other code — Corruption, InvalidArgument, ... — is a property of the
/// data, not the attempt, and is returned immediately. Gives up and returns
/// the last error when attempts are exhausted or the context is stopped
/// (the deadline is also consulted before each backoff sleep). `retries`,
/// when non-null, is bumped once per re-attempt.
Status RetryWithBackoff(const RetryPolicy& policy, const RunContext& context,
                        const std::function<Status()>& op,
                        Counter* retries = nullptr);

/// Atomically replaces `path` with `contents`: the bytes are written to a
/// sibling temp file, fsync'd, renamed over `path`, and the parent
/// directory fsync'd — so a crash at any instant leaves either the old
/// complete file or the new complete file, never a torn mix. Failures
/// (including injected ones, see WriteFaultInjector) surface as kIoError;
/// the stray temp file is removed best-effort.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// Reads the whole file. kNotFound when it does not exist (callers treat
/// that as "no artifact yet"), kIoError on anything else.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Creates `path` as a directory if it does not already exist (one level;
/// the parent must exist). Existing directories are fine; an existing
/// non-directory is an error.
Status EnsureDirectory(const std::string& path);

/// Test seam for driving the write-side fault paths: when installed, every
/// AtomicWriteFile consults it before writing the temp file (OnWrite may
/// mutate the bytes — torn write, bit flip — or fail the attempt) and
/// before the rename (OnRename may fail it). Production code never
/// installs one. See ScopedWriteFaults in common/fault_injection.h for the
/// scripted implementation used by tests.
class WriteFaultInjector {
 public:
  virtual ~WriteFaultInjector() = default;
  virtual Status OnWrite(const std::string& path, std::string* contents) = 0;
  virtual Status OnRename(const std::string& temp_path,
                          const std::string& path) = 0;
};

/// Installs `injector` process-wide (nullptr to clear). Not synchronized
/// against in-flight writes — install/clear only from single-threaded test
/// setup/teardown.
void SetWriteFaultInjectorForTest(WriteFaultInjector* injector);

}  // namespace tends

#endif  // TENDS_COMMON_DURABLE_IO_H_
