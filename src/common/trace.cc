#include "common/trace.h"

#include <algorithm>
#include <atomic>

namespace tends {

namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

// Cached (tracer id -> buffer) mapping for the calling thread. Validated by
// id, never dereferenced when stale: ids are process-unique, so a new
// tracer reusing a freed tracer's address cannot alias a stale slot.
struct LocalSlot {
  uint64_t tracer_id = 0;
  void* buffer = nullptr;
};
thread_local LocalSlot t_slot;

// Current span nesting depth of this thread (across all tracers; in
// practice one tracer is active per run).
thread_local uint32_t t_span_depth = 0;

}  // namespace

Tracer::Tracer()
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  if (t_slot.tracer_id == id_) {
    return static_cast<ThreadBuffer*>(t_slot.buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ThreadBuffer*& registered = by_thread_[std::this_thread::get_id()];
  if (registered == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->index = static_cast<uint32_t>(buffers_.size());
    registered = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  t_slot = {id_, registered};
  return registered;
}

void Tracer::Record(const char* name, int64_t detail, uint32_t depth,
                    int64_t start_ns, int64_t duration_ns) {
  ThreadBuffer* buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->spans.size() >= kMaxSpansPerThread) {
    ++buffer->dropped;
    return;
  }
  buffer->spans.push_back({name, detail, buffer->index, depth, start_ns,
                           duration_ns});
}

namespace {

void SortSpans(std::vector<TraceSpan>& spans) {
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.thread_index < b.thread_index;
            });
}

}  // namespace

std::vector<TraceSpan> Tracer::Drain() {
  std::vector<TraceSpan> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      all.insert(all.end(), buffer->spans.begin(), buffer->spans.end());
      buffer->spans.clear();
    }
  }
  SortSpans(all);
  return all;
}

std::vector<TraceSpan> Tracer::Snapshot() const {
  std::vector<TraceSpan> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      all.insert(all.end(), buffer->spans.begin(), buffer->spans.end());
    }
  }
  SortSpans(all);
  return all;
}

std::vector<TraceSummary> Tracer::Summaries() const {
  // Aggregate by name pointer first (macro sites reuse literals), then
  // merge by string in case two sites share a name.
  std::map<std::string, TraceSummary> by_name;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    for (const TraceSpan& span : buffer->spans) {
      TraceSummary& summary = by_name[span.name];
      summary.name = span.name;
      ++summary.count;
      summary.total_ns += static_cast<uint64_t>(span.duration_ns);
    }
  }
  std::vector<TraceSummary> out;
  out.reserve(by_name.size());
  for (auto& [name, summary] : by_name) out.push_back(std::move(summary));
  return out;
}

uint32_t Tracer::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(buffers_.size());
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name, int64_t detail)
    : tracer_(tracer), name_(name), detail_(detail) {
  if (tracer_ == nullptr) return;
  start_ns_ = tracer_->NowNs();
  depth_ = t_span_depth++;
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  --t_span_depth;
  tracer_->Record(name_, detail_, depth_, start_ns_,
                  tracer_->NowNs() - start_ns_);
}

}  // namespace tends
