#include "common/metrics.h"

#include <bit>
#include <cstdio>
#include <fstream>

#include "common/json.h"
#include "common/logging.h"

namespace tends {

// --------------------------------------------------------------- histogram

int Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  return std::bit_width(value) > kNumBuckets - 1 ? kNumBuckets - 1
                                                 : std::bit_width(value);
}

uint64_t Histogram::BucketUpperBound(int b) {
  if (b <= 0) return 0;
  if (b >= kNumBuckets - 1) return ~uint64_t{0};
  return (uint64_t{1} << b) - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Summary Histogram::Summarize() const {
  Summary summary;
  uint64_t counts[kNumBuckets];
  for (int b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    summary.count += counts[b];
  }
  summary.sum = sum_.load(std::memory_order_relaxed);
  if (summary.count == 0) return summary;
  summary.mean =
      static_cast<double>(summary.sum) / static_cast<double>(summary.count);
  auto quantile = [&](double q) -> uint64_t {
    // Rank of the q-quantile among the bucketed events (1-based).
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(summary.count));
    if (rank == 0) rank = 1;
    uint64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      seen += counts[b];
      if (seen >= rank) return BucketUpperBound(b);
    }
    return BucketUpperBound(kNumBuckets - 1);
  };
  summary.p50 = quantile(0.50);
  summary.p90 = quantile(0.90);
  summary.p99 = quantile(0.99);
  for (int b = kNumBuckets - 1; b >= 0; --b) {
    if (counts[b] != 0) {
      summary.max = BucketUpperBound(b);
      break;
    }
  }
  return summary;
}

// ---------------------------------------------------------------- registry

bool IsValidMetricName(std::string_view name) {
  int segments = 0;
  size_t start = 0;
  while (start <= name.size()) {
    size_t dot = name.find('.', start);
    std::string_view segment =
        name.substr(start, dot == std::string_view::npos ? name.size() - start
                                                         : dot - start);
    if (segment.empty()) return false;
    for (char c : segment) {
      if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
        return false;
      }
    }
    if (segments == 0 && segment != "tends") return false;
    ++segments;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return segments >= 3;
}

namespace {

template <typename T>
T& GetOrCreate(std::mutex& mu,
               std::map<std::string, std::unique_ptr<T>, std::less<>>& metrics,
               std::string_view name) {
  TENDS_CHECK(IsValidMetricName(name))
      << "metric name '" << name
      << "' violates the tends.<module>.<name> scheme";
  std::lock_guard<std::mutex> lock(mu);
  auto it = metrics.find(name);
  if (it == metrics.end()) {
    it = metrics.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  return GetOrCreate(mu_, counters_, name);
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  return GetOrCreate(mu_, gauges_, name);
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  return GetOrCreate(mu_, histograms_, name);
}

void MetricsRegistry::AddStageTime(std::string_view stage, uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  for (StageTime& existing : stages_) {
    if (existing.name == stage) {
      existing.wall_ns += ns;
      ++existing.count;
      return;
    }
  }
  stages_.push_back({std::string(stage), ns, 1});
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

uint64_t MetricsRegistry::StageWallNs(std::string_view stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const StageTime& existing : stages_) {
    if (existing.name == stage) return existing.wall_ns;
  }
  return 0;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Summary>>
MetricsRegistry::HistogramSummaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram::Summary>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram->Summarize());
  }
  return out;
}

std::vector<StageTime> MetricsRegistry::StageTimes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stages_;
}

void MetricsRegistry::WriteJson(JsonWriter& writer) const {
  writer.BeginObject();

  writer.Key("stages");
  writer.BeginObject();
  for (const StageTime& stage : StageTimes()) {
    writer.Key(stage.name);
    writer.BeginObject();
    writer.KeyValue("wall_s", static_cast<double>(stage.wall_ns) * 1e-9);
    writer.KeyValue("sections", stage.count);
    writer.EndObject();
  }
  writer.EndObject();

  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [name, value] : CounterValues()) {
    writer.KeyValue(name, value);
  }
  writer.EndObject();

  writer.Key("gauges");
  writer.BeginObject();
  for (const auto& [name, value] : GaugeValues()) {
    writer.KeyValue(name, value);
  }
  writer.EndObject();

  writer.Key("histograms");
  writer.BeginObject();
  for (const auto& [name, summary] : HistogramSummaries()) {
    writer.Key(name);
    writer.BeginObject();
    writer.KeyValue("count", summary.count);
    writer.KeyValue("sum", summary.sum);
    writer.KeyValue("mean", summary.mean);
    writer.KeyValue("p50", summary.p50);
    writer.KeyValue("p90", summary.p90);
    writer.KeyValue("p99", summary.p99);
    writer.KeyValue("max", summary.max);
    writer.EndObject();
  }
  writer.EndObject();

  writer.Key("spans");
  writer.BeginObject();
  for (const TraceSummary& summary : tracer_.Summaries()) {
    writer.Key(summary.name);
    writer.BeginObject();
    writer.KeyValue("count", summary.count);
    writer.KeyValue("total_s", static_cast<double>(summary.total_ns) * 1e-9);
    writer.EndObject();
  }
  uint64_t dropped = tracer_.dropped();
  if (dropped != 0) writer.KeyValue("dropped", dropped);
  writer.EndObject();

  writer.EndObject();
}

// ---------------------------------------------------------------- manifest

const char* BuildGitDescribe() {
#ifdef TENDS_GIT_DESCRIBE
  return TENDS_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string MetricsManifestJson(const RunManifest& manifest,
                                const MetricsRegistry& registry) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KeyValue("schema", "tends.metrics.v1");
  writer.KeyValue("tool", manifest.tool);
  writer.KeyValue("git", BuildGitDescribe());
  writer.KeyValue("metrics_enabled", TENDS_METRICS_ENABLED != 0);
  writer.KeyValue("wall_seconds", manifest.wall_seconds);
  writer.Key("config");
  writer.BeginObject();
  for (const auto& [key, value] : manifest.config) {
    writer.KeyValue(key, value);
  }
  writer.EndObject();
  writer.Key("metrics");
  registry.WriteJson(writer);
  writer.EndObject();
  TENDS_CHECK(writer.balanced());
  return writer.TakeString();
}

Status WriteMetricsManifest(const RunManifest& manifest,
                            const MetricsRegistry& registry,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << MetricsManifestJson(manifest, registry) << "\n";
  out.flush();
  if (!out) return Status::IoError("failed writing " + path);
  return Status::OK();
}

// ---------------------------------------------------------------- progress

ProgressReporter::ProgressReporter(
    const MetricsRegistry* registry, std::chrono::milliseconds interval,
    std::function<std::string(const MetricsRegistry&)> format)
    : registry_(registry), interval_(interval), format_(std::move(format)) {
  if (registry_ != nullptr) {
    thread_ = std::thread([this] { Loop(); });
  }
}

ProgressReporter::~ProgressReporter() { Stop(); }

void ProgressReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (registry_ != nullptr) EmitOnce();
}

void ProgressReporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) break;
    lock.unlock();
    EmitOnce();
    lock.lock();
  }
}

void ProgressReporter::EmitOnce() {
  std::string line = format_(*registry_);
  if (line.empty()) return;
  std::fprintf(stderr, "%s\n", line.c_str());
  std::fflush(stderr);
}

}  // namespace tends
