#ifndef TENDS_COMMON_PARALLEL_H_
#define TENDS_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tends {

/// Fixed-size worker pool. Tasks are arbitrary closures; Wait() blocks
/// until every submitted task has finished. Exceptions must not escape
/// tasks (the library is exception-free; a throwing task terminates).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(uint32_t num_threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return static_cast<uint32_t>(workers_.size()); }

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  uint32_t active_tasks_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [begin, end), distributing indices across
/// `num_threads` workers (dynamic chunking via an atomic cursor).
/// num_threads <= 1 runs inline. fn must be safe to call concurrently for
/// distinct indices; results must not depend on execution order.
void ParallelFor(uint32_t num_threads, uint32_t begin, uint32_t end,
                 const std::function<void(uint32_t)>& fn);

}  // namespace tends

#endif  // TENDS_COMMON_PARALLEL_H_
