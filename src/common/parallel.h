#ifndef TENDS_COMMON_PARALLEL_H_
#define TENDS_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tends {

/// Worker pool. Tasks are arbitrary closures; Wait() blocks until every
/// submitted task has finished. Exceptions must not escape tasks (the
/// library is exception-free; a throwing task terminates).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(uint32_t num_threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return static_cast<uint32_t>(workers_.size()); }

  /// Grows the pool to at least `num_threads` workers (never shrinks).
  /// Thread-safe; concurrent calls grow to the maximum requested size.
  void EnsureWorkers(uint32_t num_threads);

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running. Only valid
  /// when no other thread is concurrently submitting (otherwise the
  /// "empty" observation is stale by the time Wait returns).
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  uint32_t active_tasks_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// The lazily-initialized process-wide pool backing ParallelFor. Created
/// with one worker on first use and grown on demand (capped); living for
/// the process lifetime means repeated ParallelFor calls never pay
/// thread-spawn cost again.
ThreadPool& SharedThreadPool();

struct ParallelForOptions {
  /// Total threads working on the range, caller included; <= 1 runs the
  /// whole range inline on the calling thread.
  uint32_t num_threads = 1;
  /// Indices claimed per scheduling step (dynamic chunking via an atomic
  /// cursor). 1 = claim one index at a time — maximal load balancing,
  /// right for heavy uneven iterations like per-node parent searches.
  /// Larger grains amortize the claim for cheap iterations. Chunks are
  /// contiguous [k*grain, (k+1)*grain) slices of [begin, end) when
  /// begin is grain-aligned. Never changes results, only scheduling.
  uint32_t grain = 1;
};

/// Runs fn(i) for every i in [begin, end), distributing chunks of indices
/// across `options.num_threads` threads: the caller plus workers of the
/// shared pool. fn must be safe to call concurrently for distinct indices;
/// results must not depend on execution order.
///
/// Deadlock-free under nesting and pool exhaustion by construction: the
/// caller never waits for a *queued* task to start — it drains chunks
/// itself until the range is exhausted, then waits only for workers that
/// actually claimed a chunk to finish. If every pool worker is busy (e.g.
/// with outer levels of a nested ParallelFor), the caller simply runs the
/// whole range inline and the stale queue entries later no-op.
void ParallelFor(const ParallelForOptions& options, uint32_t begin,
                 uint32_t end, const std::function<void(uint32_t)>& fn);

/// Shorthand with grain 1 (the default scheduling of the per-node
/// inference loops).
void ParallelFor(uint32_t num_threads, uint32_t begin, uint32_t end,
                 const std::function<void(uint32_t)>& fn);

}  // namespace tends

#endif  // TENDS_COMMON_PARALLEL_H_
