#ifndef TENDS_COMMON_TIMER_H_
#define TENDS_COMMON_TIMER_H_

#include <chrono>

namespace tends {

/// Monotonic wall-clock stopwatch used by the evaluation harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tends

#endif  // TENDS_COMMON_TIMER_H_
