#ifndef TENDS_COMMON_STRINGUTIL_H_
#define TENDS_COMMON_STRINGUTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"

namespace tends {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view input, char delim);

/// Splits `input` on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view input);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// Parses a base-10 signed/unsigned integer or double from the entire input
/// (after whitespace stripping). Errors on trailing garbage or overflow.
StatusOr<int64_t> ParseInt64(std::string_view input);
StatusOr<uint32_t> ParseUint32(std::string_view input);
StatusOr<double> ParseDouble(std::string_view input);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace tends

#endif  // TENDS_COMMON_STRINGUTIL_H_
