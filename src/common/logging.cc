#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace tends {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Serializes emission (stderr write or sink call) so that messages from
// concurrent threads never interleave. Function-local static so the mutex
// outlives any static-destruction-order logging.
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

LogSink& SinkSlot() {
  static LogSink* sink = new LogSink;
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(LogMutex());
  SinkSlot() = std::move(sink);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from __FILE__ for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const std::string message = stream_.str();
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    LogSink& sink = SinkSlot();
    if (sink) {
      sink(level_, message);
    } else {
      std::fprintf(stderr, "%s\n", message.c_str());
      std::fflush(stderr);
    }
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging

}  // namespace tends
