#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace tends {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from __FILE__ for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::fflush(stderr);
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging

}  // namespace tends
