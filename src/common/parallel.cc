#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace tends {

namespace {

/// Upper bound on the shared pool's size: EnsureWorkers requests above it
/// are clamped. Far above any sane thread-count knob; exists only so a
/// corrupt request cannot spawn unbounded threads.
constexpr uint32_t kMaxSharedPoolWorkers = 256;

/// Per-call state of one ParallelFor, heap-allocated and shared with every
/// task submitted for it. Tasks hold it by shared_ptr, so a task that the
/// pool dequeues after the call already returned (its chunks were drained
/// by faster threads) touches live memory, observes the exhausted cursor,
/// and returns without ever dereferencing `fn`.
struct ParallelForState {
  /// Next unclaimed index. 64-bit so concurrent over-claims past `end`
  /// cannot wrap (claims are fetch_add(grain)).
  std::atomic<uint64_t> cursor{0};
  uint32_t end = 0;
  uint32_t grain = 1;
  /// Owned by the caller's frame; only dereferenced by threads that
  /// claimed a chunk, which the caller provably outlives (it waits for
  /// them below).
  const std::function<void(uint32_t)>* fn = nullptr;
  std::mutex mutex;
  std::condition_variable all_done;
  /// Threads currently draining chunks (guarded by `mutex`). A claim only
  /// happens with active > 0 held by the claimer, so once the cursor is
  /// exhausted, active == 0 means every claimed chunk has finished.
  uint32_t active = 0;
};

/// Claims and runs chunks until the range is exhausted.
void DrainChunks(ParallelForState& state,
                 const std::function<void(uint32_t)>& fn) {
  while (true) {
    const uint64_t claimed =
        state.cursor.fetch_add(state.grain, std::memory_order_acq_rel);
    if (claimed >= state.end) return;
    const uint32_t chunk_end = static_cast<uint32_t>(
        std::min<uint64_t>(state.end, claimed + state.grain));
    for (uint32_t i = static_cast<uint32_t>(claimed); i < chunk_end; ++i) {
      fn(i);
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(uint32_t num_threads) {
  num_threads = std::max(1u, num_threads);
  workers_.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::EnsureWorkers(uint32_t num_threads) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (workers_.size() < num_threads) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_tasks_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) all_idle_.notify_all();
    }
  }
}

ThreadPool& SharedThreadPool() {
  // Lazily constructed on first parallel call; grown on demand. Destroyed
  // after main() — safe because ParallelFor states are self-contained
  // (shared_ptr-owned) and no task runs past its owning call's return
  // except as a no-op on the state itself.
  static ThreadPool pool(1);
  return pool;
}

void ParallelFor(const ParallelForOptions& options, uint32_t begin,
                 uint32_t end, const std::function<void(uint32_t)>& fn) {
  if (begin >= end) return;
  const uint32_t count = end - begin;
  const uint32_t grain = std::max(1u, options.grain);
  const uint32_t num_chunks = (count + grain - 1) / grain;
  const uint32_t num_threads =
      std::min(std::max(1u, options.num_threads), num_chunks);
  if (num_threads <= 1) {
    for (uint32_t i = begin; i < end; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->cursor.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->grain = grain;
  state->fn = &fn;

  ThreadPool& pool = SharedThreadPool();
  pool.EnsureWorkers(std::min(num_threads - 1, kMaxSharedPoolWorkers));
  for (uint32_t t = 0; t + 1 < num_threads; ++t) {
    pool.Submit([state] {
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        ++state->active;
      }
      DrainChunks(*state, *state->fn);
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->active == 0) state->all_done.notify_all();
    });
  }

  // The caller participates instead of blocking: it keeps claiming chunks
  // until none are left, so the range completes even if no pool worker is
  // ever free to help (the nested / saturated case).
  DrainChunks(*state, fn);

  // All chunks are claimed now. Wait only for workers that claimed some
  // (they incremented `active` before their first claim); tasks still
  // queued will find the cursor exhausted and return without touching fn.
  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&] { return state->active == 0; });
}

void ParallelFor(uint32_t num_threads, uint32_t begin, uint32_t end,
                 const std::function<void(uint32_t)>& fn) {
  ParallelFor(ParallelForOptions{num_threads, 1}, begin, end, fn);
}

}  // namespace tends
