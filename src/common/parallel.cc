#include "common/parallel.h"

#include <algorithm>
#include <atomic>

namespace tends {

ThreadPool::ThreadPool(uint32_t num_threads) {
  num_threads = std::max(1u, num_threads);
  workers_.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_tasks_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) all_idle_.notify_all();
    }
  }
}

void ParallelFor(uint32_t num_threads, uint32_t begin, uint32_t end,
                 const std::function<void(uint32_t)>& fn) {
  if (begin >= end) return;
  if (num_threads <= 1 || end - begin == 1) {
    for (uint32_t i = begin; i < end; ++i) fn(i);
    return;
  }
  num_threads = std::min(num_threads, end - begin);
  std::atomic<uint32_t> cursor{begin};
  auto worker = [&] {
    while (true) {
      uint32_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (uint32_t t = 0; t + 1 < num_threads; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& thread : threads) thread.join();
}

}  // namespace tends
