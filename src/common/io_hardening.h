#ifndef TENDS_COMMON_IO_HARDENING_H_
#define TENDS_COMMON_IO_HARDENING_H_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace tends {

class MetricsRegistry;

/// How the text readers treat malformed input.
enum class IoMode {
  /// Any malformed byte fails the whole read with a Corruption status that
  /// names the 1-based line and the offending token. Default.
  kStrict,
  /// Corrupt lines/blocks are skipped and tallied in a CorruptionReport;
  /// the read succeeds with whatever survived (it still fails when nothing
  /// recoverable remains, e.g. an unreadable header with no valid data).
  kPermissive,
};

/// Options accepted by every text reader.
struct IoReadOptions {
  IoMode mode = IoMode::kStrict;
};

/// What kind of damage a reader encountered.
enum class CorruptionKind : int {
  /// A token that does not parse (letters in a number, status not 0/1...).
  kBadToken = 0,
  /// A row/record with the wrong number of fields.
  kWrongWidth = 1,
  /// A numeric field that parsed to NaN or +-Inf where a finite value is
  /// required (e.g. edge weights).
  kNonFinite = 2,
  /// A structurally valid value outside its domain (endpoint >= n, ...).
  kOutOfRange = 3,
  /// The stream ended before the declared data did.
  kTruncation = 4,
  /// A malformed structural line (header, dimensions, block marker).
  kBadStructure = 5,
};
inline constexpr int kNumCorruptionKinds = 6;

/// Stable display name ("bad-token", "wrong-width", ...).
const char* CorruptionKindName(CorruptionKind kind);

/// Tally of everything a permissive read skipped: per-kind counts plus the
/// first error of each kind (line number and message), and the number of
/// records dropped. Cheap to carry around; Summary() renders it for CLI
/// output.
class CorruptionReport {
 public:
  struct KindStats {
    uint64_t count = 0;
    uint64_t first_line = 0;     // 1-based; 0 = end of stream
    std::string first_message;   // includes the offending token
  };

  /// Records one corruption event. `line` is 1-based (0 for end-of-stream
  /// conditions such as truncation).
  void Record(CorruptionKind kind, uint64_t line, std::string_view message);

  /// Marks one input record (row, block, edge line) as dropped.
  void AddSkippedRecord() { ++skipped_records_; }

  bool empty() const { return total_ == 0; }
  uint64_t total() const { return total_; }
  uint64_t skipped_records() const { return skipped_records_; }
  const KindStats& stats(CorruptionKind kind) const {
    return kinds_[static_cast<int>(kind)];
  }
  uint64_t count(CorruptionKind kind) const { return stats(kind).count; }

  /// Human-readable multi-line summary:
  ///   corruption report: 3 events, 2 records skipped
  ///     bad-token: 2 (first at line 7: ...)
  ///     truncation: 1 (at end of input: ...)
  /// or "corruption report: clean" when nothing was recorded.
  std::string Summary() const;

  /// Publishes the tally as metrics (no-op on a null registry):
  /// `tends.io.corruption_events`, `tends.io.skipped_records`, and one
  /// `tends.io.corruption.<kind>` counter per kind (hyphens in kind names
  /// become underscores). All counters are registered even when zero, so
  /// run manifests always carry the reader-corruption section.
  void ExportTo(MetricsRegistry* metrics) const;

 private:
  std::array<KindStats, kNumCorruptionKinds> kinds_;
  uint64_t total_ = 0;
  uint64_t skipped_records_ = 0;
};

/// std::getline with 1-based line accounting, so every parse error can name
/// its source line. Readers share one LineReader per stream.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// Reads the next line into `line`; false at end of stream. The line
  /// counter advances only on success.
  bool Next(std::string& line);

  /// 1-based number of the line most recently returned (0 before the first
  /// read).
  uint64_t line_number() const { return line_number_; }

 private:
  std::istream& in_;
  uint64_t line_number_ = 0;
};

}  // namespace tends

#endif  // TENDS_COMMON_IO_HARDENING_H_
