#ifndef TENDS_COMMON_RANDOM_H_
#define TENDS_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tends {

/// SplitMix64: used to seed the main generator and for cheap stateless
/// hashing of seeds. Reference: Steele, Lea & Flood, "Fast Splittable
/// Pseudorandom Number Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Deterministic, seedable PRNG used throughout the library so that every
/// experiment is reproducible bit-for-bit from its seed.
///
/// Implements xoshiro256** (Blackman & Vigna). Satisfies the
/// UniformRandomBitGenerator requirements, so it also composes with <random>
/// distributions where needed, but the member helpers below are preferred
/// because their outputs are stable across standard library versions.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5DEECE66DULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }
  result_type operator()() { return NextUint64(); }

  /// Uniform random 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli trial: true with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Standard normal variate (Marsaglia polar method; deterministic given
  /// the stream position).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly (Floyd's algorithm
  /// for small k, shuffle-prefix otherwise). Requires k <= n. Result order
  /// is unspecified but deterministic.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Forks an independent generator; the child stream is a pure function of
  /// the parent seed and `stream_id`, so forking does not perturb the parent
  /// sequence. Used to give each diffusion process its own stream.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t s_[4];
  uint64_t seed_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace tends

#endif  // TENDS_COMMON_RANDOM_H_
