#include "common/random.h"

#include <cassert>
#include <cmath>

namespace tends {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (uint64_t& s : s_) s = sm.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's method: multiply-shift with rejection of the biased region.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  assert(k <= n);
  std::vector<uint32_t> result;
  result.reserve(k);
  if (k == 0) return result;
  if (k * 3 < n) {
    // Floyd's algorithm: O(k) expected time, no O(n) allocation.
    std::vector<uint32_t> chosen;
    chosen.reserve(k);
    for (uint32_t j = n - k; j < n; ++j) {
      uint32_t t = static_cast<uint32_t>(NextBounded(j + 1));
      bool seen = false;
      for (uint32_t c : chosen) {
        if (c == t) {
          seen = true;
          break;
        }
      }
      chosen.push_back(seen ? j : t);
    }
    return chosen;
  }
  std::vector<uint32_t> all(n);
  for (uint32_t i = 0; i < n; ++i) all[i] = i;
  for (uint32_t i = 0; i < k; ++i) {
    uint32_t j = i + static_cast<uint32_t>(NextBounded(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork(uint64_t stream_id) const {
  SplitMix64 sm(seed_ ^ (0x9E3779B97F4A7C15ULL + stream_id * 0xD1B54A32D192ED03ULL));
  uint64_t child_seed = sm.Next() ^ Rotl(stream_id, 33);
  return Rng(child_seed);
}

}  // namespace tends
