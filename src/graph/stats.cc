#include "graph/stats.h"

#include <algorithm>
#include <cmath>

#include "common/stringutil.h"

namespace tends::graph {

std::string GraphStats::DebugString() const {
  return StrFormat(
      "GraphStats(n=%u, m=%llu, avg_deg=%.2f, deg_mean=%.2f, deg_sd=%.2f, "
      "deg_max=%u, wcc=%u, largest_wcc=%u, reciprocity=%.2f)",
      num_nodes, static_cast<unsigned long long>(num_edges), average_degree,
      mean_total_degree, stddev_total_degree, max_total_degree,
      num_weak_components, largest_weak_component, reciprocity);
}

std::vector<uint32_t> WeakComponents(const DirectedGraph& graph) {
  const uint32_t n = graph.num_nodes();
  std::vector<uint32_t> comp(n, UINT32_MAX);
  std::vector<NodeId> stack;
  uint32_t next_comp = 0;
  for (uint32_t start = 0; start < n; ++start) {
    if (comp[start] != UINT32_MAX) continue;
    comp[start] = next_comp;
    stack.push_back(start);
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : graph.OutNeighbors(u)) {
        if (comp[v] == UINT32_MAX) {
          comp[v] = next_comp;
          stack.push_back(v);
        }
      }
      for (NodeId v : graph.InNeighbors(u)) {
        if (comp[v] == UINT32_MAX) {
          comp[v] = next_comp;
          stack.push_back(v);
        }
      }
    }
    ++next_comp;
  }
  return comp;
}

std::vector<uint32_t> DegreeHistogram(const DirectedGraph& graph) {
  std::vector<uint32_t> hist;
  for (uint32_t u = 0; u < graph.num_nodes(); ++u) {
    uint32_t d = graph.InDegree(u) + graph.OutDegree(u);
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

namespace {

// Sorted undirected neighbor lists (directions collapsed, no duplicates).
std::vector<std::vector<NodeId>> UndirectedAdjacency(
    const DirectedGraph& graph) {
  const uint32_t n = graph.num_nodes();
  std::vector<std::vector<NodeId>> adjacency(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      adjacency[u].push_back(v);
      adjacency[v].push_back(u);
    }
  }
  for (auto& neighbors : adjacency) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
  return adjacency;
}

}  // namespace

double GlobalClusteringCoefficient(const DirectedGraph& graph) {
  const auto adjacency = UndirectedAdjacency(graph);
  uint64_t triangles_x3 = 0;  // each triangle counted once per corner
  uint64_t triples = 0;
  for (uint32_t u = 0; u < graph.num_nodes(); ++u) {
    const auto& neighbors = adjacency[u];
    const uint64_t degree = neighbors.size();
    triples += degree * (degree - 1) / 2;
    for (size_t a = 0; a < neighbors.size(); ++a) {
      for (size_t b = a + 1; b < neighbors.size(); ++b) {
        if (std::binary_search(adjacency[neighbors[a]].begin(),
                               adjacency[neighbors[a]].end(), neighbors[b])) {
          ++triangles_x3;
        }
      }
    }
  }
  if (triples == 0) return 0.0;
  return static_cast<double>(triangles_x3) / static_cast<double>(triples);
}

double Modularity(const DirectedGraph& graph,
                  const std::vector<uint32_t>& community) {
  const auto adjacency = UndirectedAdjacency(graph);
  const uint32_t n = graph.num_nodes();
  uint64_t m2 = 0;  // 2 * undirected edge count = sum of degrees
  for (const auto& neighbors : adjacency) m2 += neighbors.size();
  if (m2 == 0) return 0.0;
  uint32_t num_comm = 0;
  for (uint32_t v = 0; v < n; ++v) {
    num_comm = std::max(num_comm, community[v] + 1);
  }
  std::vector<uint64_t> intra_x2(num_comm, 0);  // 2 * intra edges
  std::vector<uint64_t> degree_sum(num_comm, 0);
  for (uint32_t u = 0; u < n; ++u) {
    degree_sum[community[u]] += adjacency[u].size();
    for (NodeId v : adjacency[u]) {
      if (community[u] == community[v]) ++intra_x2[community[u]];
    }
  }
  double q = 0.0;
  const double m2d = static_cast<double>(m2);
  for (uint32_t c = 0; c < num_comm; ++c) {
    const double e = static_cast<double>(intra_x2[c]) / m2d;
    const double a = static_cast<double>(degree_sum[c]) / m2d;
    q += e - a * a;
  }
  return q;
}

GraphStats ComputeStats(const DirectedGraph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  stats.average_degree = graph.AverageDegree();
  const uint32_t n = graph.num_nodes();
  if (n == 0) return stats;

  double sum = 0.0, sum_sq = 0.0;
  uint64_t reciprocal = 0;
  for (uint32_t u = 0; u < n; ++u) {
    uint32_t d = graph.InDegree(u) + graph.OutDegree(u);
    sum += d;
    sum_sq += static_cast<double>(d) * d;
    stats.max_total_degree = std::max(stats.max_total_degree, d);
    stats.max_in_degree = std::max(stats.max_in_degree, graph.InDegree(u));
    stats.max_out_degree = std::max(stats.max_out_degree, graph.OutDegree(u));
    for (NodeId v : graph.OutNeighbors(u)) {
      if (graph.HasEdge(v, u)) ++reciprocal;
    }
  }
  stats.mean_total_degree = sum / n;
  double var = sum_sq / n - stats.mean_total_degree * stats.mean_total_degree;
  stats.stddev_total_degree = var > 0 ? std::sqrt(var) : 0.0;
  stats.reciprocity =
      stats.num_edges > 0
          ? static_cast<double>(reciprocal) / static_cast<double>(stats.num_edges)
          : 0.0;

  std::vector<uint32_t> comp = WeakComponents(graph);
  uint32_t num_comp = 0;
  for (uint32_t c : comp) num_comp = std::max(num_comp, c + 1);
  std::vector<uint32_t> sizes(num_comp, 0);
  for (uint32_t c : comp) ++sizes[c];
  stats.num_weak_components = num_comp;
  stats.largest_weak_component =
      num_comp ? *std::max_element(sizes.begin(), sizes.end()) : 0;
  return stats;
}

}  // namespace tends::graph
