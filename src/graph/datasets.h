#ifndef TENDS_GRAPH_DATASETS_H_
#define TENDS_GRAPH_DATASETS_H_

#include "common/statusor.h"
#include "graph/graph.h"

namespace tends::graph {

/// Deterministic surrogate of the NetSci coauthorship network (Newman 2006):
/// 379 scientists, 1602 influence relationships interpreted as 801 mutual
/// coauthor ties carried in both directions (1602 directed edges). Built
/// with the Chung-Lu community generator from a fixed seed; see DESIGN.md
/// ("Substitutions") for why a size/density/structure-matched surrogate
/// preserves the paper's experimental behaviour, and for the directed-count
/// interpretation.
StatusOr<DirectedGraph> MakeNetSciSurrogate();

/// Deterministic surrogate of the DUNF microblogging network (Wang et al.
/// 2014): 750 users, 2974 directed following relationships with a 60%
/// mutual-follow rate.
StatusOr<DirectedGraph> MakeDunfSurrogate();

/// Expected sizes, used by tests and the bench harness.
inline constexpr uint32_t kNetSciNodes = 379;
inline constexpr uint32_t kNetSciDirectedEdges = 1602;
inline constexpr uint32_t kDunfNodes = 750;
inline constexpr uint32_t kDunfDirectedEdges = 2974;

}  // namespace tends::graph

#endif  // TENDS_GRAPH_DATASETS_H_
