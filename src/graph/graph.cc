#include "graph/graph.h"

#include <algorithm>
#include <cassert>

#include "common/stringutil.h"

namespace tends::graph {

DirectedGraph::DirectedGraph(uint32_t num_nodes) : num_nodes_(num_nodes) {
  out_offsets_.assign(num_nodes_ + 1, 0);
  in_offsets_.assign(num_nodes_ + 1, 0);
}

DirectedGraph::DirectedGraph(uint32_t num_nodes, const std::vector<Edge>& edges)
    : num_nodes_(num_nodes) {
  out_offsets_.assign(num_nodes_ + 1, 0);
  in_offsets_.assign(num_nodes_ + 1, 0);
  for (const Edge& e : edges) {
    assert(e.from < num_nodes_ && e.to < num_nodes_ && e.from != e.to);
    ++out_offsets_[e.from + 1];
    ++in_offsets_[e.to + 1];
  }
  for (uint32_t i = 0; i < num_nodes_; ++i) {
    out_offsets_[i + 1] += out_offsets_[i];
    in_offsets_[i + 1] += in_offsets_[i];
  }
  out_targets_.resize(edges.size());
  in_sources_.resize(edges.size());
  std::vector<uint64_t> out_cursor(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<uint64_t> in_cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (const Edge& e : edges) {
    out_targets_[out_cursor[e.from]++] = e.to;
    in_sources_[in_cursor[e.to]++] = e.from;
  }
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    std::sort(out_targets_.begin() + static_cast<int64_t>(out_offsets_[u]),
              out_targets_.begin() + static_cast<int64_t>(out_offsets_[u + 1]));
    std::sort(in_sources_.begin() + static_cast<int64_t>(in_offsets_[u]),
              in_sources_.begin() + static_cast<int64_t>(in_offsets_[u + 1]));
  }
}

std::span<const NodeId> DirectedGraph::OutNeighbors(NodeId u) const {
  assert(u < num_nodes_);
  return {out_targets_.data() + out_offsets_[u],
          out_targets_.data() + out_offsets_[u + 1]};
}

std::span<const NodeId> DirectedGraph::InNeighbors(NodeId v) const {
  assert(v < num_nodes_);
  return {in_sources_.data() + in_offsets_[v],
          in_sources_.data() + in_offsets_[v + 1]};
}

uint32_t DirectedGraph::OutDegree(NodeId u) const {
  assert(u < num_nodes_);
  return static_cast<uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
}

uint32_t DirectedGraph::InDegree(NodeId v) const {
  assert(v < num_nodes_);
  return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
}

bool DirectedGraph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

uint64_t DirectedGraph::EdgeIndex(NodeId u, NodeId v) const {
  auto nbrs = OutNeighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdgeIndex;
  return out_offsets_[u] + static_cast<uint64_t>(it - nbrs.begin());
}

uint64_t DirectedGraph::OutEdgeBegin(NodeId u) const {
  assert(u < num_nodes_);
  return out_offsets_[u];
}

std::vector<Edge> DirectedGraph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(out_targets_.size());
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    for (NodeId v : OutNeighbors(u)) edges.push_back({u, v});
  }
  return edges;
}

double DirectedGraph::AverageDegree() const {
  if (num_nodes_ == 0) return 0.0;
  return static_cast<double>(num_edges()) / num_nodes_;
}

std::string DirectedGraph::DebugString() const {
  return StrFormat("DirectedGraph(n=%u, m=%llu)", num_nodes_,
                   static_cast<unsigned long long>(num_edges()));
}

}  // namespace tends::graph
