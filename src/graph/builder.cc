#include "graph/builder.h"

#include "common/stringutil.h"

namespace tends::graph {

GraphBuilder::GraphBuilder(uint32_t num_nodes) : num_nodes_(num_nodes) {}

Status GraphBuilder::AddEdge(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    return Status::InvalidArgument(
        StrFormat("edge (%u,%u) out of range for n=%u", u, v, num_nodes_));
  }
  if (u == v) {
    return Status::InvalidArgument(StrFormat("self-loop at node %u", u));
  }
  if (!edge_keys_.insert(Key(u, v)).second) {
    return Status::AlreadyExists(StrFormat("duplicate edge (%u,%u)", u, v));
  }
  edges_.push_back({u, v});
  return Status::OK();
}

Status GraphBuilder::AddEdgeIfAbsent(NodeId u, NodeId v) {
  Status s = AddEdge(u, v);
  if (s.code() == StatusCode::kAlreadyExists) return Status::OK();
  return s;
}

bool GraphBuilder::HasEdge(NodeId u, NodeId v) const {
  return edge_keys_.count(Key(u, v)) > 0;
}

Status GraphBuilder::AddUndirectedEdge(NodeId u, NodeId v) {
  TENDS_RETURN_IF_ERROR(AddEdgeIfAbsent(u, v));
  return AddEdgeIfAbsent(v, u);
}

DirectedGraph GraphBuilder::Build() const {
  return DirectedGraph(num_nodes_, edges_);
}

}  // namespace tends::graph
