#ifndef TENDS_GRAPH_GRAPH_H_
#define TENDS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tends::graph {

/// Node identifier: dense 0-based index into the graph's node set.
using NodeId = uint32_t;

/// A directed edge from `from` to `to` (an influence relationship: when
/// `from` is infected and `to` is not, `from` may infect `to`).
struct Edge {
  NodeId from = 0;
  NodeId to = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.from == b.from && a.to == b.to;
  }
  friend auto operator<=>(const Edge& a, const Edge& b) = default;
};

/// Immutable directed graph in CSR (compressed sparse row) form, storing
/// both out-adjacency and in-adjacency with sorted neighbor lists so that
/// HasEdge is O(log degree). Build instances with GraphBuilder.
class DirectedGraph {
 public:
  /// Empty graph with `num_nodes` nodes and no edges.
  explicit DirectedGraph(uint32_t num_nodes = 0);

  /// Constructs from an edge list. Edges must be pre-deduplicated and free
  /// of self-loops (GraphBuilder enforces this); violations here are
  /// programming errors checked in debug builds.
  DirectedGraph(uint32_t num_nodes, const std::vector<Edge>& edges);

  uint32_t num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return static_cast<uint64_t>(out_targets_.size()); }

  /// Sorted successor list of `u` (nodes that `u` influences).
  std::span<const NodeId> OutNeighbors(NodeId u) const;

  /// Sorted predecessor list of `v` (nodes that influence `v`; the true
  /// parent set the inference algorithms try to recover).
  std::span<const NodeId> InNeighbors(NodeId v) const;

  uint32_t OutDegree(NodeId u) const;
  uint32_t InDegree(NodeId v) const;

  /// True iff the edge (u -> v) exists. O(log OutDegree(u)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Dense ordinal of edge (u -> v) in [0, num_edges), stable for a given
  /// graph (edges ordered by (from, to)). Returns kInvalidEdgeIndex when the
  /// edge does not exist. Used to key per-edge attributes such as
  /// propagation probabilities.
  static constexpr uint64_t kInvalidEdgeIndex = ~uint64_t{0};
  uint64_t EdgeIndex(NodeId u, NodeId v) const;

  /// Ordinal of the first out-edge of `u`; the edges of `u` occupy indices
  /// [OutEdgeBegin(u), OutEdgeBegin(u) + OutDegree(u)) aligned with
  /// OutNeighbors(u).
  uint64_t OutEdgeBegin(NodeId u) const;

  /// All edges in (from, to) lexicographic order.
  std::vector<Edge> Edges() const;

  /// Average total degree m / n (0 for an empty graph). Note the paper's
  /// "average node degree" counts each directed edge once per node pair
  /// endpoint: total edges / total nodes.
  double AverageDegree() const;

  /// Human-readable one-line summary ("DirectedGraph(n=..., m=...)").
  std::string DebugString() const;

  friend bool operator==(const DirectedGraph& a, const DirectedGraph& b) {
    return a.num_nodes_ == b.num_nodes_ && a.out_offsets_ == b.out_offsets_ &&
           a.out_targets_ == b.out_targets_;
  }

 private:
  uint32_t num_nodes_;
  // CSR out-adjacency: neighbors of u are out_targets_[out_offsets_[u] ..
  // out_offsets_[u+1]).
  std::vector<uint64_t> out_offsets_;
  std::vector<NodeId> out_targets_;
  // CSR in-adjacency (derived).
  std::vector<uint64_t> in_offsets_;
  std::vector<NodeId> in_sources_;
};

}  // namespace tends::graph

#endif  // TENDS_GRAPH_GRAPH_H_
