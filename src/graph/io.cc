#include "graph/io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "common/stringutil.h"
#include "graph/builder.h"

namespace tends::graph {

StatusOr<DirectedGraph> ReadEdgeList(std::istream& in) {
  std::string line;
  int64_t num_nodes = -1;
  GraphBuilder builder(0);
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    auto fields = SplitWhitespace(stripped);
    if (num_nodes < 0) {
      if (fields.size() != 1) {
        return Status::Corruption(
            StrFormat("line %d: expected node count header", line_no));
      }
      auto n = ParseInt64(fields[0]);
      if (!n.ok() || *n < 0) {
        return Status::Corruption(
            StrFormat("line %d: bad node count", line_no));
      }
      num_nodes = *n;
      builder = GraphBuilder(static_cast<uint32_t>(num_nodes));
      continue;
    }
    if (fields.size() != 2) {
      return Status::Corruption(
          StrFormat("line %d: expected '<from> <to>'", line_no));
    }
    auto from = ParseUint32(fields[0]);
    auto to = ParseUint32(fields[1]);
    if (!from.ok() || !to.ok()) {
      return Status::Corruption(StrFormat("line %d: bad node id", line_no));
    }
    Status s = builder.AddEdge(*from, *to);
    if (!s.ok()) {
      return Status::Corruption(
          StrFormat("line %d: %s", line_no, s.ToString().c_str()));
    }
  }
  if (num_nodes < 0) {
    return Status::Corruption("edge list missing node count header");
  }
  return builder.Build();
}

StatusOr<DirectedGraph> ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  return ReadEdgeList(in);
}

Status WriteEdgeList(const DirectedGraph& graph, std::ostream& out) {
  out << "# tends edge list: <num_nodes> then one '<from> <to>' per line\n";
  out << graph.num_nodes() << '\n';
  for (uint32_t u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      out << u << ' ' << v << '\n';
    }
  }
  if (!out) return Status::IoError("edge list write failed");
  return Status::OK();
}

Status WriteEdgeListFile(const DirectedGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return WriteEdgeList(graph, out);
}

}  // namespace tends::graph
