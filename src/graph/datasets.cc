#include "graph/datasets.h"

#include "common/random.h"
#include "graph/generators/configuration.h"

namespace tends::graph {

StatusOr<DirectedGraph> MakeNetSciSurrogate() {
  ChungLuCommunityOptions options;
  options.num_nodes = kNetSciNodes;
  // 1602 influence relationships = 801 mutual coauthor ties carried in
  // both directions (a saturating 3204-directed-edge reading makes every
  // cascade engulf the graph at the paper's mu = 0.3; see DESIGN.md).
  options.num_edges = kNetSciDirectedEdges;
  options.directed = false;
  // Coauthorship networks are strongly clustered into research groups and
  // fragmented into many components; keeping ties inside groups caps
  // cascade saturation the way the real network's fragmentation does.
  options.num_communities = 21;
  options.intra_fraction = 1.0;
  options.degree_exponent = 2.5;
  options.weight_spread = 6.0;
  Rng rng(/*seed=*/0x7E75C1AA2024ULL);
  return GenerateChungLuCommunity(options, rng);
}

StatusOr<DirectedGraph> MakeDunfSurrogate() {
  ChungLuCommunityOptions options;
  options.num_nodes = kDunfNodes;
  options.num_edges = kDunfDirectedEdges;
  options.directed = true;
  // Microblog follow graphs: many small interest communities, moderate
  // hubs, and a substantial mutual-follow rate. Small cohesive communities
  // are what keeps the infection-MI threshold discriminative (see the
  // candidate-saturation analysis in EXPERIMENTS.md).
  options.num_communities = 75;
  options.intra_fraction = 0.97;
  options.degree_exponent = 2.5;
  options.weight_spread = 8.0;
  options.reciprocal_fraction = 0.6;
  Rng rng(/*seed=*/0xD0BF2024CAFEULL);
  return GenerateChungLuCommunity(options, rng);
}

}  // namespace tends::graph
