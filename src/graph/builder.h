#ifndef TENDS_GRAPH_BUILDER_H_
#define TENDS_GRAPH_BUILDER_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/statusor.h"
#include "graph/graph.h"

namespace tends::graph {

/// Incremental, validating builder for DirectedGraph. Rejects self-loops,
/// out-of-range endpoints and (by default) silently ignores duplicates so
/// that generators can over-propose edges.
class GraphBuilder {
 public:
  explicit GraphBuilder(uint32_t num_nodes);

  uint32_t num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return edges_.size(); }

  /// Adds edge u -> v. Returns:
  ///   InvalidArgument  - endpoint out of range or u == v,
  ///   AlreadyExists    - duplicate edge (graph unchanged),
  ///   OK               - edge added.
  Status AddEdge(NodeId u, NodeId v);

  /// AddEdge, but duplicates are OK (no-op). Out-of-range / self-loop still
  /// error.
  Status AddEdgeIfAbsent(NodeId u, NodeId v);

  /// True iff the edge has been added.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Adds both u -> v and v -> u (the paper's real-world networks —
  /// coauthorship, following — are used as diffusion networks with
  /// influence in both directions).
  Status AddUndirectedEdge(NodeId u, NodeId v);

  /// Finalizes into an immutable graph. The builder may be reused after.
  DirectedGraph Build() const;

 private:
  static uint64_t Key(NodeId u, NodeId v) {
    return (static_cast<uint64_t>(u) << 32) | v;
  }

  uint32_t num_nodes_;
  std::vector<Edge> edges_;
  std::unordered_set<uint64_t> edge_keys_;
};

}  // namespace tends::graph

#endif  // TENDS_GRAPH_BUILDER_H_
