#ifndef TENDS_GRAPH_IO_H_
#define TENDS_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/statusor.h"
#include "graph/graph.h"

namespace tends::graph {

/// Edge-list text format:
///   - first non-comment line: "<num_nodes>"
///   - each following non-comment line: "<from> <to>"
///   - '#'-prefixed lines and blank lines are comments.
/// Node ids must be in [0, num_nodes). Duplicate edges and self-loops are
/// rejected with Corruption.
StatusOr<DirectedGraph> ReadEdgeList(std::istream& in);
StatusOr<DirectedGraph> ReadEdgeListFile(const std::string& path);

/// Writes the same format (header comment + node count + edges).
Status WriteEdgeList(const DirectedGraph& graph, std::ostream& out);
Status WriteEdgeListFile(const DirectedGraph& graph, const std::string& path);

}  // namespace tends::graph

#endif  // TENDS_GRAPH_IO_H_
