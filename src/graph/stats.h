#ifndef TENDS_GRAPH_STATS_H_
#define TENDS_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace tends::graph {

/// Degree and connectivity summary used by Table II and the generator tests.
struct GraphStats {
  uint32_t num_nodes = 0;
  uint64_t num_edges = 0;
  /// num_edges / num_nodes.
  double average_degree = 0.0;
  /// Mean / stddev / max of total degree (in + out).
  double mean_total_degree = 0.0;
  double stddev_total_degree = 0.0;
  uint32_t max_total_degree = 0;
  uint32_t max_in_degree = 0;
  uint32_t max_out_degree = 0;
  /// Number of weakly connected components and size of the largest.
  uint32_t num_weak_components = 0;
  uint32_t largest_weak_component = 0;
  /// Fraction of node pairs with edges in both directions (reciprocity).
  double reciprocity = 0.0;

  std::string DebugString() const;
};

/// Computes the summary in O(n + m).
GraphStats ComputeStats(const DirectedGraph& graph);

/// Weakly connected component id per node (0-based, component ids are
/// assigned in discovery order).
std::vector<uint32_t> WeakComponents(const DirectedGraph& graph);

/// Histogram of total degrees: result[d] = #nodes with total degree d.
std::vector<uint32_t> DegreeHistogram(const DirectedGraph& graph);

/// Global clustering coefficient of the underlying undirected graph
/// (3 * triangles / connected triples). Directions and reciprocal pairs
/// are collapsed into single undirected edges first. 0 for graphs without
/// any connected triple.
double GlobalClusteringCoefficient(const DirectedGraph& graph);

/// Newman modularity of a node partition on the underlying undirected
/// graph: Q = sum_c (e_c / m - (d_c / 2m)^2), where e_c is the number of
/// undirected intra-community edges and d_c the total undirected degree of
/// community c. `community[v]` is v's community id. Returns 0 for an
/// edgeless graph. High values on generator output confirm the planted
/// community structure.
double Modularity(const DirectedGraph& graph,
                  const std::vector<uint32_t>& community);

}  // namespace tends::graph

#endif  // TENDS_GRAPH_STATS_H_
