#include "graph/generators/erdos_renyi.h"

#include "common/stringutil.h"
#include "graph/builder.h"

namespace tends::graph {

StatusOr<DirectedGraph> GenerateErdosRenyi(const ErdosRenyiOptions& options,
                                           Rng& rng) {
  if (options.edge_probability < 0.0 || options.edge_probability > 1.0) {
    return Status::InvalidArgument("edge_probability must be in [0,1]");
  }
  GraphBuilder builder(options.num_nodes);
  for (uint32_t u = 0; u < options.num_nodes; ++u) {
    for (uint32_t v = 0; v < options.num_nodes; ++v) {
      if (u == v) continue;
      if (rng.NextBernoulli(options.edge_probability)) {
        TENDS_RETURN_IF_ERROR(builder.AddEdge(u, v));
      }
    }
  }
  return builder.Build();
}

StatusOr<DirectedGraph> GenerateErdosRenyiM(uint32_t num_nodes,
                                            uint64_t num_edges, Rng& rng) {
  const uint64_t max_edges =
      static_cast<uint64_t>(num_nodes) * (num_nodes > 0 ? num_nodes - 1 : 0);
  if (num_edges > max_edges) {
    return Status::InvalidArgument(
        StrFormat("num_edges %llu exceeds maximum %llu",
                  static_cast<unsigned long long>(num_edges),
                  static_cast<unsigned long long>(max_edges)));
  }
  GraphBuilder builder(num_nodes);
  while (builder.num_edges() < num_edges) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    NodeId v = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (u == v) continue;
    Status s = builder.AddEdge(u, v);
    if (s.code() == StatusCode::kAlreadyExists) continue;
    TENDS_RETURN_IF_ERROR(s);
  }
  return builder.Build();
}

}  // namespace tends::graph
