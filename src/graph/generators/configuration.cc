#include "graph/generators/configuration.h"

#include <algorithm>
#include <cmath>

#include "common/stringutil.h"
#include "graph/builder.h"

namespace tends::graph {

WeightedSampler::WeightedSampler(const std::vector<double>& weights) {
  cumulative_.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) {
    total += std::max(0.0, w);
    cumulative_.push_back(total);
  }
}

uint32_t WeightedSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble() * total_weight();
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;
  return static_cast<uint32_t>(it - cumulative_.begin());
}

namespace {

// Inverse CDF of the continuous truncated power law p(x) ~ x^-gamma on
// [a, b], evaluated at quantile u in [0, 1).
double PowerLawInverseCdf(double u, double gamma, double a, double b) {
  if (std::abs(gamma - 1.0) < 1e-12) {
    return a * std::pow(b / a, u);
  }
  double e = 1.0 - gamma;
  double fa = std::pow(a, e);
  double fb = std::pow(b, e);
  return std::pow(fa + u * (fb - fa), 1.0 / e);
}

// Deterministic estimate of the mean of the rounded truncated power law.
double EstimateMean(double gamma, double a, double b) {
  constexpr int kGrid = 2048;
  double sum = 0.0;
  for (int i = 0; i < kGrid; ++i) {
    double u = (i + 0.5) / kGrid;
    sum += std::round(PowerLawInverseCdf(u, gamma, a, b));
  }
  return sum / kGrid;
}

}  // namespace

StatusOr<std::vector<uint32_t>> SamplePowerLawDegrees(Rng& rng, uint32_t n,
                                                      double exponent,
                                                      double target_mean,
                                                      uint32_t min_degree,
                                                      uint32_t max_degree) {
  if (n == 0) return Status::InvalidArgument("n must be > 0");
  if (exponent <= 1.0) {
    return Status::InvalidArgument("power-law exponent must be > 1");
  }
  if (min_degree < 1 || min_degree > max_degree) {
    return Status::InvalidArgument("need 1 <= min_degree <= max_degree");
  }
  if (target_mean < min_degree || target_mean > max_degree) {
    return Status::InvalidArgument(
        StrFormat("target_mean %.2f outside [%u, %u]", target_mean, min_degree,
                  max_degree));
  }
  const double b = max_degree;
  // Bisect the continuous lower cutoff a in [min_degree, max_degree] so the
  // expected (rounded) value matches target_mean. EstimateMean is monotone
  // increasing in a.
  double lo = min_degree, hi = b;
  for (int iter = 0; iter < 60; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (EstimateMean(exponent, mid, b) < target_mean) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double a = 0.5 * (lo + hi);

  std::vector<uint32_t> degrees(n);
  int64_t sum = 0;
  for (uint32_t i = 0; i < n; ++i) {
    double x = PowerLawInverseCdf(rng.NextDouble(), exponent, a, b);
    uint32_t d = static_cast<uint32_t>(std::lround(x));
    d = std::clamp(d, min_degree, max_degree);
    degrees[i] = d;
    sum += d;
  }
  // Nudge random entries until the sum is exact.
  const int64_t target_sum = std::llround(static_cast<double>(n) * target_mean);
  int64_t guard = 0;
  while (sum != target_sum && guard++ < 100000000LL) {
    uint32_t i = static_cast<uint32_t>(rng.NextBounded(n));
    if (sum < target_sum && degrees[i] < max_degree) {
      ++degrees[i];
      ++sum;
    } else if (sum > target_sum && degrees[i] > min_degree) {
      --degrees[i];
      --sum;
    }
  }
  if (sum != target_sum) {
    return Status::Internal("degree sum adjustment did not converge");
  }
  return degrees;
}

std::vector<uint32_t> AssignCommunities(uint32_t num_nodes,
                                        uint32_t num_communities) {
  std::vector<uint32_t> community(num_nodes);
  if (num_communities == 0) num_communities = 1;
  for (uint32_t i = 0; i < num_nodes; ++i) {
    community[i] = i % num_communities;
  }
  return community;
}

StatusOr<DirectedGraph> GenerateChungLuCommunity(
    const ChungLuCommunityOptions& options, Rng& rng) {
  const uint32_t n = options.num_nodes;
  if (n < 2) return Status::InvalidArgument("need at least 2 nodes");
  if (options.intra_fraction < 0.0 || options.intra_fraction > 1.0) {
    return Status::InvalidArgument("intra_fraction must be in [0,1]");
  }
  if (!options.directed && options.num_edges % 2 != 0) {
    return Status::InvalidArgument(
        "undirected output requires an even num_edges");
  }
  if (options.reciprocal_fraction < 0.0 || options.reciprocal_fraction > 1.0) {
    return Status::InvalidArgument("reciprocal_fraction must be in [0,1]");
  }
  // Directed mode with reciprocity: the first `mutual_pairs` accepted pairs
  // are placed in both directions, the rest one-way.
  const uint64_t mutual_pairs =
      options.directed
          ? static_cast<uint64_t>(
                std::llround(options.num_edges * options.reciprocal_fraction / 2.0))
          : 0;
  const uint64_t pair_budget = options.directed
                                   ? options.num_edges - mutual_pairs
                                   : options.num_edges / 2;
  const uint64_t max_pairs = static_cast<uint64_t>(n) * (n - 1) /
                             (options.directed ? 1 : 2);
  if (pair_budget > max_pairs / 2) {
    return Status::InvalidArgument(
        "requested density too high for rejection sampling (> 50% of pairs)");
  }

  // Power-law node weights; heavier nodes attract more edges.
  std::vector<double> weights(n);
  const double wmin = 1.0;
  const double wmax = std::max(1.0, options.weight_spread);
  for (uint32_t i = 0; i < n; ++i) {
    weights[i] =
        PowerLawInverseCdf(rng.NextDouble(), options.degree_exponent, wmin, wmax);
  }
  const std::vector<uint32_t> community =
      AssignCommunities(n, options.num_communities);
  const uint32_t num_comm = std::max(1u, options.num_communities);

  // Per-community samplers for intra edges, global sampler otherwise.
  std::vector<std::vector<uint32_t>> members(num_comm);
  for (uint32_t i = 0; i < n; ++i) members[community[i]].push_back(i);
  std::vector<WeightedSampler> comm_samplers;
  comm_samplers.reserve(num_comm);
  std::vector<double> comm_totals(num_comm, 0.0);
  for (uint32_t c = 0; c < num_comm; ++c) {
    std::vector<double> w;
    w.reserve(members[c].size());
    for (uint32_t i : members[c]) {
      w.push_back(weights[i]);
      comm_totals[c] += weights[i];
    }
    comm_samplers.emplace_back(w);
  }
  WeightedSampler global_sampler(weights);
  WeightedSampler community_picker(comm_totals);

  GraphBuilder builder(n);
  uint64_t pairs_added = 0;
  uint64_t attempts = 0;
  const uint64_t max_attempts = 200 * (pair_budget + 16);
  while (pairs_added < pair_budget && attempts < max_attempts) {
    ++attempts;
    NodeId u, v;
    if (rng.NextBernoulli(options.intra_fraction)) {
      uint32_t c = community_picker.Sample(rng);
      if (members[c].size() < 2) continue;
      u = members[c][comm_samplers[c].Sample(rng)];
      v = members[c][comm_samplers[c].Sample(rng)];
    } else {
      u = global_sampler.Sample(rng);
      v = global_sampler.Sample(rng);
    }
    if (u == v) continue;
    if (options.directed) {
      // Both directions must be free so one-way edges stay one-way and
      // mutual pairs contribute exactly two edges.
      if (builder.HasEdge(u, v) || builder.HasEdge(v, u)) continue;
      if (pairs_added < mutual_pairs) {
        TENDS_RETURN_IF_ERROR(builder.AddUndirectedEdge(u, v));
      } else {
        TENDS_RETURN_IF_ERROR(builder.AddEdge(u, v));
      }
    } else {
      if (builder.HasEdge(u, v) || builder.HasEdge(v, u)) continue;
      TENDS_RETURN_IF_ERROR(builder.AddUndirectedEdge(u, v));
    }
    ++pairs_added;
  }
  if (pairs_added < pair_budget) {
    return Status::Internal(
        StrFormat("edge sampling saturated after %llu attempts (%llu/%llu)",
                  static_cast<unsigned long long>(attempts),
                  static_cast<unsigned long long>(pairs_added),
                  static_cast<unsigned long long>(pair_budget)));
  }
  return builder.Build();
}

}  // namespace tends::graph
