#ifndef TENDS_GRAPH_GENERATORS_POWERLAW_H_
#define TENDS_GRAPH_GENERATORS_POWERLAW_H_

#include <cstdint>

#include "common/random.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace tends::graph {

struct PowerlawOptions {
  uint32_t num_nodes = 0;
  /// Exponent of the truncated power-law degree distribution.
  double exponent = 2.5;
  /// Target mean (undirected) degree; the sampled sequence is adjusted to
  /// sum to round(num_nodes * avg_degree) exactly (up to the parity fix).
  double avg_degree = 4.0;
  uint32_t min_degree = 1;
  /// Upper truncation of the degree distribution. 0 = auto: the structural
  /// cutoff round(sqrt(num_nodes * avg_degree)), capped at num_nodes - 1 —
  /// keeps the Havel-Hakimi construction from concentrating a hub's edges
  /// on low-id nodes at scale while still allowing heavy tails.
  uint32_t max_degree = 0;
  /// Fraction of undirected edges realized as mutual pairs (u -> v and
  /// v -> u); the rest get a single uniformly-random orientation. In [0,1].
  double reciprocal_fraction = 0.0;
};

/// Heavy-tailed ground-truth topology at bench scale (50k-100k nodes):
/// samples a truncated power-law degree sequence, repairs its parity, and
/// realizes it with a deterministic Havel-Hakimi construction on a lazy
/// max-heap — O((n + m) log n), no n x n structure, no self-loops or
/// parallel edges. A non-graphical sequence is tolerated: nodes the
/// construction runs out of partners for simply end up short of their
/// sampled degree (power-law sequences at these sizes lose at most a few
/// edges). Each undirected edge is then oriented by `rng`, honoring
/// reciprocal_fraction. Deterministic given the rng state.
StatusOr<DirectedGraph> GeneratePowerlawHavelHakimi(
    const PowerlawOptions& options, Rng& rng);

}  // namespace tends::graph

#endif  // TENDS_GRAPH_GENERATORS_POWERLAW_H_
