#include "graph/generators/barabasi_albert.h"

#include <vector>

#include "graph/builder.h"

namespace tends::graph {

StatusOr<DirectedGraph> GenerateBarabasiAlbert(
    const BarabasiAlbertOptions& options, Rng& rng) {
  if (options.edges_per_node == 0) {
    return Status::InvalidArgument("edges_per_node must be >= 1");
  }
  if (options.num_nodes <= options.edges_per_node) {
    return Status::InvalidArgument("num_nodes must exceed edges_per_node");
  }
  GraphBuilder builder(options.num_nodes);
  // Endpoint pool: every time a node gains an (undirected) attachment, it
  // is appended, so a uniform draw from the pool is degree-proportional.
  std::vector<NodeId> pool;
  const uint32_t m0 = options.edges_per_node;
  // Seed clique-ish core: connect the first m0+1 nodes in a ring.
  for (uint32_t u = 0; u <= m0; ++u) {
    NodeId v = (u + 1) % (m0 + 1);
    if (options.bidirectional) {
      TENDS_RETURN_IF_ERROR(builder.AddUndirectedEdge(u, v));
    } else {
      TENDS_RETURN_IF_ERROR(builder.AddEdgeIfAbsent(u, v));
    }
    pool.push_back(u);
    pool.push_back(v);
  }
  for (uint32_t u = m0 + 1; u < options.num_nodes; ++u) {
    std::vector<NodeId> targets;
    targets.reserve(m0);
    int attempts = 0;
    while (targets.size() < m0 && attempts < 1000) {
      ++attempts;
      NodeId cand = pool[rng.NextBounded(pool.size())];
      if (cand == u) continue;
      bool dup = false;
      for (NodeId t : targets) {
        if (t == cand) {
          dup = true;
          break;
        }
      }
      if (!dup) targets.push_back(cand);
    }
    for (NodeId v : targets) {
      if (options.bidirectional) {
        TENDS_RETURN_IF_ERROR(builder.AddUndirectedEdge(u, v));
      } else {
        TENDS_RETURN_IF_ERROR(builder.AddEdgeIfAbsent(u, v));
      }
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  return builder.Build();
}

}  // namespace tends::graph
