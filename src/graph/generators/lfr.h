#ifndef TENDS_GRAPH_GENERATORS_LFR_H_
#define TENDS_GRAPH_GENERATORS_LFR_H_

#include <cstdint>

#include "common/random.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace tends::graph {

/// Parameters for the LFR benchmark graph generator (Lancichinetti,
/// Fortunato & Radicchi, Phys. Rev. E 78, 2008): community-structured
/// graphs with power-law degree and community-size distributions.
///
/// The generated graph is emitted with both directions of every undirected
/// edge (influence in a coauthorship/social tie flows both ways), so the
/// directed average degree m/n equals `average_degree`.
struct LfrOptions {
  uint32_t num_nodes = 0;
  /// Target mean (undirected) node degree — the paper's κ.
  double average_degree = 4.0;
  /// Power-law exponent of the degree distribution. The paper's dispersion
  /// parameter 𝒯 maps to tau1 = 𝒯 + 1 (larger 𝒯 ⇒ faster tail decay ⇒
  /// less degree dispersion); see FromPaperParams.
  double tau1 = 3.0;
  /// Power-law exponent of the community-size distribution.
  double tau2 = 1.5;
  /// Fraction of each node's edges that leave its community.
  double mixing = 0.2;
  /// Maximum degree; 0 means 3 * average_degree (rounded up, >= 2).
  uint32_t max_degree = 0;
  /// Community size bounds; 0 means automatic (min = max(8, κ+2),
  /// max = max(2*min, n/4)).
  uint32_t min_community = 0;
  uint32_t max_community = 0;

  /// Builds options from the paper's Table II parameters (n, κ, 𝒯).
  static LfrOptions FromPaperParams(uint32_t n, double kappa, double t);
};

/// Generates an LFR benchmark graph. Deterministic given `rng`.
/// The realized edge count can fall slightly short of n*κ when stub
/// matching rejects the final few pairs; realized statistics are reported
/// by graph::ComputeStats (and checked in tests to be within a few percent).
StatusOr<DirectedGraph> GenerateLfr(const LfrOptions& options, Rng& rng);

}  // namespace tends::graph

#endif  // TENDS_GRAPH_GENERATORS_LFR_H_
