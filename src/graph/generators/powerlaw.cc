#include "graph/generators/powerlaw.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>
#include <vector>

#include "common/stringutil.h"
#include "graph/builder.h"
#include "graph/generators/configuration.h"

namespace tends::graph {

namespace {

/// Max-heap order over (residual degree, node): larger residual first,
/// ties to the smaller id — makes the construction fully deterministic.
struct ResidualLess {
  bool operator()(const std::pair<uint32_t, NodeId>& a,
                  const std::pair<uint32_t, NodeId>& b) const {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  }
};

}  // namespace

StatusOr<DirectedGraph> GeneratePowerlawHavelHakimi(
    const PowerlawOptions& options, Rng& rng) {
  const uint32_t n = options.num_nodes;
  if (n < 2) {
    return Status::InvalidArgument("num_nodes must be >= 2");
  }
  if (options.exponent <= 1.0) {
    return Status::InvalidArgument("exponent must be > 1");
  }
  if (options.min_degree < 1) {
    return Status::InvalidArgument("min_degree must be >= 1");
  }
  if (options.reciprocal_fraction < 0.0 || options.reciprocal_fraction > 1.0) {
    return Status::InvalidArgument("reciprocal_fraction must be in [0,1]");
  }
  uint32_t max_degree = options.max_degree;
  if (max_degree == 0) {
    max_degree = static_cast<uint32_t>(
        std::lround(std::sqrt(static_cast<double>(n) * options.avg_degree)));
  }
  max_degree = std::min(max_degree, n - 1);
  max_degree = std::max(max_degree, options.min_degree);
  if (options.avg_degree < static_cast<double>(options.min_degree) ||
      options.avg_degree > static_cast<double>(max_degree)) {
    return Status::InvalidArgument(StrFormat(
        "avg_degree %.3f outside [min_degree=%u, max_degree=%u]",
        options.avg_degree, options.min_degree, max_degree));
  }

  TENDS_ASSIGN_OR_RETURN(
      std::vector<uint32_t> degrees,
      SamplePowerLawDegrees(rng, n, options.exponent, options.avg_degree,
                            options.min_degree, max_degree));

  // An undirected realization needs an even degree sum; repair the parity
  // on the first node with headroom.
  uint64_t degree_sum = 0;
  for (uint32_t d : degrees) degree_sum += d;
  if (degree_sum % 2 != 0) {
    for (uint32_t v = 0; v < n; ++v) {
      if (degrees[v] < max_degree) {
        ++degrees[v];
        break;
      }
    }
  }

  // Havel-Hakimi on a lazy max-heap: repeatedly take the node with the
  // largest residual degree and connect it to the next-largest residuals.
  // Entries are never updated in place — a decrement invalidates a node's
  // old heap copies, detected by comparing the popped value against the
  // live residual. Targets decremented this round are re-pushed only after
  // the round ends, so one round can never pick the same target twice.
  std::vector<uint32_t> residual = degrees;
  std::priority_queue<std::pair<uint32_t, NodeId>,
                      std::vector<std::pair<uint32_t, NodeId>>, ResidualLess>
      heap;
  for (uint32_t v = 0; v < n; ++v) {
    if (residual[v] > 0) heap.emplace(residual[v], v);
  }
  std::vector<std::pair<NodeId, NodeId>> undirected;
  undirected.reserve(degree_sum / 2);
  std::vector<std::pair<uint32_t, NodeId>> round_targets;
  while (!heap.empty()) {
    const auto [rv, v] = heap.top();
    heap.pop();
    if (rv != residual[v] || rv == 0) continue;  // stale copy
    residual[v] = 0;  // v's edges are placed now; it never re-enters
    round_targets.clear();
    uint32_t placed = 0;
    while (placed < rv && !heap.empty()) {
      const auto [ru, u] = heap.top();
      heap.pop();
      if (ru != residual[u] || ru == 0) continue;  // stale copy
      undirected.emplace_back(v, u);
      --residual[u];
      round_targets.emplace_back(residual[u], u);
      ++placed;
    }
    // placed < rv here means the sequence was not graphical (or parity
    // repair hit the max_degree wall): v simply ends short of its degree.
    for (const auto& [ru, u] : round_targets) {
      if (ru > 0) heap.emplace(ru, u);
    }
  }

  // Orientation pass: reciprocal edges become mutual pairs, the rest flip
  // a fair coin.
  GraphBuilder builder(n);
  for (const auto& [a, b] : undirected) {
    if (rng.NextBernoulli(options.reciprocal_fraction)) {
      TENDS_RETURN_IF_ERROR(builder.AddEdge(a, b));
      TENDS_RETURN_IF_ERROR(builder.AddEdge(b, a));
    } else if (rng.NextBernoulli(0.5)) {
      TENDS_RETURN_IF_ERROR(builder.AddEdge(a, b));
    } else {
      TENDS_RETURN_IF_ERROR(builder.AddEdge(b, a));
    }
  }
  return builder.Build();
}

}  // namespace tends::graph
