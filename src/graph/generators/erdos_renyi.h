#ifndef TENDS_GRAPH_GENERATORS_ERDOS_RENYI_H_
#define TENDS_GRAPH_GENERATORS_ERDOS_RENYI_H_

#include "common/random.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace tends::graph {

struct ErdosRenyiOptions {
  uint32_t num_nodes = 0;
  /// Each ordered pair (u, v), u != v, gets a directed edge independently
  /// with this probability.
  double edge_probability = 0.0;
};

/// G(n, p) directed random graph. Deterministic given `rng`'s state.
StatusOr<DirectedGraph> GenerateErdosRenyi(const ErdosRenyiOptions& options,
                                           Rng& rng);

/// G(n, m): exactly `num_edges` distinct directed edges chosen uniformly.
StatusOr<DirectedGraph> GenerateErdosRenyiM(uint32_t num_nodes,
                                            uint64_t num_edges, Rng& rng);

}  // namespace tends::graph

#endif  // TENDS_GRAPH_GENERATORS_ERDOS_RENYI_H_
