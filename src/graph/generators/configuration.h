#ifndef TENDS_GRAPH_GENERATORS_CONFIGURATION_H_
#define TENDS_GRAPH_GENERATORS_CONFIGURATION_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace tends::graph {

/// Draws from a fixed discrete distribution in O(log n) per sample
/// (cumulative-sum + binary search). Weights must be non-negative with a
/// positive total.
class WeightedSampler {
 public:
  explicit WeightedSampler(const std::vector<double>& weights);

  /// Index in [0, weights.size()) with probability proportional to weight.
  uint32_t Sample(Rng& rng) const;

  double total_weight() const { return cumulative_.empty() ? 0.0 : cumulative_.back(); }

 private:
  std::vector<double> cumulative_;
};

/// Samples `n` integer degrees from a truncated power law with density
/// proportional to x^-exponent on [min_degree, max_degree], then nudges
/// individual degrees (staying in range) until the sequence sums to
/// round(n * target_mean). The lower truncation point is tuned by bisection
/// so the pre-adjustment mean is already close to `target_mean`.
///
/// Requires exponent > 1, 1 <= min_degree <= max_degree, and
/// min_degree <= target_mean <= max_degree.
StatusOr<std::vector<uint32_t>> SamplePowerLawDegrees(Rng& rng, uint32_t n,
                                                      double exponent,
                                                      double target_mean,
                                                      uint32_t min_degree,
                                                      uint32_t max_degree);

struct ChungLuCommunityOptions {
  uint32_t num_nodes = 0;
  /// Exact number of directed edges in the output.
  uint64_t num_edges = 0;
  uint32_t num_communities = 1;
  /// Probability that an edge is placed within a single community
  /// (both endpoints in the same community); the rest are global.
  double intra_fraction = 0.8;
  /// Power-law exponent of the node weight (expected-degree) distribution.
  double degree_exponent = 2.5;
  /// Ratio max_weight / min_weight of the expected-degree distribution.
  double weight_spread = 20.0;
  /// If true, each accepted node pair (u, v) contributes the single edge
  /// u -> v; if false, both directions are added (num_edges must be even).
  bool directed = true;
  /// Directed mode only: fraction of edges that come in mutual pairs
  /// (u -> v and v -> u), modeling e.g. mutual follows in a microblog
  /// graph. round(num_edges * reciprocal_fraction / 2) pairs are placed
  /// bidirectionally, the remainder one-way. Must be in [0, 1].
  double reciprocal_fraction = 0.0;
};

/// Community-structured heavy-tailed random graph with an exact edge count:
/// endpoints are drawn with probability proportional to power-law node
/// weights (Chung-Lu style), biased to fall inside a common community with
/// probability `intra_fraction`. Used to build the NetSci / DUNF surrogate
/// topologies (see DESIGN.md substitutions).
StatusOr<DirectedGraph> GenerateChungLuCommunity(
    const ChungLuCommunityOptions& options, Rng& rng);

/// Community assignment used by GenerateChungLuCommunity for a given node
/// count (round-robin blocks); exposed for tests.
std::vector<uint32_t> AssignCommunities(uint32_t num_nodes,
                                        uint32_t num_communities);

}  // namespace tends::graph

#endif  // TENDS_GRAPH_GENERATORS_CONFIGURATION_H_
