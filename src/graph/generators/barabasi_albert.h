#ifndef TENDS_GRAPH_GENERATORS_BARABASI_ALBERT_H_
#define TENDS_GRAPH_GENERATORS_BARABASI_ALBERT_H_

#include "common/random.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace tends::graph {

struct BarabasiAlbertOptions {
  uint32_t num_nodes = 0;
  /// Number of edges each newly arriving node attaches with (to existing
  /// nodes chosen with probability proportional to their current degree).
  uint32_t edges_per_node = 1;
  /// If true, each attachment produces edges in both directions; otherwise
  /// the new node points at the chosen target only.
  bool bidirectional = true;
};

/// Preferential-attachment scale-free graph (Barabási & Albert 1999),
/// implemented with the repeated-endpoints trick for linear-time sampling.
StatusOr<DirectedGraph> GenerateBarabasiAlbert(
    const BarabasiAlbertOptions& options, Rng& rng);

}  // namespace tends::graph

#endif  // TENDS_GRAPH_GENERATORS_BARABASI_ALBERT_H_
