#ifndef TENDS_GRAPH_GENERATORS_WATTS_STROGATZ_H_
#define TENDS_GRAPH_GENERATORS_WATTS_STROGATZ_H_

#include "common/random.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace tends::graph {

struct WattsStrogatzOptions {
  uint32_t num_nodes = 0;
  /// Each node connects to `neighbors_each_side` ring neighbors on each
  /// side (total ring degree 2k).
  uint32_t neighbors_each_side = 1;
  /// Probability of rewiring each ring edge to a uniform random target.
  double rewire_probability = 0.0;
  /// Emit both directions of each undirected edge.
  bool bidirectional = true;
};

/// Small-world ring-lattice-with-rewiring graph (Watts & Strogatz 1998).
StatusOr<DirectedGraph> GenerateWattsStrogatz(
    const WattsStrogatzOptions& options, Rng& rng);

}  // namespace tends::graph

#endif  // TENDS_GRAPH_GENERATORS_WATTS_STROGATZ_H_
