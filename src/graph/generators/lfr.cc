#include "graph/generators/lfr.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/stringutil.h"
#include "graph/builder.h"
#include "graph/generators/configuration.h"

namespace tends::graph {

LfrOptions LfrOptions::FromPaperParams(uint32_t n, double kappa, double t) {
  LfrOptions options;
  options.num_nodes = n;
  options.average_degree = kappa;
  options.tau1 = t + 1.0;
  return options;
}

namespace {

// Samples community sizes from a power law until they cover num_nodes,
// then trims the last community (merging it into the previous one if it
// would fall below min_size).
std::vector<uint32_t> SampleCommunitySizes(Rng& rng, uint32_t num_nodes,
                                           double tau2, uint32_t min_size,
                                           uint32_t max_size) {
  std::vector<uint32_t> sizes;
  uint64_t total = 0;
  while (total < num_nodes) {
    double u = rng.NextDouble();
    double e = 1.0 - tau2;
    double fa = std::pow(static_cast<double>(min_size), e);
    double fb = std::pow(static_cast<double>(max_size), e);
    double x = std::pow(fa + u * (fb - fa), 1.0 / e);
    uint32_t s = std::clamp(static_cast<uint32_t>(std::lround(x)), min_size,
                            max_size);
    sizes.push_back(s);
    total += s;
  }
  // Trim the overshoot from the last community.
  uint32_t overshoot = static_cast<uint32_t>(total - num_nodes);
  while (overshoot > 0) {
    uint32_t& last = sizes.back();
    if (last > overshoot && last - overshoot >= min_size) {
      last -= overshoot;
      overshoot = 0;
    } else if (sizes.size() > 1) {
      // Merge the last community into the previous one and retry.
      uint32_t merged = last;
      sizes.pop_back();
      sizes.back() = std::min(sizes.back() + merged, max_size * 2);
      uint64_t new_total = std::accumulate(sizes.begin(), sizes.end(),
                                           static_cast<uint64_t>(0));
      overshoot = new_total > num_nodes
                      ? static_cast<uint32_t>(new_total - num_nodes)
                      : 0;
      if (new_total < num_nodes) {
        sizes.push_back(static_cast<uint32_t>(num_nodes - new_total));
        overshoot = 0;
      }
    } else {
      sizes.back() = num_nodes;
      overshoot = 0;
    }
  }
  return sizes;
}

// Configuration-model stub matching within one node set. Stub multiset =
// node i repeated stubs[i] times. Produces distinct undirected pairs;
// leftover unmatched stubs are dropped.
void MatchStubs(Rng& rng, const std::vector<NodeId>& nodes,
                std::vector<uint32_t>& stubs, GraphBuilder& builder,
                bool require_cross_community,
                const std::vector<uint32_t>* community) {
  std::vector<NodeId> pool;
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (uint32_t s = 0; s < stubs[i]; ++s) pool.push_back(nodes[i]);
  }
  rng.Shuffle(pool);
  // Repeatedly draw two random stubs; accept if they form a new valid edge.
  // A bounded number of global passes keeps this O(m) in practice.
  size_t live = pool.size();
  uint64_t failures = 0;
  const uint64_t max_failures = 50 * (pool.size() + 16);
  while (live >= 2 && failures < max_failures) {
    size_t ia = rng.NextBounded(live);
    size_t ib = rng.NextBounded(live);
    if (ia == ib) {
      ++failures;
      continue;
    }
    NodeId a = pool[ia];
    NodeId b = pool[ib];
    if (a == b || builder.HasEdge(a, b) || builder.HasEdge(b, a) ||
        (require_cross_community && (*community)[a] == (*community)[b])) {
      ++failures;
      continue;
    }
    // AddUndirectedEdge cannot fail here: endpoints valid, no dup, no loop.
    (void)builder.AddUndirectedEdge(a, b);
    // Remove the two consumed stubs (swap with the back of the live region).
    if (ia < ib) std::swap(ia, ib);
    std::swap(pool[ia], pool[live - 1]);
    --live;
    std::swap(pool[ib], pool[live - 1]);
    --live;
  }
}

}  // namespace

StatusOr<DirectedGraph> GenerateLfr(const LfrOptions& options, Rng& rng) {
  const uint32_t n = options.num_nodes;
  if (n < 4) return Status::InvalidArgument("LFR needs at least 4 nodes");
  if (options.average_degree < 1.0 || options.average_degree >= n) {
    return Status::InvalidArgument("average_degree must be in [1, n)");
  }
  if (options.tau1 <= 1.0 || options.tau2 <= 1.0) {
    return Status::InvalidArgument("power-law exponents must be > 1");
  }
  if (options.mixing < 0.0 || options.mixing > 1.0) {
    return Status::InvalidArgument("mixing must be in [0,1]");
  }
  uint32_t max_degree = options.max_degree;
  if (max_degree == 0) {
    max_degree = std::max<uint32_t>(
        2, static_cast<uint32_t>(std::ceil(3.0 * options.average_degree)));
  }
  max_degree = std::min(max_degree, n - 1);
  uint32_t min_comm = options.min_community;
  if (min_comm == 0) {
    min_comm = std::max<uint32_t>(
        8, static_cast<uint32_t>(options.average_degree) + 2);
  }
  uint32_t max_comm = options.max_community;
  if (max_comm == 0) max_comm = std::max(2 * min_comm, n / 4);
  max_comm = std::min(max_comm, n);
  min_comm = std::min(min_comm, max_comm);

  // 1. Degree sequence.
  TENDS_ASSIGN_OR_RETURN(
      std::vector<uint32_t> degrees,
      SamplePowerLawDegrees(rng, n, options.tau1, options.average_degree, 1,
                            max_degree));

  // 2. Community sizes and node assignment. Nodes are assigned to
  // communities that can host their internal degree (internal degree must
  // not exceed community size - 1); larger-degree nodes are placed first.
  std::vector<uint32_t> sizes =
      SampleCommunitySizes(rng, n, options.tau2, min_comm, max_comm);
  const uint32_t num_comm = static_cast<uint32_t>(sizes.size());
  std::vector<uint32_t> internal_degree(n), external_degree(n);
  for (uint32_t i = 0; i < n; ++i) {
    internal_degree[i] = static_cast<uint32_t>(
        std::lround((1.0 - options.mixing) * degrees[i]));
    internal_degree[i] = std::min(internal_degree[i], degrees[i]);
    external_degree[i] = degrees[i] - internal_degree[i];
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return degrees[a] > degrees[b];
  });
  std::vector<uint32_t> community(n, UINT32_MAX);
  std::vector<uint32_t> filled(num_comm, 0);
  for (uint32_t node : order) {
    // Candidate communities with space whose size can host the internal
    // degree; pick one at random (weighted by remaining space).
    std::vector<uint32_t> candidates;
    for (uint32_t c = 0; c < num_comm; ++c) {
      if (filled[c] < sizes[c] && internal_degree[node] < sizes[c]) {
        candidates.push_back(c);
      }
    }
    uint32_t chosen;
    if (!candidates.empty()) {
      chosen = candidates[rng.NextBounded(candidates.size())];
    } else {
      // No community can host the internal degree: clamp it to the largest
      // community with space.
      chosen = 0;
      uint32_t best_size = 0;
      for (uint32_t c = 0; c < num_comm; ++c) {
        if (filled[c] < sizes[c] && sizes[c] > best_size) {
          best_size = sizes[c];
          chosen = c;
        }
      }
      internal_degree[node] = std::min(internal_degree[node], best_size - 1);
      external_degree[node] = degrees[node] - internal_degree[node];
    }
    community[node] = chosen;
    ++filled[chosen];
  }

  // 3. Internal wiring per community (even out each community's stub sum).
  GraphBuilder builder(n);
  std::vector<std::vector<NodeId>> members(num_comm);
  for (uint32_t i = 0; i < n; ++i) members[community[i]].push_back(i);
  for (uint32_t c = 0; c < num_comm; ++c) {
    uint64_t stub_sum = 0;
    for (NodeId i : members[c]) stub_sum += internal_degree[i];
    if (stub_sum % 2 == 1) {
      // Move one stub from internal to external on a random member.
      for (int attempt = 0; attempt < 1000; ++attempt) {
        NodeId i = members[c][rng.NextBounded(members[c].size())];
        if (internal_degree[i] > 0) {
          --internal_degree[i];
          ++external_degree[i];
          break;
        }
      }
    }
    std::vector<uint32_t> stubs;
    stubs.reserve(members[c].size());
    for (NodeId i : members[c]) stubs.push_back(internal_degree[i]);
    MatchStubs(rng, members[c], stubs, builder, /*require_cross_community=*/false,
               nullptr);
  }

  // 4. External wiring across communities.
  std::vector<NodeId> all_nodes(n);
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  MatchStubs(rng, all_nodes, external_degree, builder,
             /*require_cross_community=*/true, &community);

  return builder.Build();
}

}  // namespace tends::graph
