#include "graph/generators/watts_strogatz.h"

#include <utility>
#include <vector>

#include "graph/builder.h"

namespace tends::graph {

StatusOr<DirectedGraph> GenerateWattsStrogatz(
    const WattsStrogatzOptions& options, Rng& rng) {
  const uint32_t n = options.num_nodes;
  const uint32_t k = options.neighbors_each_side;
  if (n == 0) return Status::InvalidArgument("num_nodes must be > 0");
  if (2 * k >= n) {
    return Status::InvalidArgument("ring degree 2k must be < num_nodes");
  }
  if (options.rewire_probability < 0.0 || options.rewire_probability > 1.0) {
    return Status::InvalidArgument("rewire_probability must be in [0,1]");
  }
  // Undirected edge set of the ring lattice, then rewiring.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<size_t>(n) * k);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= k; ++j) {
      edges.emplace_back(u, (u + j) % n);
    }
  }
  GraphBuilder builder(n);
  auto exists = [&](NodeId a, NodeId b) {
    return builder.HasEdge(a, b) || builder.HasEdge(b, a);
  };
  for (auto& [u, v] : edges) {
    NodeId target = v;
    if (rng.NextBernoulli(options.rewire_probability)) {
      for (int attempt = 0; attempt < 100; ++attempt) {
        NodeId cand = static_cast<NodeId>(rng.NextBounded(n));
        if (cand != u && !exists(u, cand)) {
          target = cand;
          break;
        }
      }
    }
    if (exists(u, target)) continue;  // duplicate after rewiring collision
    if (options.bidirectional) {
      TENDS_RETURN_IF_ERROR(builder.AddUndirectedEdge(u, target));
    } else {
      TENDS_RETURN_IF_ERROR(builder.AddEdgeIfAbsent(u, target));
    }
  }
  return builder.Build();
}

}  // namespace tends::graph
