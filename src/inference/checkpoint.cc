#include "inference/checkpoint.h"

#include <bit>
#include <charconv>

#include "common/metrics.h"
#include "common/stringutil.h"
#include "inference/tends.h"

namespace tends::inference {

namespace {

/// FNV-1a, 64-bit. Not cryptographic — the fingerprint guards against
/// operator mistakes (resuming against the wrong matrix or options), not
/// adversaries.
class Fnv1a {
 public:
  void Bytes(const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      hash_ = (hash_ ^ p[i]) * 0x100000001B3ULL;
    }
  }
  void U64(uint64_t value) { Bytes(&value, sizeof(value)); }
  void F64(double value) { U64(std::bit_cast<uint64_t>(value)); }
  void Str(std::string_view s) { Bytes(s.data(), s.size()); }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
};

StatusOr<uint64_t> ParseU64(std::string_view token, int base) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(),
                                   value, base);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::Corruption("bad integer token '" + std::string(token) + "'");
  }
  return value;
}

}  // namespace

uint64_t FingerprintInference(const diffusion::StatusMatrix& statuses,
                              const TendsOptions& options) {
  Fnv1a h;
  h.Str("tends.checkpoint.fingerprint.v2");
  h.U64(statuses.num_processes());
  h.U64(statuses.num_nodes());
  for (uint32_t p = 0; p < statuses.num_processes(); ++p) {
    h.Bytes(statuses.Row(p), statuses.num_nodes());
  }
  // Every option that can alter the output. num_threads, search.kernel,
  // and the scoring-strategy knobs (search.scoring_strategy,
  // search.max_cube_candidates, search.cube_memory_budget_bytes) are
  // byte-identical knobs (proven by the differential suites) and the
  // checkpoint config is pure durability policy; none of them invalidate.
  h.U64(options.enable_pruning ? 1 : 0);
  h.F64(options.tau_multiplier);
  h.U64(options.tau_override.has_value() ? 1 : 0);
  h.F64(options.tau_override.value_or(0.0));
  // Hash the resolved variant as the 0/1 the deprecated bool used to
  // contribute, so the MiVariant migration does not invalidate existing
  // checkpoints of equivalent configurations.
  h.U64(IsTraditionalMi(options.ResolvedMiVariant()) ? 1 : 0);
  h.U64(options.max_candidates);
  h.U64(options.reject_degenerate_columns ? 1 : 0);
  h.U64(options.search.max_combination_size);
  h.U64(options.search.max_parents);
  h.U64(static_cast<uint64_t>(options.search.greedy_mode));
  h.F64(options.search.min_improvement);
  h.U64(options.search.use_penalty ? 1 : 0);
  // candidate_mode invalidates even though sparse == dense is proven
  // byte-identical: the equivalence is a theorem about this implementation,
  // not a structural identity, and a checkpoint must never silently bridge
  // the two pipelines a differential test is comparing. (v1 -> v2 label
  // bump: v1 files predate the field and are conservatively rejected.)
  h.U64(static_cast<uint64_t>(options.candidate_mode));
  return h.hash();
}

std::string EncodeCheckpoint(const CheckpointData& data) {
  std::string out;
  AppendFrame(StrFormat("%s fingerprint=%016llx num_nodes=%u records=%zu",
                        std::string(kCheckpointSchema).c_str(),
                        static_cast<unsigned long long>(data.fingerprint),
                        data.num_nodes, data.nodes.size()),
              &out);
  for (const CheckpointNodeRecord& record : data.nodes) {
    std::string payload = StrFormat(
        "node %u %u %u %016llx %llu %zu", record.node, record.candidate_count,
        record.clipped ? 1 : 0,
        static_cast<unsigned long long>(std::bit_cast<uint64_t>(record.score)),
        static_cast<unsigned long long>(record.score_evaluations),
        record.parents.size());
    for (graph::NodeId parent : record.parents) {
      payload += StrFormat(" %u", parent);
    }
    AppendFrame(payload, &out);
  }
  return out;
}

StatusOr<CheckpointData> DecodeCheckpoint(std::string_view bytes) {
  TENDS_ASSIGN_OR_RETURN(std::vector<std::string_view> frames,
                         ParseFrames(bytes));
  if (frames.empty()) {
    return Status::Corruption("checkpoint has no header frame");
  }
  // Header: "<schema> fingerprint=<hex> num_nodes=<n> records=<k>".
  std::vector<std::string_view> header = SplitWhitespace(frames[0]);
  if (header.size() != 4 || header[0] != kCheckpointSchema) {
    return Status::Corruption(
        "unsupported checkpoint header '" + std::string(frames[0]) +
        "' (expected schema " + std::string(kCheckpointSchema) + ")");
  }
  auto field = [](std::string_view token,
                  std::string_view key) -> StatusOr<std::string_view> {
    if (token.substr(0, key.size()) != key) {
      return Status::Corruption("checkpoint header field '" +
                                std::string(token) + "' does not start with " +
                                std::string(key));
    }
    return token.substr(key.size());
  };
  CheckpointData data;
  TENDS_ASSIGN_OR_RETURN(std::string_view fp_hex,
                         field(header[1], "fingerprint="));
  TENDS_ASSIGN_OR_RETURN(data.fingerprint, ParseU64(fp_hex, 16));
  TENDS_ASSIGN_OR_RETURN(std::string_view nodes_dec,
                         field(header[2], "num_nodes="));
  TENDS_ASSIGN_OR_RETURN(uint64_t num_nodes, ParseU64(nodes_dec, 10));
  data.num_nodes = static_cast<uint32_t>(num_nodes);
  TENDS_ASSIGN_OR_RETURN(std::string_view records_dec,
                         field(header[3], "records="));
  TENDS_ASSIGN_OR_RETURN(uint64_t declared_records, ParseU64(records_dec, 10));
  if (frames.size() - 1 != declared_records) {
    return Status::Corruption(StrFormat(
        "checkpoint declares %llu records but carries %zu frames",
        static_cast<unsigned long long>(declared_records), frames.size() - 1));
  }

  data.nodes.reserve(frames.size() - 1);
  uint32_t previous_node = 0;
  for (size_t f = 1; f < frames.size(); ++f) {
    std::vector<std::string_view> tokens = SplitWhitespace(frames[f]);
    if (tokens.size() < 7 || tokens[0] != "node") {
      return Status::Corruption(
          StrFormat("malformed node record in frame %zu", f));
    }
    CheckpointNodeRecord record;
    TENDS_ASSIGN_OR_RETURN(uint64_t node, ParseU64(tokens[1], 10));
    TENDS_ASSIGN_OR_RETURN(uint64_t candidates, ParseU64(tokens[2], 10));
    TENDS_ASSIGN_OR_RETURN(uint64_t clipped, ParseU64(tokens[3], 10));
    TENDS_ASSIGN_OR_RETURN(uint64_t score_bits, ParseU64(tokens[4], 16));
    TENDS_ASSIGN_OR_RETURN(record.score_evaluations, ParseU64(tokens[5], 10));
    TENDS_ASSIGN_OR_RETURN(uint64_t num_parents, ParseU64(tokens[6], 10));
    if (node >= data.num_nodes || clipped > 1 ||
        tokens.size() != 7 + num_parents) {
      return Status::Corruption(
          StrFormat("inconsistent node record in frame %zu", f));
    }
    if (f > 1 && node <= previous_node) {
      return Status::Corruption(StrFormat(
          "node records out of order in frame %zu (node %llu after %u)", f,
          static_cast<unsigned long long>(node), previous_node));
    }
    previous_node = static_cast<uint32_t>(node);
    record.node = static_cast<uint32_t>(node);
    record.candidate_count = static_cast<uint32_t>(candidates);
    record.clipped = clipped != 0;
    record.score = std::bit_cast<double>(score_bits);
    record.parents.reserve(num_parents);
    for (uint64_t p = 0; p < num_parents; ++p) {
      TENDS_ASSIGN_OR_RETURN(uint64_t parent, ParseU64(tokens[7 + p], 10));
      if (parent >= data.num_nodes) {
        return Status::Corruption(StrFormat(
            "parent %llu out of range in frame %zu",
            static_cast<unsigned long long>(parent), f));
      }
      record.parents.push_back(static_cast<graph::NodeId>(parent));
    }
    data.nodes.push_back(std::move(record));
  }
  return data;
}

Status WriteCheckpointFile(const CheckpointConfig& config,
                           const CheckpointData& data,
                           const RunContext& context,
                           MetricsRegistry* metrics) {
  TENDS_RETURN_IF_ERROR(EnsureDirectory(config.directory));
  const std::string encoded = EncodeCheckpoint(data);
  // Last-write-wins: the gauge tracks the latest (largest, since snapshots
  // only grow) encoded snapshot this run flushed.
  TENDS_GAUGE_SET(metrics, "tends.mem.checkpoint_buffer_bytes",
                  encoded.size());
  const std::string path = config.FilePath();
  Counter* retries =
      TENDS_METRIC_COUNTER(metrics, "tends.checkpoint.retries");
  return RetryWithBackoff(
      config.retry, context,
      [&] { return AtomicWriteFile(path, encoded); }, retries);
}

StatusOr<CheckpointData> ReadCheckpointFile(const std::string& path) {
  TENDS_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  StatusOr<CheckpointData> decoded = DecodeCheckpoint(bytes);
  if (!decoded.ok()) {
    return Status(decoded.status().code(),
                  path + ": " + decoded.status().message());
  }
  return decoded;
}

StatusOr<std::vector<CheckpointNodeRecord>> LoadCheckpointForResume(
    const CheckpointConfig& config, uint64_t fingerprint, uint32_t num_nodes) {
  const std::string path = config.FilePath();
  StatusOr<CheckpointData> loaded = ReadCheckpointFile(path);
  if (!loaded.ok()) {
    // Nothing durable yet: resume degenerates to a fresh run.
    if (loaded.status().IsNotFound()) {
      return std::vector<CheckpointNodeRecord>();
    }
    return loaded.status();
  }
  if (loaded->num_nodes != num_nodes || loaded->fingerprint != fingerprint) {
    return Status::FailedPrecondition(StrFormat(
        "%s is stale: it was written for fingerprint %016llx over %u nodes, "
        "but this run has fingerprint %016llx over %u nodes (the status "
        "matrix or result-affecting options changed); delete it or point "
        "--checkpoint_dir elsewhere",
        path.c_str(), static_cast<unsigned long long>(loaded->fingerprint),
        loaded->num_nodes, static_cast<unsigned long long>(fingerprint),
        num_nodes));
  }
  return std::move(loaded->nodes);
}

}  // namespace tends::inference
