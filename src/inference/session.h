#ifndef TENDS_INFERENCE_SESSION_H_
#define TENDS_INFERENCE_SESSION_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/run_context.h"
#include "common/statusor.h"
#include "diffusion/cascade.h"
#include "inference/counting.h"
#include "inference/imi.h"
#include "inference/kmeans_threshold.h"
#include "inference/sparse_candidates.h"
#include "inference/tends.h"

namespace tends::inference {

class InferenceSession;

/// How an artifact accessor instruments and parallelizes the computation
/// it may trigger: the metrics registry that observes a first-call build
/// (stages, gauges, hit/miss counters; nullptr for none) and the worker
/// threads a parallelizable build may use. Replaces the positional
/// `(MetricsRegistry*, uint32_t num_threads)` parameters the session
/// accessors used to take — call sites name what they pass
/// (`{.metrics = m}`) and new knobs can land without touching every
/// signature again. Artifacts are byte-identical for any context value;
/// the context only shapes observation and cost.
struct ArtifactContext {
  MetricsRegistry* metrics = nullptr;
  uint32_t num_threads = 1;
};

/// One TENDS run produced by a session: the inferred topology plus its
/// per-run diagnostics. Runs are self-contained values so concurrent
/// sweeps never share mutable diagnostics state (unlike Tends, whose
/// diagnostics() is a member of the algorithm object).
struct SessionRun {
  InferredNetwork network;
  TendsDiagnostics diagnostics;
};

namespace internal {

/// One immutable generation of a session's observations plus its lazily
/// memoized artifacts. A generation never changes after publication:
/// appends build a *successor* generation (copying forward what is cheap
/// to delta-update) and atomically swap it in, so every reference handed
/// out by a generation's accessors stays valid for as long as someone
/// pins the generation (see SessionView). Artifact memoization follows
/// the original session contract: each artifact computes at most once
/// under its own std::once_flag, losers of a computation race block until
/// the winner finishes, and hits/misses are counted on
/// `tends.session.artifact_hits` / `tends.session.artifact_misses`.
class SessionGeneration {
 public:
  SessionGeneration(diffusion::StatusMatrix statuses, uint64_t epoch);

  const diffusion::StatusMatrix& statuses() const { return statuses_; }
  uint32_t num_nodes() const { return statuses_.num_nodes(); }
  uint32_t num_processes() const { return statuses_.num_processes(); }
  /// 0 for the generation a session is constructed with, +1 per append.
  uint64_t epoch() const { return epoch_; }

  // Memoized artifact accessors (computed on first use, then shared; a
  // generation seeded by an append serves the delta-updated value as a
  // hit without ever recomputing).

  /// Bit-packed status columns (the one transpose of the matrix).
  const PackedStatuses& packed(const ArtifactContext& context = {}) const;
  /// Marginal infected-count per node.
  const std::vector<uint32_t>& marginal_counts(
      const ArtifactContext& context = {}) const;
  /// Pairwise contingency counts, strictly-upper-triangle order (the
  /// O(n^2 * beta) half of the IMI pass, shared by both MI variants).
  const std::vector<PairCounts>& pair_counts(
      const ArtifactContext& context = {}) const;
  /// Pairwise matrix of the requested MI variant.
  const ImiMatrix& imi(MiVariant variant,
                       const ArtifactContext& context = {}) const;
  /// K-means base threshold of the requested variant's matrix (unscaled;
  /// runs apply their own tau_multiplier).
  const ImiThreshold& base_threshold(MiVariant variant,
                                     const ArtifactContext& context = {}) const;
  /// Symmetric co-infection count table (the integer backbone the sparse
  /// index derives from; kept as its own artifact because integers are
  /// what appends can delta-update exactly).
  const CooccurrenceCounts& cooccurrence(
      const ArtifactContext& context = {}) const;
  /// Sparse positive-IMI candidate index (candidate_mode = kSparse runs).
  /// Independent of the dense pair_counts/imi artifacts — a sparse-only
  /// session never materializes anything O(n^2).
  const SparseCandidateIndex& sparse_candidates(
      const ArtifactContext& context = {}) const;
  /// K-means base threshold over the sparse index's stored values
  /// (bit-identical tau to base_threshold(kInfection); memoized separately
  /// so neither path forces the other's artifact into existence).
  const ImiThreshold& sparse_base_threshold(
      const ArtifactContext& context = {}) const;

 private:
  friend class ::tends::inference::InferenceSession;

  /// One lazily-computed artifact: a once_flag guarding `value`, plus a
  /// `ready` flag so an append can ask "did anyone materialize this?"
  /// without racing a concurrent first computation (acquire-load; a
  /// mid-flight build simply reads as not-yet-ready and the successor
  /// generation recomputes lazily).
  template <typename T>
  struct Memo {
    mutable std::once_flag once;
    mutable std::optional<T> value;
    mutable std::atomic<bool> ready{false};

    bool Ready() const { return ready.load(std::memory_order_acquire); }
  };

  /// Runs memo.value = init() exactly once (thread-safe), bumping the
  /// session hit/miss counters, and returns the memoized value.
  template <typename T, typename Init>
  const T& Memoize(const Memo<T>& memo, MetricsRegistry* metrics,
                   Init&& init) const;

  /// Seeds a memo with an externally computed value (pre-packed statuses,
  /// an append's delta-updated artifact). First writer wins; later
  /// accessor calls count as hits.
  template <typename T>
  static void Seed(const Memo<T>& memo, T value) {
    std::call_once(memo.once, [&] {
      memo.value.emplace(std::move(value));
      memo.ready.store(true, std::memory_order_release);
    });
  }

  diffusion::StatusMatrix statuses_;
  uint64_t epoch_ = 0;
  Memo<PackedStatuses> packed_;
  Memo<std::vector<uint32_t>> marginal_counts_;
  Memo<std::vector<PairCounts>> pair_counts_;
  Memo<ImiMatrix> imi_infection_;
  Memo<ImiMatrix> imi_traditional_;
  Memo<ImiThreshold> threshold_infection_;
  Memo<ImiThreshold> threshold_traditional_;
  Memo<CooccurrenceCounts> cooccurrence_;
  Memo<SparseCandidateIndex> sparse_candidates_;
  Memo<ImiThreshold> threshold_sparse_;
};

}  // namespace internal

/// A pinned, immutable view of one session generation. Snapshot() hands
/// one out; every reference its accessors return stays valid for the
/// view's lifetime even while appends land on the session — the
/// epoch/snapshot contract concurrent sweeps rely on. Cheap to copy
/// (shared_ptr).
class SessionView {
 public:
  uint64_t epoch() const;
  const diffusion::StatusMatrix& statuses() const;
  uint32_t num_nodes() const;
  uint32_t num_processes() const;

  const PackedStatuses& packed(const ArtifactContext& context = {}) const;
  const std::vector<uint32_t>& marginal_counts(
      const ArtifactContext& context = {}) const;
  const std::vector<PairCounts>& pair_counts(
      const ArtifactContext& context = {}) const;
  const ImiMatrix& imi(MiVariant variant,
                       const ArtifactContext& context = {}) const;
  const ImiThreshold& base_threshold(MiVariant variant,
                                     const ArtifactContext& context = {}) const;
  const CooccurrenceCounts& cooccurrence(
      const ArtifactContext& context = {}) const;
  const SparseCandidateIndex& sparse_candidates(
      const ArtifactContext& context = {}) const;
  const ImiThreshold& sparse_base_threshold(
      const ArtifactContext& context = {}) const;

  /// Runs TENDS against this pinned generation; byte-identical to a fresh
  /// Tends(options).InferFromStatuses(statuses(), context).
  StatusOr<SessionRun> Run(const TendsOptions& options,
                           const RunContext& context = RunContext()) const;

 private:
  friend class InferenceSession;
  friend class IncrementalRunner;
  explicit SessionView(
      std::shared_ptr<const internal::SessionGeneration> generation)
      : generation_(std::move(generation)) {}

  std::shared_ptr<const internal::SessionGeneration> generation_;
};

/// Shared-artifact engine for running TENDS many times against one
/// append-only stream of status observations (tau_multiplier sweeps,
/// IMI-vs-MI ablations, serving repeated inference requests, streaming
/// ingest of new diffusion processes).
///
/// A fresh Tends::Infer recomputes, for every call, artifacts that depend
/// only on the status matrix: the bit-packed column transpose, the
/// pairwise contingency-count table, the IMI (or traditional-MI) matrix,
/// and the K-means base threshold. A session computes each of those
/// lazily on first use, memoizes it for the current generation, and
/// reuses it across runs, so Run() only redoes the work a given option
/// set actually changes: pruning at the scaled threshold plus the parent
/// searches.
///
/// Generations and appends: the observations are an append-only stream of
/// process blocks. AppendStatuses/AppendPacked add a chunk, producing a
/// new generation whose epoch is one higher; artifacts the predecessor
/// had materialized are *delta-updated* eagerly — packed columns spliced,
/// marginal and pair counts added integer-exactly, MI matrices re-derived
/// from the updated table through the canonical constructor, thresholds
/// re-clustered — at cost proportional to the chunk (plus O(n^2) for the
/// dense table), never to the accumulated history, and with values
/// byte-identical to a cold build over the concatenated matrix (the
/// append differential suite pins this). Artifacts never materialized
/// stay lazy. Readers are never blocked: accessors serve the current
/// generation, Snapshot() pins one explicitly, and references returned by
/// the convenience accessors below stay valid until the *next* append
/// (pin a SessionView to hold them longer).
///
/// Equivalence contract: Run(options, context) is byte-identical to a
/// fresh Tends(options).InferFromStatuses(statuses, context) — both feed
/// the same artifact values through internal::RunTendsNodeLoop, and both
/// MI variants are derived from the same memoized count table with the
/// float operations in the same order (enforced by the session test
/// suite with bit-cast float equality).
class InferenceSession {
 public:
  /// Takes ownership of the status matrix (pass a copy to keep the
  /// original). Validation of matrix contents happens per run, honoring
  /// each run's reject_degenerate_columns.
  explicit InferenceSession(diffusion::StatusMatrix statuses);

  /// Same, but seeds the packed-transpose artifact with a pre-built
  /// bit-packed copy of the same statuses (e.g. the simulator's
  /// statuses-only fast path output, diffusion::SimulateStatuses), so
  /// packed() never recomputes the transpose — its every call counts as an
  /// artifact hit. `packed` must hold exactly the bits of `statuses`
  /// (shape is checked and aborts on mismatch; contents are the caller's
  /// contract — a lying producer silently corrupts every artifact).
  InferenceSession(diffusion::StatusMatrix statuses, PackedStatuses packed);

  /// Current generation's matrix; the reference is valid until the next
  /// append (use Snapshot() to pin it across appends).
  const diffusion::StatusMatrix& statuses() const;
  uint32_t num_nodes() const;
  uint32_t num_processes() const;
  /// Number of appends absorbed so far (0 at construction).
  uint64_t epoch() const;

  /// Pins the current generation. The view (and everything reachable from
  /// it) stays valid and immutable however many appends land afterwards.
  SessionView Snapshot() const;

  /// Appends a block of diffusion processes (same node set, >= 1 process)
  /// as a new generation, delta-updating every artifact the current
  /// generation had materialized. Thread-safe against concurrent reads
  /// and runs (they keep observing the old generation until the swap) and
  /// against concurrent appends (serialized). Emits
  /// tends.session.appends / append_processes / append_ns on
  /// context.metrics. Note: appending changes the checkpoint fingerprint
  /// (it hashes the matrix contents), so checkpoints taken before an
  /// append do not resume against the grown session — by design.
  Status AppendStatuses(const diffusion::StatusMatrix& chunk,
                        const ArtifactContext& context = {});

  /// Same, with a pre-packed transpose of the chunk (e.g. from the
  /// simulator's statuses-only fast path). `chunk_packed` must hold
  /// exactly the bits of `chunk` (shape checked; contents are the
  /// caller's contract).
  Status AppendPacked(const diffusion::StatusMatrix& chunk,
                      PackedStatuses chunk_packed,
                      const ArtifactContext& context = {});

  /// Runs TENDS with these options against the current generation's
  /// shared artifacts. Honors the context exactly like
  /// Tends::InferFromStatuses (best-so-far partial network,
  /// diagnostics.deadline_expired set). `metrics` inside the context sees
  /// the same stage/counter names as a fresh run, except that artifact
  /// stages (pack_statuses, imi, kmeans) are only timed on the run that
  /// computes them. The generation is pinned for the duration, so a
  /// concurrent append never mixes observations mid-run.
  StatusOr<SessionRun> Run(const TendsOptions& options,
                           const RunContext& context = RunContext()) const;

  // Convenience artifact accessors against the *current* generation.
  // References are valid until the next append; concurrent sweeps should
  // pin a Snapshot() instead.

  const PackedStatuses& packed(const ArtifactContext& context = {}) const;
  const std::vector<uint32_t>& marginal_counts(
      const ArtifactContext& context = {}) const;
  const std::vector<PairCounts>& pair_counts(
      const ArtifactContext& context = {}) const;
  const ImiMatrix& imi(MiVariant variant,
                       const ArtifactContext& context = {}) const;
  const ImiThreshold& base_threshold(MiVariant variant,
                                     const ArtifactContext& context = {}) const;
  const CooccurrenceCounts& cooccurrence(
      const ArtifactContext& context = {}) const;
  const SparseCandidateIndex& sparse_candidates(
      const ArtifactContext& context = {}) const;
  const ImiThreshold& sparse_base_threshold(
      const ArtifactContext& context = {}) const;

  // Deprecated accessor overloads, source-compatible for one release
  // (positional (MetricsRegistry*, num_threads) and bool-variant forms).
  // None carries default arguments — the zero-argument spellings already
  // resolve to the ArtifactContext overloads above.

  [[deprecated("pass an ArtifactContext instead of a MetricsRegistry*")]]
  const PackedStatuses& packed(MetricsRegistry* metrics) const;
  [[deprecated("pass an ArtifactContext instead of a MetricsRegistry*")]]
  const std::vector<uint32_t>& marginal_counts(MetricsRegistry* metrics) const;
  [[deprecated("pass an ArtifactContext instead of a MetricsRegistry*")]]
  const std::vector<PairCounts>& pair_counts(MetricsRegistry* metrics) const;
  [[deprecated("pass a MiVariant (and ArtifactContext) instead of a bool")]]
  const ImiMatrix& imi(bool use_traditional_mi) const;
  [[deprecated("pass a MiVariant (and ArtifactContext) instead of a bool")]]
  const ImiMatrix& imi(bool use_traditional_mi,
                       MetricsRegistry* metrics) const;
  [[deprecated("pass a MiVariant (and ArtifactContext) instead of a bool")]]
  const ImiThreshold& base_threshold(bool use_traditional_mi) const;
  [[deprecated("pass a MiVariant (and ArtifactContext) instead of a bool")]]
  const ImiThreshold& base_threshold(bool use_traditional_mi,
                                     MetricsRegistry* metrics) const;
  [[deprecated("pass an ArtifactContext instead of positional arguments")]]
  const SparseCandidateIndex& sparse_candidates(MetricsRegistry* metrics) const;
  [[deprecated("pass an ArtifactContext instead of positional arguments")]]
  const SparseCandidateIndex& sparse_candidates(MetricsRegistry* metrics,
                                                uint32_t num_threads) const;
  [[deprecated("pass an ArtifactContext instead of positional arguments")]]
  const ImiThreshold& sparse_base_threshold(MetricsRegistry* metrics) const;
  [[deprecated("pass an ArtifactContext instead of positional arguments")]]
  const ImiThreshold& sparse_base_threshold(MetricsRegistry* metrics,
                                            uint32_t num_threads) const;

 private:
  std::shared_ptr<const internal::SessionGeneration> current() const;
  Status AppendImpl(const diffusion::StatusMatrix& chunk,
                    const PackedStatuses* pre_packed,
                    const ArtifactContext& context);

  /// Guards the generation pointer swap (reads copy the shared_ptr under
  /// it; the pointed-to generation itself is immutable).
  mutable std::mutex generation_mutex_;
  std::shared_ptr<const internal::SessionGeneration> generation_;
  /// Serializes appends (readers are never blocked by it).
  std::mutex append_mutex_;
};

struct IncrementalRunnerOptions {
  /// Candidate sets up to this size keep a per-node CandidateCube between
  /// refreshes (memory: 2^|C| * 8 bytes per node); larger sets fall back
  /// to the ordinary packed search every refresh. Clamped to
  /// CandidateCube::kMaxCubeCandidates.
  uint32_t max_cube_candidates = 12;
};

/// Re-infers the topology after each append, reusing prior parent-search
/// work: per node it keeps the last candidate set and a CandidateCube of
/// sufficient statistics over it. On Refresh(), a node whose (recomputed)
/// candidate set is unchanged is *clean* — its cube absorbs just the
/// appended rows (O(chunk * |C|)) and the greedy search re-runs entirely
/// against the cube, O(2^|C|) per score, never rescanning the history. A
/// node whose candidates moved (or whose set exceeds the cube cap) is
/// *dirty* and takes the ordinary packed search, then rebuilds its cube.
/// Every refresh's output — network bytes, diagnostics, score-evaluation
/// counts — is byte-identical to InferenceSession::Run(options) on the
/// same generation; the cube serves bit-identical JointCounts, so "reuse"
/// is a pure cost optimization (pinned by the append differential suite).
///
/// A refresh cut short by the run context invalidates the per-node state
/// (partial searches are never cached); the next refresh is a full one.
/// Not thread-safe: one runner per consumer (Refresh itself parallelizes
/// over nodes with options.num_threads). Checkpoint options are rejected —
/// incremental state is in-memory by design; use Run() for durable runs.
class IncrementalRunner {
 public:
  IncrementalRunner(const InferenceSession& session, TendsOptions options,
                    IncrementalRunnerOptions runner_options = {});

  /// Pins the session's current generation and infers its topology,
  /// reusing per-node state from the previous refresh where clean.
  StatusOr<SessionRun> Refresh(const RunContext& context = RunContext());

  const TendsOptions& options() const { return options_; }
  /// Epoch of the last completed refresh.
  uint64_t last_epoch() const { return last_epoch_; }
  /// Dirty/clean node split of the last refresh (dirty = full search;
  /// clean = cube-served). Also exported as the tends.session.dirty_nodes
  /// and tends.session.clean_nodes gauges.
  uint32_t last_dirty_nodes() const { return last_dirty_nodes_; }
  uint32_t last_clean_nodes() const { return last_clean_nodes_; }

 private:
  struct NodeState {
    std::vector<graph::NodeId> candidates;
    std::optional<CandidateCube> cube;
  };

  const InferenceSession& session_;
  TendsOptions options_;
  IncrementalRunnerOptions runner_options_;
  bool has_state_ = false;
  std::vector<NodeState> nodes_;
  uint64_t last_epoch_ = 0;
  uint32_t last_dirty_nodes_ = 0;
  uint32_t last_clean_nodes_ = 0;
};

/// One completed run of a sweep: where it sat in the request vector, the
/// options it ran with, and what it produced.
struct SweepRunResult {
  size_t run_index = 0;
  TendsOptions options;
  InferredNetwork network;
  TendsDiagnostics diagnostics;
  /// Wall-clock of this run alone (artifact computation lands on whichever
  /// run triggered it).
  double seconds = 0.0;
};

struct SweepResult {
  /// Fully-completed runs in request order. Runs never started (context
  /// expired first) and runs the deadline cut short mid-way are excluded —
  /// a sweep result never mixes complete and partial networks.
  std::vector<SweepRunResult> completed;
  size_t runs_requested = 0;
  /// Runs that began executing (completed or cut short), as opposed to
  /// skipped outright.
  size_t runs_started = 0;
  /// True when the context stopped the sweep before every requested run
  /// completed.
  bool stopped_early = false;
};

struct SweepRunnerOptions {
  /// Concurrent runs (outer level of the runs × nodes two-level
  /// ParallelFor; each run's inner level uses its own
  /// TendsOptions::num_threads). 1 = one run at a time.
  uint32_t run_parallelism = 1;
  /// Invoked after each completed run, serialized under a mutex (safe to
  /// write to shared state or a terminal from), in completion order —
  /// progress reporting for long sweeps.
  std::function<void(const SweepRunResult&)> on_run_complete;
};

/// Fans a vector of TendsOptions across a session: every run reuses the
/// session's memoized artifacts, runs are independent and may execute
/// concurrently, and the context is honored per run (a run observes the
/// deadline exactly as a standalone Tends::Infer would; the sweep
/// additionally skips runs it could not start in time). The sweep pins
/// one generation up front, so every run sees the same observations even
/// when appends land mid-sweep.
class SweepRunner {
 public:
  explicit SweepRunner(const InferenceSession& session,
                       SweepRunnerOptions options = {});

  /// Validates every option set up front (the index of the offending set
  /// is named in the error), then executes the runs. Only infrastructure
  /// errors surface as a non-OK status; deadline expiry is reported
  /// through SweepResult::stopped_early instead.
  StatusOr<SweepResult> Run(const std::vector<TendsOptions>& runs,
                            const RunContext& context = RunContext()) const;

 private:
  const InferenceSession& session_;
  SweepRunnerOptions options_;
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_SESSION_H_
