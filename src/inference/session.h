#ifndef TENDS_INFERENCE_SESSION_H_
#define TENDS_INFERENCE_SESSION_H_

#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "common/run_context.h"
#include "common/statusor.h"
#include "diffusion/cascade.h"
#include "inference/counting.h"
#include "inference/imi.h"
#include "inference/kmeans_threshold.h"
#include "inference/sparse_candidates.h"
#include "inference/tends.h"

namespace tends::inference {

/// One TENDS run produced by a session: the inferred topology plus its
/// per-run diagnostics. Runs are self-contained values so concurrent
/// sweeps never share mutable diagnostics state (unlike Tends, whose
/// diagnostics() is a member of the algorithm object).
struct SessionRun {
  InferredNetwork network;
  TendsDiagnostics diagnostics;
};

/// Shared-artifact engine for running TENDS many times against one status
/// matrix (tau_multiplier sweeps, IMI-vs-MI ablations, serving repeated
/// inference requests).
///
/// A fresh Tends::Infer recomputes, for every call, artifacts that depend
/// only on the status matrix: the bit-packed column transpose, the
/// pairwise contingency-count table, the IMI (or traditional-MI) matrix,
/// and the K-means base threshold. A session computes each of those
/// lazily on first use, memoizes it for its lifetime, and reuses it across
/// runs, so Run() only redoes the work a given option set actually
/// changes: pruning at the scaled threshold plus the parent searches.
///
/// Memoization contract: the status matrix is owned by value and
/// immutable, so every artifact is valid for the session's lifetime and
/// there is no invalidation — a different matrix means a different
/// session. Each artifact is guarded by its own std::once_flag; accessors
/// (and Run) are safe to call from any number of threads concurrently,
/// losers of a computation race block until the winner finishes, and
/// artifacts are only ever computed once. Accessor hits/misses are
/// counted on `tends.session.artifact_hits` / `tends.session.artifact_misses`.
///
/// Equivalence contract: Run(options, context) is byte-identical to a
/// fresh Tends(options).InferFromStatuses(statuses, context) — both feed
/// the same artifact values through internal::RunTendsNodeLoop, and both
/// MI variants are derived from the same memoized count table with the
/// float operations in the same order (enforced by the session test
/// suite with bit-cast float equality).
class InferenceSession {
 public:
  /// Takes ownership of the status matrix (it must not change afterwards —
  /// pass a copy to keep the original). Validation of matrix contents
  /// happens per run, honoring each run's reject_degenerate_columns.
  explicit InferenceSession(diffusion::StatusMatrix statuses);

  /// Same, but seeds the packed-transpose artifact with a pre-built
  /// bit-packed copy of the same statuses (e.g. the simulator's
  /// statuses-only fast path output, diffusion::SimulateStatuses), so
  /// packed() never recomputes the transpose — its every call counts as an
  /// artifact hit. `packed` must hold exactly the bits of `statuses`
  /// (shape is checked and aborts on mismatch; contents are the caller's
  /// contract — a lying producer silently corrupts every artifact).
  InferenceSession(diffusion::StatusMatrix statuses, PackedStatuses packed);

  const diffusion::StatusMatrix& statuses() const { return statuses_; }
  uint32_t num_nodes() const { return statuses_.num_nodes(); }
  uint32_t num_processes() const { return statuses_.num_processes(); }

  /// Runs TENDS with these options against the shared artifacts. Honors
  /// the context exactly like Tends::InferFromStatuses (best-so-far
  /// partial network, diagnostics.deadline_expired set). `metrics` inside
  /// the context sees the same stage/counter names as a fresh run, except
  /// that artifact stages (pack_statuses, imi, kmeans) are only timed on
  /// the run that computes them.
  StatusOr<SessionRun> Run(const TendsOptions& options,
                           const RunContext& context = RunContext()) const;

  // Memoized artifact accessors (computed on first use, then shared).
  // `metrics` instruments the computation on a miss and the hit/miss
  // counters; pass nullptr for none.

  /// Bit-packed status columns (the one transpose of the matrix).
  const PackedStatuses& packed(MetricsRegistry* metrics = nullptr) const;
  /// Marginal infected-count per node.
  const std::vector<uint32_t>& marginal_counts(
      MetricsRegistry* metrics = nullptr) const;
  /// Pairwise contingency counts, strictly-upper-triangle order (the
  /// O(n^2 * beta) half of the IMI pass, shared by both MI variants).
  const std::vector<PairCounts>& pair_counts(
      MetricsRegistry* metrics = nullptr) const;
  /// Pairwise matrix of the requested MI variant.
  const ImiMatrix& imi(bool use_traditional_mi,
                       MetricsRegistry* metrics = nullptr) const;
  /// K-means base threshold of the requested variant's matrix (unscaled;
  /// runs apply their own tau_multiplier).
  const ImiThreshold& base_threshold(bool use_traditional_mi,
                                     MetricsRegistry* metrics = nullptr) const;
  /// Sparse positive-IMI candidate index (candidate_mode = kSparse runs).
  /// Independent of the dense pair_counts/imi artifacts — a sparse-only
  /// session never materializes anything O(n^2). `num_threads` only
  /// parallelizes a first-call build; the artifact is byte-identical for
  /// any value, so memoization is sound whichever run triggers it.
  const SparseCandidateIndex& sparse_candidates(
      MetricsRegistry* metrics = nullptr, uint32_t num_threads = 1) const;
  /// K-means base threshold over the sparse index's stored values
  /// (bit-identical tau to base_threshold(false), see
  /// kmeans_threshold.h; memoized separately so neither path forces the
  /// other's artifact into existence).
  const ImiThreshold& sparse_base_threshold(MetricsRegistry* metrics = nullptr,
                                            uint32_t num_threads = 1) const;

 private:
  /// One lazily-computed artifact: a once_flag guarding `value`.
  template <typename T>
  struct Memo {
    mutable std::once_flag once;
    mutable std::optional<T> value;
  };

  /// Runs memo.value = init() exactly once (thread-safe), bumping the
  /// session hit/miss counters, and returns the memoized value.
  template <typename T, typename Init>
  const T& Memoize(const Memo<T>& memo, MetricsRegistry* metrics,
                   Init&& init) const;

  diffusion::StatusMatrix statuses_;
  Memo<PackedStatuses> packed_;
  Memo<std::vector<uint32_t>> marginal_counts_;
  Memo<std::vector<PairCounts>> pair_counts_;
  Memo<ImiMatrix> imi_infection_;
  Memo<ImiMatrix> imi_traditional_;
  Memo<ImiThreshold> threshold_infection_;
  Memo<ImiThreshold> threshold_traditional_;
  Memo<SparseCandidateIndex> sparse_candidates_;
  Memo<ImiThreshold> threshold_sparse_;
};

/// One completed run of a sweep: where it sat in the request vector, the
/// options it ran with, and what it produced.
struct SweepRunResult {
  size_t run_index = 0;
  TendsOptions options;
  InferredNetwork network;
  TendsDiagnostics diagnostics;
  /// Wall-clock of this run alone (artifact computation lands on whichever
  /// run triggered it).
  double seconds = 0.0;
};

struct SweepResult {
  /// Fully-completed runs in request order. Runs never started (context
  /// expired first) and runs the deadline cut short mid-way are excluded —
  /// a sweep result never mixes complete and partial networks.
  std::vector<SweepRunResult> completed;
  size_t runs_requested = 0;
  /// Runs that began executing (completed or cut short), as opposed to
  /// skipped outright.
  size_t runs_started = 0;
  /// True when the context stopped the sweep before every requested run
  /// completed.
  bool stopped_early = false;
};

struct SweepRunnerOptions {
  /// Concurrent runs (outer level of the runs × nodes two-level
  /// ParallelFor; each run's inner level uses its own
  /// TendsOptions::num_threads). 1 = one run at a time.
  uint32_t run_parallelism = 1;
  /// Invoked after each completed run, serialized under a mutex (safe to
  /// write to shared state or a terminal from), in completion order —
  /// progress reporting for long sweeps.
  std::function<void(const SweepRunResult&)> on_run_complete;
};

/// Fans a vector of TendsOptions across a session: every run reuses the
/// session's memoized artifacts, runs are independent and may execute
/// concurrently, and the context is honored per run (a run observes the
/// deadline exactly as a standalone Tends::Infer would; the sweep
/// additionally skips runs it could not start in time).
class SweepRunner {
 public:
  explicit SweepRunner(const InferenceSession& session,
                       SweepRunnerOptions options = {});

  /// Validates every option set up front (the index of the offending set
  /// is named in the error), then executes the runs. Only infrastructure
  /// errors surface as a non-OK status; deadline expiry is reported
  /// through SweepResult::stopped_early instead.
  StatusOr<SweepResult> Run(const std::vector<TendsOptions>& runs,
                            const RunContext& context = RunContext()) const;

 private:
  const InferenceSession& session_;
  SweepRunnerOptions options_;
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_SESSION_H_
