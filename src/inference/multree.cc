#include "inference/multree.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/timer.h"
#include "diffusion/cascade.h"
#include "diffusion/validation.h"

namespace tends::inference {

namespace {

struct HeapEntry {
  double gain;
  uint32_t edge_id;
  uint64_t computed_at;  // selection round when this gain was computed

  bool operator<(const HeapEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    return edge_id > other.edge_id;  // deterministic tie-break: lower id first
  }
};

}  // namespace

StatusOr<InferredNetwork> MulTree::Infer(
    const diffusion::DiffusionObservations& observations,
    const RunContext& context) {
  if (options_.num_edges == 0) {
    return Status::InvalidArgument(
        "MulTree requires the target edge count (the paper supplies the "
        "true m)");
  }
  MetricsRegistry* metrics = context.metrics;
  TENDS_METRICS_STAGE(metrics, "multree");
  TENDS_TRACE_SPAN(metrics, "multree_infer");
  Timer timer;
  const auto& cascades = observations.cascades;
  TENDS_RETURN_IF_ERROR(
      diffusion::ValidateCascades(cascades, observations.num_nodes()));
  const uint32_t n = observations.num_nodes();
  const uint32_t num_cascades = static_cast<uint32_t>(cascades.size());

  // Candidate edges: ordered pairs (u, v) with t_u < t_v in some cascade.
  std::vector<graph::Edge> edges;
  std::unordered_set<uint64_t> seen;
  for (const auto& cascade : cascades) {
    std::vector<graph::NodeId> infected;
    for (uint32_t v = 0; v < n; ++v) {
      if (cascade.Infected(v)) infected.push_back(v);
    }
    for (graph::NodeId v : infected) {
      const int32_t tv = cascade.infection_time[v];
      if (tv == 0) continue;
      for (graph::NodeId u : infected) {
        if (cascade.infection_time[u] >= tv) continue;
        uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
        if (seen.insert(key).second) edges.push_back({u, v});
      }
    }
  }
  if (edges.empty()) {
    diagnostics_ = {std::string(name()), timer.ElapsedSeconds(),
                    context.ShouldStop()};
    return InferredNetwork(n);
  }
  TENDS_METRIC_ADD(metrics, "tends.multree.candidate_edges", edges.size());
  Counter* gains_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.multree.gain_evaluations");

  // explanation[c * n + v] = eps + sum of weights of selected edges (u, v)
  // with t_u < t_v in cascade c. The all-trees log-likelihood is
  // sum_{c, v infected, t_v > 0} log(explanation[c][v]).
  std::vector<double> explanation(static_cast<size_t>(num_cascades) * n,
                                  options_.epsilon);
  const double w = options_.edge_weight;

  // Marginal gain of adding edge e = (u, v):
  // sum over cascades where t_u < t_v of log(1 + w / explanation[c][v]).
  auto compute_gain = [&](const graph::Edge& e) {
    TENDS_COUNTER_ADD(gains_counter, 1);
    double gain = 0.0;
    for (uint32_t c = 0; c < num_cascades; ++c) {
      const auto& time = cascades[c].infection_time;
      const int32_t tv = time[e.to];
      const int32_t tu = time[e.from];
      if (tv <= 0 || tu == diffusion::kNeverInfected || tu >= tv) continue;
      const double current = explanation[static_cast<size_t>(c) * n + e.to];
      gain += std::log1p(w / current);
    }
    return gain;
  };

  // CELF lazy greedy. The context is polled while seeding the heap (per
  // candidate edge) and once per CELF pop; on expiry the edges selected so
  // far are returned.
  StopChecker stop(context);
  std::priority_queue<HeapEntry> heap;
  for (uint32_t id = 0; id < edges.size(); ++id) {
    if (stop.ShouldStop()) break;
    heap.push({compute_gain(edges[id]), id, 0});
  }
  InferredNetwork network(n);
  uint64_t round = 0;
  while (network.num_edges() < options_.num_edges && !heap.empty()) {
    if (stop.ShouldStopNow()) break;
    HeapEntry top = heap.top();
    heap.pop();
    if (top.computed_at != round) {
      top.gain = compute_gain(edges[top.edge_id]);
      top.computed_at = round;
      heap.push(top);
      continue;
    }
    // Fresh maximum: select it and update the explanations it touches.
    const graph::Edge& e = edges[top.edge_id];
    for (uint32_t c = 0; c < num_cascades; ++c) {
      const auto& time = cascades[c].infection_time;
      const int32_t tv = time[e.to];
      const int32_t tu = time[e.from];
      if (tv <= 0 || tu == diffusion::kNeverInfected || tu >= tv) continue;
      explanation[static_cast<size_t>(c) * n + e.to] += w;
    }
    network.AddEdge(e.from, e.to, top.gain);
    ++round;
  }
  TENDS_METRIC_ADD(metrics, "tends.multree.edges_selected",
                   network.num_edges());
  diagnostics_ = {std::string(name()), timer.ElapsedSeconds(),
                  context.ShouldStop()};
  return network;
}

}  // namespace tends::inference
