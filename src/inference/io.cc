#include "inference/io.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/stringutil.h"

namespace tends::inference {

namespace {
constexpr char kHeader[] = "# tends-network v1";
}  // namespace

Status WriteInferredNetwork(const InferredNetwork& network,
                            std::ostream& out) {
  out << kHeader << '\n';
  out << network.num_nodes() << '\n';
  for (const ScoredEdge& scored : network.edges()) {
    out << scored.edge.from << ' ' << scored.edge.to << ' '
        << StrFormat("%.17g", scored.weight) << '\n';
  }
  if (!out) return Status::IoError("network write failed");
  return Status::OK();
}

Status WriteInferredNetworkFile(const InferredNetwork& network,
                                const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open: " + path);
  return WriteInferredNetwork(network, out);
}

StatusOr<InferredNetwork> ReadInferredNetwork(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || StripWhitespace(line) != kHeader) {
    return Status::Corruption("missing tends-network header");
  }
  if (!std::getline(in, line)) {
    return Status::Corruption("missing node count");
  }
  auto num_nodes = ParseUint32(StripWhitespace(line));
  if (!num_nodes.ok()) return Status::Corruption("bad node count: " + line);
  InferredNetwork network(*num_nodes);
  int line_no = 2;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    auto fields = SplitWhitespace(stripped);
    if (fields.size() != 3) {
      return Status::Corruption(
          StrFormat("line %d: expected '<from> <to> <weight>'", line_no));
    }
    auto from = ParseUint32(fields[0]);
    auto to = ParseUint32(fields[1]);
    auto weight = ParseDouble(fields[2]);
    if (!from.ok() || !to.ok() || !weight.ok()) {
      return Status::Corruption(StrFormat("line %d: bad edge fields", line_no));
    }
    if (*from >= *num_nodes || *to >= *num_nodes) {
      return Status::Corruption(
          StrFormat("line %d: endpoint out of range", line_no));
    }
    network.AddEdge(*from, *to, *weight);
  }
  return network;
}

StatusOr<InferredNetwork> ReadInferredNetworkFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  return ReadInferredNetwork(in);
}

}  // namespace tends::inference
