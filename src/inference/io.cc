#include "inference/io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "common/stringutil.h"

namespace tends::inference {

namespace {
constexpr char kHeader[] = "# tends-network v1";
}  // namespace

Status WriteInferredNetwork(const InferredNetwork& network,
                            std::ostream& out) {
  out << kHeader << '\n';
  out << network.num_nodes() << '\n';
  for (const ScoredEdge& scored : network.edges()) {
    out << scored.edge.from << ' ' << scored.edge.to << ' '
        << StrFormat("%.17g", scored.weight) << '\n';
  }
  if (!out) return Status::IoError("network write failed");
  return Status::OK();
}

Status WriteInferredNetworkFile(const InferredNetwork& network,
                                const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open: " + path);
  return WriteInferredNetwork(network, out);
}

StatusOr<InferredNetwork> ReadInferredNetwork(std::istream& in,
                                              const IoReadOptions& options,
                                              CorruptionReport* report) {
  const bool strict = options.mode == IoMode::kStrict;
  LineReader reader(in);
  std::string line;
  if (!reader.Next(line)) {
    return Status::Corruption(
        StrFormat("line 1: missing '%s' header", kHeader));
  }
  bool line_pending = false;  // permissive: header line may be the count line
  if (StripWhitespace(line) != kHeader) {
    if (strict) {
      return Status::Corruption(
          StrFormat("line %llu: expected header '%s', got '%s'",
                    static_cast<unsigned long long>(reader.line_number()),
                    kHeader, line.c_str()));
    }
    if (report) {
      report->Record(CorruptionKind::kBadStructure, reader.line_number(),
                     "bad or missing header: '" + line + "'");
    }
    line_pending = true;
  }

  // Node-count line. In permissive mode a damaged count is recorded and the
  // network is sized from the largest surviving endpoint instead.
  bool have_count = false;
  uint32_t num_nodes = 0;
  if (line_pending || reader.Next(line)) {
    line_pending = false;
    auto parsed = ParseUint32(StripWhitespace(line));
    if (parsed.ok()) {
      num_nodes = *parsed;
      have_count = true;
    } else {
      if (strict) {
        return Status::Corruption(
            StrFormat("line %llu: bad node count: '%s'",
                      static_cast<unsigned long long>(reader.line_number()),
                      line.c_str()));
      }
      if (report) {
        report->Record(CorruptionKind::kBadToken, reader.line_number(),
                       "bad node count: '" + line + "'");
      }
    }
  } else {
    if (strict) return Status::Corruption("missing node count line");
    if (report) {
      report->Record(CorruptionKind::kTruncation, 0,
                     "stream ended before the node count line");
    }
  }

  struct ParsedEdge {
    uint32_t from;
    uint32_t to;
    double weight;
  };
  std::vector<ParsedEdge> edges;
  uint32_t max_endpoint = 0;
  while (reader.Next(line)) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    auto fields = SplitWhitespace(stripped);
    if (fields.size() != 3) {
      const std::string message =
          StrFormat("line %llu: expected '<from> <to> <weight>', got '%s'",
                    static_cast<unsigned long long>(reader.line_number()),
                    line.c_str());
      if (strict) return Status::Corruption(message);
      if (report) {
        report->Record(CorruptionKind::kWrongWidth, reader.line_number(),
                       message);
        report->AddSkippedRecord();
      }
      continue;
    }
    auto from = ParseUint32(fields[0]);
    auto to = ParseUint32(fields[1]);
    auto weight = ParseDouble(fields[2]);
    if (!from.ok() || !to.ok() || !weight.ok()) {
      const std::string_view bad =
          !from.ok() ? fields[0] : (!to.ok() ? fields[1] : fields[2]);
      const std::string message =
          StrFormat("line %llu: bad edge token '%s'",
                    static_cast<unsigned long long>(reader.line_number()),
                    std::string(bad).c_str());
      if (strict) return Status::Corruption(message);
      if (report) {
        report->Record(CorruptionKind::kBadToken, reader.line_number(),
                       message);
        report->AddSkippedRecord();
      }
      continue;
    }
    if (!std::isfinite(*weight)) {
      const std::string message =
          StrFormat("line %llu: non-finite edge weight '%s'",
                    static_cast<unsigned long long>(reader.line_number()),
                    std::string(fields[2]).c_str());
      if (strict) return Status::Corruption(message);
      if (report) {
        report->Record(CorruptionKind::kNonFinite, reader.line_number(),
                       message);
        report->AddSkippedRecord();
      }
      continue;
    }
    if (have_count && (*from >= num_nodes || *to >= num_nodes)) {
      const std::string message =
          StrFormat("line %llu: endpoint out of range (%u %u, nodes: %u)",
                    static_cast<unsigned long long>(reader.line_number()),
                    *from, *to, num_nodes);
      if (strict) return Status::Corruption(message);
      if (report) {
        report->Record(CorruptionKind::kOutOfRange, reader.line_number(),
                       message);
        report->AddSkippedRecord();
      }
      continue;
    }
    max_endpoint = std::max({max_endpoint, *from, *to});
    edges.push_back({*from, *to, *weight});
  }

  if (!have_count) {
    if (edges.empty()) {
      return Status::Corruption(
          "no node count and no surviving edges; nothing recoverable");
    }
    num_nodes = max_endpoint + 1;
  }
  InferredNetwork network(num_nodes);
  for (const ParsedEdge& e : edges) network.AddEdge(e.from, e.to, e.weight);
  return network;
}

StatusOr<InferredNetwork> ReadInferredNetworkFile(const std::string& path,
                                                  const IoReadOptions& options,
                                                  CorruptionReport* report) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  return ReadInferredNetwork(in, options, report);
}

}  // namespace tends::inference
