#ifndef TENDS_INFERENCE_CORRELATION_H_
#define TENDS_INFERENCE_CORRELATION_H_

#include <string_view>

#include "inference/network_inference.h"

namespace tends::inference {

/// Options of the naive correlation baseline.
struct CorrelationOptions {
  /// Number of edges to output (each unordered correlated pair contributes
  /// both directions).
  uint64_t num_edges = 0;
  /// Rank pairs by infection MI (default) or traditional MI.
  bool use_traditional_mi = false;
};

/// Naive baseline (not from the paper; used in ablations and examples):
/// ranks node pairs by their pairwise infection-MI and emits the top
/// num_edges ordered pairs. Shows how much of TENDS's accuracy comes from
/// the score-based parent-set search versus raw pairwise correlation.
class CorrelationBaseline : public NetworkInference {
 public:
  explicit CorrelationBaseline(CorrelationOptions options)
      : options_(options) {}

  std::string_view name() const override { return "Correlation"; }

  /// Name, wall-clock seconds and partial-result flag of the most recent
  /// successful Infer call ("{}" before the first).
  std::string DiagnosticsJson() const override { return diagnostics_.ToJson(); }

  using NetworkInference::Infer;

  /// Honors the context at per-node granularity while ranking pairs: on
  /// expiry the rows not yet ranked contribute no edges.
  StatusOr<InferredNetwork> Infer(
      const diffusion::DiffusionObservations& observations,
      const RunContext& context) override;

 private:
  CorrelationOptions options_;
  BaselineDiagnostics diagnostics_;
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_CORRELATION_H_
