#ifndef TENDS_INFERENCE_LOCAL_SCORE_H_
#define TENDS_INFERENCE_LOCAL_SCORE_H_

#include <cstdint>
#include <vector>

#include "diffusion/cascade.h"
#include "inference/counting.h"

namespace tends::inference {

/// log2 of the likelihood L(v_i, F_i) (Eq. 3): sum over observed parent-
/// status combinations j and child statuses k of N_ijk * log2(N_ijk / N_ij).
/// Terms with N_ijk = 0 contribute 0. Always <= 0.
double LogLikelihood(const JointCounts& counts);

/// The statistical-error penalty of Eq. 12: (1/2) * sum_j log2(N_ij + 1).
/// Unobserved combinations have N_ij = 0 and contribute log2(1) = 0.
double ScorePenalty(const JointCounts& counts);

/// Local score g(v_i, F_i) = LogLikelihood - ScorePenalty (Eq. 13).
double LocalScore(const JointCounts& counts);

/// g(v_i, emptyset) (Eq. 18): n1/n2 are the counts of child status 0/1
/// across the beta = n1 + n2 processes.
double EmptySetLocalScore(uint32_t n1, uint32_t n2);

/// Theorem 2's delta_i (Eq. 17):
///   2*N1*log2(beta/N1) + 2*N2*log2(beta/N2) + log2(beta + 1),
/// with the convention that an N_k = 0 term contributes 0.
double DeltaI(uint32_t beta, uint32_t n1, uint32_t n2);

/// Theorem 2's bound: |F| <= log2(phi_F + delta). `phi` is the number of
/// unobserved parent-status combinations.
bool WithinParentBound(size_t parent_set_size, uint64_t phi, double delta);

/// Convenience: counts + local score for (child, parents) in one call.
double LocalScoreFor(const diffusion::StatusMatrix& statuses,
                     graph::NodeId child,
                     const std::vector<graph::NodeId>& parents);

/// Total network score g(T) (Eq. 12) for a full topology given per-node
/// parent sets: sum of local scores. Exposed for tests of decomposability
/// and for the examples.
double NetworkScore(const diffusion::StatusMatrix& statuses,
                    const std::vector<std::vector<graph::NodeId>>& parents);

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_LOCAL_SCORE_H_
