#ifndef TENDS_INFERENCE_NETINF_H_
#define TENDS_INFERENCE_NETINF_H_

#include <string_view>

#include "inference/network_inference.h"

namespace tends::inference {

/// Options of the NetInf baseline.
struct NetInfOptions {
  /// Number of edges to infer (NetInf, like MulTree, takes the budget).
  uint64_t num_edges = 0;
  /// Weight ratio between an edge explanation and the background epsilon;
  /// only the ratio enters the greedy gains.
  double edge_weight = 0.5;
  double epsilon = 1e-9;
};

/// NetInf (Gomez-Rodriguez, Leskovec & Krause, KDD 2010): the predecessor
/// of MulTree that scores each cascade by its single most probable
/// propagation tree instead of the sum over all trees (§II-A: "NetInf
/// considers only the most probable propagation tree, to achieve high
/// efficiency"). With uniform edge weights, an infected node's term
/// improves only when it gains its *first* selected time-respecting
/// parent, so the greedy gain of an edge counts the cascades where it is
/// the first explanation of its head. Submodular; solved greedily with
/// CELF.
class NetInf : public NetworkInference {
 public:
  explicit NetInf(NetInfOptions options) : options_(options) {}

  std::string_view name() const override { return "NetInf"; }

  /// Name, wall-clock seconds and partial-result flag of the most recent
  /// successful Infer call ("{}" before the first).
  std::string DiagnosticsJson() const override { return diagnostics_.ToJson(); }

  using NetworkInference::Infer;

  /// Honors the context at per-edge-selection granularity: the greedy CELF
  /// loop stops at the deadline and returns the edges selected so far
  /// (each prefix of the greedy solution is itself the greedy solution for
  /// that smaller budget).
  StatusOr<InferredNetwork> Infer(
      const diffusion::DiffusionObservations& observations,
      const RunContext& context) override;

 private:
  NetInfOptions options_;
  BaselineDiagnostics diagnostics_;
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_NETINF_H_
