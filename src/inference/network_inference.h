#ifndef TENDS_INFERENCE_NETWORK_INFERENCE_H_
#define TENDS_INFERENCE_NETWORK_INFERENCE_H_

#include <string>
#include <string_view>

#include "common/run_context.h"
#include "common/statusor.h"
#include "diffusion/simulator.h"
#include "inference/inferred_network.h"

namespace tends::inference {

/// Minimal post-run diagnostics every algorithm can report: identity,
/// wall-clock, and whether the run was cut short by its RunContext (in
/// which case the returned network is the best-so-far partial result).
/// Algorithms with richer diagnostics (TENDS) render their own JSON.
struct BaselineDiagnostics {
  std::string algorithm;
  double seconds = 0.0;
  /// True when the deadline/cancellation stopped the run early; the
  /// returned network is partial.
  bool deadline_expired = false;

  /// Compact single-object JSON with stable keys "algorithm", "seconds"
  /// and "deadline_expired".
  std::string ToJson() const;
};

/// Common interface of all diffusion-network reconstruction algorithms.
///
/// Each algorithm consumes a different slice of the observations (TENDS:
/// final statuses only; NetRate/MulTree: cascades with timestamps; LIFT:
/// statuses + sources) but they all produce an InferredNetwork, which lets
/// the evaluation harness treat them uniformly.
class NetworkInference {
 public:
  virtual ~NetworkInference() = default;

  /// Algorithm display name ("TENDS", "NetRate", ...).
  virtual std::string_view name() const = 0;

  /// Machine-readable diagnostics of the most recent successful Infer call
  /// as one JSON object ("{}" before the first call). Every implementation
  /// reports at least its name, wall-clock seconds, and a
  /// deadline_expired/partial flag; TENDS reports its full TendsDiagnostics.
  /// Lets `tends_cli infer --verbose` and the evaluation harness consume
  /// diagnostics uniformly instead of special-casing TENDS.
  virtual std::string DiagnosticsJson() const { return "{}"; }

  /// Reconstructs the topology from the observations under the given
  /// execution constraints. When the context's deadline expires (or its
  /// cancellation token fires) mid-run, the algorithm stops starting new
  /// work and returns the best-so-far partial network — it never blocks
  /// past the budget and never fails because of it. An unconstrained
  /// context reproduces the unconstrained result exactly.
  virtual StatusOr<InferredNetwork> Infer(
      const diffusion::DiffusionObservations& observations,
      const RunContext& context) = 0;

  /// Unconstrained convenience overload.
  StatusOr<InferredNetwork> Infer(
      const diffusion::DiffusionObservations& observations) {
    return Infer(observations, RunContext());
  }
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_NETWORK_INFERENCE_H_
