#ifndef TENDS_INFERENCE_NETWORK_INFERENCE_H_
#define TENDS_INFERENCE_NETWORK_INFERENCE_H_

#include <string_view>

#include "common/statusor.h"
#include "diffusion/simulator.h"
#include "inference/inferred_network.h"

namespace tends::inference {

/// Common interface of all diffusion-network reconstruction algorithms.
///
/// Each algorithm consumes a different slice of the observations (TENDS:
/// final statuses only; NetRate/MulTree: cascades with timestamps; LIFT:
/// statuses + sources) but they all produce an InferredNetwork, which lets
/// the evaluation harness treat them uniformly.
class NetworkInference {
 public:
  virtual ~NetworkInference() = default;

  /// Algorithm display name ("TENDS", "NetRate", ...).
  virtual std::string_view name() const = 0;

  /// Reconstructs the topology from the observations.
  virtual StatusOr<InferredNetwork> Infer(
      const diffusion::DiffusionObservations& observations) = 0;
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_NETWORK_INFERENCE_H_
