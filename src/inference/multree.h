#ifndef TENDS_INFERENCE_MULTREE_H_
#define TENDS_INFERENCE_MULTREE_H_

#include <string_view>

#include "inference/network_inference.h"

namespace tends::inference {

/// Options of the MulTree baseline.
struct MulTreeOptions {
  /// Number of edges to infer. The paper supplies the true edge count m to
  /// MulTree ("we provide the real number m of edges"); 0 is invalid.
  uint64_t num_edges = 0;
  /// Transmission weight credited to a selected edge in the all-trees
  /// likelihood.
  double edge_weight = 0.5;
  /// Background weight so every infection has non-zero explanation before
  /// any edge is selected.
  double epsilon = 1e-9;
};

/// MulTree (Gomez-Rodriguez & Schölkopf, ICML 2012): submodular greedy
/// maximization of the cascade likelihood summed over *all* propagation
/// trees. For time-stamped cascades that likelihood factorizes per infected
/// node v as  prod_v ( eps + sum_{selected edges (u,v): t_u < t_v} w ),
/// so the greedy marginal gain of an edge is a sum of log-ratios over the
/// cascades it can explain. Uses CELF lazy evaluation (the gains are
/// monotone decreasing by submodularity).
class MulTree : public NetworkInference {
 public:
  explicit MulTree(MulTreeOptions options) : options_(options) {}

  std::string_view name() const override { return "MulTree"; }

  /// Name, wall-clock seconds and partial-result flag of the most recent
  /// successful Infer call ("{}" before the first).
  std::string DiagnosticsJson() const override { return diagnostics_.ToJson(); }

  using NetworkInference::Infer;

  /// Honors the context at per-edge-selection granularity: the greedy CELF
  /// loop stops at the deadline and returns the edges selected so far
  /// (each prefix of the greedy solution is itself the greedy solution for
  /// that smaller budget).
  StatusOr<InferredNetwork> Infer(
      const diffusion::DiffusionObservations& observations,
      const RunContext& context) override;

 private:
  MulTreeOptions options_;
  BaselineDiagnostics diagnostics_;
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_MULTREE_H_
