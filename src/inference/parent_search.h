#ifndef TENDS_INFERENCE_PARENT_SEARCH_H_
#define TENDS_INFERENCE_PARENT_SEARCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/run_context.h"
#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "inference/counting.h"

namespace tends::inference {

/// How the greedy expansion of F_i interprets Algorithm 1 (see DESIGN.md,
/// "Substitutions": the paper's prose and pseudo-code differ).
enum class GreedyMode {
  /// Default. Each step adds the candidate combination W that maximizes
  /// the *recomputed* score g(v_i, F_i ∪ W); stops when no combination
  /// improves the current score (the prose reading: "adding a node
  /// combination that increases the value of the current g(v_i, F_i) the
  /// most").
  kAdaptive,
  /// Literal pseudo-code reading: combinations are ranked once by their
  /// standalone scores g(v_i, W) and merged into F_i in that order
  /// whenever the Theorem-2 bound still holds, until C_i is exhausted.
  kStaticAlgorithm1,
};

/// How a node's greedy evaluations obtain their sufficient statistics.
/// Every strategy emits bit-identical JointCounts, so networks,
/// diagnostics, and score_evaluations counts are strategy-invariant — the
/// choice moves cost only (enforced by the scoring-strategy differential
/// suite). Exposed per run so the bench arms and the differential tests
/// can force either path.
enum class ScoringStrategy {
  /// Default: per node, a cost model (see PlanScoringStrategy) picks
  /// between the kernel-scan path and building a CandidateCube, from
  /// (options, beta, |C|) alone — deterministic and thread-invariant.
  kAuto,
  /// Always the kernel-scan path (the packed popcount/code kernels, or
  /// the naive oracle under CountingKernel::kNaive): every evaluation
  /// rescans O(beta/64) column words.
  kPacked,
  /// Build a CandidateCube per node and answer every evaluation by
  /// O(2^|C|) marginalization, independent of beta. Candidate sets the
  /// cube cannot hold (|C| over the cap or the memory budget) fall back
  /// to the kernel-scan path.
  kCube,
};

struct ParentSearchOptions {
  /// Maximum size of a candidate parent combination W (the paper's η,
  /// assumed small in its complexity analysis).
  uint32_t max_combination_size = 3;
  /// Hard cap on |F_i| (engineering safeguard on top of Theorem 2, which
  /// only binds for heavily skewed infection counts).
  uint32_t max_parents = 16;
  GreedyMode greedy_mode = GreedyMode::kAdaptive;
  /// Minimum score improvement for the adaptive mode to keep expanding.
  double min_improvement = 1e-9;
  /// Ablation switch: when false, the statistical-error penalty of Eq. 12
  /// is dropped and the search maximizes the raw log-likelihood. By
  /// Theorem 1 the likelihood is monotone in the parent set, so this mode
  /// degenerates to adding every admissible candidate — the behaviour the
  /// penalty exists to prevent (bench/ablation_penalty).
  bool use_penalty = true;
  /// Sufficient-statistics kernel. Both kernels are bit-identical in
  /// output (proven by the differential suite); kNaive re-scans the raw
  /// status matrix and exists as the reference oracle / fallback.
  CountingKernel kernel = CountingKernel::kPacked;
  /// Per-node scoring strategy (byte-identical output for every value;
  /// like `kernel` it is excluded from the checkpoint fingerprint).
  ScoringStrategy scoring_strategy = ScoringStrategy::kAuto;
  /// Largest candidate set a per-node CandidateCube may cover; larger sets
  /// always take the kernel-scan path. Clamped to
  /// CandidateCube::kMaxCubeCandidates (cells are 2^|C| * 8 bytes).
  uint32_t max_cube_candidates = 12;
  /// Per-node byte budget for a cube's cells; a candidate set whose cube
  /// would exceed it falls back to the kernel-scan path even under a
  /// forced kCube. The default admits every set the candidate cap allows
  /// (2^12 * 8 = 32 KiB) with headroom up to the hard kMaxCubeCandidates.
  uint64_t cube_memory_budget_bytes = uint64_t{1} << 20;  // 1 MiB
};

/// The per-node scoring plan: which path `FindParents` for a node with
/// `num_candidates` pruned candidates over `num_processes` processes
/// should take. Pure function of its arguments — no matrix contents, no
/// thread count — so the plan (and therefore the instrumentation split)
/// is deterministic across runs and thread counts; the *output* is
/// identical either way.
///
/// Forced strategies are honored whenever possible: kPacked always, kCube
/// unless the candidate set exceeds the cube cap or the memory budget
/// (then the kernel path is the only correct choice). kAuto compares an
/// explicit cost model: cube build O(beta * |C|) + per-evaluation O(2^|C|)
/// marginalizations versus per-evaluation O(beta/64) word scans, with the
/// evaluation count estimated from the combination census and greedy
/// round bound. Under CountingKernel::kNaive, kAuto never picks the cube:
/// the naive kernel exists to be the reference oracle, and silently
/// substituting cube marginalizations would defeat --counting_kernel=naive.
ScoringStrategy PlanScoringStrategy(const ParentSearchOptions& options,
                                    uint32_t num_processes,
                                    size_t num_candidates);

struct ParentSearchResult {
  /// Inferred parent set F_i, sorted ascending.
  std::vector<graph::NodeId> parents;
  /// Final local score g(v_i, F_i).
  double score = 0.0;
  /// g(v_i, emptyset), for diagnostics.
  double empty_score = 0.0;
  /// Theorem-2 delta_i for this child.
  double delta = 0.0;
  /// Number of candidate combinations admitted to C_i.
  uint64_t combinations_considered = 0;
  /// Total CountJoint evaluations performed (cost proxy).
  uint64_t score_evaluations = 0;
  /// Evaluations served by the packed kernel (0 under kNaive).
  uint64_t packed_count_calls = 0;
  /// Packed evaluations that reused the incremental counter's cached base
  /// codes (one OR-in instead of a full re-scan).
  uint64_t incremental_count_hits = 0;
  /// True when the run context stopped the search early; `parents` and
  /// `score` hold the best state reached before the cutoff.
  bool stopped = false;
};

/// Finds the most probable parent set of `child` among `candidates` by
/// maximizing the local score g (Algorithm 1 lines 13-20). Deterministic:
/// candidates are processed in the given order and ties keep the earlier
/// combination. The context is polled between score evaluations; on
/// expiry the search returns its current best parent set with `stopped`
/// set (an unconstrained context leaves results bit-identical).
///
/// Under CountingKernel::kPacked the caller may pass a pre-built `packed`
/// view of `statuses` (built once per inference run and shared read-only
/// across worker threads); when null, one is built per call. The kernel
/// choice never changes the result — only the cost of computing it.
///
/// When `cube` is non-null it must be a CandidateCube over exactly this
/// (child, candidates) pair covering every process of `statuses` (checked);
/// all sufficient statistics are then answered by cube marginalization in
/// O(2^|C|) per evaluation, without touching the status matrix — the
/// incremental session runner's fast path after an append. The cube emits
/// bit-identical JointCounts, so results (and score_evaluations counts)
/// are identical to the kernel paths.
ParentSearchResult FindParents(const diffusion::StatusMatrix& statuses,
                               graph::NodeId child,
                               const std::vector<graph::NodeId>& candidates,
                               const ParentSearchOptions& options,
                               const RunContext& context = RunContext(),
                               const PackedStatuses* packed = nullptr,
                               const CandidateCube* cube = nullptr);

/// Enumerates all non-empty subsets of `candidates` with size at most
/// `max_size`, invoking `visit(subset)` in deterministic order (by size,
/// then lexicographic over candidate positions). Exposed for tests.
void ForEachCombination(
    const std::vector<graph::NodeId>& candidates, uint32_t max_size,
    const std::function<void(const std::vector<graph::NodeId>&)>& visit);

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_PARENT_SEARCH_H_
