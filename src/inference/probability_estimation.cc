#include "inference/probability_estimation.h"

#include <algorithm>
#include <bit>

#include "inference/counting.h"

namespace tends::inference {

StatusOr<std::vector<EdgeProbabilityEstimate>> EstimatePropagationProbabilities(
    const diffusion::StatusMatrix& statuses, const InferredNetwork& network) {
  const uint32_t n = statuses.num_nodes();
  if (n == 0 || statuses.num_processes() == 0) {
    return Status::InvalidArgument("empty observations");
  }
  if (network.num_nodes() != n) {
    return Status::InvalidArgument(
        "network and observations disagree on node count");
  }
  // Parent lists per child.
  std::vector<std::vector<graph::NodeId>> parents(n);
  for (const ScoredEdge& scored : network.edges()) {
    if (scored.edge.from >= n || scored.edge.to >= n) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    parents[scored.edge.to].push_back(scored.edge.from);
  }

  std::vector<EdgeProbabilityEstimate> estimates;
  estimates.reserve(network.num_edges());
  // Word-packed counting: per edge (u -> v), the processes where u is
  // infected and no co-parent of v is infected fall out of ~64-process-wide
  // mask/popcount steps instead of a per-process scan over all columns.
  const PackedStatuses packed(statuses);
  for (const ScoredEdge& scored : network.edges()) {
    const graph::NodeId u = scored.edge.from;
    const graph::NodeId v = scored.edge.to;
    const uint64_t* u_col = packed.Column(u);
    const uint64_t* v_col = packed.Column(v);
    uint32_t isolated_total = 0, isolated_infected = 0;
    uint32_t pair_total = 0, pair_infected = 0;
    for (uint32_t w = 0; w < packed.words_per_node(); ++w) {
      const uint64_t u_word = u_col[w];
      if (u_word == 0) continue;
      uint64_t co_word = 0;
      for (graph::NodeId co : parents[v]) {
        if (co != u) co_word |= packed.Column(co)[w];
      }
      pair_total += static_cast<uint32_t>(std::popcount(u_word));
      pair_infected +=
          static_cast<uint32_t>(std::popcount(u_word & v_col[w]));
      const uint64_t isolated = u_word & ~co_word;
      isolated_total += static_cast<uint32_t>(std::popcount(isolated));
      isolated_infected +=
          static_cast<uint32_t>(std::popcount(isolated & v_col[w]));
    }
    EdgeProbabilityEstimate estimate;
    estimate.edge = scored.edge;
    estimate.support = isolated_total;
    if (isolated_total > 0) {
      estimate.probability =
          (isolated_infected + 1.0) / (isolated_total + 2.0);
    } else if (pair_total > 0) {
      estimate.probability = (pair_infected + 1.0) / (pair_total + 2.0);
    } else {
      estimate.probability = 0.5;  // no evidence either way
    }
    estimates.push_back(estimate);
  }
  return estimates;
}

}  // namespace tends::inference
