#include "inference/probability_estimation.h"

#include <algorithm>

namespace tends::inference {

StatusOr<std::vector<EdgeProbabilityEstimate>> EstimatePropagationProbabilities(
    const diffusion::StatusMatrix& statuses, const InferredNetwork& network) {
  const uint32_t n = statuses.num_nodes();
  if (n == 0 || statuses.num_processes() == 0) {
    return Status::InvalidArgument("empty observations");
  }
  if (network.num_nodes() != n) {
    return Status::InvalidArgument(
        "network and observations disagree on node count");
  }
  // Parent lists per child.
  std::vector<std::vector<graph::NodeId>> parents(n);
  for (const ScoredEdge& scored : network.edges()) {
    if (scored.edge.from >= n || scored.edge.to >= n) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    parents[scored.edge.to].push_back(scored.edge.from);
  }

  std::vector<EdgeProbabilityEstimate> estimates;
  estimates.reserve(network.num_edges());
  const uint32_t beta = statuses.num_processes();
  for (const ScoredEdge& scored : network.edges()) {
    const graph::NodeId u = scored.edge.from;
    const graph::NodeId v = scored.edge.to;
    uint32_t isolated_total = 0, isolated_infected = 0;
    uint32_t pair_total = 0, pair_infected = 0;
    for (uint32_t p = 0; p < beta; ++p) {
      const uint8_t* row = statuses.Row(p);
      if (!row[u]) continue;
      ++pair_total;
      pair_infected += row[v];
      bool co_parent_infected = false;
      for (graph::NodeId w : parents[v]) {
        if (w != u && row[w]) {
          co_parent_infected = true;
          break;
        }
      }
      if (!co_parent_infected) {
        ++isolated_total;
        isolated_infected += row[v];
      }
    }
    EdgeProbabilityEstimate estimate;
    estimate.edge = scored.edge;
    estimate.support = isolated_total;
    if (isolated_total > 0) {
      estimate.probability =
          (isolated_infected + 1.0) / (isolated_total + 2.0);
    } else if (pair_total > 0) {
      estimate.probability = (pair_infected + 1.0) / (pair_total + 2.0);
    } else {
      estimate.probability = 0.5;  // no evidence either way
    }
    estimates.push_back(estimate);
  }
  return estimates;
}

}  // namespace tends::inference
