#include "inference/inferred_network.h"

#include <algorithm>

#include "common/stringutil.h"
#include "graph/builder.h"

namespace tends::inference {

void InferredNetwork::KeepTopM(size_t m) {
  if (edges_.size() <= m) return;
  std::stable_sort(edges_.begin(), edges_.end(),
                   [](const ScoredEdge& a, const ScoredEdge& b) {
                     if (a.weight != b.weight) return a.weight > b.weight;
                     return a.edge < b.edge;
                   });
  edges_.resize(m);
}

void InferredNetwork::KeepAboveThreshold(double threshold) {
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [&](const ScoredEdge& e) {
                                return e.weight < threshold;
                              }),
               edges_.end());
}

StatusOr<graph::DirectedGraph> InferredNetwork::ToGraph() const {
  graph::GraphBuilder builder(num_nodes_);
  for (const ScoredEdge& e : edges_) {
    TENDS_RETURN_IF_ERROR(builder.AddEdge(e.edge.from, e.edge.to));
  }
  return builder.Build();
}

std::string InferredNetwork::DebugString() const {
  return StrFormat("InferredNetwork(n=%u, m=%zu)", num_nodes_, edges_.size());
}

}  // namespace tends::inference
