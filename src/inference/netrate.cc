#include "inference/netrate.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "diffusion/cascade.h"
#include "diffusion/validation.h"

namespace tends::inference {

namespace {

// Per-cascade view of one node's subproblem: the candidate parents exposed
// to the node in this cascade and for how long.
struct CascadeTerm {
  std::vector<uint32_t> parents;  // indices into the node's candidate list
  std::vector<double> exposure;   // t_i - t_j (infected) or T_c - t_j (not)
  bool node_infected = false;
};

}  // namespace

StatusOr<InferredNetwork> NetRate::Infer(
    const diffusion::DiffusionObservations& observations,
    const RunContext& context) {
  MetricsRegistry* metrics = context.metrics;
  TENDS_METRICS_STAGE(metrics, "netrate");
  TENDS_TRACE_SPAN(metrics, "netrate_infer");
  Timer timer;
  const auto& cascades = observations.cascades;
  TENDS_RETURN_IF_ERROR(
      diffusion::ValidateCascades(cascades, observations.num_nodes()));
  const uint32_t n = observations.num_nodes();
  InferredNetwork network(n);
  Counter* iterations_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.netrate.em_iterations");
  Counter* nodes_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.netrate.nodes_solved");

  // Observation window per cascade: last infection time + 1.
  std::vector<double> window(cascades.size(), 1.0);
  for (size_t c = 0; c < cascades.size(); ++c) {
    int32_t last = 0;
    for (int32_t t : cascades[c].infection_time) last = std::max(last, t);
    window[c] = static_cast<double>(last) + 1.0;
  }

  // Solve the convex subproblem of each node i independently (optionally
  // in parallel; outputs are per-node and assembled in node order).
  std::vector<std::vector<std::pair<graph::NodeId, double>>> per_node_rates(n);
  ParallelFor(options_.num_threads, 0, n, [&](uint32_t i) {
    // Per-node deadline check: skipped nodes contribute no edges, already
    // finished nodes stay in the output (graceful partial result).
    if (context.ShouldStop()) return;
    TENDS_TRACE_SPAN(metrics, "netrate_node", static_cast<int64_t>(i));
    // Candidates: nodes infected strictly before i in some cascade where i
    // got infected (only those can carry positive rates at the optimum).
    std::vector<graph::NodeId> candidates;
    std::vector<uint32_t> candidate_index(n, UINT32_MAX);
    for (const auto& cascade : cascades) {
      const int32_t ti = cascade.infection_time[i];
      if (ti == diffusion::kNeverInfected || ti == 0) continue;
      for (uint32_t j = 0; j < n; ++j) {
        const int32_t tj = cascade.infection_time[j];
        if (j != i && tj != diffusion::kNeverInfected && tj < ti &&
            candidate_index[j] == UINT32_MAX) {
          candidate_index[j] = static_cast<uint32_t>(candidates.size());
          candidates.push_back(j);
        }
      }
    }
    if (candidates.empty()) return;

    // Precompute per-cascade exposure terms.
    std::vector<CascadeTerm> terms;
    terms.reserve(cascades.size());
    for (size_t c = 0; c < cascades.size(); ++c) {
      const auto& cascade = cascades[c];
      const int32_t ti = cascade.infection_time[i];
      if (ti == 0) continue;  // i is a source: nothing to explain
      CascadeTerm term;
      term.node_infected = ti != diffusion::kNeverInfected;
      const double horizon = term.node_infected ? ti : window[c];
      for (graph::NodeId j : candidates) {
        const int32_t tj = cascade.infection_time[j];
        if (tj == diffusion::kNeverInfected || tj >= horizon) continue;
        term.parents.push_back(candidate_index[j]);
        term.exposure.push_back(horizon - tj);
      }
      if (!term.parents.empty()) terms.push_back(std::move(term));
    }
    if (terms.empty()) return;

    // Maximize (per node, concave)
    //   L(a) = sum_{c: infected} [ log(sum_{j exposed} a_j)
    //                              - sum_{j exposed} a_j * (t_i - t_j) ]
    //        + sum_{c: survived} [ - sum_{j exposed} a_j * (T_c - t_j) ]
    // with the EM / minorize-maximize update for censored exponentials:
    //   gamma_{cj} = a_j / sum_{k exposed in c} a_k      (infected cascades)
    //   a_j <- sum_c gamma_{cj} / sum_c exposure_{cj}.
    // The update preserves positivity and has the stationary points of L.
    const uint32_t k = static_cast<uint32_t>(candidates.size());
    std::vector<double> total_exposure(k, 0.0);
    for (const CascadeTerm& term : terms) {
      for (size_t idx = 0; idx < term.parents.size(); ++idx) {
        total_exposure[term.parents[idx]] += term.exposure[idx];
      }
    }
    std::vector<double> rate(k, options_.initial_rate);
    std::vector<double> responsibility(k);
    uint32_t iterations_run = 0;
    for (uint32_t iter = 0; iter < options_.max_iterations; ++iter) {
      // Per-iteration deadline check: every EM iterate is a valid rate
      // vector, so stopping here keeps the last finished iteration.
      if (context.ShouldStop()) break;
      ++iterations_run;
      std::fill(responsibility.begin(), responsibility.end(), 0.0);
      for (const CascadeTerm& term : terms) {
        if (!term.node_infected) continue;
        double hazard_sum = 0.0;
        for (uint32_t p : term.parents) hazard_sum += rate[p];
        if (hazard_sum <= 0.0) continue;
        const double inv = 1.0 / hazard_sum;
        for (uint32_t p : term.parents) responsibility[p] += rate[p] * inv;
      }
      double max_change = 0.0;
      for (uint32_t p = 0; p < k; ++p) {
        double updated =
            std::min(responsibility[p] / total_exposure[p], options_.rate_cap);
        max_change = std::max(max_change, std::abs(updated - rate[p]));
        rate[p] = updated;
      }
      if (max_change < options_.tolerance) break;
    }

    TENDS_COUNTER_ADD(iterations_counter, iterations_run);
    TENDS_COUNTER_ADD(nodes_counter, 1);
    for (uint32_t p = 0; p < k; ++p) {
      if (rate[p] >= options_.min_output_rate) {
        per_node_rates[i].emplace_back(candidates[p], rate[p]);
      }
    }
  });
  for (uint32_t i = 0; i < n; ++i) {
    for (const auto& [parent, rate] : per_node_rates[i]) {
      network.AddEdge(parent, i, rate);
    }
  }
  TENDS_METRIC_ADD(metrics, "tends.netrate.edges_inferred",
                   network.num_edges());
  diagnostics_ = {std::string(name()), timer.ElapsedSeconds(),
                  context.ShouldStop()};
  return network;
}

}  // namespace tends::inference
