#include "inference/tends.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <optional>
#include <utility>

#include "common/json.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "diffusion/validation.h"
#include "inference/local_score.h"
#include "inference/sparse_candidates.h"

namespace tends::inference {

std::string TendsDiagnostics::ToJson() const {
  JsonWriter writer;
  writer.BeginObject();
  writer.KeyValue("tau", tau);
  writer.KeyValue("kmeans_iterations", static_cast<uint64_t>(kmeans_iterations));
  writer.KeyValue("mean_candidates", mean_candidates);
  writer.KeyValue("max_candidates_seen",
                  static_cast<uint64_t>(max_candidates_seen));
  writer.KeyValue("clipped_nodes", static_cast<uint64_t>(clipped_nodes));
  writer.KeyValue("total_score_evaluations", total_score_evaluations);
  writer.KeyValue("network_score", network_score);
  writer.KeyValue("deadline_expired", deadline_expired);
  writer.KeyValue("nodes_completed", static_cast<uint64_t>(nodes_completed));
  writer.KeyValue("nodes_resumed", static_cast<uint64_t>(nodes_resumed));
  writer.EndObject();
  return writer.TakeString();
}

Status TendsOptions::Validate() const {
  if (use_traditional_mi) {
    // Deprecated alias of mi_variant — same warn-once treatment the old
    // --num_threads CLI alias got before its removal.
    static std::once_flag warn_once;
    std::call_once(warn_once, [] {
      std::fprintf(stderr,
                   "warning: TendsOptions::use_traditional_mi is deprecated; "
                   "set mi_variant = MiVariant::kTraditional instead\n");
    });
  }
  if (tau_multiplier <= 0.0) {
    return Status::InvalidArgument("tau_multiplier must be > 0");
  }
  if (tau_override.has_value() && tau_multiplier != 1.0) {
    return Status::InvalidArgument(
        "tau_override and tau_multiplier != 1 are contradictory: the "
        "override fixes tau directly, so bake the scale into the override");
  }
  if (max_candidates == 0) {
    return Status::InvalidArgument("max_candidates must be > 0");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be > 0 (1 = sequential)");
  }
  if (candidate_mode == CandidateMode::kSparse) {
    // The sparse index stores only strictly positive infection-MI values;
    // its bit-exactness rests on "no other pair can pass value > tau".
    // Traditional MI is non-negative even for anti-correlated pairs,
    // disabled pruning needs every pair, and a negative tau would admit
    // values the index never stores — all three would silently change
    // results, so they are rejected instead.
    if (IsTraditionalMi(ResolvedMiVariant())) {
      return Status::InvalidArgument(
          "candidate_mode=sparse requires infection MI (traditional MI can "
          "be positive for pairs the sparse index elides)");
    }
    if (!enable_pruning) {
      return Status::InvalidArgument(
          "candidate_mode=sparse requires enable_pruning (an unpruned run "
          "needs every pair, which is the dense path by definition)");
    }
    if (tau_override.has_value() && *tau_override < 0.0) {
      return Status::InvalidArgument(
          "candidate_mode=sparse requires tau_override >= 0 (a negative "
          "tau admits non-positive IMI values the sparse index elides)");
    }
  }
  if (!checkpoint.enabled()) {
    if (checkpoint.resume) {
      return Status::InvalidArgument(
          "checkpoint.resume requires checkpoint.directory to be set");
    }
  } else {
    if (checkpoint.stem.empty()) {
      return Status::InvalidArgument("checkpoint.stem must be non-empty");
    }
    if (checkpoint.every_ms < 0) {
      return Status::InvalidArgument("checkpoint.every_ms must be >= 0");
    }
    if (checkpoint.every_nodes == 0 && checkpoint.every_ms == 0) {
      return Status::InvalidArgument(
          "enabled checkpointing needs a flush trigger: set "
          "checkpoint.every_nodes > 0 and/or checkpoint.every_ms > 0");
    }
  }
  return Status::OK();
}

namespace internal {

namespace {

/// Collects completed-node records during the loop and durably snapshots
/// them to the checkpoint file whenever a flush trigger fires (and once
/// more on exit). Thread-safe: workers call NodeCompleted concurrently;
/// flushes are serialized under the mutex and write the *full* set of
/// completed nodes atomically (temp + fsync + rename), so the on-disk file
/// is a complete, valid snapshot at every instant — a SIGKILL can only
/// lose the not-yet-flushed tail, never tear the file. Write errors that
/// survive the retry policy are sticky and surface from Finish().
class CheckpointFlusher {
 public:
  CheckpointFlusher(const CheckpointConfig& config, uint64_t fingerprint,
                    uint32_t num_nodes, const RunContext& context,
                    MetricsRegistry* metrics)
      : config_(config), context_(context), metrics_(metrics) {
    data_.fingerprint = fingerprint;
    data_.num_nodes = num_nodes;
  }

  /// Seeds the snapshot with records loaded on resume (already durable, so
  /// they never re-trigger a flush by themselves).
  void Seed(std::vector<CheckpointNodeRecord> records) {
    data_.nodes = std::move(records);
  }

  void NodeCompleted(CheckpointNodeRecord record) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_.ok()) return;  // durability already lost; don't thrash
    pending_.push_back(std::move(record));
    const bool count_due = config_.every_nodes > 0 &&
                           pending_.size() >= config_.every_nodes;
    const bool time_due =
        config_.every_ms > 0 &&
        since_flush_.ElapsedMillis() >= static_cast<double>(config_.every_ms);
    if (count_due || time_due) FlushLocked();
  }

  /// Flushes whatever completed since the last flush — called on every
  /// exit path, including deadline expiry, so best-so-far work is always
  /// resumable — and returns the first write error, if any.
  Status Finish() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (error_.ok() && !pending_.empty()) FlushLocked();
    return error_;
  }

 private:
  void FlushLocked() {
    Timer timer;
    for (CheckpointNodeRecord& record : pending_) {
      data_.nodes.push_back(std::move(record));
    }
    const uint64_t new_nodes = pending_.size();
    pending_.clear();
    std::sort(data_.nodes.begin(), data_.nodes.end(),
              [](const CheckpointNodeRecord& a, const CheckpointNodeRecord& b) {
                return a.node < b.node;
              });
    Status status = WriteCheckpointFile(config_, data_, context_, metrics_);
    if (!status.ok()) {
      error_ = status;
      return;
    }
    TENDS_METRIC_ADD(metrics_, "tends.checkpoint.nodes_saved", new_nodes);
    TENDS_METRIC_ADD(metrics_, "tends.checkpoint.flushes", 1);
    TENDS_METRIC_RECORD(metrics_, "tends.checkpoint.flush_ns",
                        static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9));
    since_flush_.Restart();
  }

  const CheckpointConfig& config_;
  const RunContext& context_;
  MetricsRegistry* metrics_;
  std::mutex mutex_;
  CheckpointData data_;                        // complete snapshot so far
  std::vector<CheckpointNodeRecord> pending_;  // completed since last flush
  Timer since_flush_;
  Status error_;
};

}  // namespace

std::vector<graph::NodeId> PruneCandidates(const TendsArtifacts& artifacts,
                                           const TendsOptions& options,
                                           graph::NodeId node, bool* clipped) {
  const double tau = artifacts.tau;
  bool was_clipped = false;
  std::vector<graph::NodeId> candidates;
  if (artifacts.sparse != nullptr) {
    // Sparse pruning: only the stored positive-IMI row is scanned, and a
    // bounded heap keeps the top max_candidates under the identical
    // (value desc, id asc) ranking the dense partial_sort uses — so the
    // kept set, its clipped flag, and the final id-ascending order are
    // bit-for-bit what the dense scan produces.
    const SparseCandidateIndex::RowView row = artifacts.sparse->Row(node);
    TopKCandidateHeap heap(options.max_candidates);
    uint32_t passed = 0;
    for (size_t e = 0; e < row.size; ++e) {
      const double value = row.values[e];
      if (value > tau) {
        ++passed;
        heap.Push(value, row.neighbors[e]);
      }
    }
    was_clipped = passed > options.max_candidates;
    candidates = heap.SortedIds();
  } else {
    const ImiMatrix& imi = *artifacts.imi;
    const uint32_t n = imi.num_nodes();
    std::vector<std::pair<double, graph::NodeId>> ranked;
    for (uint32_t j = 0; j < n; ++j) {
      if (j == node) continue;
      double value = imi.Get(node, j);
      if (options.enable_pruning ? value > tau : true) {
        ranked.emplace_back(value, j);
      }
    }
    if (ranked.size() > options.max_candidates) {
      was_clipped = true;
      std::partial_sort(ranked.begin(), ranked.begin() + options.max_candidates,
                        ranked.end(), [](const auto& a, const auto& b) {
                          if (a.first != b.first) return a.first > b.first;
                          return a.second < b.second;
                        });
      ranked.resize(options.max_candidates);
    }
    candidates.reserve(ranked.size());
    // Deterministic processing order: by node id.
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    for (const auto& [value, j] : ranked) candidates.push_back(j);
  }
  if (clipped != nullptr) *clipped = was_clipped;
  return candidates;
}

StatusOr<InferredNetwork> RunTendsNodeLoop(const TendsArtifacts& artifacts,
                                           const TendsOptions& options,
                                           const RunContext& context,
                                           TendsDiagnostics* diagnostics) {
  const diffusion::StatusMatrix& statuses = *artifacts.statuses;
  const PackedStatuses& packed = *artifacts.packed;
  const ImiMatrix* imi = artifacts.imi;
  const SparseCandidateIndex* sparse = artifacts.sparse;
  TENDS_CHECK((imi != nullptr) != (sparse != nullptr))
      << "exactly one of the dense and sparse candidate artifacts must be set";
  const double tau = artifacts.tau;
  const uint32_t n = statuses.num_nodes();
  MetricsRegistry* metrics = context.metrics;
  diagnostics->tau = tau;
  diagnostics->kmeans_iterations = artifacts.kmeans_iterations;

  // Live progress counters, resolved once and bumped from the workers (the
  // same counters drive `tends_cli infer --progress` and the manifest).
  Counter* nodes_done_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.tends.nodes_completed");
  Counter* evals_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.tends.score_evaluations");
  Counter* clipped_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.tends.clipped_nodes");

  // Per-node subproblems are independent; run them (optionally) in
  // parallel and assemble results in node order so the output is
  // identical for any thread count. Each worker polls the context before
  // starting a node (per-node granularity) and FindParents polls it
  // between score evaluations (per-combination granularity); a stop
  // leaves the remaining nodes skipped and already-running nodes
  // returning their best partial parent sets.
  std::vector<ParentSearchResult> results(n);
  std::vector<uint32_t> candidate_counts(n, 0);
  std::vector<uint8_t> clipped(n, 0);
  std::vector<uint8_t> completed(n, 0);

  // Crash safety: load durable per-node results (resume) and set up the
  // periodic flusher. Resumed nodes are restored into the same slots a
  // fresh computation would fill, so everything downstream — network
  // assembly, diagnostics tallies — is byte-identical to an uninterrupted
  // run; the workers simply skip them.
  std::optional<CheckpointFlusher> flusher;
  if (options.checkpoint.enabled()) {
    const uint64_t fingerprint = FingerprintInference(statuses, options);
    flusher.emplace(options.checkpoint, fingerprint, n, context, metrics);
    if (options.checkpoint.resume) {
      StatusOr<std::vector<CheckpointNodeRecord>> loaded =
          LoadCheckpointForResume(options.checkpoint, fingerprint, n);
      if (!loaded.ok()) return loaded.status();
      for (const CheckpointNodeRecord& record : *loaded) {
        const uint32_t i = record.node;
        results[i].parents = record.parents;
        results[i].score = record.score;
        results[i].score_evaluations = record.score_evaluations;
        candidate_counts[i] = record.candidate_count;
        clipped[i] = record.clipped ? 1 : 0;
        completed[i] = 1;
      }
      diagnostics->nodes_resumed = static_cast<uint32_t>(loaded->size());
      TENDS_METRIC_ADD(metrics, "tends.checkpoint.nodes_skipped_on_resume",
                       loaded->size());
      flusher->Seed(std::move(*loaded));
    }
  }

  std::atomic<bool> expired{false};
  ParallelFor(options.num_threads, 0, n, [&](uint32_t i) {
    if (completed[i]) return;  // already durable via a resumed checkpoint
    if (context.ShouldStop()) {
      expired.store(true, std::memory_order_relaxed);
      return;
    }
    // Lines 10-12: candidate parents P_i = { v_j : IMI(X_i, X_j) > tau },
    // via the shared PruneCandidates helper (the incremental runner calls
    // the same function, which is what makes its dirty-node rule exact).
    // (Per-node stage times accumulate across workers, so with
    // num_threads > 1 a stage's wall_ns can exceed the run's wall-clock;
    // it is the aggregate cost of the stage, CPU-time style.)
    std::vector<graph::NodeId> candidates;
    {
      TENDS_METRICS_STAGE(metrics, "pruning");
      TENDS_TRACE_SPAN(metrics, "prune_candidates", static_cast<int64_t>(i));
      bool was_clipped = false;
      candidates = PruneCandidates(artifacts, options, i, &was_clipped);
      if (was_clipped) {
        clipped[i] = 1;
        TENDS_COUNTER_ADD(clipped_counter, 1);
      }
      candidate_counts[i] = static_cast<uint32_t>(candidates.size());
      TENDS_METRIC_RECORD(metrics, "tends.tends.candidates",
                          candidates.size());
    }

    // Lines 13-20: greedy parent-set search. The planner decides per node
    // (from β and |C_i| alone, so the decision is thread- and
    // order-invariant) whether the greedy evaluations scan the packed
    // columns or marginalize a contingency cube built here once; both
    // paths emit bit-identical results, so the strategy moves only where
    // the time goes (tends.parent_search.cube_nodes / packed_nodes).
    {
      TENDS_METRICS_STAGE(metrics, "parent_search");
      const ScoringStrategy plan = PlanScoringStrategy(
          options.search, statuses.num_processes(), candidates.size());
      if (plan == ScoringStrategy::kCube) {
        Timer cube_timer;
        CandidateCube cube(packed, i, candidates);
        TENDS_METRIC_RECORD(metrics, "tends.parent_search.cube_build_ns",
                            static_cast<uint64_t>(
                                cube_timer.ElapsedSeconds() * 1e9));
        TENDS_METRIC_ADD(metrics, "tends.parent_search.cube_nodes", 1);
        results[i] = FindParents(statuses, i, candidates, options.search,
                                 context, &packed, &cube);
      } else {
        TENDS_METRIC_ADD(metrics, "tends.parent_search.packed_nodes", 1);
        results[i] = FindParents(statuses, i, candidates, options.search,
                                 context, &packed);
      }
    }
    TENDS_COUNTER_ADD(evals_counter, results[i].score_evaluations);
    if (results[i].stopped) {
      expired.store(true, std::memory_order_relaxed);
    } else {
      completed[i] = 1;
      TENDS_COUNTER_ADD(nodes_done_counter, 1);
      if (flusher.has_value()) {
        CheckpointNodeRecord record;
        record.node = i;
        record.candidate_count = candidate_counts[i];
        record.clipped = clipped[i] != 0;
        record.score = results[i].score;
        record.score_evaluations = results[i].score_evaluations;
        record.parents = results[i].parents;
        flusher->NodeCompleted(std::move(record));
      }
    }
  });

  // Final flush on every exit path: a deadline-expired run persists its
  // best-so-far completed nodes, making the partial run resumable instead
  // of discarded. A flush failure (after retries) fails the run — the
  // caller explicitly asked for durability; losing it silently would be
  // the exact failure mode this layer exists to prevent.
  if (flusher.has_value()) {
    TENDS_RETURN_IF_ERROR(flusher->Finish());
  }

  InferredNetwork network(n);
  uint64_t total_candidates = 0;
  for (uint32_t i = 0; i < n; ++i) {
    total_candidates += candidate_counts[i];
    diagnostics->max_candidates_seen =
        std::max(diagnostics->max_candidates_seen, candidate_counts[i]);
    diagnostics->clipped_nodes += clipped[i];
    diagnostics->total_score_evaluations += results[i].score_evaluations;
    diagnostics->nodes_completed += completed[i];
    if (completed[i]) diagnostics->network_score += results[i].score;
    // Line 21: a directed edge from each inferred parent to v_i (partial
    // parent sets of stopped nodes still contribute — best-so-far output).
    // Every inferred parent passed value > tau >= 0, so the sparse index
    // holds its weight whenever the sparse artifact is in use.
    for (graph::NodeId parent : results[i].parents) {
      const double weight =
          sparse != nullptr ? sparse->Get(i, parent) : imi->Get(i, parent);
      network.AddEdge(parent, i, weight);
    }
  }
  diagnostics->mean_candidates = static_cast<double>(total_candidates) / n;
  diagnostics->deadline_expired = expired.load(std::memory_order_relaxed);
  if (diagnostics->deadline_expired) {
    TENDS_METRIC_ADD(metrics, "tends.tends.deadline_expired", 1);
  }
  TENDS_METRIC_ADD(metrics, "tends.tends.edges_inferred", network.num_edges());
  return network;
}

}  // namespace internal

StatusOr<InferredNetwork> Tends::Infer(
    const diffusion::DiffusionObservations& observations,
    const RunContext& context) {
  return InferFromStatuses(observations.statuses, context);
}

StatusOr<InferredNetwork> Tends::InferFromStatuses(
    const diffusion::StatusMatrix& statuses, const RunContext& context) {
  const uint32_t n = statuses.num_nodes();
  MetricsRegistry* metrics = context.metrics;
  TENDS_TRACE_SPAN(metrics, "tends_infer");
  TENDS_RETURN_IF_ERROR(diffusion::ValidateStatusMatrix(
      statuses, options_.reject_degenerate_columns));
  TENDS_RETURN_IF_ERROR(options_.Validate());
  diagnostics_ = TendsDiagnostics();
#if TENDS_METRICS_ENABLED
  if (metrics != nullptr) {
    metrics->GetGauge("tends.tends.nodes_total").Set(n);
    metrics->GetGauge("tends.tends.processes").Set(statuses.num_processes());
    metrics->GetGauge("tends.mem.status_matrix_bytes")
        .Set(static_cast<int64_t>(statuses.ByteSize()));
  }
#endif

  // Deadline already blown before any work: the best-so-far topology is the
  // empty network over n nodes (valid, never a hang or an error).
  if (context.ShouldStop()) {
    diagnostics_.deadline_expired = true;
    TENDS_METRIC_ADD(metrics, "tends.tends.deadline_expired", 1);
    return InferredNetwork(n);
  }

  // Word-packed status columns, built once and shared read-only by the
  // pairwise IMI pass and every worker's packed counting kernel (the
  // workers only call const methods on it).
  std::optional<PackedStatuses> packed_storage;
  {
    TENDS_METRICS_STAGE(metrics, "pack_statuses");
    packed_storage.emplace(statuses);
  }
  TENDS_GAUGE_SET(metrics, "tends.mem.packed_statuses_bytes",
                  packed_storage->ByteSize());

  internal::TendsArtifacts artifacts;
  artifacts.statuses = &statuses;
  artifacts.packed = &*packed_storage;

  // Lines 2-4: pairwise infection-MI values — dense matrix or sparse
  // positive-IMI index, per candidate_mode. The sparse branch never
  // materializes an n x n artifact (the scaling smoke test pins this via
  // the tends.mem.* gauges: no pair_counts/imi_matrix gauge is set here).
  std::optional<ImiMatrix> imi_storage;
  std::optional<SparseCandidateIndex> sparse_storage;
  if (options_.candidate_mode == CandidateMode::kSparse) {
    const std::vector<uint32_t> marginals = packed_storage->InfectedCounts();
    TENDS_GAUGE_SET(metrics, "tends.mem.marginal_counts_bytes",
                    marginals.size() * sizeof(uint32_t));
    SparseCandidateOptions sparse_options;
    sparse_options.num_threads = options_.num_threads;
    sparse_storage.emplace(BuildSparseCandidateIndex(
        *packed_storage, marginals, sparse_options, metrics));
    TENDS_METRIC_ADD(metrics, "tends.imi.pairs",
                     sparse_storage->stats().pairs_visited);
    artifacts.sparse = &*sparse_storage;
  } else {
    {
      TENDS_METRICS_STAGE(metrics, "imi");
      TENDS_TRACE_SPAN(metrics, "imi");
      imi_storage.emplace(*packed_storage, options_.ResolvedMiVariant());
    }
    TENDS_METRIC_ADD(metrics, "tends.imi.pairs",
                     static_cast<uint64_t>(n) * (n - 1) / 2);
    // The fresh path materializes the pairwise count table only transiently
    // inside the ImiMatrix constructor; its size is still the honest
    // allocation (the session memoizes the same table durably).
    TENDS_GAUGE_SET(metrics, "tends.mem.pair_counts_bytes",
                    static_cast<uint64_t>(n) * (n - 1) / 2 * sizeof(PairCounts));
    TENDS_GAUGE_SET(metrics, "tends.mem.imi_matrix_bytes",
                    imi_storage->ByteSize());
    artifacts.imi = &*imi_storage;
  }

  // Line 5: threshold tau via the modified K-means on non-negative values.
  if (options_.tau_override.has_value()) {
    artifacts.tau = *options_.tau_override;
  } else {
    TENDS_METRICS_STAGE(metrics, "kmeans");
    TENDS_TRACE_SPAN(metrics, "kmeans");
    ImiThreshold threshold = sparse_storage.has_value()
                                 ? FindImiThreshold(*sparse_storage)
                                 : FindImiThreshold(*imi_storage);
    artifacts.tau = threshold.tau * options_.tau_multiplier;
    artifacts.kmeans_iterations = threshold.iterations;
    TENDS_METRIC_ADD(metrics, "tends.kmeans.iterations", threshold.iterations);
  }

  return internal::RunTendsNodeLoop(artifacts, options_, context,
                                    &diagnostics_);
}

}  // namespace tends::inference
