#include "inference/tends.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "common/json.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "diffusion/validation.h"
#include "inference/local_score.h"

namespace tends::inference {

std::string TendsDiagnostics::ToJson() const {
  JsonWriter writer;
  writer.BeginObject();
  writer.KeyValue("tau", tau);
  writer.KeyValue("kmeans_iterations", static_cast<uint64_t>(kmeans_iterations));
  writer.KeyValue("mean_candidates", mean_candidates);
  writer.KeyValue("max_candidates_seen",
                  static_cast<uint64_t>(max_candidates_seen));
  writer.KeyValue("clipped_nodes", static_cast<uint64_t>(clipped_nodes));
  writer.KeyValue("total_score_evaluations", total_score_evaluations);
  writer.KeyValue("network_score", network_score);
  writer.KeyValue("deadline_expired", deadline_expired);
  writer.KeyValue("nodes_completed", static_cast<uint64_t>(nodes_completed));
  writer.EndObject();
  return writer.TakeString();
}

Status TendsOptions::Validate() const {
  if (tau_multiplier <= 0.0) {
    return Status::InvalidArgument("tau_multiplier must be > 0");
  }
  if (tau_override.has_value() && tau_multiplier != 1.0) {
    return Status::InvalidArgument(
        "tau_override and tau_multiplier != 1 are contradictory: the "
        "override fixes tau directly, so bake the scale into the override");
  }
  if (max_candidates == 0) {
    return Status::InvalidArgument("max_candidates must be > 0");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be > 0 (1 = sequential)");
  }
  return Status::OK();
}

namespace internal {

InferredNetwork RunTendsNodeLoop(const TendsArtifacts& artifacts,
                                 const TendsOptions& options,
                                 const RunContext& context,
                                 TendsDiagnostics* diagnostics) {
  const diffusion::StatusMatrix& statuses = *artifacts.statuses;
  const PackedStatuses& packed = *artifacts.packed;
  const ImiMatrix& imi = *artifacts.imi;
  const double tau = artifacts.tau;
  const uint32_t n = statuses.num_nodes();
  MetricsRegistry* metrics = context.metrics;
  diagnostics->tau = tau;
  diagnostics->kmeans_iterations = artifacts.kmeans_iterations;

  // Live progress counters, resolved once and bumped from the workers (the
  // same counters drive `tends_cli infer --progress` and the manifest).
  Counter* nodes_done_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.tends.nodes_completed");
  Counter* evals_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.tends.score_evaluations");
  Counter* clipped_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.tends.clipped_nodes");

  // Per-node subproblems are independent; run them (optionally) in
  // parallel and assemble results in node order so the output is
  // identical for any thread count. Each worker polls the context before
  // starting a node (per-node granularity) and FindParents polls it
  // between score evaluations (per-combination granularity); a stop
  // leaves the remaining nodes skipped and already-running nodes
  // returning their best partial parent sets.
  std::vector<ParentSearchResult> results(n);
  std::vector<uint32_t> candidate_counts(n, 0);
  std::vector<uint8_t> clipped(n, 0);
  std::vector<uint8_t> completed(n, 0);
  std::atomic<bool> expired{false};
  ParallelFor(options.num_threads, 0, n, [&](uint32_t i) {
    if (context.ShouldStop()) {
      expired.store(true, std::memory_order_relaxed);
      return;
    }
    // Lines 10-12: candidate parents P_i = { v_j : IMI(X_i, X_j) > tau }.
    // (Per-node stage times accumulate across workers, so with
    // num_threads > 1 a stage's wall_ns can exceed the run's wall-clock;
    // it is the aggregate cost of the stage, CPU-time style.)
    std::vector<graph::NodeId> candidates;
    {
      TENDS_METRICS_STAGE(metrics, "pruning");
      TENDS_TRACE_SPAN(metrics, "prune_candidates", static_cast<int64_t>(i));
      std::vector<std::pair<double, graph::NodeId>> ranked;
      for (uint32_t j = 0; j < n; ++j) {
        if (j == i) continue;
        double value = imi.Get(i, j);
        if (options.enable_pruning ? value > tau : true) {
          ranked.emplace_back(value, j);
        }
      }
      if (ranked.size() > options.max_candidates) {
        clipped[i] = 1;
        TENDS_COUNTER_ADD(clipped_counter, 1);
        std::partial_sort(ranked.begin(),
                          ranked.begin() + options.max_candidates,
                          ranked.end(), [](const auto& a, const auto& b) {
                            if (a.first != b.first) return a.first > b.first;
                            return a.second < b.second;
                          });
        ranked.resize(options.max_candidates);
      }
      candidates.reserve(ranked.size());
      // Deterministic processing order: by node id.
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
      for (const auto& [value, j] : ranked) candidates.push_back(j);
      candidate_counts[i] = static_cast<uint32_t>(candidates.size());
      TENDS_METRIC_RECORD(metrics, "tends.tends.candidates",
                          candidates.size());
    }

    // Lines 13-20: greedy parent-set search.
    {
      TENDS_METRICS_STAGE(metrics, "parent_search");
      results[i] = FindParents(statuses, i, candidates, options.search,
                               context, &packed);
    }
    TENDS_COUNTER_ADD(evals_counter, results[i].score_evaluations);
    if (results[i].stopped) {
      expired.store(true, std::memory_order_relaxed);
    } else {
      completed[i] = 1;
      TENDS_COUNTER_ADD(nodes_done_counter, 1);
    }
  });

  InferredNetwork network(n);
  uint64_t total_candidates = 0;
  for (uint32_t i = 0; i < n; ++i) {
    total_candidates += candidate_counts[i];
    diagnostics->max_candidates_seen =
        std::max(diagnostics->max_candidates_seen, candidate_counts[i]);
    diagnostics->clipped_nodes += clipped[i];
    diagnostics->total_score_evaluations += results[i].score_evaluations;
    diagnostics->nodes_completed += completed[i];
    if (completed[i]) diagnostics->network_score += results[i].score;
    // Line 21: a directed edge from each inferred parent to v_i (partial
    // parent sets of stopped nodes still contribute — best-so-far output).
    for (graph::NodeId parent : results[i].parents) {
      network.AddEdge(parent, i, imi.Get(i, parent));
    }
  }
  diagnostics->mean_candidates = static_cast<double>(total_candidates) / n;
  diagnostics->deadline_expired = expired.load(std::memory_order_relaxed);
  if (diagnostics->deadline_expired) {
    TENDS_METRIC_ADD(metrics, "tends.tends.deadline_expired", 1);
  }
  TENDS_METRIC_ADD(metrics, "tends.tends.edges_inferred", network.num_edges());
  return network;
}

}  // namespace internal

StatusOr<InferredNetwork> Tends::Infer(
    const diffusion::DiffusionObservations& observations,
    const RunContext& context) {
  return InferFromStatuses(observations.statuses, context);
}

StatusOr<InferredNetwork> Tends::InferFromStatuses(
    const diffusion::StatusMatrix& statuses, const RunContext& context) {
  const uint32_t n = statuses.num_nodes();
  MetricsRegistry* metrics = context.metrics;
  TENDS_TRACE_SPAN(metrics, "tends_infer");
  TENDS_RETURN_IF_ERROR(diffusion::ValidateStatusMatrix(
      statuses, options_.reject_degenerate_columns));
  TENDS_RETURN_IF_ERROR(options_.Validate());
  diagnostics_ = TendsDiagnostics();
#if TENDS_METRICS_ENABLED
  if (metrics != nullptr) {
    metrics->GetGauge("tends.tends.nodes_total").Set(n);
    metrics->GetGauge("tends.tends.processes").Set(statuses.num_processes());
  }
#endif

  // Deadline already blown before any work: the best-so-far topology is the
  // empty network over n nodes (valid, never a hang or an error).
  if (context.ShouldStop()) {
    diagnostics_.deadline_expired = true;
    TENDS_METRIC_ADD(metrics, "tends.tends.deadline_expired", 1);
    return InferredNetwork(n);
  }

  // Word-packed status columns, built once and shared read-only by the
  // pairwise IMI pass and every worker's packed counting kernel (the
  // workers only call const methods on it).
  std::optional<PackedStatuses> packed_storage;
  {
    TENDS_METRICS_STAGE(metrics, "pack_statuses");
    packed_storage.emplace(statuses);
  }

  // Lines 2-4: pairwise infection-MI values.
  std::optional<ImiMatrix> imi_storage;
  {
    TENDS_METRICS_STAGE(metrics, "imi");
    TENDS_TRACE_SPAN(metrics, "imi");
    imi_storage.emplace(*packed_storage, options_.use_traditional_mi);
  }
  TENDS_METRIC_ADD(metrics, "tends.imi.pairs",
                   static_cast<uint64_t>(n) * (n - 1) / 2);

  internal::TendsArtifacts artifacts;
  artifacts.statuses = &statuses;
  artifacts.packed = &*packed_storage;
  artifacts.imi = &*imi_storage;

  // Line 5: threshold tau via the modified K-means on non-negative values.
  if (options_.tau_override.has_value()) {
    artifacts.tau = *options_.tau_override;
  } else {
    TENDS_METRICS_STAGE(metrics, "kmeans");
    TENDS_TRACE_SPAN(metrics, "kmeans");
    ImiThreshold threshold = FindImiThreshold(*imi_storage);
    artifacts.tau = threshold.tau * options_.tau_multiplier;
    artifacts.kmeans_iterations = threshold.iterations;
    TENDS_METRIC_ADD(metrics, "tends.kmeans.iterations", threshold.iterations);
  }

  return internal::RunTendsNodeLoop(artifacts, options_, context,
                                    &diagnostics_);
}

}  // namespace tends::inference
