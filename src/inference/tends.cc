#include "inference/tends.h"

#include <algorithm>

#include "common/parallel.h"
#include "inference/local_score.h"

namespace tends::inference {

StatusOr<InferredNetwork> Tends::Infer(
    const diffusion::DiffusionObservations& observations) {
  return InferFromStatuses(observations.statuses);
}

StatusOr<InferredNetwork> Tends::InferFromStatuses(
    const diffusion::StatusMatrix& statuses) {
  const uint32_t n = statuses.num_nodes();
  if (n == 0) return Status::InvalidArgument("no nodes in observations");
  if (statuses.num_processes() == 0) {
    return Status::InvalidArgument("no diffusion processes in observations");
  }
  if (options_.tau_multiplier <= 0.0) {
    return Status::InvalidArgument("tau_multiplier must be > 0");
  }
  if (options_.max_candidates == 0) {
    return Status::InvalidArgument("max_candidates must be > 0");
  }
  diagnostics_ = TendsDiagnostics();

  // Lines 2-4: pairwise infection-MI values.
  ImiMatrix imi(statuses, options_.use_traditional_mi);

  // Line 5: threshold tau via the modified K-means on non-negative values.
  double tau = 0.0;
  if (options_.tau_override.has_value()) {
    tau = *options_.tau_override;
  } else {
    ImiThreshold threshold = FindImiThreshold(imi.UpperTriangleValues());
    diagnostics_.kmeans_iterations = threshold.iterations;
    tau = threshold.tau * options_.tau_multiplier;
  }
  diagnostics_.tau = tau;

  // Per-node subproblems are independent; run them (optionally) in
  // parallel and assemble results in node order so the output is
  // identical for any thread count.
  std::vector<ParentSearchResult> results(n);
  std::vector<uint32_t> candidate_counts(n, 0);
  std::vector<uint8_t> clipped(n, 0);
  ParallelFor(options_.num_threads, 0, n, [&](uint32_t i) {
    // Lines 10-12: candidate parents P_i = { v_j : IMI(X_i, X_j) > tau }.
    std::vector<std::pair<double, graph::NodeId>> ranked;
    for (uint32_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double value = imi.Get(i, j);
      if (options_.enable_pruning ? value > tau : true) {
        ranked.emplace_back(value, j);
      }
    }
    if (ranked.size() > options_.max_candidates) {
      clipped[i] = 1;
      std::partial_sort(ranked.begin(), ranked.begin() + options_.max_candidates,
                        ranked.end(), [](const auto& a, const auto& b) {
                          if (a.first != b.first) return a.first > b.first;
                          return a.second < b.second;
                        });
      ranked.resize(options_.max_candidates);
    }
    std::vector<graph::NodeId> candidates;
    candidates.reserve(ranked.size());
    // Deterministic processing order: by node id.
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    for (const auto& [value, j] : ranked) candidates.push_back(j);
    candidate_counts[i] = static_cast<uint32_t>(candidates.size());

    // Lines 13-20: greedy parent-set search.
    results[i] = FindParents(statuses, i, candidates, options_.search);
  });

  InferredNetwork network(n);
  uint64_t total_candidates = 0;
  for (uint32_t i = 0; i < n; ++i) {
    total_candidates += candidate_counts[i];
    diagnostics_.max_candidates_seen =
        std::max(diagnostics_.max_candidates_seen, candidate_counts[i]);
    diagnostics_.clipped_nodes += clipped[i];
    diagnostics_.total_score_evaluations += results[i].score_evaluations;
    diagnostics_.network_score += results[i].score;
    // Line 21: a directed edge from each inferred parent to v_i.
    for (graph::NodeId parent : results[i].parents) {
      network.AddEdge(parent, i, imi.Get(i, parent));
    }
  }
  diagnostics_.mean_candidates = static_cast<double>(total_candidates) / n;
  return network;
}

}  // namespace tends::inference
