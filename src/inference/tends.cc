#include "inference/tends.h"

#include <algorithm>
#include <atomic>

#include "common/parallel.h"
#include "diffusion/validation.h"
#include "inference/local_score.h"

namespace tends::inference {

StatusOr<InferredNetwork> Tends::Infer(
    const diffusion::DiffusionObservations& observations,
    const RunContext& context) {
  return InferFromStatuses(observations.statuses, context);
}

StatusOr<InferredNetwork> Tends::InferFromStatuses(
    const diffusion::StatusMatrix& statuses, const RunContext& context) {
  const uint32_t n = statuses.num_nodes();
  TENDS_RETURN_IF_ERROR(diffusion::ValidateStatusMatrix(
      statuses, options_.reject_degenerate_columns));
  if (options_.tau_multiplier <= 0.0) {
    return Status::InvalidArgument("tau_multiplier must be > 0");
  }
  if (options_.max_candidates == 0) {
    return Status::InvalidArgument("max_candidates must be > 0");
  }
  diagnostics_ = TendsDiagnostics();

  // Deadline already blown before any work: the best-so-far topology is the
  // empty network over n nodes (valid, never a hang or an error).
  if (context.ShouldStop()) {
    diagnostics_.deadline_expired = true;
    return InferredNetwork(n);
  }

  // Lines 2-4: pairwise infection-MI values.
  ImiMatrix imi(statuses, options_.use_traditional_mi);

  // Line 5: threshold tau via the modified K-means on non-negative values.
  double tau = 0.0;
  if (options_.tau_override.has_value()) {
    tau = *options_.tau_override;
  } else {
    ImiThreshold threshold = FindImiThreshold(imi.UpperTriangleValues());
    diagnostics_.kmeans_iterations = threshold.iterations;
    tau = threshold.tau * options_.tau_multiplier;
  }
  diagnostics_.tau = tau;

  // Per-node subproblems are independent; run them (optionally) in
  // parallel and assemble results in node order so the output is
  // identical for any thread count. Each worker polls the context before
  // starting a node (per-node granularity) and FindParents polls it
  // between score evaluations (per-combination granularity); a stop
  // leaves the remaining nodes skipped and already-running nodes
  // returning their best partial parent sets.
  std::vector<ParentSearchResult> results(n);
  std::vector<uint32_t> candidate_counts(n, 0);
  std::vector<uint8_t> clipped(n, 0);
  std::vector<uint8_t> completed(n, 0);
  std::atomic<bool> expired{false};
  ParallelFor(options_.num_threads, 0, n, [&](uint32_t i) {
    if (context.ShouldStop()) {
      expired.store(true, std::memory_order_relaxed);
      return;
    }
    // Lines 10-12: candidate parents P_i = { v_j : IMI(X_i, X_j) > tau }.
    std::vector<std::pair<double, graph::NodeId>> ranked;
    for (uint32_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double value = imi.Get(i, j);
      if (options_.enable_pruning ? value > tau : true) {
        ranked.emplace_back(value, j);
      }
    }
    if (ranked.size() > options_.max_candidates) {
      clipped[i] = 1;
      std::partial_sort(ranked.begin(), ranked.begin() + options_.max_candidates,
                        ranked.end(), [](const auto& a, const auto& b) {
                          if (a.first != b.first) return a.first > b.first;
                          return a.second < b.second;
                        });
      ranked.resize(options_.max_candidates);
    }
    std::vector<graph::NodeId> candidates;
    candidates.reserve(ranked.size());
    // Deterministic processing order: by node id.
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    for (const auto& [value, j] : ranked) candidates.push_back(j);
    candidate_counts[i] = static_cast<uint32_t>(candidates.size());

    // Lines 13-20: greedy parent-set search.
    results[i] = FindParents(statuses, i, candidates, options_.search, context);
    if (results[i].stopped) {
      expired.store(true, std::memory_order_relaxed);
    } else {
      completed[i] = 1;
    }
  });

  InferredNetwork network(n);
  uint64_t total_candidates = 0;
  for (uint32_t i = 0; i < n; ++i) {
    total_candidates += candidate_counts[i];
    diagnostics_.max_candidates_seen =
        std::max(diagnostics_.max_candidates_seen, candidate_counts[i]);
    diagnostics_.clipped_nodes += clipped[i];
    diagnostics_.total_score_evaluations += results[i].score_evaluations;
    diagnostics_.nodes_completed += completed[i];
    if (completed[i]) diagnostics_.network_score += results[i].score;
    // Line 21: a directed edge from each inferred parent to v_i (partial
    // parent sets of stopped nodes still contribute — best-so-far output).
    for (graph::NodeId parent : results[i].parents) {
      network.AddEdge(parent, i, imi.Get(i, parent));
    }
  }
  diagnostics_.mean_candidates = static_cast<double>(total_candidates) / n;
  diagnostics_.deadline_expired = expired.load(std::memory_order_relaxed);
  return network;
}

}  // namespace tends::inference
