#ifndef TENDS_INFERENCE_PATH_H_
#define TENDS_INFERENCE_PATH_H_

#include <string_view>

#include "inference/network_inference.h"

namespace tends::inference {

/// Options of the PATH baseline.
struct PathOptions {
  /// Number of directed edges to output (pairs are emitted in both
  /// directions, matching PATH's undirected reconstruction).
  uint64_t num_edges = 0;
  /// Length (node count) of the path-connected sets; the reference setting
  /// is triples.
  uint32_t trace_length = 3;
};

/// PATH (Gripon & Rabbat, ISIT 2013): reconstructs a graph from unordered
/// path-connected node sets of fixed length by connecting the node pairs
/// that co-occur most frequently across the sets.
///
/// The paper excludes PATH from its comparison because exact path traces
/// are unobtainable in practice ("an exact diffusion path is often hard to
/// trace when multiple paths coexist"). Our simulator records the true
/// transmission chains, so this implementation runs PATH with *oracle*
/// traces — an upper bound on its achievable accuracy — for the
/// bench/ablation_path study. It errors when the observations carry no
/// infector records (e.g. Linear Threshold simulations or data loaded from
/// the status-only format), which is exactly PATH's practical limitation.
class Path : public NetworkInference {
 public:
  explicit Path(PathOptions options) : options_(options) {}

  std::string_view name() const override { return "PATH"; }

  /// Name, wall-clock seconds and partial-result flag of the most recent
  /// successful Infer call ("{}" before the first).
  std::string DiagnosticsJson() const override { return diagnostics_.ToJson(); }

  using NetworkInference::Infer;

  /// Honors the context at per-trace granularity while counting pair
  /// co-occurrences: on expiry the remaining traces are skipped and the
  /// edges are ranked on the counts gathered so far.
  StatusOr<InferredNetwork> Infer(
      const diffusion::DiffusionObservations& observations,
      const RunContext& context) override;

 private:
  PathOptions options_;
  BaselineDiagnostics diagnostics_;
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_PATH_H_
