#ifndef TENDS_INFERENCE_CHECKPOINT_H_
#define TENDS_INFERENCE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/durable_io.h"
#include "common/run_context.h"
#include "common/statusor.h"
#include "diffusion/cascade.h"
#include "graph/graph.h"

namespace tends::inference {

struct TendsOptions;

/// Schema tag of the on-disk checkpoint format. Bump on any incompatible
/// layout change; readers reject other versions outright.
inline constexpr std::string_view kCheckpointSchema = "tends.checkpoint.v1";

/// Where and how often a TENDS run persists completed per-node results.
/// Disabled (the default) when `directory` is empty — checkpointing is
/// strictly opt-in and a disabled config costs nothing per node.
struct CheckpointConfig {
  /// Directory holding the checkpoint file; created on first flush. Empty
  /// = checkpointing off.
  std::string directory;
  /// File stem inside `directory` (the file is `<stem>.checkpoint`). Sweeps
  /// give each run its own stem so checkpoints never collide.
  std::string stem = "tends";
  /// Load `<stem>.checkpoint` before running and skip the nodes it holds.
  /// A missing file is a fresh start, not an error; a corrupt or stale one
  /// (fingerprint mismatch) fails the run — never silently reused.
  bool resume = false;
  /// Flush after this many newly completed nodes (0 = no count trigger).
  uint32_t every_nodes = 64;
  /// Also flush when this much wall-clock has passed since the last flush
  /// and at least one new node completed (0 = no time trigger).
  int64_t every_ms = 2000;
  /// Retry policy wrapped around every checkpoint write.
  RetryPolicy retry;

  bool enabled() const { return !directory.empty(); }
  std::string FilePath() const { return directory + "/" + stem + ".checkpoint"; }
};

/// Everything needed to reproduce one completed node's contribution to the
/// output bit-for-bit: the parent set (edge weights are re-derived from the
/// session's IMI artifact), the exact score bits, and the diagnostics
/// tallies. Only *completed* nodes are checkpointed — a node stopped
/// mid-search re-runs from scratch on resume.
struct CheckpointNodeRecord {
  uint32_t node = 0;
  uint32_t candidate_count = 0;
  bool clipped = false;
  /// g(v_i, F_i), preserved exactly (serialized as raw IEEE-754 bits).
  double score = 0.0;
  uint64_t score_evaluations = 0;
  /// Inferred parent set, ascending.
  std::vector<graph::NodeId> parents;
};

/// In-memory image of one checkpoint file.
struct CheckpointData {
  /// FingerprintInference of the (status matrix, options) pair the records
  /// were computed against.
  uint64_t fingerprint = 0;
  uint32_t num_nodes = 0;
  /// Ascending by node, unique.
  std::vector<CheckpointNodeRecord> nodes;
};

/// Stable 64-bit fingerprint of the inference inputs: the status matrix
/// bytes plus every TendsOptions field that can change the output.
/// Deliberately *excluded* are the knobs proven byte-identical in output —
/// num_threads and the counting kernel — so a checkpoint written at one
/// thread count resumes at any other, and the checkpoint config itself
/// (durability settings don't change what is computed). A resume whose
/// fingerprint differs from the stored one is rejected as stale.
uint64_t FingerprintInference(const diffusion::StatusMatrix& statuses,
                              const TendsOptions& options);

/// Serializes to the framed tends.checkpoint.v1 byte layout: one
/// CRC-32-checksummed frame (common/durable_io.h) for the header and one
/// per node record, so torn files and flipped bits are detected on read.
std::string EncodeCheckpoint(const CheckpointData& data);

/// Parses EncodeCheckpoint output. Any damage — framing, checksum, schema
/// version, malformed record, record-count mismatch, out-of-range or
/// misordered nodes — fails with Corruption naming the offending frame;
/// a damaged checkpoint is never partially loaded.
StatusOr<CheckpointData> DecodeCheckpoint(std::string_view bytes);

/// Durably replaces the checkpoint file with `data`: encode, then atomic
/// write (temp + fsync + rename) wrapped in the config's retry policy
/// (deadline-aware via `context`; `tends.checkpoint.retries` counts
/// re-attempts). The directory is created if missing.
Status WriteCheckpointFile(const CheckpointConfig& config,
                           const CheckpointData& data,
                           const RunContext& context, MetricsRegistry* metrics);

/// Reads and decodes a checkpoint file. kNotFound when absent, Corruption
/// on damage.
StatusOr<CheckpointData> ReadCheckpointFile(const std::string& path);

/// Resume entry point: loads the config's checkpoint file and validates it
/// against the current run. Returns the usable records; an absent file
/// yields an empty vector (fresh start). Fails with Corruption on damage
/// and FailedPrecondition on a stale checkpoint (fingerprint or node-count
/// mismatch) — both name the file, neither is ever silently reused.
StatusOr<std::vector<CheckpointNodeRecord>> LoadCheckpointForResume(
    const CheckpointConfig& config, uint64_t fingerprint, uint32_t num_nodes);

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_CHECKPOINT_H_
