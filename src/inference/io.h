#ifndef TENDS_INFERENCE_IO_H_
#define TENDS_INFERENCE_IO_H_

#include <iosfwd>
#include <string>

#include "common/io_hardening.h"
#include "common/statusor.h"
#include "inference/inferred_network.h"

namespace tends::inference {

/// Text format for inference results ("tends-network v1"):
///   - header comment line
///   - "<num_nodes>"
///   - one "<from> <to> <weight>" line per edge.
///
/// The reader takes IoReadOptions: strict mode (default) fails on any
/// malformed line with a Corruption status naming the 1-based line and the
/// offending token, and rejects NaN/Inf weights; permissive mode skips
/// corrupt edge lines (tallying them in `report` when non-null) and, when
/// the node-count line itself is damaged, sizes the network from the
/// largest surviving endpoint.
Status WriteInferredNetwork(const InferredNetwork& network, std::ostream& out);
Status WriteInferredNetworkFile(const InferredNetwork& network,
                                const std::string& path);
StatusOr<InferredNetwork> ReadInferredNetwork(std::istream& in,
                                              const IoReadOptions& options = {},
                                              CorruptionReport* report =
                                                  nullptr);
StatusOr<InferredNetwork> ReadInferredNetworkFile(
    const std::string& path, const IoReadOptions& options = {},
    CorruptionReport* report = nullptr);

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_IO_H_
