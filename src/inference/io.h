#ifndef TENDS_INFERENCE_IO_H_
#define TENDS_INFERENCE_IO_H_

#include <iosfwd>
#include <string>

#include "common/statusor.h"
#include "inference/inferred_network.h"

namespace tends::inference {

/// Text format for inference results ("tends-network v1"):
///   - header comment line
///   - "<num_nodes>"
///   - one "<from> <to> <weight>" line per edge.
Status WriteInferredNetwork(const InferredNetwork& network, std::ostream& out);
Status WriteInferredNetworkFile(const InferredNetwork& network,
                                const std::string& path);
StatusOr<InferredNetwork> ReadInferredNetwork(std::istream& in);
StatusOr<InferredNetwork> ReadInferredNetworkFile(const std::string& path);

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_IO_H_
